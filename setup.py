"""Setuptools shim for environments without PEP 517 editable support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description='Reproduction of "Compute Caches" (HPCA 2017)',
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
