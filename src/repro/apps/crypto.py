"""Cryptographic kernels on the Compute Cache clmul/arithmetic tiers.

Three kernels the near-cache cryptography literature identifies as the
best real-workload match for bit-line computing, each implemented twice
(scalar baseline + CC) over the same machine model and verified bit-exact
against independent references:

* **GHASH/GCM authentication** - GF(2^128) universal hashing.  The tag of
  an ``n``-block message is linear in the message once the hash key ``H``
  is fixed: ``tag = XOR_i C_i * H^(n-i+1)``.  The CC version precomputes
  that linear map as a 128-row GF(2) bit-matrix key schedule (one row per
  tag bit, ``Intel``-style aggregated reduction taken to its limit) and
  evaluates each row with one ``cc_clmul128`` over the *entire resident
  message*: the in-array XOR-reduction trees return per-lane parities in
  the result register and two scalar ops fold them into one tag bit.  The
  baseline is the classic 4-bit-table software GHASH (the fallback on
  cores without a carry-less-multiply unit): 32 serially dependent table
  lookups per block.
* **Line-rate CRC32/CRC64** - the LFSR update is GF(2)-linear in
  (state, message), so the whole-message CRC is an affine map
  ``crc = M . msg ^ c0``.  ``w`` ``cc_clmul`` row folds (32 or 64) produce
  the checksum for a message of *any* supported length - the clmul-folding
  trick hardware CRC engines use, with the fold tables generated from the
  recurrence rather than hand-derived.  Verified against
  :func:`binascii.crc32` and a table-driven reference
  (CRC-64/XZ for the 64-bit variant).  Baseline: byte-at-a-time table CRC,
  one serially dependent lookup per byte.
* **NTT-style negacyclic polynomial multiply** - the
  ``Z_q[X]/(X^n + 1)`` product at the core of lattice post-quantum
  schemes.  With a power-of-two modulus (Saber's choice, made exactly
  because it suits binary hardware) every schoolbook step is exact modulo
  ``2^16``, so the CC version runs tap-parallel on the bit-serial
  arithmetic tier: one broadcast coefficient plane, one ``cc_mul16`` and
  one ``cc_add16`` per input coefficient, negated wrap-around taps baked
  into the precomputed rotation planes.  Bit-exact against a numpy full
  convolution folded negacyclically.

The GF(2) matrices are built by *probing the pure reference with basis
vectors* (and composing powers with numpy boolean matmuls), which makes
the lowering immune to bit-order convention bugs: the packed rows use the
same in-memory bit order as the message bytes they are folded against.

Because GHASH tags and CRCs exist to detect corruption, the kernels double
as their own integrity oracles under fault injection:
:func:`run_crypto_campaign` replays each kernel under the PR 4 fault
campaigns (SRAM bit strikes, controller pin steals, directory faults) and
reports detected-vs-silent corruption, with the reference recomputation
standing in for the protocol-level verifier.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..core.isa import cc_add, cc_clmul_bcast, cc_mul
from ..cpu.program import Instr
from ..machine import ComputeCacheMachine
from ..params import BLOCK_SIZE
from .common import AppResult, StreamRunner, fresh_machine

CRYPTO_KERNELS = ("ghash", "crc32", "crc64", "ntt")

#: Reflected generator polynomials (bit-reversed, implicit x^w term).
CRC32_POLY = 0xEDB88320          # CRC-32/ISO-HDLC == binascii.crc32
CRC64_POLY = 0xC96C5795D7870F42  # CRC-64/XZ

#: GCM's reduction constant for the right-shift gf128 multiply.
GCM_R = 0xE1000000000000000000000000000000

NTT_ELEM_BITS = 16


@dataclass(frozen=True)
class CryptoConfig:
    """Workload sizes for the crypto suite.

    ``ghash_blocks`` and ``crc_bytes`` set the message length (multiples
    of 4 blocks / 64 bytes so clmul operands stay block-sized);
    ``ntt_n``/``ntt_q`` pick the polynomial ring - ``ntt_q`` must divide
    ``2^16`` so the bit-serial lanes compute exactly in the quotient ring.
    """

    seed: int = 108
    ghash_blocks: int = 64   # 16-byte message blocks (1 KB message)
    crc_bytes: int = 1024
    ntt_n: int = 128
    ntt_q: int = 8192        # Saber-flavor power-of-two modulus

    def __post_init__(self) -> None:
        if self.ghash_blocks < 4 or self.ghash_blocks % 4:
            raise ValueError("ghash_blocks must be a positive multiple of 4")
        if self.crc_bytes < 64 or self.crc_bytes % 64:
            raise ValueError("crc_bytes must be a positive multiple of 64")
        if self.ntt_n < 32 or self.ntt_n & (self.ntt_n - 1):
            raise ValueError("ntt_n must be a power of two >= 32")
        if (1 << 16) % self.ntt_q:
            raise ValueError("ntt_q must divide 2^16 (power-of-two modulus)")


# -- pure references ------------------------------------------------------------------


def gf128_mul(x: int, y: int) -> int:
    """NIST SP 800-38D multiplication in GF(2^128) (big-endian block ints)."""
    z, v = 0, x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        v = (v >> 1) ^ GCM_R if v & 1 else v >> 1
    return z


def ghash(h: bytes, data: bytes) -> bytes:
    """Pure-python GHASH: chain ``Y <- (Y ^ C_i) * H`` over 16-byte blocks.

    ``data`` is zero-padded to a whole number of blocks (callers append
    their own GCM length block when they need the full protocol).
    """
    if len(h) != 16:
        raise ValueError("GHASH key must be 16 bytes")
    if len(data) % 16:
        data = data + bytes(16 - len(data) % 16)
    hk = int.from_bytes(h, "big")
    y = 0
    for off in range(0, len(data), 16):
        y = gf128_mul(y ^ int.from_bytes(data[off:off + 16], "big"), hk)
    return y.to_bytes(16, "big")


def _crc_table(poly: int, width: int) -> list[int]:
    table = []
    for v in range(256):
        r = v
        for _ in range(8):
            r = (r >> 1) ^ poly if r & 1 else r >> 1
        table.append(r)
    return table


_CRC_TABLES = {32: _crc_table(CRC32_POLY, 32), 64: _crc_table(CRC64_POLY, 64)}


def crc_ref(data: bytes, width: int = 32) -> int:
    """Table-driven reflected CRC (init/xorout all-ones).

    ``width=32`` matches :func:`binascii.crc32`; ``width=64`` is
    CRC-64/XZ.
    """
    table = _CRC_TABLES[width]
    mask = (1 << width) - 1
    crc = mask
    for b in data:
        crc = (crc >> 8) ^ table[(crc ^ b) & 0xFF]
    return crc ^ mask


def ntt_polymul(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Negacyclic product in ``Z_q[X]/(X^n + 1)`` via numpy convolution."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    n = len(a)
    full = np.convolve(a, b)                      # degree 2n-2
    full = np.concatenate([full, np.zeros(2 * n - 1 - len(full), np.int64)])
    return ((full[:n] - np.concatenate([full[n:], [0]])) % q).astype(np.int64)


# -- GF(2) linear-map lowering --------------------------------------------------------
#
# Bit index convention everywhere below: message/tag bit ``8*p + k`` is bit
# ``k`` (LSB first) of byte ``p`` - i.e. numpy's ``bitorder="little"``.
# Packed matrix rows therefore align bit-for-bit with raw operand bytes in
# memory, and ``cc_clmul``'s AND+parity per lane evaluates one matrix row.


def _unpack_lsb(data: bytes) -> np.ndarray:
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8), bitorder="little")


def _pack_lsb(bits: np.ndarray) -> bytes:
    return np.packbits(bits.astype(np.uint8), bitorder="little").tobytes()


def _mul_by_h_matrix(h: bytes) -> np.ndarray:
    """128x128 GF(2) matrix of ``x -> x * H`` in byte-LSB coordinates."""
    hk = int.from_bytes(h, "big")
    cols = np.zeros((128, 128), dtype=np.uint8)
    for bit in range(128):
        basis = bytes(bit // 8) + bytes([1 << (bit % 8)])
        basis = basis + bytes(16 - len(basis))
        out = gf128_mul(int.from_bytes(basis, "big"), hk)
        cols[bit] = _unpack_lsb(out.to_bytes(16, "big"))
    return cols.T


def ghash_matrix_rows(h: bytes, blocks: int) -> np.ndarray:
    """The whole-message GHASH map as a ``(128, blocks*128)`` bit matrix.

    ``tag = XOR_i C_i * H^(blocks-i)`` for message blocks ``C_0..`` - row
    ``j`` ANDed with the raw message bytes and parity-folded yields tag
    bit ``j``.
    """
    m1 = _mul_by_h_matrix(h)
    rows = np.zeros((128, blocks * 128), dtype=np.uint8)
    power = m1                                    # H^1 for the last block
    for i in range(blocks - 1, -1, -1):
        rows[:, i * 128:(i + 1) * 128] = power
        if i:
            power = (m1 @ power) & 1
    return rows


def crc_matrix_rows(width: int, length: int) -> tuple[np.ndarray, int]:
    """Whole-message CRC as an affine map: ``crc = rows . msg ^ c0``.

    The byte-step ``s' = Z s ^ B d`` is probed from the table recurrence,
    then the per-position columns ``Z^(length-1-p) B`` are accumulated
    backwards with boolean matmuls.  Returns the ``(width, length*8)``
    row matrix and the constant ``c0`` (init + xorout folded in).
    """
    table = _CRC_TABLES[width]

    def step(state: int, byte: int) -> int:
        return (state >> 8) ^ table[(state ^ byte) & 0xFF]

    z = np.zeros((width, width), dtype=np.uint8)
    for k in range(width):
        z[:, k] = _unpack_lsb(step(1 << k, 0).to_bytes(width // 8, "little"))
    bmat = np.zeros((width, 8), dtype=np.uint8)
    for k in range(8):
        bmat[:, k] = _unpack_lsb(step(0, 1 << k).to_bytes(width // 8, "little"))

    rows = np.zeros((width, length * 8), dtype=np.uint8)
    cols = bmat
    for p in range(length - 1, -1, -1):
        rows[:, p * 8:(p + 1) * 8] = cols
        if p:
            cols = (z @ cols) & 1
    c0 = crc_ref(bytes(length), width)
    return rows, c0


def crc_fold(data: bytes, width: int = 32) -> int:
    """Line-rate CRC via the matrix fold (host-evaluated).

    This is exactly the linear-algebra lowering the CC kernel executes;
    it must (and does - see the property tests) agree with
    :func:`binascii.crc32` / :func:`crc_ref` on every input.
    """
    rows, c0 = crc_matrix_rows(width, len(data)) if data else ((None, crc_ref(b"", width)))
    if not data:
        return c0
    msg = _unpack_lsb(data)
    bits = (rows & msg).sum(axis=1) & 1
    return int.from_bytes(_pack_lsb(bits), "little") ^ c0


# -- workloads ------------------------------------------------------------------------


@dataclass(frozen=True)
class CryptoWorkload:
    kernel: str
    h: bytes | None            # GHASH key
    message: bytes             # GHASH/CRC message
    a: np.ndarray | None       # NTT operands
    b: np.ndarray | None


def make_crypto_workload(kernel: str, cfg: CryptoConfig) -> CryptoWorkload:
    rng = np.random.default_rng(cfg.seed)
    if kernel == "ghash":
        raw = rng.integers(0, 256, size=16 + cfg.ghash_blocks * 16, dtype=np.uint8)
        data = raw.tobytes()
        return CryptoWorkload(kernel, data[:16], data[16:], None, None)
    if kernel in ("crc32", "crc64"):
        msg = rng.integers(0, 256, size=cfg.crc_bytes, dtype=np.uint8).tobytes()
        return CryptoWorkload(kernel, None, msg, None, None)
    if kernel == "ntt":
        a = rng.integers(0, cfg.ntt_q, size=cfg.ntt_n, dtype=np.int64)
        b = rng.integers(0, cfg.ntt_q, size=cfg.ntt_n, dtype=np.int64)
        return CryptoWorkload(kernel, None, b"", a, b)
    raise ValueError(f"unknown crypto kernel {kernel!r}")


def pack_fold_slabs(rows: np.ndarray) -> list[bytes]:
    """Slice a ``(w, msg_bits)`` GF(2) row matrix into per-message-block
    fold slabs.

    Slab ``b`` is a contiguous ``w x 64`` byte buffer: its ``j``-th cache
    block holds row ``j``'s chunk for message block ``b``, packed in the
    message's in-memory bit order.  One broadcast ``cc_clmul256`` of
    message block ``b`` against slab ``b`` then emits two partial
    parities per row (one per 256-bit lane) into the result register.
    """
    w, msg_bits = rows.shape
    slabs = []
    for b in range(msg_bits // 512):
        chunk = rows[:, b * 512:(b + 1) * 512]
        slabs.append(b"".join(_pack_lsb(chunk[j]) for j in range(w)))
    return slabs


def _fold_slabs(runner: StreamRunner, m: ComputeCacheMachine,
                slab_base: int, msg_base: int, dest_base: int,
                w: int, msg_blocks: int, pulse) -> np.ndarray:
    """Fold the whole message through the slab schedule; returns the
    ``w`` output bits.

    Per 64-byte message block: one ``cc_clmul_bcast`` replicates the
    message block through the key datapath against the slab's ``w``
    resident rows (128 in-array AND+XOR-tree block ops for GHASH), and
    the two per-row lane parities are XOR-accumulated on the host - the
    same partial-fold accumulation hardware CRC engines pipeline.  The
    per-block instructions are mutually independent (read-only message,
    disjoint dests), so without a fault injector they issue through the
    PR 7 stream scheduler and overlap; under a campaign ``pulse`` they
    run one at a time so faults can land between instructions.
    """
    from ..energy.accounting import Component

    slab_bytes = w * BLOCK_SIZE
    instrs = [
        cc_clmul_bcast(slab_base + b * slab_bytes, msg_base + b * BLOCK_SIZE,
                       dest_base + b * BLOCK_SIZE, slab_bytes, lane_bits=256)
        for b in range(msg_blocks)
    ]
    if pulse is None:
        runner.flush()
        stream = m.cc_stream(instrs)
        runner.cycles += stream.overlapped_cycles
        runner.instructions += len(instrs)
        # The stream path bypasses the core model's per-instruction
        # charge; keep energy parity with serial issue.
        for _ in instrs:
            m.ledger.add(Component.CORE, m.config.core.epi_cc)
        results = stream.results
    else:
        results = []
        for instr in instrs:
            pulse()
            results.append(runner.cc(instr))
    acc = 0
    for res in results:
        acc ^= int.from_bytes(res.result_bytes, "little")
        runner.emit(Instr.simd_op())       # xor partial parities into the mask
    bits = np.zeros(w, dtype=np.uint8)
    for j in range(w):
        bits[j] = ((acc >> (2 * j)) ^ (acc >> (2 * j + 1))) & 1
        runner.emit(Instr.scalar())        # fold the two lane parities
    return bits


# -- GHASH ----------------------------------------------------------------------------


def run_ghash_cc(workload: CryptoWorkload,
                 machine: ComputeCacheMachine | None = None,
                 pulse=None) -> AppResult:
    m = machine or fresh_machine()
    msg = workload.message
    blocks = len(msg) // 16
    msg_blocks = len(msg) // BLOCK_SIZE
    slabs = pack_fold_slabs(ghash_matrix_rows(workload.h, blocks))
    slab_bytes = 128 * BLOCK_SIZE

    slab_base = m.arena.alloc_page_aligned(msg_blocks * slab_bytes)
    msg_base = m.arena.alloc_page_aligned(len(msg))
    dest_base = m.arena.alloc_page_aligned(msg_blocks * BLOCK_SIZE)
    tag_base = m.arena.alloc_page_aligned(BLOCK_SIZE)
    for b, slab in enumerate(slabs):
        m.load(slab_base + b * slab_bytes, slab)
    m.load(msg_base, msg)
    # The key schedule is per-key state, amortized across messages: warmed
    # outside the measured stream.  The message itself starts cold - the
    # controller's operand fetches charge its movement into the L3 arrays.
    m.warm_l3(slab_base, msg_blocks * slab_bytes)

    runner = StreamRunner(m, "ghash-cc")
    snap = m.snapshot_energy()
    tag_bits = _fold_slabs(runner, m, slab_base, msg_base, dest_base,
                           128, msg_blocks, pulse)
    tag = _pack_lsb(tag_bits)
    runner.emit(Instr.store(tag_base, tag))
    runner.flush()
    ref = ghash(workload.h, msg)
    return runner.result(
        "crypto-ghash", "cc", m.energy_since(snap), output=tag,
        blocks=blocks, cc_instructions=msg_blocks, matches_reference=tag == ref,
    )


def run_ghash_baseline(workload: CryptoWorkload,
                       machine: ComputeCacheMachine | None = None) -> AppResult:
    """Software GHASH with 4-bit Shoup tables (no carry-less-multiply unit):
    per block, 32 serially dependent table lookups folded into the
    accumulator."""
    m = machine or fresh_machine()
    msg = workload.message
    blocks = len(msg) // 16
    hk = int.from_bytes(workload.h, "big")
    msg_base = m.arena.alloc_page_aligned(len(msg))
    table_base = m.arena.alloc_page_aligned(2 * 16 * 16)   # hi/lo nibble tables
    tag_base = m.arena.alloc_page_aligned(BLOCK_SIZE)
    m.load(msg_base, msg)
    table_img = b"".join(
        gf128_mul(v << shift, hk).to_bytes(16, "big")
        for shift in (0, 4) for v in range(16)
    )[:2 * 16 * 16]
    m.load(table_base, table_img)
    for off in range(0, 2 * 16 * 16, BLOCK_SIZE):          # per-key tables stay hot
        m.warm_l3(table_base + off, BLOCK_SIZE)

    runner = StreamRunner(m, "ghash-base")
    snap = m.snapshot_energy()
    y = 0
    for i in range(blocks):
        block = msg[i * 16:(i + 1) * 16]
        runner.emit(Instr.simd_load(msg_base + i * 16, 16))
        runner.emit(Instr.simd_op())                       # Y ^= C_i
        y ^= int.from_bytes(block, "big")
        acc = 0
        for p in range(16):
            byte = (y >> (8 * (15 - p))) & 0xFF
            for half, nib in ((0, byte & 0xF), (1, byte >> 4)):
                entry = table_base + (half * 16 + nib) * 16
                runner.emit(Instr.load(entry, 16, dependent=True))
                runner.emit(Instr.simd_op())               # xor into accumulator
                runner.emit(Instr.simd_op())               # shift/reduce step
        runner.emit(Instr.branch())
        y = gf128_mul(y, hk)
    tag = y.to_bytes(16, "big")
    runner.emit(Instr.store(tag_base, tag))
    runner.flush()
    return runner.result(
        "crypto-ghash", "scalar", m.energy_since(snap), output=tag,
        blocks=blocks, matches_reference=tag == ghash(workload.h, msg),
    )


# -- CRC ------------------------------------------------------------------------------


def run_crc_cc(workload: CryptoWorkload, width: int,
               machine: ComputeCacheMachine | None = None,
               pulse=None) -> AppResult:
    m = machine or fresh_machine()
    msg = workload.message
    rows, c0 = crc_matrix_rows(width, len(msg))
    slabs = pack_fold_slabs(rows)
    msg_blocks = len(msg) // BLOCK_SIZE
    slab_bytes = width * BLOCK_SIZE

    slab_base = m.arena.alloc_page_aligned(msg_blocks * slab_bytes)
    msg_base = m.arena.alloc_page_aligned(len(msg))
    dest_base = m.arena.alloc_page_aligned(msg_blocks * BLOCK_SIZE)
    out_base = m.arena.alloc_page_aligned(BLOCK_SIZE)
    for b, slab in enumerate(slabs):
        m.load(slab_base + b * slab_bytes, slab)
    m.load(msg_base, msg)
    m.warm_l3(slab_base, msg_blocks * slab_bytes)          # fold tables stay hot

    runner = StreamRunner(m, f"crc{width}-cc")
    snap = m.snapshot_energy()
    bits = _fold_slabs(runner, m, slab_base, msg_base, dest_base,
                       width, msg_blocks, pulse)
    crc = int.from_bytes(_pack_lsb(bits), "little") ^ c0
    runner.emit(Instr.scalar())                            # final xorout fold
    runner.emit(Instr.store(out_base, crc.to_bytes(width // 8, "little")))
    runner.flush()
    return runner.result(
        f"crypto-crc{width}", "cc", m.energy_since(snap), output=crc,
        message_bytes=len(msg), cc_instructions=msg_blocks,
        matches_reference=crc == crc_ref(msg, width),
    )


def run_crc_baseline(workload: CryptoWorkload, width: int,
                     machine: ComputeCacheMachine | None = None) -> AppResult:
    """Byte-at-a-time table CRC: the lookup address depends on the running
    state, so every load sits on the serial dependence chain."""
    m = machine or fresh_machine()
    msg = workload.message
    table = _CRC_TABLES[width]
    entry_bytes = width // 8
    msg_base = m.arena.alloc_page_aligned(len(msg))
    table_base = m.arena.alloc_page_aligned(256 * entry_bytes)
    out_base = m.arena.alloc_page_aligned(BLOCK_SIZE)
    m.load(msg_base, msg)
    m.load(table_base, b"".join(t.to_bytes(entry_bytes, "little") for t in table))
    for off in range(0, 256 * entry_bytes, BLOCK_SIZE):
        m.warm_l3(table_base + off, BLOCK_SIZE)

    runner = StreamRunner(m, f"crc{width}-base")
    snap = m.snapshot_energy()
    mask = (1 << width) - 1
    crc = mask
    for p, b in enumerate(msg):
        if p % 8 == 0:
            runner.emit(Instr.load(msg_base + p, 8, streaming=True))
        idx = (crc ^ b) & 0xFF
        runner.emit(Instr.load(table_base + idx * entry_bytes, entry_bytes,
                               dependent=True))
        runner.emit(Instr.scalar())                        # crc >> 8
        runner.emit(Instr.scalar())                        # xor table entry
        crc = (crc >> 8) ^ table[idx]
    crc ^= mask
    runner.emit(Instr.scalar())
    runner.emit(Instr.store(out_base, crc.to_bytes(entry_bytes, "little")))
    runner.flush()
    return runner.result(
        f"crypto-crc{width}", "scalar", m.energy_since(snap), output=crc,
        message_bytes=len(msg), matches_reference=crc == crc_ref(msg, width),
    )


# -- NTT-style negacyclic polynomial multiply -----------------------------------------


def _lanes16(values: np.ndarray, plane_bytes: int) -> bytes:
    raw = np.ascontiguousarray(values, dtype=np.uint16).astype("<u2").tobytes()
    return raw + bytes(plane_bytes - len(raw))


def run_ntt_cc(workload: CryptoWorkload, q: int,
               machine: ComputeCacheMachine | None = None,
               pulse=None) -> AppResult:
    m = machine or fresh_machine()
    a = np.asarray(workload.a, dtype=np.int64)
    b = np.asarray(workload.b, dtype=np.int64)
    n = len(a)
    pb = n * 2                                             # 16-bit lanes

    # Rotation planes: plane i holds b shifted by i with wrapped taps
    # negated (X^n = -1), all modulo 2^16 - exact because q | 2^16.
    planes = np.zeros((n, n), dtype=np.uint16)
    for i in range(n):
        rolled = np.roll(b, i)
        if i:
            rolled[:i] = (-rolled[:i]) % (1 << 16)
        planes[i] = (rolled % (1 << 16)).astype(np.uint16)

    addrs = m.arena.alloc_colocated(pb, n + 3)
    plane_addrs, abcast, prod, acc = addrs[:n], addrs[n], addrs[n + 1], addrs[n + 2]
    out_base = m.arena.alloc_page_aligned(pb)
    for i in range(n):
        m.load(plane_addrs[i], _lanes16(planes[i], pb))
    m.load(acc, bytes(pb))
    for i in range(n):                                     # rotation planes stay hot
        m.warm_l3(plane_addrs[i], pb)
    m.warm_l3(acc, pb)

    runner = StreamRunner(m, "ntt-cc")
    snap = m.snapshot_energy()
    for i in range(n):
        if pulse is not None:
            pulse()
        stage = _lanes16(np.full(n, int(a[i]) & 0xFFFF, dtype=np.uint16), pb)
        for off in range(0, pb, BLOCK_SIZE):
            runner.emit(Instr.store(abcast + off, stage[off:off + BLOCK_SIZE]))
        runner.emit(Instr.cc_op(cc_mul(abcast, plane_addrs[i], prod, pb,
                                       elem_bits=NTT_ELEM_BITS)))
        runner.emit(Instr.cc_op(cc_add(acc, prod, acc, pb,
                                       elem_bits=NTT_ELEM_BITS)))
    runner.flush()
    raw = np.frombuffer(m.peek(acc, pb), dtype="<u2").astype(np.int64)
    out = raw % q                                          # q | 2^16: exact
    for j in range(n):
        runner.emit(Instr.scalar())                        # mod-q mask per lane
    runner.emit(Instr.store(out_base, _lanes16(out.astype(np.uint16), pb)))
    runner.flush()
    ref = ntt_polymul(a, b, q)
    return runner.result(
        "crypto-ntt", "cc", m.energy_since(snap), output=out,
        n=n, q=q, cc_instructions=2 * n,
        matches_reference=bool(np.array_equal(out, ref)),
    )


def run_ntt_baseline(workload: CryptoWorkload, q: int,
                     machine: ComputeCacheMachine | None = None) -> AppResult:
    """Schoolbook negacyclic multiply: n^2 multiply-accumulates with sign
    fix-up on the wrapped taps."""
    m = machine or fresh_machine()
    a = np.asarray(workload.a, dtype=np.int64)
    b = np.asarray(workload.b, dtype=np.int64)
    n = len(a)
    a_base = m.arena.alloc_page_aligned(n * 2)
    b_base = m.arena.alloc_page_aligned(n * 2)
    out_base = m.arena.alloc_page_aligned(n * 2)
    m.load(a_base, _lanes16(a.astype(np.uint16), n * 2))
    m.load(b_base, _lanes16(b.astype(np.uint16), n * 2))

    runner = StreamRunner(m, "ntt-base")
    snap = m.snapshot_energy()
    out = np.zeros(n, dtype=np.int64)
    for j in range(n):
        for i in range(n):
            k = j - i
            runner.emit(Instr.load(a_base + i * 2, 2, streaming=True))
            runner.emit(Instr.load(b_base + (k % n) * 2, 2, streaming=True))
            runner.emit(Instr.scalar())                    # mul
            runner.emit(Instr.scalar())                    # add/sub accumulate
            if k < 0:
                out[j] -= a[i] * b[k % n]
            else:
                out[j] += a[i] * b[k % n]
        runner.emit(Instr.scalar())                        # mod q
        runner.emit(Instr.branch())
        out[j] %= q
        runner.emit(Instr.store(out_base + j * 2, _lanes16(out[j:j + 1], 2)))
    runner.flush()
    ref = ntt_polymul(a, b, q)
    return runner.result(
        "crypto-ntt", "scalar", m.energy_since(snap), output=out,
        n=n, q=q, matches_reference=bool(np.array_equal(out, ref)),
    )


# -- dispatcher -----------------------------------------------------------------------


def run_crypto(kernel: str, variant: str = "cc",
               machine: ComputeCacheMachine | None = None,
               cfg: CryptoConfig | None = None,
               pulse=None) -> AppResult:
    """Run one crypto kernel (``ghash``/``crc32``/``crc64``/``ntt``) in one
    variant (``cc`` or ``scalar``)."""
    cfg = cfg or CryptoConfig()
    if kernel not in CRYPTO_KERNELS:
        raise ValueError(f"unknown crypto kernel {kernel!r} "
                         f"(expected one of {CRYPTO_KERNELS})")
    if variant not in ("cc", "scalar"):
        raise ValueError(f"unknown crypto variant {variant!r}")
    w = make_crypto_workload(kernel, cfg)
    if kernel == "ghash":
        return (run_ghash_cc(w, machine, pulse) if variant == "cc"
                else run_ghash_baseline(w, machine))
    if kernel in ("crc32", "crc64"):
        width = int(kernel[3:])
        return (run_crc_cc(w, width, machine, pulse) if variant == "cc"
                else run_crc_baseline(w, width, machine))
    return (run_ntt_cc(w, cfg.ntt_q, machine, pulse) if variant == "cc"
            else run_ntt_baseline(w, cfg.ntt_q, machine))


def output_digest(result: AppResult) -> str:
    """Canonical sha256 of a kernel output (for cross-backend identity)."""
    out = result.output
    if isinstance(out, bytes):
        blob = out
    elif isinstance(out, int):
        blob = out.to_bytes(16, "little")
    elif isinstance(out, np.ndarray):
        blob = np.ascontiguousarray(out, dtype=np.int64).tobytes()
    else:  # pragma: no cover - defensive
        blob = repr(out).encode()
    return hashlib.sha256(blob).hexdigest()


# -- fault campaign: crypto kernels as their own integrity oracles --------------------


def crypto_plan(seed: int = 0):
    """The PR 4 machine-fault campaign (SRAM strikes, pin steals,
    fetch timeouts, directory faults) without the runner-chaos kinds,
    which target the sweep executor rather than the machine."""
    from ..faults.plan import default_plan

    plan = default_plan(seed)
    specs = [s for s in plan.specs if not s.kind.startswith("runner.")]
    return type(plan)(seed=plan.seed, specs=specs)


def run_crypto_campaign(kernel: str,
                        plan=None,
                        cfg: CryptoConfig | None = None,
                        backend: str | None = None,
                        pulse_every: int = 8) -> dict:
    """Golden-vs-faulty replay of one crypto kernel under fault injection.

    Runs the CC variant twice on the small test machine - once clean, once
    with a :class:`~repro.faults.injector.FaultInjector` pulsing between
    CC instructions - and classifies the outcome:

    * ``detected``: faults the machine corrected, retried, or recovered
      (ECC scrubs, pin-steal fallbacks, refetches);
    * ``silent``: the faulty run's output diverged from the golden run
      with no machine-level detection - the failure mode the paper's ECC
      story promises cannot happen;
    * ``oracle_flags``: whether the kernel's own integrity check (the
      reference tag/CRC/coefficient recomputation, standing in for the
      protocol verifier) would have caught a divergent output anyway.
    """
    from ..faults.injector import FaultInjector
    from ..params import small_test_machine

    cfg = cfg or CryptoConfig(ghash_blocks=8, crc_bytes=128, ntt_n=32)
    plan = plan or crypto_plan(0)
    config = small_test_machine()

    golden = run_crypto(
        kernel, "cc", ComputeCacheMachine(config, backend=backend), cfg
    )

    m = ComputeCacheMachine(config, backend=backend, trace_events=True)
    injector = FaultInjector(m, plan)
    injector.install()
    calls = 0

    def pulse() -> None:
        nonlocal calls
        if calls % pulse_every == 0:
            # Give the directory something to forward (cross-core sharer),
            # then strike + scrub.
            m.read(0, 256, core=1)
            injector.pulse()
        calls += 1

    faulty = run_crypto(kernel, "cc", m, cfg, pulse=pulse)
    injector.pulse()  # final scrub: no strike may outlive the campaign

    def recoveries(outcome: str) -> int:
        return sum(1 for e in m.tracer.by_kind("fault.recover")
                   if e.outcome == outcome)

    output_diverged = output_digest(faulty) != output_digest(golden)
    silent = int(output_diverged)
    detected = {o: recoveries(o) for o in
                ("corrected", "refetched", "retried", "degraded-risc",
                 "absorbed", "surfaced")}
    injected = dict(injector.injected)
    return {
        "kernel": kernel,
        "plan_seed": plan.seed,
        "injected": injected,
        "injected_total": sum(injected.values()),
        "detected": detected,
        "detected_total": sum(detected.values()),
        "silent": silent,
        "golden_digest": output_digest(golden),
        "faulty_digest": output_digest(faulty),
        "golden_matches_reference": bool(golden.stats["matches_reference"]),
        "faulty_matches_reference": bool(faulty.stats["matches_reference"]),
        "oracle": {"ghash": "authentication tag", "crc32": "checksum",
                   "crc64": "checksum", "ntt": "coefficient recomputation"}[kernel],
        "oracle_flags_divergence": bool(
            output_diverged and not faulty.stats["matches_reference"]
        ),
    }
