"""Bit-matrix multiplication over GF(2) (Sections V and VI-B).

``C = A x B`` where element ops are AND/XOR: ``C[i][j] = XOR_k (A[i][k] &
B[k][j])`` - the kernel behind error-correcting codes, cryptography,
bioinformatics, and FFTs, important enough that Cray had a BMM instruction
and x86 has CLMUL.

**Baseline** - the paper's optimized comparator: blocked multiplication
using x86 ``CLMUL``-style instructions.  ``B`` is pre-transposed, so
``C[i][j] = parity(A_row_i & BT_row_j)``; each inner product runs over
128-bit chunks (load + clmul + fold).

**Compute Cache version** - ``BT`` lives packed in the L1 Compute Cache,
two 256-bit rows per 64-byte block.  For each output row, the A-row block
(``[A_row_i | A_row_i]``) is broadcast into each data partition through the
key-table datapath, and one ``cc_clmul256`` instruction produces the entire
C row: each block operation emits two inner-product bits from its
XOR-reduction tree.  One CC instruction replaces ~1500 baseline
instructions, which is where the paper's 98% instruction reduction and
3.2x speedup come from; the matrix reuse (BT read 256 times) is the cache
locality that makes L1 the right home.

Matrices are dense numpy bit arrays; results are verified against a numpy
GF(2) reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.isa import cc_clmul_bcast
from ..cpu.program import Instr
from ..machine import ComputeCacheMachine
from ..params import BLOCK_SIZE
from .common import AppResult, StreamRunner, fresh_machine

ROW_BITS_DEFAULT = 256


@dataclass(frozen=True)
class BMMWorkload:
    """Two n x n bit matrices (n a multiple of 128, up to 512)."""

    n: int
    a: np.ndarray  # (n, n) uint8 of 0/1
    b: np.ndarray

    @property
    def row_bytes(self) -> int:
        return self.n // 8


def make_matrices(seed: int, n: int = ROW_BITS_DEFAULT) -> BMMWorkload:
    if n not in (64, 128, 256):
        raise ValueError(
            "matrix dimension must be 64, 128, or 256 (a cc_clmul lane width)"
        )
    rng = np.random.default_rng(seed)
    return BMMWorkload(
        n=n,
        a=rng.integers(0, 2, size=(n, n), dtype=np.uint8),
        b=rng.integers(0, 2, size=(n, n), dtype=np.uint8),
    )


def reference_bmm(workload: BMMWorkload) -> np.ndarray:
    """GF(2) matrix product via numpy."""
    return (workload.a.astype(np.uint32) @ workload.b.astype(np.uint32) & 1).astype(
        np.uint8
    )


def _pack_row(bits: np.ndarray) -> bytes:
    return np.packbits(bits).tobytes()


def run_bmm_baseline(workload: BMMWorkload,
                     machine: ComputeCacheMachine | None = None) -> AppResult:
    m = machine or fresh_machine()
    n = workload.n
    row_bytes = workload.row_bytes
    bt = workload.b.T.copy()
    a_base = m.arena.alloc_page_aligned(n * row_bytes)
    bt_base = m.arena.alloc_page_aligned(n * row_bytes)
    c_base = m.arena.alloc_page_aligned(n * row_bytes)
    for i in range(n):
        m.load(a_base + i * row_bytes, _pack_row(workload.a[i]))
        m.load(bt_base + i * row_bytes, _pack_row(bt[i]))

    runner = StreamRunner(m, "bmm-base")
    snap = m.snapshot_energy()
    c = np.zeros((n, n), dtype=np.uint8)
    chunks = row_bytes // 16  # 128-bit CLMUL chunks

    for i in range(n):
        # A row loads once per output row (register-resident across j).
        for off in range(0, row_bytes, 16):
            runner.emit(Instr.simd_load(a_base + i * row_bytes + off, 16))
        a_row = workload.a[i]
        for j in range(n):
            for off in range(0, row_bytes, 16):
                runner.emit(Instr.simd_load(bt_base + j * row_bytes + off, 16))
                runner.emit(Instr.simd_op())   # pclmulqdq-style AND+fold
            for _ in range(chunks - 1):
                runner.emit(Instr.scalar())    # xor-fold partial products
            runner.emit(Instr.scalar())        # parity extract
            runner.emit(Instr.branch())        # loop
            c[i, j] = np.bitwise_xor.reduce(a_row & bt[j])
        runner.emit(Instr.store(c_base + i * row_bytes, _pack_row(c[i])))
    return runner.result(
        "bmm", "baseline", m.energy_since(snap), output=c, n=n,
    )


def run_bmm_cc(workload: BMMWorkload,
               machine: ComputeCacheMachine | None = None) -> AppResult:
    m = machine or fresh_machine()
    n = workload.n
    row_bytes = workload.row_bytes
    lanes_per_block = BLOCK_SIZE // row_bytes          # BT rows per block
    blocks = n // lanes_per_block
    bt = workload.b.T.copy()

    bt_packed = m.arena.alloc_page_aligned(blocks * BLOCK_SIZE)
    stage = m.arena.alloc_page_aligned(BLOCK_SIZE)     # broadcast A-row block
    c_base = m.arena.alloc_page_aligned(n * max(row_bytes, 8))
    packed_bt = b"".join(
        b"".join(_pack_row(bt[b * lanes_per_block + lane])
                 for lane in range(lanes_per_block))
        for b in range(blocks)
    )
    m.load(bt_packed, packed_bt)

    runner = StreamRunner(m, "bmm-cc")
    snap = m.snapshot_energy()
    # Keep BT resident in L1 for the whole multiplication (matrix reuse).
    m.touch_range(bt_packed, blocks * BLOCK_SIZE)
    c = np.zeros((n, n), dtype=np.uint8)

    for i in range(n):
        a_block = _pack_row(workload.a[i]) * lanes_per_block
        runner.emit(Instr.store(stage, a_block))       # stage [Arow | Arow]
        res = runner.cc(
            cc_clmul_bcast(bt_packed, stage, c_base + i * row_bytes,
                           blocks * BLOCK_SIZE, lane_bits=workload.n)
        )
        bits = int.from_bytes(res.result_bytes, "little")
        for j in range(n):
            c[i, j] = (bits >> j) & 1
    return runner.result(
        "bmm", "cc", m.energy_since(snap), output=c, n=n,
        cc_instructions=n,
    )


def run_bmm(workload: BMMWorkload, variant: str = "cc",
            machine: ComputeCacheMachine | None = None) -> AppResult:
    """Run one BMM variant ("baseline" or "cc")."""
    if variant == "baseline":
        return run_bmm_baseline(workload, machine)
    if variant == "cc":
        return run_bmm_cc(workload, machine)
    raise ValueError(f"unknown BMM variant {variant!r}")
