"""In-memory copy-on-write checkpointing (Sections V and VI-B).

The OS checkpoints application state at a fixed instruction interval: the
first store to a page within an interval copies the page (4 KB) to a
shadow region before the write proceeds.  Three page-copy engines are
compared:

* ``Base``     - scalar 8-byte copy loop;
* ``Base_32``  - 32-byte SIMD copy loop (the paper's SIMD baseline);
* ``CC_L3``    - one ``cc_copy`` instruction per page.  Checkpoint copies
  are page-to-page, hence *always* page-aligned: operand locality is
  perfect by construction, the copy runs in the L3 Compute Cache, avoids
  polluting L1/L2, and the destination fetch is skipped because the page
  is fully overwritten.

The application itself is synthesized from a
:class:`~repro.apps.splash.SplashProfile`: each interval costs
``100k x CPI`` cycles and dirties the profile's page count; the page copies
then *execute for real* on the machine, and the measured overhead is
``(cycles_with_checkpointing - cycles_without) / cycles_without`` -
Figure 10's y-axis.  Figure 11's total energy adds the application's own
dynamic energy (instructions x EPI) and leakage over the run time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.isa import cc_copy
from ..cpu.program import Program
from ..cpu.simd import scalar_copy, simd_copy
from ..energy.accounting import Component, EnergyLedger
from ..machine import ComputeCacheMachine
from ..params import PAGE_SIZE
from .common import AppResult, fresh_machine
from .splash import CHECKPOINT_INTERVAL_INSTRS, SplashProfile

VARIANTS = ("none", "base", "base32", "cc")


@dataclass
class CheckpointRun:
    """Raw measurements of one (profile, variant) run."""

    profile: SplashProfile
    variant: str
    app_cycles: float
    copy_cycles: float
    app_instructions: int
    copy_instructions: int
    energy: EnergyLedger
    pages_copied: int

    @property
    def total_cycles(self) -> float:
        return self.app_cycles + self.copy_cycles

    @property
    def overhead(self) -> float:
        """Fractional slowdown vs the same run without checkpointing."""
        return self.copy_cycles / self.app_cycles


def _copy_page(m: ComputeCacheMachine, variant: str, src: int, dst: int) -> tuple[float, int]:
    """Copy one page with the chosen engine; returns (cycles, instructions)."""
    if variant == "base":
        res = m.run(scalar_copy(src, dst, PAGE_SIZE))
    elif variant == "base32":
        res = m.run(simd_copy(src, dst, PAGE_SIZE))
    elif variant == "cc":
        from ..cpu.program import Instr

        res = m.run(Program("cc-copy", [Instr.cc_op(cc_copy(src, dst, PAGE_SIZE))]))
    else:
        raise ValueError(f"unknown copy engine {variant!r}")
    return res.cycles, res.instructions


def run_checkpoint(prof: SplashProfile, variant: str,
                   machine: ComputeCacheMachine | None = None,
                   seed: int = 7) -> CheckpointRun:
    """Run ``prof.intervals`` checkpoint intervals with one engine.

    The synthetic application touches a working set of pages; per interval
    the profile's number of dirty pages is drawn (without replacement) and,
    for every variant except ``none``, copied to the shadow region before
    being dirtied by application stores.
    """
    if variant not in VARIANTS:
        raise ValueError(f"variant must be one of {VARIANTS}")
    m = machine or fresh_machine()
    rng = np.random.default_rng(seed)
    working_pages = max(prof.dirty_pages_per_interval * 2, 8)
    work_base = m.arena.alloc_page_aligned(working_pages * PAGE_SIZE)
    shadow_base = m.arena.alloc_page_aligned(working_pages * PAGE_SIZE)
    for p in range(working_pages):
        m.load(work_base + p * PAGE_SIZE,
               rng.integers(0, 256, PAGE_SIZE, dtype=np.uint8).tobytes())

    snap = m.snapshot_energy()
    app_cycles = 0.0
    copy_cycles = 0.0
    app_instructions = 0
    copy_instructions = 0
    pages_copied = 0

    for _ in range(prof.intervals):
        # The application interval itself (modeled: CPI x instructions; its
        # stores are what dirty the pages below).
        app_cycles += prof.interval_cycles
        app_instructions += CHECKPOINT_INTERVAL_INSTRS
        m.ledger.add(Component.CORE,
                     CHECKPOINT_INTERVAL_INSTRS * m.config.core.epi_scalar)

        dirty = rng.choice(working_pages, size=prof.dirty_pages_per_interval,
                           replace=False)
        for p in sorted(int(x) for x in dirty):
            src = work_base + p * PAGE_SIZE
            dst = shadow_base + p * PAGE_SIZE
            # The page was just written by the app: it is cache-resident.
            m.touch_range(src, PAGE_SIZE, for_write=True)
            if variant == "none":
                continue
            cycles, instrs = _copy_page(m, variant, src, dst)
            copy_cycles += cycles
            copy_instructions += instrs
            pages_copied += 1
            assert m.peek(dst, PAGE_SIZE) == m.peek(src, PAGE_SIZE)

    return CheckpointRun(
        profile=prof, variant=variant, app_cycles=app_cycles,
        copy_cycles=copy_cycles, app_instructions=app_instructions,
        copy_instructions=copy_instructions, energy=m.energy_since(snap),
        pages_copied=pages_copied,
    )


def checkpoint_app_result(run: CheckpointRun) -> AppResult:
    """Adapt a checkpoint run to the common application-result shape."""
    return AppResult(
        app=f"checkpoint-{run.profile.name}",
        variant=run.variant,
        cycles=run.total_cycles,
        instructions=run.app_instructions + run.copy_instructions,
        energy=run.energy,
        output=run.pages_copied,
        stats={"overhead": run.overhead},
    )


from .._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "run_checkpoint",
))
