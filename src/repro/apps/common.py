"""Shared application-layer plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cpu.program import Instr, Program
from ..energy.accounting import EnergyLedger
from ..machine import ComputeCacheMachine
from ..params import MachineConfig, sandybridge_8core


@dataclass
class AppResult:
    """Outcome of one application run (one variant)."""

    app: str
    variant: str
    cycles: float
    instructions: int
    energy: EnergyLedger
    output: object = None
    stats: dict = field(default_factory=dict)

    @property
    def energy_nj(self) -> float:
        return self.energy.total_nj()

    def to_dict(self) -> dict:
        """JSON-ready summary (used by the results exporter and benches)."""
        return {
            "app": self.app,
            "variant": self.variant,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "dynamic_nj": round(self.energy_nj, 3),
            "energy_breakdown_nj": {
                k: round(v / 1000.0, 3) for k, v in self.energy.breakdown().items()
            },
            "stats": {k: v for k, v in self.stats.items()
                      if isinstance(v, (int, float, str, bool))},
        }

    def describe(self) -> str:
        return (
            f"{self.app}/{self.variant}: {self.cycles:,.0f} cycles, "
            f"{self.instructions:,} instructions, {self.energy_nj:,.1f} nJ dynamic"
        )


def fresh_machine(config: MachineConfig | None = None) -> ComputeCacheMachine:
    """A new machine for one measured run (clean caches + ledger)."""
    return ComputeCacheMachine(config or sandybridge_8core())


class StreamRunner:
    """Executes instruction streams in bounded chunks.

    Applications generate millions of abstract instructions; buffering them
    all would be wasteful.  The runner flushes to the core model whenever
    the buffer reaches ``chunk`` instructions and accumulates totals.
    """

    def __init__(self, machine: ComputeCacheMachine, name: str,
                 core: int = 0, chunk: int = 4096) -> None:
        self.machine = machine
        self.name = name
        self.core = core
        self.chunk = chunk
        self._buffer: list[Instr] = []
        self.cycles = 0.0
        self.instructions = 0
        self.cc_results = []

    def emit(self, instr: Instr) -> None:
        self._buffer.append(instr)
        if len(self._buffer) >= self.chunk:
            self.flush()

    def emit_many(self, instrs: list[Instr]) -> None:
        for instr in instrs:
            self.emit(instr)

    def flush(self) -> None:
        if not self._buffer:
            return
        res = self.machine.run(Program(self.name, self._buffer), core=self.core)
        self.cycles += res.cycles
        self.instructions += res.instructions
        self.cc_results.extend(res.cc_results)
        self._buffer = []

    def cc(self, instr) -> "object":
        """Execute a CC instruction synchronously (flushes the buffer first)
        and return its :class:`~repro.core.controller.CCResult` - needed
        when control flow depends on the result mask."""
        self.flush()
        res = self.machine.run(
            Program(self.name, [Instr.cc_op(instr)]), core=self.core
        )
        self.cycles += res.cycles
        self.instructions += res.instructions
        self.cc_results.extend(res.cc_results)
        return res.cc_results[-1]

    def result(self, app: str, variant: str, energy: EnergyLedger,
               output: object = None, **stats) -> AppResult:
        self.flush()
        return AppResult(
            app=app, variant=variant, cycles=self.cycles,
            instructions=self.instructions, energy=energy, output=output,
            stats=dict(stats),
        )


def pad_to_slot(word: bytes, slot: int = 64) -> bytes:
    """Pad a word into a fixed 64-byte CAM slot (zero-padded)."""
    if len(word) >= slot:
        word = word[: slot - 1]
    return word + bytes(slot - len(word))


from .._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "AppResult", "fresh_machine",
))
