"""Packet classification (Section V's "network processing" domain).

Firewall/router rule matching is the classic TCAM workload the paper's
related work targets ([16], [32]): a packet header matches rule
``(mask, value)`` iff ``header & mask == value``.  Compute Caches express
this with two instructions per rule over a *batch* of headers:

1. ``cc_and`` the header batch against the rule's mask (replicated across
   a co-located buffer once per rule - amortized over every batch);
2. ``cc_search`` the masked batch for the rule's value key (one result
   bit per header).

The baseline classifies header-by-header with scalar mask/compare chains.
Headers are padded into 64-byte slots (real classifiers use 5-tuple keys
well under that).  First matching rule wins, as in real rule tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.isa import cc_and, cc_search
from ..cpu.program import Instr
from ..machine import ComputeCacheMachine
from ..params import BLOCK_SIZE
from .common import AppResult, StreamRunner, fresh_machine

SLOT = BLOCK_SIZE
BATCH = 64  # headers per cc batch (4 KB, the search limit)


@dataclass(frozen=True)
class Rule:
    """Match iff ``header & mask == value`` (value pre-masked)."""

    mask: bytes
    value: bytes
    action: str

    def matches(self, header: bytes) -> bool:
        return bytes(h & m for h, m in zip(header, self.mask)) == self.value


@dataclass(frozen=True)
class PacketWorkload:
    headers: tuple[bytes, ...]
    rules: tuple[Rule, ...]


def make_workload(seed: int, n_packets: int = 256, n_rules: int = 4) -> PacketWorkload:
    """Random 5-tuple-ish headers plus prefix rules that match a subset."""
    rng = np.random.default_rng(seed)
    headers = []
    for _ in range(n_packets):
        header = bytearray(rng.integers(0, 256, SLOT, dtype=np.uint8).tobytes())
        header[0] = int(rng.integers(0, 4))  # protocol field, small space
        headers.append(bytes(header))
    rules = []
    for r in range(n_rules):
        mask = bytearray(SLOT)
        mask[0] = 0xFF  # match on the protocol field
        value = bytearray(SLOT)
        value[0] = r % 4
        rules.append(Rule(mask=bytes(mask), value=bytes(value),
                          action=f"queue-{r}"))
    return PacketWorkload(headers=tuple(headers), rules=tuple(rules))


def reference_classify(workload: PacketWorkload) -> list[int]:
    """First matching rule index per packet (-1 = default action)."""
    out = []
    for header in workload.headers:
        verdict = -1
        for i, rule in enumerate(workload.rules):
            if rule.matches(header):
                verdict = i
                break
        out.append(verdict)
    return out


def run_filter_baseline(workload: PacketWorkload,
                        machine: ComputeCacheMachine | None = None) -> AppResult:
    m = machine or fresh_machine()
    headers_base = m.arena.alloc_page_aligned(len(workload.headers) * SLOT)
    m.load(headers_base, b"".join(workload.headers))
    runner = StreamRunner(m, "pktfilter-base")
    snap = m.snapshot_energy()
    verdicts = []
    for i, header in enumerate(workload.headers):
        runner.emit(Instr.load(headers_base + i * SLOT, SLOT, streaming=True))
        verdict = -1
        for r, rule in enumerate(workload.rules):
            # Mask + compare per 8-byte word of the significant prefix.
            for _ in range(SLOT // 8):
                runner.emit(Instr.scalar())  # and
                runner.emit(Instr.scalar())  # cmp
            runner.emit(Instr.branch())
            if verdict < 0 and rule.matches(header):
                verdict = r
                break  # first match wins: later rules not evaluated
        verdicts.append(verdict)
    return runner.result(
        "packet-filter", "baseline", m.energy_since(snap), output=verdicts,
        packets=len(workload.headers), rules=len(workload.rules),
    )


def run_filter_cc(workload: PacketWorkload,
                  machine: ComputeCacheMachine | None = None) -> AppResult:
    m = machine or fresh_machine()
    n = len(workload.headers)
    batch_bytes = BATCH * SLOT
    # Co-located: header batches, masked scratch, per-rule mask buffers.
    n_batches = (n + BATCH - 1) // BATCH
    buffers = m.arena.alloc_colocated(
        batch_bytes, n_batches + 1 + len(workload.rules)
    )
    batch_addrs = buffers[:n_batches]
    scratch = buffers[n_batches]
    mask_bufs = buffers[n_batches + 1:]
    keys_base = m.arena.alloc_page_aligned(len(workload.rules) * SLOT)

    padded = b"".join(workload.headers)
    padded += bytes(n_batches * batch_bytes - len(padded))
    for i, addr in enumerate(batch_addrs):
        m.load(addr, padded[i * batch_bytes : (i + 1) * batch_bytes])
    for r, rule in enumerate(workload.rules):
        m.load(mask_bufs[r], rule.mask * BATCH)   # mask replicated once
        m.load(keys_base + r * SLOT, rule.value)

    runner = StreamRunner(m, "pktfilter-cc", chunk=1 << 30)
    snap = m.snapshot_energy()
    verdicts = [-1] * n
    for b, batch_addr in enumerate(batch_addrs):
        remaining = set(range(b * BATCH, min((b + 1) * BATCH, n)))
        for r in range(len(workload.rules)):
            if not remaining:
                break
            runner.emit(Instr.cc_op(
                cc_and(batch_addr, mask_bufs[r], scratch, batch_bytes)
            ))
            res = runner.cc(
                cc_search(scratch, keys_base + r * SLOT, batch_bytes)
            )
            runner.emit(Instr.scalar())  # mask instruction
            mask = res.result
            for j in sorted(remaining):
                if (mask >> (j - b * BATCH)) & 1:
                    verdicts[j] = r
                    remaining.discard(j)
    # Zero-padded tail slots match the all-zero masked value of rule 0's
    # value only if that value is zero beyond the proto byte; padded slots
    # are not real packets, so drop any verdicts beyond n (none recorded).
    return runner.result(
        "packet-filter", "cc", m.energy_since(snap), output=verdicts,
        packets=n, rules=len(workload.rules),
    )


def run_packet_filter(workload: PacketWorkload, variant: str = "cc",
                      machine: ComputeCacheMachine | None = None) -> AppResult:
    """Run one packet-filter variant ("baseline" or "cc")."""
    if variant == "baseline":
        return run_filter_baseline(workload, machine)
    if variant == "cc":
        return run_filter_cc(workload, machine)
    raise ValueError(f"unknown packet-filter variant {variant!r}")
