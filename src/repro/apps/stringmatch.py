"""StringMatch (Section VI-B): encrypted-keyword scanning.

The application reads words from a text stream, encrypts each, and compares
it against a list of encrypted keys.  Encryption cannot be offloaded to the
cache, so it stays on the core in both variants (Amdahl's law is why the
paper's speedup is 1.5x rather than the microbenchmark's 54x).

**Baseline** - each encrypted word is compared against each key with
32-byte SIMD compares.

**Compute Cache version** - encrypted words are batched into a 512-byte
L1-resident buffer; each encrypted key is replicated across the L1
sub-arrays (the key-table datapath) and a single ``cc_search`` compares it
against the whole batch at once.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.isa import cc_search
from ..cpu.program import Instr
from ..machine import ComputeCacheMachine
from ..params import BLOCK_SIZE
from .common import AppResult, StreamRunner, fresh_machine, pad_to_slot
from .textgen import Corpus

SLOT = BLOCK_SIZE
BATCH_WORDS = 64  # 64 x 64 B = 4 KB: one cc_search per key covers a full batch
ENCRYPT_ROUNDS = 4


@dataclass(frozen=True)
class StringMatchWorkload:
    corpus: Corpus
    keys: tuple[str, ...]


def encrypt_slot(word: str, rounds: int = ENCRYPT_ROUNDS) -> bytes:
    """Toy Feistel-ish block transform over a padded 64-byte slot.

    Deterministic and collision-preserving (equal words encrypt equally),
    which is all the comparison semantics need.
    """
    state = bytearray(pad_to_slot(word.encode()))
    for r in range(rounds):
        for i in range(len(state)):
            state[i] = (state[i] * 167 + 13 + r + (state[i - 1] if i else r)) & 0xFF
    return bytes(state)


def _emit_encryption(runner: StreamRunner) -> None:
    """Core-side encryption cost: a few ALU ops per round per 8-byte lane."""
    for _ in range(ENCRYPT_ROUNDS * 2):
        runner.emit(Instr.scalar())


def reference_matches(workload: StringMatchWorkload) -> list[tuple[int, int]]:
    """Ground truth: (word index, key index) pairs that match."""
    return [
        (i, k)
        for i, word in enumerate(workload.corpus.words)
        for k, key in enumerate(workload.keys)
        if word == key
    ]


def _stage_text(m: ComputeCacheMachine, corpus: Corpus) -> int:
    """The input text lives in memory; both variants stream it in."""
    text_base = m.arena.alloc_page_aligned(len(corpus.words) * SLOT)
    blob = b"".join(pad_to_slot(w.encode()) for w in corpus.words)
    m.load(text_base, blob)
    return text_base


def run_stringmatch_baseline(workload: StringMatchWorkload,
                             machine: ComputeCacheMachine | None = None) -> AppResult:
    m = machine or fresh_machine()
    text_base = _stage_text(m, workload.corpus)
    runner = StreamRunner(m, "stringmatch-base")
    snap = m.snapshot_energy()
    encrypted_keys = [encrypt_slot(k) for k in workload.keys]
    matches: list[tuple[int, int]] = []

    for i, word in enumerate(workload.corpus.words):
        runner.emit(Instr.load(text_base + i * SLOT, SLOT, streaming=True))
        _emit_encryption(runner)
        enc = encrypt_slot(word)
        for k, enc_key in enumerate(encrypted_keys):
            # 64-byte compare = two 32-byte SIMD compares + merge/branch.
            runner.emit(Instr.simd_op())
            runner.emit(Instr.simd_op())
            runner.emit(Instr.scalar())
            runner.emit(Instr.branch())
            if enc == enc_key:
                matches.append((i, k))
    return runner.result(
        "stringmatch", "baseline", m.energy_since(snap), output=matches,
        words=len(workload.corpus.words), keys=len(workload.keys),
    )


def run_stringmatch_cc(workload: StringMatchWorkload,
                       machine: ComputeCacheMachine | None = None) -> AppResult:
    m = machine or fresh_machine()
    text_base = _stage_text(m, workload.corpus)
    # Two batch buffers: the core encrypts into one while the CC controller
    # searches the other (the RMO overlap of Section IV-G; the vector LSQ's
    # range checks would otherwise order same-buffer stores behind the
    # in-flight searches).
    batch_addrs = m.arena.alloc_colocated(BATCH_WORDS * SLOT, 2)
    keys_addr = m.arena.alloc_page_aligned(len(workload.keys) * SLOT)
    runner = StreamRunner(m, "stringmatch-cc", chunk=1 << 30)
    snap = m.snapshot_energy()

    encrypted_keys = [encrypt_slot(k) for k in workload.keys]
    for k, enc in enumerate(encrypted_keys):
        runner.emit(Instr.store(keys_addr + k * SLOT, enc))

    words = workload.corpus.words
    search_tags: list[tuple[int, int]] = []  # (batch_start, key) per cc op

    for batch_idx, batch_start in enumerate(range(0, len(words), BATCH_WORDS)):
        batch = words[batch_start : batch_start + BATCH_WORDS]
        batch_addr = batch_addrs[batch_idx % 2]
        for j, word in enumerate(batch):
            runner.emit(Instr.load(text_base + (batch_start + j) * SLOT, SLOT, streaming=True))
            _emit_encryption(runner)
            runner.emit(Instr.store(batch_addr + j * SLOT, encrypt_slot(word)))
        if len(batch) < BATCH_WORDS:
            for j in range(len(batch), BATCH_WORDS):
                runner.emit(Instr.store(batch_addr + j * SLOT, bytes(SLOT)))
        # The batch is hot in L1; one cc_search per key covers all 64 words.
        for k in range(len(workload.keys)):
            runner.emit(Instr.cc_op(
                cc_search(batch_addr, keys_addr + k * SLOT, BATCH_WORDS * SLOT)
            ))
            runner.emit(Instr.scalar())  # mask instruction
            search_tags.append((batch_start, k))
    runner.flush()

    matches: list[tuple[int, int]] = []
    for (batch_start, k), res in zip(search_tags, runner.cc_results):
        mask = res.result
        while mask:
            j = (mask & -mask).bit_length() - 1
            matches.append((batch_start + j, k))
            mask &= mask - 1
    matches.sort()
    return runner.result(
        "stringmatch", "cc", m.energy_since(snap), output=matches,
        words=len(words), keys=len(workload.keys),
    )


def run_stringmatch(workload: StringMatchWorkload, variant: str = "cc",
                    machine: ComputeCacheMachine | None = None) -> AppResult:
    """Run one StringMatch variant ("baseline" or "cc")."""
    if variant == "baseline":
        return run_stringmatch_baseline(workload, machine)
    if variant == "cc":
        return run_stringmatch_cc(workload, machine)
    raise ValueError(f"unknown StringMatch variant {variant!r}")


def make_workload(seed: int, n_words: int, n_keys: int = 4,
                  vocab_size: int = 500) -> StringMatchWorkload:
    """Corpus plus keys drawn from its vocabulary (so matches occur)."""
    from .textgen import zipf_corpus

    corpus = zipf_corpus(seed, n_words, vocab_size=vocab_size)
    step = max(1, vocab_size // (n_keys + 1))
    keys = tuple(corpus.vocabulary[(i + 1) * step] for i in range(n_keys))
    return StringMatchWorkload(corpus=corpus, keys=keys)
