"""Seeded synthetic text corpora (substitute for the paper's input files).

WordCount read a 10 MB text file and StringMatch a 50 MB one.  What drives
both applications is the *word-frequency distribution* - dictionary size,
hit rates, and bin occupancy all follow from it - and natural-language text
is famously Zipfian.  The generator draws words from a Zipf(s) distribution
over a synthetic vocabulary whose two-letter prefixes spread across the
alphabet (matching the paper's alphabet-indexed CAM dictionary).
"""

from __future__ import annotations

import string
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Corpus:
    """A generated word stream plus its vocabulary."""

    words: tuple[str, ...]
    vocabulary: tuple[str, ...]

    @property
    def text_bytes(self) -> int:
        return sum(len(w) + 1 for w in self.words)

    def unique_words(self) -> set[str]:
        return set(self.words)


def _make_vocabulary(rng: np.random.Generator, size: int) -> list[str]:
    letters = string.ascii_lowercase
    vocab: set[str] = set()
    while len(vocab) < size:
        prefix = letters[rng.integers(0, 26)] + letters[rng.integers(0, 26)]
        suffix_len = int(rng.integers(1, 10))
        suffix = "".join(letters[rng.integers(0, 26)] for _ in range(suffix_len))
        vocab.add(prefix + suffix)
    return sorted(vocab)


def zipf_corpus(seed: int, n_words: int, vocab_size: int = 2000,
                s: float = 1.1) -> Corpus:
    """Generate ``n_words`` of Zipf-distributed text.

    ``s`` is the Zipf exponent; 1.0-1.2 matches English prose.  The
    vocabulary is rank-ordered so low ranks dominate, exactly the locality
    the paper's dictionary exploits.
    """
    rng = np.random.default_rng(seed)
    vocab = _make_vocabulary(rng, vocab_size)
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    probs = ranks ** (-s)
    probs /= probs.sum()
    picks = rng.choice(vocab_size, size=n_words, p=probs)
    words = tuple(vocab[i] for i in picks)
    return Corpus(words=words, vocabulary=tuple(vocab))


def reference_wordcount(corpus: Corpus) -> dict[str, int]:
    """Ground truth for both WordCount implementations."""
    counts: dict[str, int] = {}
    for word in corpus.words:
        counts[word] = counts.get(word, 0) + 1
    return counts
