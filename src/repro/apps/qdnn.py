"""Quantized DNN inference on the bit-serial arithmetic tier (Neural Cache).

A small integer-only network — one 3x3 valid convolution, a requantize
step, and a fully-connected output layer — in the style of the Neural
Cache successor design (arXiv 1805.03718): 8-bit activations, low-bit
weights, all arithmetic exact in fixed-width unsigned lanes.

**Quantization contract** (what makes every step bit-exact):

* activations are ``uint8`` (0..255);
* conv weights are 4-bit (0..15), so a tap product fits 12 bits and the
  9-tap accumulator fits 16 bits — the whole convolution runs exactly in
  16-bit lanes;
* conv outputs requantize to ``uint8`` via ``min(acc >> 8, 255)`` on the
  core (the usual integer-requantize step of quantized inference);
* FC weights are full ``uint8``: an 8x8-bit product fits the 16-bit lanes
  exactly, and ``cc_reduce16`` zero-extends to a 64-bit accumulator, so
  the logits are exact integer dot products.

**Compute Cache version** — activations and weights live as little-endian
16-bit lanes in cache blocks:

* conv is tap-parallel: for each of the 9 taps the shifted activation
  plane is staged once (measured stores), then one ``cc_mul16`` against
  the tap's pre-staged broadcast-weight plane and one ``cc_add16`` into
  the accumulator plane cover *every* output pixel at once;
* FC is one ``cc_mul16`` (activations x weight row) plus one
  ``cc_reduce16`` per output neuron.

**Baseline** — the scalar CPU loop nest: per output pixel, 9 x (load,
multiply, accumulate) with the 3x3 kernel register-resident; per logit,
one multiply-accumulate per activation.

The CC logits are taken from the simulated ``cc_reduce`` results (not
recomputed), and both variants are verified against
:func:`reference_qdnn`'s pure-numpy pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.isa import cc_add, cc_mul, cc_reduce
from ..cpu.program import Instr
from ..machine import ComputeCacheMachine
from ..params import BLOCK_SIZE
from .common import AppResult, StreamRunner, fresh_machine

CONV_K = 3
"""Convolution kernel size (3x3, valid padding)."""
ELEM_BITS = 16
"""Lane width of every CC arithmetic instruction in the pipeline: wide
enough that 8-bit x 4-bit tap products and their 9-tap sums, and
8-bit x 8-bit FC products, are all exact."""
REQUANT_SHIFT = 8
"""Conv accumulator -> uint8 requantize shift (with saturation at 255)."""
CONV_W_MAX = 15
"""Conv weights are 4-bit so the 16-bit conv accumulator cannot wrap:
9 taps x (255 * 15) = 34 425 < 65 536."""


@dataclass(frozen=True)
class QDNNWorkload:
    """One quantized inference problem: input plane, conv kernel, FC layer."""

    h: int
    w: int
    n_out: int
    acts: np.ndarray       # (h, w) uint8 activations
    conv_w: np.ndarray     # (3, 3) uint8 in 0..CONV_W_MAX
    fc_w: np.ndarray       # (n_out, out_h * out_w) uint8

    @property
    def out_h(self) -> int:
        return self.h - (CONV_K - 1)

    @property
    def out_w(self) -> int:
        return self.w - (CONV_K - 1)

    @property
    def conv_elems(self) -> int:
        return self.out_h * self.out_w

    @property
    def plane_bytes(self) -> int:
        """Block-padded byte size of one 16-bit-lane feature plane."""
        raw = self.conv_elems * (ELEM_BITS // 8)
        return -(-raw // BLOCK_SIZE) * BLOCK_SIZE


def make_network(seed: int, h: int = 32, w: int = 32,
                 n_out: int = 10) -> QDNNWorkload:
    """Deterministic random network + input (seeded like every workload)."""
    if h < CONV_K or w < CONV_K:
        raise ValueError(f"input plane {h}x{w} smaller than the {CONV_K}x{CONV_K} kernel")
    rng = np.random.default_rng(seed)
    out_elems = (h - CONV_K + 1) * (w - CONV_K + 1)
    return QDNNWorkload(
        h=h, w=w, n_out=n_out,
        acts=rng.integers(0, 256, size=(h, w), dtype=np.uint8),
        conv_w=rng.integers(0, CONV_W_MAX + 1, size=(CONV_K, CONV_K),
                            dtype=np.uint8),
        fc_w=rng.integers(0, 256, size=(n_out, out_elems), dtype=np.uint8),
    )


def reference_qdnn(workload: QDNNWorkload) -> dict[str, np.ndarray]:
    """Pure-numpy integer pipeline: the bit-exact ground truth."""
    acts = workload.acts.astype(np.uint32)
    oh, ow = workload.out_h, workload.out_w
    acc = np.zeros((oh, ow), dtype=np.uint32)
    for dy in range(CONV_K):
        for dx in range(CONV_K):
            acc += acts[dy:dy + oh, dx:dx + ow] * int(workload.conv_w[dy, dx])
    conv_out = np.minimum(acc >> REQUANT_SHIFT, 255).astype(np.uint8)
    flat = conv_out.ravel().astype(np.uint64)
    logits = (workload.fc_w.astype(np.uint64) * flat).sum(axis=1,
                                                          dtype=np.uint64)
    return {"conv_out": conv_out, "logits": logits}


def _lanes16(values: np.ndarray, plane_bytes: int) -> bytes:
    """Zero-extend values into little-endian 16-bit lanes, block-padded."""
    raw = np.ascontiguousarray(values, dtype=np.uint16).astype("<u2").tobytes()
    return raw + bytes(plane_bytes - len(raw))


def _emit_staged_plane(runner: StreamRunner, src_base: int, dst_base: int,
                       data: bytes) -> None:
    """Model the core staging one derived plane: read the source bytes
    (SIMD loads) and store the zero-extended 16-bit lanes block by block."""
    for off in range(0, len(data), BLOCK_SIZE):
        runner.emit(Instr.simd_load(src_base + off // 2, 32))
        runner.emit(Instr.store(dst_base + off, data[off:off + BLOCK_SIZE]))


def run_qdnn_cc(workload: QDNNWorkload,
                machine: ComputeCacheMachine | None = None) -> AppResult:
    m = machine or fresh_machine()
    ref = reference_qdnn(workload)
    oh, ow = workload.out_h, workload.out_w
    pb = workload.plane_bytes

    # Static data staged at load time (workload layout, like BMM's packed
    # BT): the input plane, the 9 broadcast-weight planes, and the FC
    # weight rows, already in 16-bit-lane form.
    act_base = m.arena.alloc_page_aligned(workload.h * workload.w)
    wp_base = m.arena.alloc_page_aligned(CONV_K * CONV_K * pb)
    fcw_base = m.arena.alloc_page_aligned(workload.n_out * pb)
    shift_base = m.arena.alloc_page_aligned(pb)
    prod_base = m.arena.alloc_page_aligned(pb)
    acc_base = m.arena.alloc_page_aligned(pb)
    fca_base = m.arena.alloc_page_aligned(pb)

    m.load(act_base, workload.acts.tobytes())
    taps = [(dy, dx) for dy in range(CONV_K) for dx in range(CONV_K)]
    for k, (dy, dx) in enumerate(taps):
        wk = np.full(workload.conv_elems, workload.conv_w[dy, dx],
                     dtype=np.uint16)
        m.load(wp_base + k * pb, _lanes16(wk, pb))
    for j in range(workload.n_out):
        m.load(fcw_base + j * pb, _lanes16(workload.fc_w[j], pb))

    runner = StreamRunner(m, "qdnn-cc")
    snap = m.snapshot_energy()

    # Conv: tap-parallel multiply-accumulate over the whole output plane.
    acts = workload.acts
    for k, (dy, dx) in enumerate(taps):
        shifted = acts[dy:dy + oh, dx:dx + ow].ravel().astype(np.uint16)
        _emit_staged_plane(runner, act_base, shift_base,
                           _lanes16(shifted, pb))
        if k == 0:
            runner.emit(Instr.cc_op(cc_mul(shift_base, wp_base, acc_base,
                                           pb, elem_bits=ELEM_BITS)))
        else:
            runner.emit(Instr.cc_op(cc_mul(shift_base, wp_base + k * pb,
                                           prod_base, pb,
                                           elem_bits=ELEM_BITS)))
            runner.emit(Instr.cc_op(cc_add(acc_base, prod_base, acc_base,
                                           pb, elem_bits=ELEM_BITS)))

    # Requantize on the core (shift + saturate) and stage the FC input.
    conv_out = ref["conv_out"].ravel()
    _emit_staged_plane(runner, acc_base, fca_base,
                       _lanes16(conv_out.astype(np.uint16), pb))

    # FC: one exact integer dot product per logit.
    logits = np.zeros(workload.n_out, dtype=np.uint64)
    for j in range(workload.n_out):
        runner.emit(Instr.cc_op(cc_mul(fca_base, fcw_base + j * pb,
                                       prod_base, pb, elem_bits=ELEM_BITS)))
        res = runner.cc(cc_reduce(prod_base, pb, elem_bits=ELEM_BITS))
        logits[j] = res.result

    n_cc = CONV_K * CONV_K * 2 - 1 + 2 * workload.n_out
    return runner.result(
        "qdnn", "cc", m.energy_since(snap), output=logits,
        h=workload.h, w=workload.w, n_out=workload.n_out,
        cc_instructions=n_cc,
        transpose_blocks=m.controllers[0].stats.transpose_blocks,
    )


def run_qdnn_baseline(workload: QDNNWorkload,
                      machine: ComputeCacheMachine | None = None) -> AppResult:
    m = machine or fresh_machine()
    ref = reference_qdnn(workload)
    oh, ow = workload.out_h, workload.out_w

    act_base = m.arena.alloc_page_aligned(workload.h * workload.w)
    conv_base = m.arena.alloc_page_aligned(workload.conv_elems)
    fcw_base = m.arena.alloc_page_aligned(workload.n_out * workload.conv_elems)
    m.load(act_base, workload.acts.tobytes())
    for j in range(workload.n_out):
        m.load(fcw_base + j * workload.conv_elems,
               workload.fc_w[j].tobytes())

    runner = StreamRunner(m, "qdnn-base")
    snap = m.snapshot_energy()
    conv_out = ref["conv_out"]

    # Conv loop nest: 3x3 kernel register-resident; per pixel 9 MACs, a
    # requantize (shift + saturate), a byte store, and the loop branch.
    for y in range(oh):
        for x in range(ow):
            for dy in range(CONV_K):
                for dx in range(CONV_K):
                    runner.emit(Instr.load(act_base + (y + dy) * workload.w
                                           + (x + dx), 1))
                    runner.emit(Instr.scalar())   # multiply
                    runner.emit(Instr.scalar())   # accumulate
            runner.emit(Instr.scalar())           # shift + saturate
            runner.emit(Instr.store(conv_base + y * ow + x,
                                    bytes([int(conv_out[y, x])])))
            runner.emit(Instr.branch())

    # FC: per logit one multiply-accumulate per activation.
    logits = np.zeros(workload.n_out, dtype=np.uint64)
    flat = conv_out.ravel().astype(np.uint64)
    for j in range(workload.n_out):
        wrow = workload.fc_w[j].astype(np.uint64)
        for i in range(workload.conv_elems):
            runner.emit(Instr.load(conv_base + i, 1))
            runner.emit(Instr.load(fcw_base + j * workload.conv_elems + i, 1))
            runner.emit(Instr.scalar())           # multiply
            runner.emit(Instr.scalar())           # accumulate
        runner.emit(Instr.branch())
        logits[j] = (wrow * flat).sum(dtype=np.uint64)

    return runner.result(
        "qdnn", "baseline", m.energy_since(snap), output=logits,
        h=workload.h, w=workload.w, n_out=workload.n_out,
    )


def run_qdnn(workload: QDNNWorkload, variant: str = "cc",
             machine: ComputeCacheMachine | None = None) -> AppResult:
    """Run one QDNN variant ("baseline" or "cc")."""
    if variant == "baseline":
        return run_qdnn_baseline(workload, machine)
    if variant == "cc":
        return run_qdnn_cc(workload, machine)
    raise ValueError(f"unknown QDNN variant {variant!r}")
