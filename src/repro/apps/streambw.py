"""STREAM-style bandwidth workloads over the multi-cluster topology.

The classic STREAM suite (McCalpin) - ``copy``, ``scale``, ``add``,
``triad`` - plus ``gather``/``scatter`` irregular-access variants, run as
*real* programs on every core of a machine at once:

* **scalar** - Base_32 SIMD instruction streams through
  :class:`~repro.cpu.multicore.MulticoreRunner`, one private array set per
  core, so the cores contend for the shared sliced L3 and (on a
  multi-cluster :class:`~repro.params.TopologyConfig`) pay inter-cluster
  hops for remotely-homed pages;
* **cc** - the same kernels lowered to Compute Cache instructions
  (``cc_copy`` for copy, bit-serial ``cc_mul``/``cc_add`` in 32-bit lanes
  for scale/add/triad), which execute inside the L3 slices and replace
  per-block data movement with one control round-trip per operand page.

Every run is verified element-exact against a numpy reference, and the
four STREAM kernels obey an analytic traffic model: with arrays warmed
into L3 and streamed once, the bytes filled into L1-D equal exactly
``{copy,scale: 2, add,triad: 3} x N`` per core
(:func:`stream_traffic_bytes`, pinned by ``tests/test_streambw.py``).

``placement`` chooses the NUMA experiment: ``"local"`` homes each core's
arrays on its own ring stop; ``"hub"`` homes *all* pages on cluster 0's
slices, so scaling the cluster count drives the scalar variant into the
bandwidth wall while CC-in-L3 latency stays flat - the crossover the
``repro streambw`` sweep measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.isa import cc_add, cc_copy, cc_mul
from ..cpu.multicore import MulticoreResult, MulticoreRunner
from ..cpu.program import Instr, Program
from ..errors import AddressError, DataCorruptionError
from ..machine import ComputeCacheMachine
from ..params import BLOCK_SIZE, PAGE_SIZE
from .common import AppResult

STREAM_KERNELS = ("copy", "scale", "add", "triad")
"""The four classic STREAM kernels (CC-lowerable, analytic traffic model)."""

KERNELS = STREAM_KERNELS + ("gather", "scatter")
"""All bandwidth kernels; gather/scatter are scalar-only (irregular
accesses have no page-granular CC lowering)."""

SCALE_K = 2654435761
"""The ``scale``/``triad`` multiplier (Knuth's odd constant; arithmetic is
mod 2^32 in both the numpy reference and the bit-serial CC lanes)."""

ELEM_BITS = 32
"""STREAM elements are 32-bit unsigned lanes."""

GRANULE = 32
"""Bytes per scalar-variant SIMD load/store (Base_32)."""

_ELEM = 4  # bytes per uint32 element

#: Read+write streams per kernel, in units of one array length N
#: (McCalpin's counting: write-allocate traffic for the stored array is
#: folded into its single stream because the arrays start L3-resident).
STREAM_FACTORS = {"copy": 2, "scale": 2, "add": 3, "triad": 3,
                  "gather": 3, "scatter": 3}


@dataclass(frozen=True)
class StreamBuffers:
    """One core's array set (page-aligned, mutually page-offset-colocated)."""

    a: int
    b: int
    c: int
    k: int      # SCALE_K broadcast plane (CC scale/triad operand)
    t: int      # temporary plane (CC triad intermediate)
    idx: int    # permutation indices (gather/scatter)
    nbytes: int


def stream_traffic_bytes(kernel: str, words: int) -> int:
    """Analytic bytes moved per core for one kernel pass.

    For the four STREAM kernels this is exact at block granularity:
    every source array is read once and every destination array is
    write-allocated once, all from L3 (``tests/test_streambw.py`` asserts
    the traced L1-D fill bytes equal this number).  For gather/scatter it
    counts the index stream plus one read and one write stream; actual
    block traffic depends on the permutation's locality.
    """
    if kernel not in KERNELS:
        raise ValueError(f"unknown stream kernel {kernel!r}")
    return STREAM_FACTORS[kernel] * words * _ELEM


def scalar_instructions_per_granule(kernel: str) -> int:
    """Instruction count per 32-byte granule of the scalar variant (the
    issue-bound term of the scalar roofline)."""
    return {"copy": 4, "scale": 5, "add": 6, "triad": 7,
            "gather": 5 * (GRANULE // _ELEM),
            "scatter": 5 * (GRANULE // _ELEM)}[kernel]


def _references(kernel: str, a, b, c, idx):
    """Numpy-exact expected contents of (dest_name, dest_array)."""
    k = np.uint32(SCALE_K)
    if kernel == "copy":
        return "c", a.copy()
    if kernel == "scale":
        return "b", (c * k).astype(np.uint32)
    if kernel == "add":
        return "c", (a + b).astype(np.uint32)
    if kernel == "triad":
        return "a", (b + c * k).astype(np.uint32)
    if kernel == "gather":
        return "b", a[idx].copy()
    if kernel == "scatter":
        out = np.zeros_like(a)
        out[idx] = a
        return "b", out
    raise ValueError(f"unknown stream kernel {kernel!r}")


# -- program generation ----------------------------------------------------------------


def _overhead(prog: Program) -> None:
    prog.append(Instr.scalar())
    prog.append(Instr.branch())


def scalar_program(kernel: str, bufs: StreamBuffers, ref: np.ndarray,
                   idx: np.ndarray, core: int) -> Program:
    """The Base_32 instruction stream of one kernel pass on one core.

    Stores carry literal numpy-exact result bytes (the core's SIMD ALU
    model only tracks timing for arithmetic), so memory ends bit-identical
    to the reference while every load/store moves real blocks.
    """
    prog = Program(f"streambw-{kernel}-scalar@{core}")
    n = bufs.nbytes
    ref_bytes = ref.tobytes()
    if kernel == "copy":
        for off in range(0, n, GRANULE):
            prog.append(Instr.simd_load(bufs.a + off, GRANULE))
            prog.append(Instr.simd_store_copy(bufs.c + off, bufs.a + off, GRANULE))
            _overhead(prog)
    elif kernel == "scale":
        for off in range(0, n, GRANULE):
            prog.append(Instr.simd_load(bufs.c + off, GRANULE))
            prog.append(Instr.simd_op())  # vpmulld
            prog.append(Instr.simd_store(bufs.b + off, ref_bytes[off:off + GRANULE]))
            _overhead(prog)
    elif kernel == "add":
        for off in range(0, n, GRANULE):
            prog.append(Instr.simd_load(bufs.a + off, GRANULE))
            prog.append(Instr.simd_load(bufs.b + off, GRANULE))
            prog.append(Instr.simd_op())  # vpaddd
            prog.append(Instr.simd_store(bufs.c + off, ref_bytes[off:off + GRANULE]))
            _overhead(prog)
    elif kernel == "triad":
        for off in range(0, n, GRANULE):
            prog.append(Instr.simd_load(bufs.b + off, GRANULE))
            prog.append(Instr.simd_load(bufs.c + off, GRANULE))
            prog.append(Instr.simd_op())  # vpmulld
            prog.append(Instr.simd_op())  # vpaddd
            prog.append(Instr.simd_store(bufs.a + off, ref_bytes[off:off + GRANULE]))
            _overhead(prog)
    elif kernel == "gather":
        for i in range(len(idx)):
            prog.append(Instr.load(bufs.idx + _ELEM * i, _ELEM, streaming=True))
            prog.append(Instr.load(bufs.a + _ELEM * int(idx[i]), _ELEM,
                                   dependent=True))
            prog.append(Instr.store(bufs.b + _ELEM * i,
                                    ref_bytes[_ELEM * i:_ELEM * (i + 1)]))
            _overhead(prog)
    elif kernel == "scatter":
        for i in range(len(idx)):
            prog.append(Instr.load(bufs.idx + _ELEM * i, _ELEM, streaming=True))
            prog.append(Instr.load(bufs.a + _ELEM * i, _ELEM, streaming=True))
            dest = _ELEM * int(idx[i])
            prog.append(Instr.store(bufs.b + dest,
                                    ref_bytes[dest:dest + _ELEM]))
            _overhead(prog)
    else:
        raise ValueError(f"unknown stream kernel {kernel!r}")
    return prog


def cc_program(kernel: str, bufs: StreamBuffers, core: int) -> Program:
    """One kernel pass lowered to page-granular CC instructions."""
    if kernel not in STREAM_KERNELS:
        raise ValueError(f"kernel {kernel!r} has no CC lowering")
    prog = Program(f"streambw-{kernel}-cc@{core}")
    for off in range(0, bufs.nbytes, PAGE_SIZE):
        size = min(PAGE_SIZE, bufs.nbytes - off)
        if kernel == "copy":
            prog.append(Instr.cc_op(cc_copy(bufs.a + off, bufs.c + off, size)))
        elif kernel == "scale":
            prog.append(Instr.cc_op(
                cc_mul(bufs.c + off, bufs.k + off, bufs.b + off, size, ELEM_BITS)))
        elif kernel == "add":
            prog.append(Instr.cc_op(
                cc_add(bufs.a + off, bufs.b + off, bufs.c + off, size, ELEM_BITS)))
        else:  # triad: t = k * c, then a = b + t
            prog.append(Instr.cc_op(
                cc_mul(bufs.c + off, bufs.k + off, bufs.t + off, size, ELEM_BITS)))
            prog.append(Instr.cc_op(
                cc_add(bufs.b + off, bufs.t + off, bufs.a + off, size, ELEM_BITS)))
    return prog


# -- machine staging -------------------------------------------------------------------


def _hub_slices(machine: ComputeCacheMachine) -> list[int]:
    """Cluster 0's L3 slices (the hub of the ``"hub"`` placement).

    Falls back to all slices on a plain flat ring (the sweep's 1-cluster
    equivalence check runs the workload on an unclustered interconnect).
    """
    spc = getattr(machine.hierarchy.ring, "stops_per_cluster",
                  machine.config.ring.stops)
    return list(range(spc))


def stage_workload(machine: ComputeCacheMachine, kernel: str, words: int,
                   seed: int, placement: str) -> tuple[list[StreamBuffers],
                                                       list[dict[str, np.ndarray]]]:
    """Allocate, place, backdoor-load, and L3-warm every core's arrays.

    Returns per-core buffers and per-core input arrays.  Pages are homed
    *before* any traffic so the placement policy (not first touch)
    decides NUMA homes: ``"local"`` puts a core's pages on its own ring
    stop, ``"hub"`` round-robins every page over cluster 0's slices.
    """
    if words <= 0 or (words * _ELEM) % BLOCK_SIZE:
        raise AddressError(
            f"words={words} must make arrays a positive multiple of "
            f"{BLOCK_SIZE} bytes"
        )
    if placement not in ("local", "hub"):
        raise ValueError(f"unknown placement {placement!r}")
    config = machine.config
    nbytes = words * _ELEM
    hub = _hub_slices(machine)
    all_bufs: list[StreamBuffers] = []
    all_arrays: list[dict[str, np.ndarray]] = []
    for core in range(config.cores):
        addrs = machine.arena.alloc_colocated(nbytes, 6)
        bufs = StreamBuffers(*addrs, nbytes=nbytes)
        rng = np.random.default_rng([seed, core])
        arrays = {
            "a": rng.integers(0, 1 << 32, words, dtype=np.uint32),
            "b": rng.integers(0, 1 << 32, words, dtype=np.uint32),
            "c": rng.integers(0, 1 << 32, words, dtype=np.uint32),
            "k": np.full(words, SCALE_K, dtype=np.uint32),
            "idx": rng.permutation(words).astype(np.uint32),
        }
        # Home every page first (placement beats first touch), then load.
        for i, addr in enumerate(addrs):
            for page_no, page in enumerate(range(addr, addr + nbytes, PAGE_SIZE)):
                if placement == "hub":
                    machine.place_page(page, hub[(core + i + page_no) % len(hub)])
                else:
                    machine.place_page(page, core % config.ring.stops)
        for name, addr in (("a", bufs.a), ("b", bufs.b), ("c", bufs.c),
                           ("k", bufs.k), ("idx", bufs.idx)):
            machine.load(addr, arrays[name].tobytes())
        for addr in _warm_set(kernel, bufs):
            machine.warm_l3(addr, nbytes, core=core)
        all_bufs.append(bufs)
        all_arrays.append(arrays)
    return all_bufs, all_arrays


def _warm_set(kernel: str, bufs: StreamBuffers) -> tuple[int, ...]:
    """Arrays a kernel touches (sources and write-allocated destinations);
    the CC triad temporary is excluded - it is fully overwritten and CC
    destination fills skip the fetch."""
    return {
        "copy": (bufs.a, bufs.c),
        "scale": (bufs.c, bufs.b, bufs.k),
        "add": (bufs.a, bufs.b, bufs.c),
        "triad": (bufs.b, bufs.c, bufs.a, bufs.k),
        "gather": (bufs.idx, bufs.a, bufs.b),
        "scatter": (bufs.idx, bufs.a, bufs.b),
    }[kernel]


def measured_fill_bytes(machine: ComputeCacheMachine, level: str = "L1-D") -> int:
    """Bytes filled into ``level`` since the tracer was last cleared."""
    if machine.tracer is None:
        raise ValueError("machine has no event tracer")
    return BLOCK_SIZE * sum(
        1 for e in machine.tracer.events
        if e.kind == "cache.fill" and e.level == level
    )


# -- the measured run ------------------------------------------------------------------


def run_streambw(kernel: str, machine: ComputeCacheMachine, *,
                 variant: str = "scalar", words: int = 4096,
                 placement: str = "local", seed: int = 107,
                 chunk: int = 64) -> AppResult:
    """One verified bandwidth measurement on every core of ``machine``.

    Stages per-core array sets (:func:`stage_workload`), runs the kernel
    on all cores through :class:`MulticoreRunner`, verifies every core's
    destination array against the numpy reference, and reports aggregate
    bandwidth as analytic-bytes / makespan.  The machine must be fresh
    (clean arena and caches).
    """
    if kernel not in KERNELS:
        raise ValueError(f"unknown stream kernel {kernel!r}")
    if variant not in ("scalar", "cc"):
        raise ValueError(f"unknown variant {variant!r}")
    if variant == "cc" and kernel not in STREAM_KERNELS:
        raise ValueError(f"kernel {kernel!r} has no CC lowering")
    config = machine.config
    all_bufs, all_arrays = stage_workload(machine, kernel, words, seed, placement)

    refs = []
    programs: dict[int, Program] = {}
    for core in range(config.cores):
        arrays, bufs = all_arrays[core], all_bufs[core]
        dest_name, ref = _references(kernel, arrays["a"], arrays["b"],
                                     arrays["c"], arrays["idx"])
        refs.append((dest_name, ref))
        if variant == "scalar":
            programs[core] = scalar_program(kernel, bufs, ref,
                                            arrays["idx"], core)
        else:
            programs[core] = cc_program(kernel, bufs, core)

    if machine.tracer is not None:
        machine.tracer.clear()  # staging traffic is not part of the measurement
    before = machine.snapshot_energy()
    result: MulticoreResult = MulticoreRunner(machine, chunk=chunk).run(programs)
    energy = machine.energy_since(before)

    for core in range(config.cores):
        dest_name, ref = refs[core]
        dest = getattr(all_bufs[core], dest_name)
        got = machine.peek(dest, all_bufs[core].nbytes)
        if got != ref.tobytes():
            raise DataCorruptionError(
                f"streambw {kernel}/{variant} mismatch on core {core}"
            )

    per_core_bytes = stream_traffic_bytes(kernel, words)
    total_bytes = per_core_bytes * config.cores
    makespan = result.makespan
    topology = config.topology
    stats = {
        "kernel": kernel,
        "variant": variant,
        "words": words,
        "placement": placement,
        "clusters": topology.clusters,
        "cores": config.cores,
        "makespan": makespan,
        "bytes": total_bytes,
        "bytes_per_cycle": total_bytes / makespan if makespan else 0.0,
        "aggregate_ipc": result.aggregate_ipc,
        "verified": True,
    }
    for cluster, span in result.cluster_makespans(
            topology.clusters, config.cores // topology.clusters).items():
        stats[f"cluster{cluster}_makespan"] = span
    if machine.tracer is not None:
        stats["l1_fill_bytes"] = measured_fill_bytes(machine)
        topo_stats = getattr(machine.hierarchy.ring, "topo_stats", None)
        stats["topo_hops"] = (topo_stats.inter_flit_hops
                              if topo_stats is not None else 0)
    return AppResult(
        app="streambw", variant=f"{kernel}-{variant}", cycles=makespan,
        instructions=result.total_instructions, energy=energy,
        output=None, stats=stats,
    )
