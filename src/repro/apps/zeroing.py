"""Bulk zeroing (Section V): ``cc_buz`` as a memory-safety primitive.

"Our copy primitive can also be employed in bulk zeroing which is an
important primitive required for memory safety [20]."  Managed runtimes
(the paper cites Yang et al., *Why Nothing Matters: The Impact of
Zeroing*) zero every allocated object; kernels zero pages handed to user
space.  This application models an allocator that must zero freshly-served
regions:

* **Baseline** - ``memset``-style loops (scalar 8-byte or SIMD 32-byte
  stores of zero);
* **Compute Cache** - one ``cc_buz`` per region: the data latch is reset
  and driven onto the bit-lines, zeroing a block per sub-array cycle with
  no core stores, no write-allocate fetches (the destination is fully
  overwritten), and no cache pollution.

Zeroed regions are verified to actually read as zero through the coherent
hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.isa import cc_buz
from ..cpu.program import Instr, Program
from ..machine import ComputeCacheMachine
from ..params import BLOCK_SIZE, PAGE_SIZE
from .common import AppResult, StreamRunner, fresh_machine


@dataclass(frozen=True)
class ZeroingWorkload:
    """An allocation trace: sizes of regions the allocator must zero."""

    region_sizes: tuple[int, ...]

    @property
    def total_bytes(self) -> int:
        return sum(self.region_sizes)


def make_allocation_trace(seed: int, n_regions: int = 32,
                          min_blocks: int = 1, max_blocks: int = 64) -> ZeroingWorkload:
    """Object/page-sized allocations, log-uniform like real heaps."""
    rng = np.random.default_rng(seed)
    log_lo, log_hi = np.log(min_blocks), np.log(max_blocks + 1)
    sizes = tuple(
        int(np.exp(rng.uniform(log_lo, log_hi))) * BLOCK_SIZE
        for _ in range(n_regions)
    )
    return ZeroingWorkload(region_sizes=sizes)


def _stage_regions(m: ComputeCacheMachine, workload: ZeroingWorkload,
                   rng: np.random.Generator) -> list[int]:
    """Dirty regions (freed memory still holds old data)."""
    addrs = []
    for size in workload.region_sizes:
        addr = m.arena.alloc(size, align=BLOCK_SIZE)
        m.load(addr, rng.integers(1, 256, size, dtype=np.uint8).tobytes())
        addrs.append(addr)
    return addrs


def run_zeroing_baseline(workload: ZeroingWorkload, simd: bool = True,
                         machine: ComputeCacheMachine | None = None,
                         seed: int = 17) -> AppResult:
    m = machine or fresh_machine()
    rng = np.random.default_rng(seed)
    addrs = _stage_regions(m, workload, rng)
    runner = StreamRunner(m, "zeroing-base")
    snap = m.snapshot_energy()
    step = 32 if simd else 8
    for addr, size in zip(addrs, workload.region_sizes):
        for off in range(0, size, step):
            if simd:
                runner.emit(Instr.simd_store(addr + off, bytes(step)))
            else:
                runner.emit(Instr.store(addr + off, bytes(step)))
            runner.emit(Instr.scalar())
            runner.emit(Instr.branch())
    runner.flush()
    for addr, size in zip(addrs, workload.region_sizes):
        assert m.peek(addr, size) == bytes(size)
    return runner.result(
        "zeroing", "base32" if simd else "base", m.energy_since(snap),
        output=len(addrs), bytes_zeroed=workload.total_bytes,
    )


def run_zeroing_cc(workload: ZeroingWorkload,
                   machine: ComputeCacheMachine | None = None,
                   seed: int = 17) -> AppResult:
    m = machine or fresh_machine()
    rng = np.random.default_rng(seed)
    addrs = _stage_regions(m, workload, rng)
    runner = StreamRunner(m, "zeroing-cc", chunk=1 << 30)
    snap = m.snapshot_energy()
    for addr, size in zip(addrs, workload.region_sizes):
        # cc_buz takes regions up to 16 KB; larger ones chunk.
        for off in range(0, size, 16 * 1024):
            piece = min(16 * 1024, size - off)
            runner.emit(Instr.cc_op(cc_buz(addr + off, piece)))
    runner.flush()
    for addr, size in zip(addrs, workload.region_sizes):
        assert m.peek(addr, size) == bytes(size)
    return runner.result(
        "zeroing", "cc", m.energy_since(snap),
        output=len(addrs), bytes_zeroed=workload.total_bytes,
    )


def run_zeroing(workload: ZeroingWorkload, variant: str = "cc",
                machine: ComputeCacheMachine | None = None) -> AppResult:
    """Run one bulk-zeroing variant ("base", "base32", or "cc")."""
    if variant == "base":
        return run_zeroing_baseline(workload, simd=False, machine=machine)
    if variant == "base32":
        return run_zeroing_baseline(workload, simd=True, machine=machine)
    if variant == "cc":
        return run_zeroing_cc(workload, machine=machine)
    raise ValueError(f"unknown zeroing variant {variant!r}")


def page_zero_cost(variant: str) -> tuple[float, float]:
    """(cycles, nJ) to zero one fresh 4 KB page - the fork/mmap number."""
    m = fresh_machine()
    addr = m.arena.alloc_page_aligned(PAGE_SIZE)
    snap = m.snapshot_energy()
    if variant == "cc":
        res = m.run(Program("z", [Instr.cc_op(cc_buz(addr, PAGE_SIZE))]))
    else:
        step = 32 if variant == "base32" else 8
        prog = Program("z")
        for off in range(0, PAGE_SIZE, step):
            prog.append(Instr.simd_store(addr + off, bytes(step)) if step == 32
                        else Instr.store(addr + off, bytes(step)))
            prog.append(Instr.scalar())
            prog.append(Instr.branch())
        res = m.run(prog)
    return res.cycles, m.energy_since(snap).total_nj()
