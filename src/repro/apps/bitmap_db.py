"""DB-BitMap (Section VI-B): bitmap-index query processing.

A FastBit-style equality-encoded bitmap index substitutes for the paper's
STAR physics dataset: each attribute of cardinality ``C`` gets ``C`` bins,
and bin ``v``'s bit ``i`` says row ``i`` has value ``v``.  Range and join
queries reduce to ORs/ANDs of large bins - hundreds of KB each in the
paper, configurable here.

**Baseline** - 32-byte SIMD OR/AND loops over the bins.

**Compute Cache version** - ``cc_or``/``cc_and`` instructions, each
processing 2 KB of bin data, as the paper's modified FastBit does.  The
bins are co-located (page-aligned) so every operation runs in place, and
independent chunk operations issue in parallel across sub-arrays.

Both variants aggregate results into a real result bitmap and count
qualifying rows; outputs are verified against a numpy reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.isa import cc_and, cc_or
from ..cpu.program import Instr
from ..cpu.simd import simd_or
from ..machine import ComputeCacheMachine
from ..params import WORD_SIZE
from .common import AppResult, StreamRunner, fresh_machine

CC_CHUNK = 2048  # the paper's cc_or granularity


@dataclass(frozen=True)
class Query:
    """OR the ``bins`` of one attribute; optionally AND with a second
    attribute's ORed bins (an equality-join / conjunctive range)."""

    attr: int
    bins: tuple[int, ...]
    and_attr: int | None = None
    and_bins: tuple[int, ...] = ()


@dataclass
class BitmapDataset:
    """Synthetic rows + their equality-encoded index."""

    n_rows: int
    cardinalities: tuple[int, ...]
    values: list[np.ndarray]          # per attribute, value per row
    bitmaps: list[list[np.ndarray]]   # [attr][bin] -> packed uint8 bitmap

    @property
    def bitmap_bytes(self) -> int:
        return (self.n_rows + 7) // 8


def make_dataset(seed: int, n_rows: int = 1 << 15,
                 cardinalities: tuple[int, ...] = (16, 8)) -> BitmapDataset:
    """STAR-like dataset: skewed attribute values, one index per attribute."""
    if n_rows % 64:
        raise ValueError("n_rows must be a multiple of 64")
    rng = np.random.default_rng(seed)
    values, bitmaps = [], []
    for card in cardinalities:
        ranks = np.arange(1, card + 1, dtype=np.float64) ** -0.8
        probs = ranks / ranks.sum()
        vals = rng.choice(card, size=n_rows, p=probs)
        values.append(vals)
        bitmaps.append(
            [np.packbits(vals == v).astype(np.uint8) for v in range(card)]
        )
    return BitmapDataset(n_rows=n_rows, cardinalities=cardinalities,
                         values=values, bitmaps=bitmaps)


def make_query_mix(dataset: BitmapDataset, seed: int, n_queries: int = 8) -> list[Query]:
    """Range queries plus occasional two-attribute conjunctions."""
    rng = np.random.default_rng(seed)
    queries = []
    for q in range(n_queries):
        attr = int(rng.integers(0, len(dataset.cardinalities)))
        card = dataset.cardinalities[attr]
        lo = int(rng.integers(0, card - 1))
        hi = int(rng.integers(lo + 1, card))
        query = Query(attr=attr, bins=tuple(range(lo, hi + 1)))
        if q % 3 == 2 and len(dataset.cardinalities) > 1:
            other = (attr + 1) % len(dataset.cardinalities)
            ocard = dataset.cardinalities[other]
            olo = int(rng.integers(0, ocard))
            query = Query(attr=attr, bins=query.bins, and_attr=other,
                          and_bins=tuple(range(olo, min(olo + 2, ocard))))
        queries.append(query)
    return queries


def reference_query(dataset: BitmapDataset, query: Query) -> np.ndarray:
    """Ground-truth packed result bitmap."""
    result = np.zeros(dataset.bitmap_bytes, dtype=np.uint8)
    for b in query.bins:
        result |= dataset.bitmaps[query.attr][b]
    if query.and_attr is not None:
        other = np.zeros_like(result)
        for b in query.and_bins:
            other |= dataset.bitmaps[query.and_attr][b]
        result &= other
    return result


def _load_index(m: ComputeCacheMachine, dataset: BitmapDataset):
    """Stage all bins plus two result buffers, co-located for locality."""
    nbins = sum(dataset.cardinalities)
    buffers = m.arena.alloc_colocated(dataset.bitmap_bytes, nbins + 2)
    bin_addr: dict[tuple[int, int], int] = {}
    i = 0
    for attr, card in enumerate(dataset.cardinalities):
        for b in range(card):
            bin_addr[(attr, b)] = buffers[i]
            m.load(buffers[i], dataset.bitmaps[attr][b].tobytes())
            i += 1
    return bin_addr, buffers[-2], buffers[-1]


def _aggregate_emit(runner: StreamRunner, result_addr: int, nbytes: int,
                    result_data: bytes) -> int:
    """Post-OR query work common to both variants: scan the result bitmap
    (load + popcount per word) and materialize qualifying row ids (FastBit
    hands row sets to the caller).  This is the query's non-offloadable
    component - the Amdahl term that bounds the paper's DB-BitMap speedup
    at 1.6x.  Returns the qualifying-row count."""
    rows = 0
    for off in range(0, nbytes, WORD_SIZE):
        runner.emit(Instr.load(result_addr + off, WORD_SIZE))
        runner.emit(Instr.scalar())  # popcnt + accumulate
        word = int.from_bytes(result_data[off : off + WORD_SIZE], "little")
        hits = word.bit_count()
        rows += hits
        # Row-id materialization: extract + append per pair of set bits.
        for _ in range((hits + 1) // 2):
            runner.emit(Instr.scalar())
    return rows


def run_bitmap_baseline(dataset: BitmapDataset, queries: list[Query],
                        machine: ComputeCacheMachine | None = None) -> AppResult:
    m = machine or fresh_machine()
    bin_addr, result_addr, temp_addr = _load_index(m, dataset)
    runner = StreamRunner(m, "bitmap-base")
    snap = m.snapshot_energy()
    nbytes = dataset.bitmap_bytes
    outputs = []

    for query in queries:
        # result = first bin; then OR the rest in, 32 B at a time.
        first = bin_addr[(query.attr, query.bins[0])]
        for off in range(0, nbytes, 32):
            runner.emit(Instr.simd_load(first + off, 32))
            runner.emit(Instr.simd_store_copy(result_addr + off, first + off, 32))
            runner.emit(Instr.scalar())
            runner.emit(Instr.branch())
        for b in query.bins[1:]:
            runner.emit_many(simd_or(bin_addr[(query.attr, b)], result_addr,
                                     result_addr, nbytes).instructions)
        if query.and_attr is not None:
            first = bin_addr[(query.and_attr, query.and_bins[0])]
            for off in range(0, nbytes, 32):
                runner.emit(Instr.simd_load(first + off, 32))
                runner.emit(Instr.simd_store_copy(temp_addr + off, first + off, 32))
                runner.emit(Instr.scalar())
                runner.emit(Instr.branch())
            for b in query.and_bins[1:]:
                runner.emit_many(simd_or(bin_addr[(query.and_attr, b)], temp_addr,
                                         temp_addr, nbytes).instructions)
            for off in range(0, nbytes, 32):
                runner.emit(Instr.simd_load(result_addr + off, 32))
                runner.emit(Instr.simd_load(temp_addr + off, 32))
                runner.emit(Instr.simd_op())
                runner.emit(Instr.simd_store_op(result_addr + off, result_addr + off,
                                                temp_addr + off, "and", 32))
                runner.emit(Instr.scalar())
                runner.emit(Instr.branch())
        runner.flush()
        result_data = m.peek(result_addr, nbytes)
        _aggregate_emit(runner, result_addr, nbytes, result_data)
        runner.flush()
        outputs.append(result_data)
    return runner.result(
        "bitmap-db", "baseline", m.energy_since(snap), output=outputs,
        queries=len(queries),
    )


def run_bitmap_cc(dataset: BitmapDataset, queries: list[Query],
                  machine: ComputeCacheMachine | None = None) -> AppResult:
    m = machine or fresh_machine()
    bin_addr, result_addr, temp_addr = _load_index(m, dataset)
    runner = StreamRunner(m, "bitmap-cc")
    snap = m.snapshot_energy()
    nbytes = dataset.bitmap_bytes
    outputs = []

    def cc_chunks(instr_fn, a, b, dest):
        for off in range(0, nbytes, CC_CHUNK):
            size = min(CC_CHUNK, nbytes - off)
            runner.emit(Instr.cc_op(instr_fn(a + off, b + off, dest + off, size)))

    for query in queries:
        from ..core.isa import cc_copy

        first = bin_addr[(query.attr, query.bins[0])]
        for off in range(0, nbytes, CC_CHUNK):
            size = min(CC_CHUNK, nbytes - off)
            runner.emit(Instr.cc_op(cc_copy(first + off, result_addr + off, size)))
        for b in query.bins[1:]:
            cc_chunks(cc_or, bin_addr[(query.attr, b)], result_addr, result_addr)
        if query.and_attr is not None:
            first = bin_addr[(query.and_attr, query.and_bins[0])]
            for off in range(0, nbytes, CC_CHUNK):
                size = min(CC_CHUNK, nbytes - off)
                runner.emit(Instr.cc_op(cc_copy(first + off, temp_addr + off, size)))
            for b in query.and_bins[1:]:
                cc_chunks(cc_or, bin_addr[(query.and_attr, b)], temp_addr, temp_addr)
            cc_chunks(cc_and, result_addr, temp_addr, result_addr)
        runner.flush()
        result_data = m.peek(result_addr, nbytes)
        _aggregate_emit(runner, result_addr, nbytes, result_data)
        runner.flush()
        outputs.append(result_data)
    return runner.result(
        "bitmap-db", "cc", m.energy_since(snap), output=outputs,
        queries=len(queries),
    )


def run_bitmap_queries(dataset: BitmapDataset, queries: list[Query],
                       variant: str = "cc",
                       machine: ComputeCacheMachine | None = None) -> AppResult:
    """Run one DB-BitMap variant ("baseline" or "cc")."""
    if variant == "baseline":
        return run_bitmap_baseline(dataset, queries, machine)
    if variant == "cc":
        return run_bitmap_cc(dataset, queries, machine)
    raise ValueError(f"unknown DB-BitMap variant {variant!r}")
