"""The paper's application suite (Sections V and VI-B), baseline + CC.

Every application is implemented twice over the same machine model:

* a **baseline** version compiled to scalar/Base_32 instruction streams
  (binary search, SIMD compares, word-at-a-time bitmap algebra, blocked
  x86-CLMUL, SIMD page copies); and
* a **Compute Cache** version redesigned around CC instructions exactly as
  Section VI-B describes (CAM-style ``cc_search`` dictionaries, in-L1 key
  search, ``cc_or`` over bitmap bins, broadcast ``cc_clmul`` BMM, and
  ``cc_copy`` copy-on-write checkpointing).

Beyond the paper's four, :mod:`~repro.apps.qdnn` adds the Neural Cache
follow-on workload (quantized DNN inference lowered to the bit-serial
arithmetic tier: ``cc_mul`` / ``cc_add`` / ``cc_reduce``) and
:mod:`~repro.apps.crypto` adds the cryptographic suite — GHASH/GCM
authentication, CRC32/CRC64 folding, and a negacyclic NTT-style
polynomial multiply — lowered onto ``cc_clmul`` broadcast folds and the
arithmetic tier, with every output verified against standard references.

Both versions run for real - outputs are verified against pure-Python/numpy
references - while the machine accounts cycles and per-component energy.

Datasets the paper used but we cannot ship (a 10/50 MB text corpus, the
STAR physics index, SPLASH-2) are replaced by seeded synthetic generators
preserving the characteristics that drive the results: word-frequency skew
(:mod:`~repro.apps.textgen`), bin cardinalities
(:mod:`~repro.apps.bitmap_db`), and per-benchmark dirty-page profiles
(:mod:`~repro.apps.splash`).
"""

from .common import AppResult
from .wordcount import run_wordcount
from .stringmatch import run_stringmatch
from .bitmap_db import run_bitmap_queries
from .bmm import run_bmm
from .checkpoint import run_checkpoint
from .crypto import run_crypto
from .qdnn import run_qdnn
from .streambw import run_streambw

__all__ = [
    "AppResult",
    "run_wordcount",
    "run_stringmatch",
    "run_bitmap_queries",
    "run_bmm",
    "run_checkpoint",
    "run_crypto",
    "run_qdnn",
    "run_streambw",
]


from .._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "bitmap_db", "bmm", "crypto", "qdnn", "stringmatch", "textgen",
    "wordcount", "checkpoint", "splash", "common", "streambw",
))
