"""Synthetic SPLASH-2 workload profiles for the checkpointing study.

The paper checkpoints six SPLASH-2 benchmarks at a 100,000-instruction
interval (Section VI-B).  Checkpoint overhead is governed by one quantity
per benchmark: how many distinct pages its stores dirty per interval (each
first write to a page in an interval triggers a copy-on-write page copy).

We cannot ship SPLASH-2, so each benchmark is replaced by a profile - a
seeded synthetic instruction mix with the benchmark's approximate CPI and
dirty-page rate.  The rates below were chosen so the *baseline* overhead
landscape matches Figure 10's shape: ``radix`` (a permutation over a large
key array) dirties by far the most pages and tops the chart near the
paper's 68% worst case, ``fmm``/``raytrace`` write sparsely, and the rest
sit in between.  What the experiment then measures - the Base/Base_32/CC
overhead *ratios* - comes entirely from the machine model, not from these
constants.
"""

from __future__ import annotations

from dataclasses import dataclass

CHECKPOINT_INTERVAL_INSTRS = 100_000
"""The paper's checkpointing interval (application instructions)."""


@dataclass(frozen=True)
class SplashProfile:
    """One benchmark's checkpoint-relevant behaviour."""

    name: str
    dirty_pages_per_interval: int
    cpi: float
    store_fraction: float
    intervals: int = 4

    @property
    def interval_cycles(self) -> float:
        return CHECKPOINT_INTERVAL_INSTRS * self.cpi


PROFILES: dict[str, SplashProfile] = {
    "fmm": SplashProfile("fmm", dirty_pages_per_interval=5, cpi=1.15,
                         store_fraction=0.09),
    "radix": SplashProfile("radix", dirty_pages_per_interval=20, cpi=1.05,
                           store_fraction=0.17),
    "cholesky": SplashProfile("cholesky", dirty_pages_per_interval=19, cpi=1.25,
                              store_fraction=0.12),
    "barnes": SplashProfile("barnes", dirty_pages_per_interval=14, cpi=1.20,
                            store_fraction=0.11),
    "raytrace": SplashProfile("raytrace", dirty_pages_per_interval=8, cpi=1.30,
                              store_fraction=0.08),
    "radiosity": SplashProfile("radiosity", dirty_pages_per_interval=16, cpi=1.22,
                               store_fraction=0.10),
}

BENCHMARKS = tuple(PROFILES)


def profile(name: str) -> SplashProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown SPLASH-2 profile {name!r}; choose from {BENCHMARKS}"
        ) from None


from .._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "PROFILES", "SplashProfile",
))
