"""WordCount (Section VI-B): dictionary building over a text stream.

**Baseline** - the classic implementation: a sorted dictionary of unique
words probed by binary search; every probe step loads a dictionary entry
and runs compare/branch/index bookkeeping.  Misses insert a new entry.

**Compute Cache version** - the dictionary becomes an alphabet-indexed CAM:
words hash (by their first two letters) into fixed 1 KB bins of 64-byte
slots.  A lookup stores the probe word once and issues ``cc_search`` over
the bin (512 bytes per instruction); mask instructions extract the matching
slot.  The binary search's bookkeeping instructions disappear - the paper
measures 87% fewer instructions - and because the dictionary is large
(719 KB in the paper) the searches run in the L3 Compute Cache.

Both versions produce real word counts, verified against
:func:`repro.apps.textgen.reference_wordcount`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.isa import cc_search
from ..cpu.program import Instr
from ..machine import ComputeCacheMachine
from ..params import BLOCK_SIZE
from .common import AppResult, StreamRunner, fresh_machine, pad_to_slot
from .textgen import Corpus

SLOT = BLOCK_SIZE
SEARCH_CHUNK = 4096  # one cc_search covers up to 64 slots (a whole bin)


@dataclass
class WordCountConfig:
    n_bins: int = 256
    bin_capacity: int = 16  # 16 slots x 64 B = 1 KB bins, as in the paper
    dict_capacity: int = 8192

    @property
    def bin_bytes(self) -> int:
        return self.bin_capacity * SLOT


def _bin_index(word: str, n_bins: int) -> int:
    """Alphabet index: first two letters pick the bin."""
    a = ord(word[0]) - ord("a")
    b = ord(word[1]) - ord("a") if len(word) > 1 else 0
    return (a * 26 + b) % n_bins


# -- baseline: sorted dictionary + binary search -------------------------------------


def _stage_text(m: ComputeCacheMachine, corpus: Corpus) -> int:
    """The input text stream lives in memory; reading it (one 64-byte slot
    per word here) is part of both variants and pollutes the caches just
    like the paper's 10 MB input file."""
    text_base = m.arena.alloc_page_aligned(len(corpus.words) * SLOT)
    m.load(text_base, b"".join(pad_to_slot(w.encode()) for w in corpus.words))
    return text_base


def run_wordcount_baseline(corpus: Corpus,
                           machine: ComputeCacheMachine | None = None,
                           config: WordCountConfig | None = None) -> AppResult:
    cfg = config or WordCountConfig()
    m = machine or fresh_machine()
    dict_base = m.arena.alloc_page_aligned(cfg.dict_capacity * SLOT)
    counts_base = m.arena.alloc_page_aligned(cfg.dict_capacity * 8)
    text_base = _stage_text(m, corpus)
    runner = StreamRunner(m, "wordcount-base")
    snap = m.snapshot_energy()

    entries: list[str] = []          # sorted unique words
    slot_of: dict[str, int] = {}     # word -> stable count slot
    counts: dict[str, int] = {}
    probes = 0

    for word_idx, word in enumerate(corpus.words):
        runner.emit(Instr.load(text_base + word_idx * SLOT, SLOT, streaming=True))
        # Binary search over the sorted dictionary.
        lo, hi = 0, len(entries)
        found = False
        while lo < hi:
            mid = (lo + hi) // 2
            # Each probe's address depends on the previous comparison: the
            # chain is serial, so the full miss latency is exposed.
            runner.emit(Instr.load(dict_base + mid * SLOT, 8, dependent=True))
            runner.emit(Instr.scalar())   # compare
            runner.emit(Instr.branch())   # direction
            runner.emit(Instr.scalar())   # index update
            probes += 1
            if entries[mid] == word:
                found = True
                break
            if entries[mid] < word:
                lo = mid + 1
            else:
                hi = mid
        if found:
            counts[word] += 1
            slot = slot_of[word]
            runner.emit(Instr.load(counts_base + slot * 8, 8))
            runner.emit(Instr.scalar())
            runner.emit(Instr.store(counts_base + slot * 8,
                                    counts[word].to_bytes(8, "little")))
        else:
            entries.insert(lo, word)
            slot = len(slot_of)
            slot_of[word] = slot
            counts[word] = 1
            # Entry write + count init + insertion bookkeeping.
            runner.emit(Instr.store(dict_base + slot * SLOT, pad_to_slot(word.encode())))
            runner.emit(Instr.store(counts_base + slot * 8, (1).to_bytes(8, "little")))
            runner.emit(Instr.scalar())
            runner.emit(Instr.scalar())

    return runner.result(
        "wordcount", "baseline", m.energy_since(snap), output=counts,
        probes=probes, dictionary_words=len(entries),
    )


# -- Compute Cache version: alphabet-indexed CAM + cc_search ---------------------------


KEY_SLOTS = 16
"""Rotating key-staging buffers: a fresh slot per in-flight search lets the
store for word *i+1*'s key proceed while word *i*'s search is still in the
cache (the same software pipelining a compiler applies to any accelerator
with an in-order command queue)."""


def run_wordcount_cc(corpus: Corpus,
                     machine: ComputeCacheMachine | None = None,
                     config: WordCountConfig | None = None) -> AppResult:
    cfg = config or WordCountConfig()
    m = machine or fresh_machine()
    bins_base = m.arena.alloc_page_aligned(cfg.n_bins * cfg.bin_bytes)
    counts_base = m.arena.alloc_page_aligned(cfg.n_bins * cfg.bin_capacity * 8)
    key_slots = m.arena.alloc_colocated(SLOT, KEY_SLOTS)
    text_base = _stage_text(m, corpus)
    runner = StreamRunner(m, "wordcount-cc", chunk=1 << 30)
    snap = m.snapshot_energy()

    bins: list[list[str]] = [[] for _ in range(cfg.n_bins)]
    counts: dict[str, int] = {}
    overflow: dict[str, int] = {}
    searches = 0
    expected: list[tuple[str, int]] = []  # (word, slot) per overlapped search
    slot_cursor = 0

    for word_idx, word in enumerate(corpus.words):
        runner.emit(Instr.load(text_base + word_idx * SLOT, SLOT, streaming=True))
        b = _bin_index(word, cfg.n_bins)
        bin_addr = bins_base + b * cfg.bin_bytes
        encoded = pad_to_slot(word.encode())
        runner.emit(Instr.scalar())  # hash / bin index computation
        key_addr = key_slots[slot_cursor % KEY_SLOTS]
        slot_cursor += 1
        runner.emit(Instr.store(key_addr, encoded))
        size = min(cfg.bin_bytes, SEARCH_CHUNK)

        known_slot = bins[b].index(word) if word in bins[b] else None
        if known_slot is not None:
            # Hit path: the search result only feeds the count update, so
            # independent words' searches overlap (RMO); the mask is
            # validated against the expectation when the stream drains.
            runner.emit(Instr.cc_op(cc_search(bin_addr, key_addr, size)))
            searches += 1
            expected.append((word, known_slot))
            runner.emit(Instr.scalar())  # mask: match position
            runner.emit(Instr.scalar())  # mask: match/mismatch
            counts[word] += 1
            count_addr = counts_base + (b * cfg.bin_capacity + known_slot) * 8
            runner.emit(Instr.load(count_addr, 8))
            runner.emit(Instr.scalar())
            runner.emit(Instr.store(count_addr, counts[word].to_bytes(8, "little")))
            continue

        # Miss path (rare under Zipf): the insert decision depends on the
        # search outcome, so this search is synchronous.
        res = runner.cc(cc_search(bin_addr, key_addr, size))
        searches += 1
        runner.emit(Instr.scalar())  # mask: match position
        runner.emit(Instr.scalar())  # mask: match/mismatch
        if res.result:
            raise AssertionError(f"search matched a word never inserted: {word!r}")
        if len(bins[b]) < cfg.bin_capacity:
            slot = len(bins[b])
            bins[b].append(word)
            counts[word] = 1
            runner.emit(Instr.store(bin_addr + slot * SLOT, encoded))
            runner.emit(Instr.store(counts_base + (b * cfg.bin_capacity + slot) * 8,
                                    (1).to_bytes(8, "little")))
        else:
            # Bin overflow: software fallback map (rare by construction).
            overflow[word] = overflow.get(word, 0) + 1
            for _ in range(5):
                runner.emit(Instr.scalar())

    runner.flush()
    hit_results = [r for r in runner.cc_results if r.result]
    if len(hit_results) != len(expected):
        raise AssertionError("overlapped searches and expectations diverged")
    for (word, slot), res in zip(expected, hit_results):
        if not (res.result >> slot) & 1:
            raise AssertionError(f"search mask missed {word!r} at slot {slot}")

    for word, n in overflow.items():
        counts[word] = counts.get(word, 0) + n
    return runner.result(
        "wordcount", "cc", m.energy_since(snap), output=counts,
        searches=searches, overflow_words=len(overflow),
    )


def run_wordcount(corpus: Corpus, variant: str = "cc",
                  machine: ComputeCacheMachine | None = None,
                  config: WordCountConfig | None = None) -> AppResult:
    """Run one WordCount variant ("baseline" or "cc")."""
    if variant == "baseline":
        return run_wordcount_baseline(corpus, machine, config)
    if variant == "cc":
        return run_wordcount_cc(corpus, machine, config)
    raise ValueError(f"unknown WordCount variant {variant!r}")
