"""OS bulk-copy services (Section V): fork, IPC, and page-cache reads.

"The operating system spends a considerable chunk of its time (more than
50%) copying bulk data [19].  For instance copying is necessary for
frequently used system calls like fork, inter-process communication,
virtual machine cloning and deduplication, file system and network
management."  This application models three such services over the same
machine:

* **fork** - copy-on-write setup copies the parent's hot pages that will be
  written immediately (the pages COW cannot defer);
* **pipe IPC** - a producer writes messages into a pipe buffer; the kernel
  copies each message into the consumer's buffer;
* **page-cache read** - ``read()`` copies file pages from the kernel page
  cache into a user buffer.

Every copy is page-/block-aligned kernel-to-kernel or kernel-to-user
buffer movement - exactly ``cc_copy``'s sweet spot: page-aligned operands
(perfect locality), destinations fully overwritten (no fetch), and no
L1/L2 pollution of the running process's working set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.isa import cc_copy
from ..cpu.program import Instr
from ..cpu.simd import simd_copy
from ..machine import ComputeCacheMachine
from ..params import BLOCK_SIZE, PAGE_SIZE
from .common import AppResult, StreamRunner, fresh_machine

SERVICES = ("fork", "ipc", "pagecache")


@dataclass(frozen=True)
class OSCopyWorkload:
    """One syscall trace: a sequence of (service, bytes) copy demands."""

    events: tuple[tuple[str, int], ...]

    @property
    def total_bytes(self) -> int:
        return sum(size for _, size in self.events)


def make_syscall_trace(seed: int, n_events: int = 24) -> OSCopyWorkload:
    """A mixed service trace: forks copy pages, IPC moves messages of a few
    blocks, page-cache reads move 1-4 pages."""
    rng = np.random.default_rng(seed)
    events = []
    for _ in range(n_events):
        service = SERVICES[int(rng.integers(0, len(SERVICES)))]
        if service == "fork":
            size = int(rng.integers(1, 4)) * PAGE_SIZE
        elif service == "ipc":
            size = int(rng.integers(1, 16)) * BLOCK_SIZE
        else:
            size = int(rng.integers(1, 5)) * PAGE_SIZE
        events.append((service, size))
    return OSCopyWorkload(events=tuple(events))


def _stage(m: ComputeCacheMachine, workload: OSCopyWorkload,
           rng: np.random.Generator) -> list[tuple[int, int, int, bytes]]:
    """(src, dst, size, data) per event, page-aligned pairs."""
    staged = []
    for _, size in workload.events:
        pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        src, dst = (m.arena.alloc_page_aligned(pages * PAGE_SIZE)
                    for _ in range(2))
        data = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
        m.load(src, data)
        staged.append((src, dst, size, data))
    return staged


def run_os_copy(workload: OSCopyWorkload, variant: str = "cc",
                machine: ComputeCacheMachine | None = None,
                seed: int = 23) -> AppResult:
    """Replay the syscall trace with one copy engine.

    ``variant``: ``base32`` (SIMD memcpy, the kernel's optimized path) or
    ``cc`` (one ``cc_copy`` per event, chunked at the 16 KB ISA limit).
    """
    if variant not in ("base32", "cc"):
        raise ValueError(f"unknown OS-copy variant {variant!r}")
    m = machine or fresh_machine()
    rng = np.random.default_rng(seed)
    staged = _stage(m, workload, rng)
    runner = StreamRunner(m, f"oscopy-{variant}", chunk=1 << 30)
    snap = m.snapshot_energy()

    per_service: dict[str, float] = {s: 0.0 for s in SERVICES}
    for (service, _), (src, dst, size, _) in zip(workload.events, staged):
        before = runner.cycles
        # Syscall entry/bookkeeping, identical in both variants.
        for _ in range(12):
            runner.emit(Instr.scalar())
        if variant == "base32":
            runner.emit_many(simd_copy(src, dst, size).instructions)
        else:
            for off in range(0, size, 16 * 1024):
                piece = min(16 * 1024, size - off)
                runner.emit(Instr.cc_op(cc_copy(src + off, dst + off, piece)))
        runner.flush()
        per_service[service] += runner.cycles - before

    for src, dst, size, data in staged:
        assert m.peek(dst, size) == data, "kernel copy corrupted data"
    return runner.result(
        "os-copy", variant, m.energy_since(snap),
        output=workload.total_bytes, per_service_cycles=per_service,
    )


def copy_bandwidth(variant: str, size: int = 64 * 1024) -> float:
    """Sustained copy bandwidth (bytes/cycle) for one engine."""
    m = fresh_machine()
    src = m.arena.alloc_page_aligned(size)
    dst = m.arena.alloc_page_aligned(size)
    m.load(src, np.random.default_rng(0).integers(
        0, 256, size, dtype=np.uint8).tobytes())
    runner = StreamRunner(m, f"bw-{variant}", chunk=1 << 30)
    if variant == "base32":
        runner.emit_many(simd_copy(src, dst, size).instructions)
    else:
        for off in range(0, size, 16 * 1024):
            runner.emit(Instr.cc_op(cc_copy(src + off, dst + off, 16 * 1024)))
    runner.flush()
    assert m.peek(dst, size) == m.peek(src, size)
    return size / runner.cycles
