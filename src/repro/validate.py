"""End-to-end self-check: ``python -m repro validate``.

A fast battery (a few seconds) that exercises every layer and prints a
PASS/FAIL line per check - the thing to run after touching the model to
know nothing fundamental broke, without waiting for the full test suite.

Checks:

1. every CC opcode computes bit-exactly against numpy on random data;
2. in-place, near-place, and RISC-fallback paths agree;
3. page-spanning operands split and still compute exactly;
4. a multi-core read/write/CC interleaving stays coherent (+ inclusion,
   single-writer, directory invariants);
5. ECC corrects injected single-bit strikes end-to-end through scrubbing;
6. the energy calibration anchors (Table V constants, Fig 3 proportion
   regime, in-place < conventional) hold;
7. the packed and bit-exact execution backends agree bit-for-bit (data,
   result masks, sub-array statistics, energy) on a random CC stream.

``run_validation(backend=...)`` runs the whole battery under a chosen
execution backend (the differential check always exercises both).
"""

from __future__ import annotations

import traceback
from collections.abc import Callable

import numpy as np

from . import ComputeCacheMachine, cc_ops
from .params import small_test_machine

_BACKEND: str | None = None
"""Backend override for the battery's machines (None = config default)."""


def _machine() -> ComputeCacheMachine:
    return ComputeCacheMachine(small_test_machine(), backend=_BACKEND)


def _rand(rng, n: int) -> bytes:
    return rng.integers(0, 256, n, dtype=np.uint8).tobytes()


def check_functional_exactness() -> None:
    rng = np.random.default_rng(1)
    m = _machine()
    a, b, c = m.arena.alloc_colocated(512, 3)
    da, db = _rand(rng, 512), _rand(rng, 512)
    m.load(a, da)
    m.load(b, db)
    na, nb = np.frombuffer(da, np.uint8), np.frombuffer(db, np.uint8)
    m.cc(cc_ops.cc_and(a, b, c, 512))
    assert m.peek(c, 512) == (na & nb).tobytes()
    m.cc(cc_ops.cc_or(a, b, c, 512))
    assert m.peek(c, 512) == (na | nb).tobytes()
    m.cc(cc_ops.cc_xor(a, b, c, 512))
    assert m.peek(c, 512) == (na ^ nb).tobytes()
    m.cc(cc_ops.cc_not(a, c, 512))
    assert m.peek(c, 512) == (~na).astype(np.uint8).tobytes()
    m.cc(cc_ops.cc_copy(a, c, 512))
    assert m.peek(c, 512) == da
    m.cc(cc_ops.cc_buz(c, 512))
    assert m.peek(c, 512) == bytes(512)
    mask = m.cc(cc_ops.cc_cmp(a, a, 512)).result
    assert mask == 2**64 - 1
    key = m.arena.alloc_page_aligned(64)
    m.load(key, da[64:128])
    assert m.cc(cc_ops.cc_search(a, key, 512)).result & 0b10
    d = m.arena.alloc_page_aligned(64)
    res = m.cc(cc_ops.cc_clmul(a, b, d, 512, lane_bits=64))
    lane0 = bin(int.from_bytes(da[:8], "little")
                & int.from_bytes(db[:8], "little")).count("1") & 1
    assert (res.result_bytes[0] & 1) == lane0


def check_execution_paths_agree() -> None:
    rng = np.random.default_rng(2)
    da, db = _rand(rng, 256), _rand(rng, 256)
    outputs = []
    for mode in ("inplace", "nearplace", "risc"):
        m = _machine()
        a, b, c = m.arena.alloc_colocated(256, 3)
        m.load(a, da)
        m.load(b, db)
        if mode == "risc":
            m.controllers[0].contention_hook = lambda addr: True
        m.cc(cc_ops.cc_xor(a, b, c, 256),
             force_nearplace=(mode == "nearplace"))
        outputs.append(m.peek(c, 256))
    assert outputs[0] == outputs[1] == outputs[2]


def check_page_spanning() -> None:
    rng = np.random.default_rng(3)
    m = _machine()
    region = m.arena.alloc(16384, align=4096)
    dest = m.arena.alloc(16384, align=4096)
    a = region + 4096 - 128
    c = dest + 4096 - 128
    data = _rand(rng, 512)
    m.load(a, data)
    res = m.cc(cc_ops.cc_copy(a, c, 512))
    assert res.pieces == 2
    assert m.peek(c, 512) == data


def check_multicore_coherence() -> None:
    rng = np.random.default_rng(4)
    m = _machine()
    bufs = m.arena.alloc_colocated(256, 3)
    ref = [bytearray(_rand(rng, 256)) for _ in range(3)]
    for buf, data in zip(bufs, ref):
        m.load(buf, bytes(data))
    for i in range(40):
        core = i % 2
        choice = int(rng.integers(0, 3))
        if choice == 0:
            v = int(rng.integers(0, 256))
            m.write(bufs[i % 3], bytes([v]) * 16, core=core)
            ref[i % 3][:16] = bytes([v]) * 16
        elif choice == 1:
            assert m.read(bufs[i % 3], 256, core=core) == bytes(ref[i % 3])
        else:
            m.cc(cc_ops.cc_copy(bufs[0], bufs[2], 256), core=core)
            ref[2][:] = ref[0]
    for buf, data in zip(bufs, ref):
        assert m.peek(buf, 256) == bytes(data)
    m.hierarchy.check_inclusion()
    m.hierarchy.check_single_writer()


def check_ecc_scrubbing() -> None:
    from .core.scrub import ScrubService

    rng = np.random.default_rng(5)
    m = _machine()
    addr = m.arena.alloc_page_aligned(512)
    m.load(addr, _rand(rng, 512))
    m.warm_l3(addr, 512)
    level = m.hierarchy.l3[m.hierarchy.home_slice(addr, 0)]
    service = ScrubService(level)
    service.protect_resident()
    before = level.peek_block(addr)
    service.inject_strike(addr, bit=77)
    report = service.scrub_pass()
    assert report.corrections == 1
    assert level.peek_block(addr) == before


def check_energy_anchors() -> None:
    from .energy.tables import cc_op_energy, read_energy, write_energy

    for level in ("L1-D", "L2", "L3-slice"):
        assert cc_op_energy(level, "cmp") < read_energy(level)
        assert cc_op_energy(level, "copy") < read_energy(level) + write_energy(level)
    from .bench.microbench import run_kernel

    scalar = run_kernel("compare", "scalar", size=1024,
                        machine_config=small_test_machine())
    frac = scalar.dynamic.core() / scalar.dynamic.total()
    assert 0.5 < frac < 0.9, f"scalar core fraction {frac:.2f} out of regime"


def _stats_snapshot(m: ComputeCacheMachine) -> list[tuple]:
    """Flat, comparable view of every sub-array's statistics."""
    snap = []
    h = m.hierarchy
    for level in (*h.l1, *h.l2, *h.l3):
        for sub in level.geometry.subarrays:
            s = sub.stats
            snap.append((level.name, s.reads, s.writes,
                         dict(s.compute_ops), s.energy_pj, s.busy_cycles))
    return snap


def check_backend_equivalence() -> None:
    """Identical random CC streams through both backends must agree
    bit-for-bit: data, result masks, latencies, per-sub-array statistics,
    and the machine energy ledger."""
    rng = np.random.default_rng(6)
    machines = {}
    layouts = {}
    for be in ("bitexact", "packed"):
        m = ComputeCacheMachine(small_test_machine(), backend=be)
        a, b, c = m.arena.alloc_colocated(512, 3)
        key = m.arena.alloc_page_aligned(64)
        machines[be] = m
        layouts[be] = (a, b, c, key)
    # Same random payloads and instruction choices for both machines.
    payloads = [(_rand(rng, 512), _rand(rng, 512), _rand(rng, 64))
                for _ in range(4)]
    choices = rng.integers(0, 9, 40)
    sizes = rng.choice([64, 128, 256, 448, 512], 40)
    for be, m in machines.items():
        a, b, c, key = layouts[be]
        outcomes = []
        for i, (choice, size) in enumerate(zip(choices, sizes)):
            da, db, dk = payloads[i % len(payloads)]
            if i == 0:
                m.load(a, da)
                m.load(b, db)
                m.load(key, dk)
            elif i % len(payloads) == 0:
                m.write(a, da)
                m.write(b, db)
                m.write(key, dk)
            size = int(size)
            instr = [
                cc_ops.cc_and(a, b, c, size),
                cc_ops.cc_or(a, b, c, size),
                cc_ops.cc_xor(a, b, c, size),
                cc_ops.cc_not(a, c, size),
                cc_ops.cc_copy(a, c, size),
                cc_ops.cc_buz(c, size),
                cc_ops.cc_cmp(a, b, size),
                cc_ops.cc_search(a, key, size),
                cc_ops.cc_clmul(a, b, c, size, lane_bits=64),
            ][int(choice)]
            res = m.cc(instr)
            outcomes.append((res.result, res.result_bytes, res.cycles,
                             m.peek(c, 512)))
        layouts[be] = (a, b, c, key, outcomes)
    bit_out = layouts["bitexact"][4]
    pk_out = layouts["packed"][4]
    for i, (bo, po) in enumerate(zip(bit_out, pk_out)):
        assert bo == po, f"backends diverge at instruction {i}"
    assert (_stats_snapshot(machines["bitexact"])
            == _stats_snapshot(machines["packed"])), "sub-array stats diverge"
    assert machines["bitexact"].ledger.pj == machines["packed"].ledger.pj, \
        "energy ledgers diverge"


CHECKS: list[tuple[str, Callable[[], None]]] = [
    ("functional exactness (all opcodes vs numpy)", check_functional_exactness),
    ("in-place / near-place / RISC agreement", check_execution_paths_agree),
    ("page-span split correctness", check_page_spanning),
    ("multi-core coherence interleaving", check_multicore_coherence),
    ("ECC strike -> scrub -> repair", check_ecc_scrubbing),
    ("energy calibration anchors", check_energy_anchors),
    ("backend equivalence (packed vs bit-exact)", check_backend_equivalence),
]


def run_validation(verbose: bool = True, backend: str | None = None) -> bool:
    """Run every check; returns True iff all passed.

    ``backend`` forces the battery's machines onto one execution backend
    (``"packed"`` or ``"bitexact"``); the differential backend-equivalence
    check always builds both regardless.
    """
    global _BACKEND
    _BACKEND = backend
    all_ok = True
    for name, check in CHECKS:
        try:
            check()
            status = "PASS"
        except Exception:
            status = "FAIL"
            all_ok = False
            if verbose:
                traceback.print_exc()
        if verbose:
            print(f"[{status}] {name}")
    if verbose:
        print("validation:", "OK" if all_ok else "FAILED")
    return all_ok
