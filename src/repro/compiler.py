"""Compiler support for Compute Caches (Section IV-C's anticipated layer).

"Compiler and dynamic memory allocators could be extended to optimize for
this property [operand locality] in future."  This module is that
extension: given an element-wise vector computation over arrays, it

1. **plans the layout** - allocates the arrays co-located (same page
   offset) so every block pair shares bit-lines at every cache level;
2. **tiles the operation** - splits it into CC instructions respecting the
   ISA limits (16 KB general, 512 B for ``cc_cmp``, 4 KB for
   ``cc_search``) and page boundaries (avoiding run-time pipeline
   exceptions entirely);
3. **emits** the instruction sequence, ready to run or to disassemble.

The planner is deliberately conservative: if a caller brings pre-placed
arrays whose offsets cannot satisfy locality, it still compiles (the
hardware's near-place path keeps it correct) but reports the operand-
locality diagnosis so the programmer can fix the allocation - mirroring
how a real toolchain would surface the paper's alignment requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .alloc import Arena
from .cache.locality import check_operand_locality
from .core import isa
from .core.isa import CCInstruction, Opcode
from .errors import ISAError
from .machine import ComputeCacheMachine
from .params import BLOCK_SIZE, PAGE_SIZE, MachineConfig, sandybridge_8core

_TILE_LIMIT = {
    Opcode.CMP: 512,
    Opcode.SEARCH: 4096,
}
_DEFAULT_TILE = PAGE_SIZE  # page tiles never raise the span exception


@dataclass(frozen=True)
class ArrayRef:
    """A named array operand with its placed base address."""

    name: str
    addr: int
    size: int

    def block_addrs(self) -> list[int]:
        return list(range(self.addr, self.addr + self.size, BLOCK_SIZE))


@dataclass
class VectorPlan:
    """A compiled element-wise operation: layout + instruction tiles."""

    op: Opcode
    arrays: dict[str, ArrayRef]
    instructions: list[CCInstruction]
    locality_satisfied: bool
    diagnostics: list[str] = field(default_factory=list)

    @property
    def tile_count(self) -> int:
        return len(self.instructions)

    def run(self, machine: ComputeCacheMachine, core: int = 0) -> list:
        """Execute the plan; returns the per-tile CCResults."""
        return [machine.cc(instr, core=core) for instr in self.instructions]

    def listing(self) -> str:
        """Human-readable assembly listing of the plan."""
        from .asm import format_instruction

        header = [f"; {self.op.value} over " + ", ".join(
            f"{ref.name}@{ref.addr:#x}[{ref.size}]" for ref in self.arrays.values()
        )]
        if not self.locality_satisfied:
            header.append("; WARNING: operand locality NOT satisfied -> near-place")
        return "\n".join(header + [format_instruction(i) for i in self.instructions])


class VectorCompiler:
    """Plans element-wise CC computations with locality-aware layout."""

    def __init__(self, config: MachineConfig | None = None) -> None:
        self.config = config or sandybridge_8core()

    # -- layout -----------------------------------------------------------------

    def place_arrays(self, arena: Arena, names: list[str], size: int) -> dict[str, ArrayRef]:
        """Allocate ``names`` co-located: the allocator half of IV-C."""
        if size % BLOCK_SIZE:
            raise ISAError(f"array size {size} must be block-aligned")
        addrs = arena.alloc_colocated(size, len(names))
        return {
            name: ArrayRef(name=name, addr=addr, size=size)
            for name, addr in zip(names, addrs)
        }

    def diagnose_locality(self, refs: list[ArrayRef]) -> tuple[bool, list[str]]:
        """Check every corresponding block tuple at every cache level."""
        diagnostics: list[str] = []
        ok = True
        for level in (self.config.l1d, self.config.l2, self.config.l3_slice):
            for off in range(0, refs[0].size, BLOCK_SIZE):
                addrs = [r.addr + off for r in refs]
                if not check_operand_locality(addrs, level):
                    ok = False
                    diagnostics.append(
                        f"{level.name}: blocks at +{off:#x} do not share a "
                        f"partition (low {level.min_locality_bits} bits differ)"
                    )
                    break  # one diagnosis per level suffices
        return ok, diagnostics

    # -- tiling ------------------------------------------------------------------

    def _tile_sizes(self, op: Opcode, base_addrs: list[int], size: int) -> list[tuple[int, int]]:
        """(offset, length) tiles obeying ISA limits and page boundaries."""
        limit = _TILE_LIMIT.get(op, _DEFAULT_TILE)
        tiles = []
        offset = 0
        while offset < size:
            length = min(limit, size - offset)
            # Shrink to the nearest page boundary of any operand so no tile
            # ever spans a page (compile-time exception avoidance).
            for base in base_addrs:
                addr = base + offset
                to_boundary = PAGE_SIZE - (addr % PAGE_SIZE)
                length = min(length, to_boundary)
            tiles.append((offset, length))
            offset += length
        return tiles

    # -- compilation ---------------------------------------------------------------

    def compile_elementwise(self, op: Opcode, a: ArrayRef, b: ArrayRef | None,
                            dest: ArrayRef | None) -> VectorPlan:
        """Compile ``dest[i] = a[i] <op> b[i]`` (or unary/compare forms)."""
        refs = [r for r in (a, b, dest) if r is not None]
        sizes = {r.size for r in refs}
        if len(sizes) != 1:
            raise ISAError(f"array sizes differ: { {r.name: r.size for r in refs} }")
        size = sizes.pop()
        ok, diagnostics = self.diagnose_locality(refs)

        builders = {
            Opcode.AND: lambda o, n: isa.cc_and(a.addr + o, b.addr + o, dest.addr + o, n),
            Opcode.OR: lambda o, n: isa.cc_or(a.addr + o, b.addr + o, dest.addr + o, n),
            Opcode.XOR: lambda o, n: isa.cc_xor(a.addr + o, b.addr + o, dest.addr + o, n),
            Opcode.COPY: lambda o, n: isa.cc_copy(a.addr + o, dest.addr + o, n),
            Opcode.NOT: lambda o, n: isa.cc_not(a.addr + o, dest.addr + o, n),
            Opcode.BUZ: lambda o, n: isa.cc_buz(a.addr + o, n),
            Opcode.CMP: lambda o, n: isa.cc_cmp(a.addr + o, b.addr + o, n),
        }
        builder = builders.get(op)
        if builder is None:
            raise ISAError(f"compile_elementwise does not handle {op.value}")
        base_addrs = [r.addr for r in refs]
        instructions = [builder(off, length)
                        for off, length in self._tile_sizes(op, base_addrs, size)]
        return VectorPlan(op=op, arrays={r.name: r for r in refs},
                          instructions=instructions, locality_satisfied=ok,
                          diagnostics=diagnostics)

    def compile_search(self, data: ArrayRef, key_addr: int) -> VectorPlan:
        """Compile a key scan over ``data`` (4 KB per instruction)."""
        instructions = [
            isa.cc_search(data.addr + off, key_addr, length)
            for off, length in self._tile_sizes(Opcode.SEARCH, [data.addr], data.size)
        ]
        key_ref = ArrayRef(name="key", addr=key_addr, size=BLOCK_SIZE)
        return VectorPlan(op=Opcode.SEARCH,
                          arrays={"data": data, "key": key_ref},
                          instructions=instructions, locality_satisfied=True)


def compile_and_run(machine: ComputeCacheMachine, op: Opcode,
                    inputs: dict[str, bytes], size: int | None = None) -> VectorPlan:
    """One-call convenience: place, load, compile, and execute.

    ``inputs`` maps array names to initial contents; a ``dest`` array is
    added automatically for ops that produce one.
    """
    sizes = {len(v) for v in inputs.values()}
    if size is None:
        if len(sizes) != 1:
            raise ISAError("inputs must share a size (or pass size=)")
        size = sizes.pop()
    compiler = VectorCompiler(machine.config)
    names = list(inputs)
    needs_dest = op not in (Opcode.BUZ, Opcode.CMP, Opcode.SEARCH)
    if needs_dest:
        names.append("dest")
    refs = compiler.place_arrays(machine.arena, names, size)
    for name, data in inputs.items():
        machine.load(refs[name].addr, data)
    a = refs[list(inputs)[0]]
    b = refs[list(inputs)[1]] if len(inputs) > 1 else None
    dest = refs.get("dest")
    plan = compiler.compile_elementwise(op, a, b, dest)
    plan.run(machine)
    return plan


from ._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "VectorCompiler", "VectorPlan", "ArrayRef", "compile_and_run",
))
