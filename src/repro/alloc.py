"""Page-aware memory allocation for operand locality (Section IV-C).

Operand locality requires the low ``min_locality_bits`` (at most 12, one
page) address bits of co-operands to match.  The paper's rule for software:
*place operands page-aligned (same page offset)*.  :class:`Arena` is the
dynamic-memory-allocator extension the paper anticipates - it hands out:

* ordinary allocations (``alloc``),
* page-aligned allocations (``alloc_page_aligned``), and
* *co-located groups* (``alloc_colocated``): N buffers that share a page
  offset, each in its own page range, so every corresponding block pair
  lands in the same block partition at every cache level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import AddressError
from .params import BLOCK_SIZE, PAGE_SIZE


@dataclass
class Arena:
    """Bump allocator over the machine's physical memory."""

    size: int
    base: int = 0
    _cursor: int = field(init=False)

    def __post_init__(self) -> None:
        if self.base % BLOCK_SIZE:
            raise AddressError("arena base must be block-aligned")
        self._cursor = self.base

    def _bump(self, to: int) -> None:
        if to > self.base + self.size:
            raise AddressError(
                f"arena exhausted: need {to - self.base} of {self.size} bytes"
            )
        self._cursor = to

    def alloc(self, nbytes: int, align: int = BLOCK_SIZE) -> int:
        """Allocate ``nbytes`` at the given alignment."""
        if nbytes <= 0:
            raise AddressError("allocation size must be positive")
        if align & (align - 1):
            raise AddressError(f"alignment {align} is not a power of two")
        addr = (self._cursor + align - 1) & ~(align - 1)
        self._bump(addr + nbytes)
        return addr

    def alloc_page_aligned(self, nbytes: int) -> int:
        """Allocate at a page boundary - offset 0, the simplest way to
        satisfy operand locality for all cache levels at once."""
        return self.alloc(nbytes, align=PAGE_SIZE)

    def alloc_colocated(self, nbytes: int, count: int) -> list[int]:
        """Allocate ``count`` buffers sharing a page offset.

        Each buffer starts a whole number of pages after the first, so
        every pair of corresponding cache blocks has equal low-12 address
        bits - operand locality holds at L1, L2, and L3 (Table III).
        """
        if count <= 0:
            raise AddressError("co-located group needs at least one buffer")
        pages_each = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
        first = self.alloc_page_aligned(pages_each * PAGE_SIZE)
        addrs = [first]
        for _ in range(count - 1):
            addrs.append(self.alloc_page_aligned(pages_each * PAGE_SIZE))
        return addrs

    def alloc_superpage(self, superpage_bytes: int = 2 * 1024 * 1024) -> "SuperpageArena":
        """Reserve a superpage and return an allocator for it.

        Section IV-C: "For super-pages that are larger than 4KB, operands
        can be placed within a page while ensuring 12-bit address
        alignment."  The returned sub-arena's ``alloc_colocated`` places
        co-operands at 4 KB strides *inside* the superpage.
        """
        if superpage_bytes % PAGE_SIZE:
            raise AddressError("superpage size must be a multiple of 4 KB")
        base = self.alloc(superpage_bytes, align=PAGE_SIZE)
        return SuperpageArena(size=superpage_bytes, base=base)

    @property
    def used(self) -> int:
        return self._cursor - self.base

    @property
    def remaining(self) -> int:
        return self.base + self.size - self._cursor


class SuperpageArena(Arena):
    """Allocator inside one superpage: co-located groups stay within it.

    Identical address-alignment guarantees as :class:`Arena` (every
    co-operand pair matches in its low 12 bits) without needing separate
    OS pages - the layout superpage-backed software uses.
    """

    def alloc_colocated(self, nbytes: int, count: int) -> list[int]:
        addrs = super().alloc_colocated(nbytes, count)
        if addrs[-1] + nbytes > self.base + self.size:
            raise AddressError(
                f"co-located group of {count} x {nbytes} B does not fit the "
                f"{self.size}-byte superpage"
            )
        return addrs
