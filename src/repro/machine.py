"""The top-level machine facade.

:class:`ComputeCacheMachine` wires together everything a user needs: the
Table IV configuration, the shared energy ledger, the coherent cache
hierarchy, one core model + CC controller per core, an allocation arena,
and the power model.  It is the entry point used by the examples, the
applications, and the benchmark harness::

    from repro import ComputeCacheMachine, cc_ops

    m = ComputeCacheMachine()
    a, b, c = m.arena.alloc_colocated(4096, 3)
    m.load(a, bytes(range(256)) * 16)
    m.load(b, b"\\xff" * 4096)
    result = m.cc(cc_ops.cc_and(a, b, c, 4096))
    assert m.peek(c, 4096) == m.peek(a, 4096)
"""

from __future__ import annotations

from .alloc import Arena
from .cache.hierarchy import CacheHierarchy
from .core.controller import CCResult, ComputeCacheController
from .core.isa import CCInstruction
from .core.stream import DEFAULT_WINDOW, CCInstructionStream, StreamResult
from .cpu.core_model import CoreModel, RunResult
from .cpu.program import Program
from .energy.accounting import EnergyLedger
from .energy.mcpat import PowerModel, TotalEnergy
from .errors import AddressError, ConfigError
from .params import BACKENDS, MachineConfig, sandybridge_8core


class ComputeCacheMachine:
    """A complete simulated machine with Compute Cache support.

    ``backend`` (``"packed"`` or ``"bitexact"``) overrides the execution
    backend of ``config`` for this machine; ``None`` keeps the config's
    choice (``MachineConfig.backend``, default ``"packed"``).  Likewise
    ``trace_events`` overrides ``MachineConfig.trace_events``: when on,
    ``machine.tracer`` holds the :class:`~repro.events.EventTracer` every
    layer of the machine emits into (see :mod:`repro.events`).
    """

    def __init__(self, config: MachineConfig | None = None,
                 wordline_underdrive: bool = True,
                 backend: str | None = None,
                 trace_events: bool | None = None) -> None:
        from dataclasses import replace

        if backend is not None and backend not in BACKENDS:
            raise ConfigError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.config = config or sandybridge_8core()
        overrides = {}
        if backend is not None and backend != self.config.backend:
            overrides["backend"] = backend
        if trace_events is not None and trace_events != self.config.trace_events:
            overrides["trace_events"] = trace_events
        if overrides:
            self.config = replace(self.config, **overrides)
        self.ledger = EnergyLedger()
        self.hierarchy = CacheHierarchy(
            self.config, self.ledger, wordline_underdrive=wordline_underdrive
        )
        self.tracer = self.hierarchy.tracer
        self.controllers = [
            ComputeCacheController(self.hierarchy, core_id, self.config)
            for core_id in range(self.config.cores)
        ]
        self.cores = [
            CoreModel(self.hierarchy, core_id, self.config,
                      controller=self.controllers[core_id])
            for core_id in range(self.config.cores)
        ]
        self.arena = Arena(self.config.memory_size)
        self.power = PowerModel(self.config)
        self._streams: dict[tuple[int, int], CCInstructionStream] = {}

    # -- data staging --------------------------------------------------------------

    def load(self, addr: int, data: bytes) -> None:
        """Backdoor-initialize memory (no cache traffic).

        Only safe before the range is cached; raises if any block of the
        range is currently resident somewhere in the hierarchy.
        """
        for block in range(addr & ~63, addr + len(data), 64):
            for core in range(self.config.cores):
                if self.hierarchy.l1[core].contains(block) or \
                        self.hierarchy.l2[core].contains(block):
                    raise AddressError(
                        f"backdoor load into cached block {block:#x}; use write()"
                    )
            slice_id = self.hierarchy._page_to_slice.get(block // 4096)
            if slice_id is not None and self.hierarchy.l3[slice_id].contains(block):
                raise AddressError(
                    f"backdoor load into cached block {block:#x}; use write()"
                )
        for controller in self.controllers:
            controller.transpose.invalidate(addr, len(data))
        self.hierarchy.memory.load(addr, data)

    def peek(self, addr: int, size: int) -> bytes:
        """Architecturally-current bytes (coherent, charge-free)."""
        return self.hierarchy.coherent_peek(addr, size)

    def write(self, addr: int, data: bytes, core: int = 0) -> int:
        """Write through the cache hierarchy; returns latency.

        A conventional write reverts any bit-serial (transposed) blocks in
        its range to row-major layout (see :mod:`repro.core.transpose`).
        """
        for controller in self.controllers:
            controller.transpose.invalidate(addr, len(data))
        return self.hierarchy.write(core, addr, data)

    def read(self, addr: int, size: int, core: int = 0) -> bytes:
        """Read through the cache hierarchy."""
        data, _ = self.hierarchy.read(core, addr, size)
        return data

    # -- execution ------------------------------------------------------------------

    def cc(self, instr: CCInstruction, core: int = 0,
           force_level: str | None = None, force_nearplace: bool = False) -> CCResult:
        """Execute one CC instruction on a core's controller."""
        return self.controllers[core].execute(
            instr, force_level=force_level, force_nearplace=force_nearplace
        )

    def run(self, program: Program, core: int = 0) -> RunResult:
        """Execute an instruction stream on a core."""
        return self.cores[core].run(program)

    def cc_stream(self, instrs, core: int = 0, window: int = DEFAULT_WINDOW,
                  force_level: str | None = None,
                  force_nearplace: bool = False) -> StreamResult:
        """Execute a sequence of CC instructions through the stream
        scheduler (:mod:`repro.core.stream`): independent runs fuse into
        shared per-sub-array kernel calls, with per-instruction results
        bit-identical to issuing them one at a time via :meth:`cc`.

        The per-(core, window) scheduler instance is kept so its decode
        and locate memos persist across calls.
        """
        stream = self._streams.get((core, window))
        if stream is None:
            stream = CCInstructionStream(self.controllers[core], window=window)
            self._streams[(core, window)] = stream
        return stream.execute(instrs, force_level=force_level,
                              force_nearplace=force_nearplace)

    # -- topology (multi-cluster NUMA) --------------------------------------------------

    @property
    def topology(self):
        """The machine's :class:`~repro.params.TopologyConfig`."""
        return self.config.topology

    def cluster_of_core(self, core: int) -> int:
        """Cluster a core belongs to (cores partition like ring stops)."""
        stop = core % self.config.ring.stops
        return self.hierarchy.ring.cluster_of(stop)

    def place_page(self, addr: int, slice_id: int) -> None:
        """Home the page containing ``addr`` on an L3 slice (OS hook).

        The NUMA placement lever: homing a working set on another
        cluster's slices makes every miss pay inter-cluster hops.
        """
        self.hierarchy.place_page(addr, slice_id)

    # -- measurement -------------------------------------------------------------------

    def snapshot_energy(self) -> EnergyLedger:
        """Copy of the current dynamic-energy ledger."""
        return self.ledger.copy()

    def energy_since(self, snapshot: EnergyLedger) -> EnergyLedger:
        """Dynamic energy accumulated since a snapshot."""
        delta = EnergyLedger()
        for component, pj in self.ledger.pj.items():
            d = pj - snapshot.get(component)
            if d:
                delta.add(component, d)
        return delta

    def total_energy(self, ledger: EnergyLedger, cycles: float,
                     active_cores: int = 1) -> TotalEnergy:
        """Dynamic + static roll-up for a run of ``cycles``."""
        power = PowerModel(self.config, active_cores=active_cores)
        return power.total_energy(ledger, cycles)

    def reset_energy(self) -> None:
        self.ledger.reset()

    # -- warming helpers (benchmarks) -------------------------------------------------

    def touch_range(self, addr: int, size: int, core: int = 0,
                    for_write: bool = False) -> None:
        """Bring a byte range into the core's caches (warms L1/L2/L3)."""
        for block in range(addr & ~63, addr + size, 64):
            self.hierarchy.access_block(core, block, for_write=for_write)

    def warm_l3(self, addr: int, size: int, core: int = 0) -> None:
        """Place a range in L3 only (resident for CC_L3 experiments):
        touch it, then flush the private copies down."""
        self.touch_range(addr, size, core=core)
        for block in range(addr & ~63, addr + size, 64):
            slice_id = self.hierarchy.home_slice(block, core)
            for level in ("L1", "L2"):
                cache = self.hierarchy.level_cache(level, core, block)
                res = cache.invalidate(block)
                if res and res[1]:
                    self.hierarchy.l3[slice_id].write_block(block, res[0], dirty=True)
            self.hierarchy.directory[slice_id].remove_sharer(block, core)


from ._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "ComputeCacheMachine",
))
