"""repro - a reproduction of "Compute Caches" (Aga et al., HPCA 2017).

Compute Caches re-purpose SRAM cache sub-arrays into very wide vector
compute units via bit-line computing: activating two word-lines at once and
sensing the shared bit-lines computes AND/NOR (and, with the paper's
extensions, XOR, copy, zero, compare, search, and carry-less multiply) over
the stored rows - in place, with no data movement over the cache H-tree,
the on-chip network, or into the core.

Quick start::

    from repro import ComputeCacheMachine
    from repro.core import isa

    m = ComputeCacheMachine()
    a, b, c = m.arena.alloc_colocated(4096, 3)     # operand locality by construction
    m.load(a, bytes(4096))
    m.load(b, b"\\xff" * 4096)
    res = m.cc(isa.cc_or(a, b, c, 4096))           # one instruction, 64 block ops
    assert res.used_inplace
    assert m.peek(c, 4096) == b"\\xff" * 4096

Package layout:

* :mod:`repro.sram`   - bit-accurate compute sub-arrays (the circuit layer);
* :mod:`repro.cache`  - geometry, coherence, interconnects (the substrate);
* :mod:`repro.core`   - CC ISA, controllers, in/near-place execution, ECC;
* :mod:`repro.cpu`    - scalar/SIMD baseline core models;
* :mod:`repro.energy` - Table I/V energies and the McPAT-substitute;
* :mod:`repro.apps`   - the paper's five applications, baseline + CC;
* :mod:`repro.bench`  - harnesses regenerating every table and figure.
"""

from .alloc import Arena, SuperpageArena
from .core import isa as cc_ops
from .core.controller import CCResult, ComputeCacheController
from .core.isa import CCInstruction, Opcode
from .errors import ReproError
from .machine import ComputeCacheMachine
from .params import MachineConfig, sandybridge_8core, small_test_machine

__version__ = "1.0.0"

__all__ = [
    "Arena",
    "SuperpageArena",
    "api",
    "cc_ops",
    "CCResult",
    "ComputeCacheController",
    "CCInstruction",
    "FaultPlan",
    "Opcode",
    "ReproError",
    "ComputeCacheMachine",
    "MachineConfig",
    "sandybridge_8core",
    "small_test_machine",
]


def __getattr__(name: str):
    # Lazy so that ``import repro`` stays light: the façade pulls in the
    # bench runner, the fault subsystem, and the application suite.
    if name == "api":
        import importlib

        return importlib.import_module(".api", __name__)
    if name == "faults":
        import importlib

        return importlib.import_module(".faults", __name__)
    if name == "FaultPlan":
        from .faults.plan import FaultPlan

        return FaultPlan
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
