"""Packed-word fast-path kernels for the Compute Cache functional model.

The bit-exact backend simulates every CC operation through the modeled
circuit: bytes are unpacked into per-bit ``bool`` arrays, bit-lines are
sensed, and masks are assembled bit by bit.  That is the right model for
circuit-level experiments but an 8x memory blow-up and the hot path of
every benchmark.  This package provides the *packed* backend: every
sub-array operation expressed as a vectorized numpy kernel over packed
``uint8`` rows — no bit unpacking anywhere — proven bit-exact against the
circuit model by the differential-equivalence harness
(``tests/test_backend_equivalence.py`` and the ``validate`` battery).
"""

from .packed import (
    POPCOUNT8,
    PackedCellArray,
    arith_rows,
    clmul_mask,
    equality_mask,
    logical_rows,
    pack_flags,
    reduce_rows,
    search_mask,
)

__all__ = [
    "POPCOUNT8",
    "PackedCellArray",
    "arith_rows",
    "clmul_mask",
    "equality_mask",
    "logical_rows",
    "pack_flags",
    "reduce_rows",
    "search_mask",
]
