"""Vectorized packed-byte kernels (the ``packed`` execution backend).

All kernels operate on 2-D ``uint8`` arrays of shape ``(n_ops, row_bytes)``
— one row per simple vector operation — so a CC instruction's worth of
block operations is one numpy call, not a Python loop.  1-D inputs are
treated as a single row.

Conventions (shared with the bit-exact circuit model):

* equality masks put word 0 (the lowest-addressed word) in bit 0
  (``np.packbits(..., bitorder="little")``);
* clmul lane masks put lane 0 in bit 0 and are returned as little-endian
  packed bytes, zero-padded to a whole byte.
"""

from __future__ import annotations

import numpy as np

from ..errors import AddressError

POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)
"""Per-byte popcount lookup table (clmul's XOR-reduction tree)."""

LOGICAL_KERNELS = {
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nor": lambda a, b: ~(a | b),
}

ARITH_DTYPES = {8: "<u1", 16: "<u2", 32: "<u4"}
"""Little-endian unsigned element views for the bit-serial arithmetic tier:
element 0 occupies the lowest-addressed bytes of the row."""


def _as_matrix(arr: np.ndarray) -> np.ndarray:
    """View a kernel operand as ``(n_rows, row_bytes)``."""
    a = np.asarray(arr, dtype=np.uint8)
    return a.reshape(1, -1) if a.ndim == 1 else a


def logical_rows(op: str, a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Bulk bitwise kernel over packed rows: and/or/xor/nor/not/copy/buz.

    ``a`` and ``b`` are ``(n, row_bytes)`` (or 1-D single-row) uint8 arrays;
    the result has ``a``'s shape.  ``buz`` ignores the operand values and
    returns zeros; ``copy`` returns a copy of ``a``.
    """
    a = _as_matrix(a)
    if op == "buz":
        return np.zeros_like(a)
    if op == "copy":
        return a.copy()
    if op == "not":
        return ~a
    try:
        kernel = LOGICAL_KERNELS[op]
    except KeyError:
        raise AddressError(f"no packed kernel for operation {op!r}") from None
    if b is None:
        raise AddressError(f"packed {op} kernel needs two operands")
    return kernel(a, _as_matrix(b))


def pack_flags(flags: np.ndarray) -> np.ndarray:
    """Pack per-chunk boolean flags into integer masks, chunk 0 -> bit 0.

    ``flags`` is ``(n, k)`` with ``k <= 64``; returns ``(n,)`` uint64 masks.
    This replaces the bit-exact model's per-word Python loop
    (``for i, bit in enumerate(equal): mask |= 1 << i``).
    """
    flags = np.asarray(flags, dtype=bool)
    if flags.ndim == 1:
        flags = flags.reshape(1, -1)
    n, k = flags.shape
    if k > 64:
        raise AddressError(f"mask of {k} chunks does not fit a 64-bit register")
    packed = np.packbits(flags, axis=1, bitorder="little")
    out = np.zeros((n, 8), dtype=np.uint8)
    out[:, : packed.shape[1]] = packed
    return out.view("<u8").ravel()


def equality_mask(a: np.ndarray, b: np.ndarray, chunk_bytes: int) -> np.ndarray:
    """Per-chunk equality of packed rows: ``(n,)`` uint64 masks.

    Bit *i* of row *r*'s mask is set iff chunk *i* (``chunk_bytes`` wide,
    chunk 0 lowest-addressed) of ``a[r]`` equals that of ``b[r]`` — the
    wired-NOR word-equality reduction of ``cc_cmp``/``cc_search``, computed
    on packed bytes.
    """
    a, b = _as_matrix(a), _as_matrix(b)
    n, width = a.shape
    if width % chunk_bytes:
        raise AddressError(
            f"row of {width} bytes is not divisible by chunk size {chunk_bytes}"
        )
    differs = (a != b).reshape(n, width // chunk_bytes, chunk_bytes).any(axis=2)
    return pack_flags(~differs)


def search_mask(data: np.ndarray, key: np.ndarray) -> np.ndarray:
    """Whole-row equality of each packed data row against one key row."""
    data = _as_matrix(data)
    key = _as_matrix(key)
    return equality_mask(data, np.broadcast_to(key, data.shape), data.shape[1])


def clmul_mask(a: np.ndarray, b: np.ndarray, lane_bits: int) -> np.ndarray:
    """Carry-less multiply: per-lane parity of popcount(a & b).

    Returns ``(n,)`` uint64 masks with lane 0 in bit 0 — the XOR-reduction
    tree of ``cc_clmul`` evaluated with a byte-popcount table instead of
    per-bit expansion.
    """
    a, b = _as_matrix(a), _as_matrix(b)
    n, width = a.shape
    lane_bytes = lane_bits // 8
    if width % lane_bytes:
        raise AddressError(
            f"row of {width} bytes is not divisible by lane size {lane_bytes}"
        )
    counts = POPCOUNT8[a & b].reshape(n, width // lane_bytes, lane_bytes)
    parity = counts.sum(axis=2, dtype=np.uint32) & 1
    return pack_flags(parity.astype(bool))


def _elem_view(a: np.ndarray, elem_bits: int) -> np.ndarray:
    """View packed rows as ``(n, n_elems)`` unsigned elements."""
    try:
        dtype = ARITH_DTYPES[elem_bits]
    except KeyError:
        raise AddressError(f"no packed arithmetic for {elem_bits}-bit elements") from None
    a = _as_matrix(a)
    if a.shape[1] % (elem_bits // 8):
        raise AddressError(
            f"row of {a.shape[1]} bytes is not divisible by "
            f"{elem_bits // 8}-byte elements"
        )
    return np.ascontiguousarray(a).view(dtype)


def arith_rows(op: str, a: np.ndarray, b: np.ndarray, elem_bits: int) -> np.ndarray:
    """Element-wise bit-serial arithmetic over packed rows: add/mul.

    ``a`` and ``b`` are ``(n, row_bytes)`` (or 1-D single-row) uint8 arrays
    interpreted as little-endian ``elem_bits``-wide unsigned integers; the
    result wraps modulo ``2^elem_bits`` (numpy unsigned semantics) and is
    returned re-packed as uint8 with ``a``'s matrix shape.
    """
    ea = _elem_view(a, elem_bits)
    eb = _elem_view(b, elem_bits)
    if op == "add":
        out = ea + eb
    elif op == "mul":
        out = ea * eb
    else:
        raise AddressError(f"no packed arithmetic kernel for operation {op!r}")
    return out.view(np.uint8)


def reduce_rows(a: np.ndarray, elem_bits: int) -> np.ndarray:
    """Per-row element sum modulo ``2^64``: ``(n,)`` uint64 accumulators.

    The bit-serial reduction tree of ``cc_reduce`` evaluated as one numpy
    sum per packed row (zero-extended elements, 64-bit wraparound).
    """
    ea = _elem_view(a, elem_bits)
    return ea.astype(np.uint64).sum(axis=1, dtype=np.uint64)


class PackedCellArray:
    """Packed-byte storage for one sub-array (the fast-path data plane).

    Drop-in replacement for the data-plane surface of
    :class:`~repro.sram.bitcell.BitCellArray`: same ``rows``/``cols`` shape
    and the same ``read_row``/``write_row``/``snapshot`` bit-level accessors
    (used by scrubbing, ECC, and ``peek`` backdoors), but the backing store
    is one ``uint8`` byte per 8 bit-cells and the hot accessors move packed
    bytes without ever unpacking.

    Circuit physics (multi-row activation, write-disturb, sense amps) is
    *not* modeled here; sub-arrays configured with circuit-level options
    (``wordline_underdrive=False``) fall back to the bit-exact backend.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise AddressError(f"invalid cell array shape {rows}x{cols}")
        if cols % 8:
            raise AddressError(f"packed array width {cols} is not a whole number of bytes")
        self.rows = rows
        self.cols = cols
        self.row_bytes = cols // 8
        self.data = np.zeros((rows, self.row_bytes), dtype=np.uint8)

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise AddressError(f"row {row} outside array of {self.rows} rows")

    # -- packed fast path -----------------------------------------------------

    def row(self, row: int) -> np.ndarray:
        """Zero-copy uint8 view of one row."""
        self._check_row(row)
        return self.data[row]

    def read_rows(self, rows) -> np.ndarray:
        """Gather ``(k, row_bytes)`` packed rows (one batched kernel input)."""
        return self.data[np.asarray(rows, dtype=np.intp)]

    def write_rows(self, rows, values: np.ndarray) -> None:
        """Scatter packed rows back (one batched kernel output)."""
        self.data[np.asarray(rows, dtype=np.intp)] = values

    def read_row_bytes(self, row: int) -> bytes:
        self._check_row(row)
        return self.data[row].tobytes()

    def write_row_bytes(self, row: int, data: bytes) -> None:
        self._check_row(row)
        if len(data) != self.row_bytes:
            raise AddressError(
                f"row write of {len(data)} bytes into {self.row_bytes}-byte row"
            )
        self.data[row] = np.frombuffer(data, dtype=np.uint8)

    # -- bit-level compatibility surface (scrub/ECC/peek backdoors) -----------

    def read_row(self, row: int) -> np.ndarray:
        """Row as a bool bit array (MSB-first), matching BitCellArray."""
        self._check_row(row)
        return np.unpackbits(self.data[row]).astype(bool)

    def write_row(self, row: int, bits: np.ndarray) -> None:
        """Write a row given as a bool bit array, matching BitCellArray."""
        self._check_row(row)
        if bits.size != self.cols:
            raise AddressError(f"row write of {bits.size} bits into {self.cols} columns")
        self.data[row] = np.packbits(np.asarray(bits, dtype=bool))

    def snapshot(self) -> np.ndarray:
        """Copy of the whole array as bits (tests and scrubbing)."""
        return np.unpackbits(self.data, axis=1).astype(bool)
