"""Static + dynamic power roll-up (McPAT-substitute).

McPAT gives the paper per-structure dynamic energies (consumed via
:mod:`repro.energy.tables`) and leakage power.  This module supplies the
leakage side: total energy = dynamic (from the ledger) + static power x
execution time.  Static power is split into a core and an uncore component
so the ``core-static`` / ``uncore-static`` bars of Figures 7(c), 8(a) and 11
can be reproduced.  Reduced execution time is the lever by which Compute
Caches reduce static energy (Section VI-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import CoreConfig, MachineConfig
from .accounting import Component, EnergyLedger


@dataclass(frozen=True)
class TotalEnergy:
    """The four bars of a Figure 7(c)-style stacked total-energy plot (nJ)."""

    core_dynamic: float
    uncore_dynamic: float
    core_static: float
    uncore_static: float

    @property
    def total(self) -> float:
        return (
            self.core_dynamic + self.uncore_dynamic + self.core_static + self.uncore_static
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "core-dynamic": self.core_dynamic,
            "uncore-dynamic": self.uncore_dynamic,
            "core-static": self.core_static,
            "uncore-static": self.uncore_static,
        }


class PowerModel:
    """Combines an :class:`EnergyLedger` with leakage power over time."""

    def __init__(self, config: MachineConfig, active_cores: int = 1) -> None:
        self.config = config
        self.active_cores = active_cores

    def _seconds(self, cycles: float, core: CoreConfig) -> float:
        return cycles * core.cycle_ns * 1e-9

    def total_energy(self, ledger: EnergyLedger, cycles: float) -> TotalEnergy:
        """Roll up a run's dynamic ledger and cycle count into total energy (nJ)."""
        core = self.config.core
        seconds = self._seconds(cycles, core)
        core_static_nj = core.static_power_core_mw * 1e-3 * self.active_cores * seconds * 1e9
        uncore_static_nj = self.config.static_power_uncore_mw * 1e-3 * seconds * 1e9
        core_dynamic_nj = ledger.core() / 1000.0
        uncore_dynamic_nj = (ledger.total() - ledger.core()) / 1000.0
        return TotalEnergy(
            core_dynamic=core_dynamic_nj,
            uncore_dynamic=uncore_dynamic_nj,
            core_static=core_static_nj,
            uncore_static=uncore_static_nj,
        )

    def static_power_watts(self) -> float:
        """Total leakage power of active cores + uncore, in watts."""
        return (
            self.config.core.static_power_core_mw * self.active_cores
            + self.config.static_power_uncore_mw
        ) * 1e-3


def charge_cache_read(ledger: EnergyLedger, level_name: str) -> None:
    """Charge one conventional 64-byte read at ``level_name`` to a ledger,
    split into access and H-tree components per Table I proportions."""
    from .tables import CACHE_ACCESS_ENERGY_PJ, CACHE_IC_ENERGY_PJ, read_energy

    access_c, ic_c = Component.for_level(level_name)
    table_level = "L1-D" if level_name.startswith("L1") else level_name
    ic = CACHE_IC_ENERGY_PJ[table_level]
    array = CACHE_ACCESS_ENERGY_PJ[table_level]
    total = read_energy(table_level)
    scale = total / (ic + array)
    ledger.add(access_c, array * scale)
    ledger.add(ic_c, ic * scale)


def charge_cache_write(ledger: EnergyLedger, level_name: str) -> None:
    """Charge one conventional 64-byte write, split like a read.

    Table I only reports the read split; writes use the same ic/access
    proportion applied to the Table V write energy.
    """
    from .tables import CACHE_ACCESS_ENERGY_PJ, CACHE_IC_ENERGY_PJ, write_energy

    access_c, ic_c = Component.for_level(level_name)
    table_level = "L1-D" if level_name.startswith("L1") else level_name
    ic = CACHE_IC_ENERGY_PJ[table_level]
    array = CACHE_ACCESS_ENERGY_PJ[table_level]
    total = write_energy(table_level)
    scale = total / (ic + array)
    ledger.add(access_c, array * scale)
    ledger.add(ic_c, ic * scale)


def charge_cc_op(ledger: EnergyLedger, level_name: str, op: str) -> None:
    """Charge one in-place CC block operation.

    In-place operations never traverse the H-tree, so the whole Table V
    energy lands on the ``*-access`` component.
    """
    from .tables import cc_op_energy

    access_c, _ = Component.for_level(level_name)
    table_level = "L1-D" if level_name.startswith("L1") else level_name
    ledger.add(access_c, cc_op_energy(table_level, op))


def charge_cc_arith(ledger: EnergyLedger, level_name: str, op: str,
                    elem_bits: int, n_elems: int | None = None) -> None:
    """Charge one in-place bit-serial arithmetic block operation.

    Like :func:`charge_cc_op` the energy never traverses the H-tree, but
    it scales with the bit-serial step count (Table V logic energy per
    step, see :func:`repro.energy.tables.cc_arith_energy`).
    """
    from .tables import cc_arith_energy

    access_c, _ = Component.for_level(level_name)
    table_level = "L1-D" if level_name.startswith("L1") else level_name
    ledger.add(access_c, cc_arith_energy(table_level, op, elem_bits, n_elems))


def charge_transpose(ledger: EnergyLedger, level_name: str, blocks: int) -> None:
    """Charge ``blocks`` row-major <-> bit-serial layout conversions.

    Each conversion is one data-array read plus one write through the
    sub-array-periphery transpose unit (no H-tree component)."""
    from .tables import transpose_energy

    if blocks <= 0:
        return
    access_c, _ = Component.for_level(level_name)
    table_level = "L1-D" if level_name.startswith("L1") else level_name
    ledger.add(access_c, blocks * transpose_energy(table_level))


def charge_key_broadcast(ledger: EnergyLedger, level_name: str) -> None:
    """One H-tree broadcast of a 64-byte key to all target sub-arrays.

    The H-tree is a fanout tree: driving the key onto it once reaches every
    leaf, so a multi-partition key replication pays the wire energy once
    (charged at 2x the single-path Table I value to cover the fully-
    switched tree) plus a per-partition array write
    (:func:`charge_key_row_write`).
    """
    from .tables import CACHE_IC_ENERGY_PJ

    _, ic_c = Component.for_level(level_name)
    table_level = "L1-D" if level_name.startswith("L1") else level_name
    ledger.add(ic_c, 2.0 * CACHE_IC_ENERGY_PJ[table_level])


def charge_key_row_write(ledger: EnergyLedger, level_name: str) -> None:
    """The data-array portion of one key-row write (no H-tree component -
    that is paid once by :func:`charge_key_broadcast`)."""
    from .tables import CACHE_IC_ENERGY_PJ, write_energy

    access_c, _ = Component.for_level(level_name)
    table_level = "L1-D" if level_name.startswith("L1") else level_name
    ledger.add(access_c, write_energy(table_level) - CACHE_IC_ENERGY_PJ[table_level])


def charge_nearplace_op(ledger: EnergyLedger, level_name: str, op: str) -> None:
    """Charge one near-place CC block operation.

    Near-place reads operands over the H-tree to the controller's logic
    unit and writes any result back, so it pays conventional read/write
    energy (including the H-tree component) instead of the in-place cost.
    """
    from .tables import read_energy, write_energy

    table_level = "L1-D" if level_name.startswith("L1") else level_name
    reads = {"copy": 1, "buz": 0, "not": 1, "cmp": 2, "search": 2,
             "reduce": 1}.get(op, 2)
    writes = 0 if op in ("cmp", "search", "reduce") else 1
    for _ in range(reads):
        charge_cache_read(ledger, level_name)
    for _ in range(writes):
        charge_cache_write(ledger, level_name)
    del read_energy, write_energy
