"""Published energy constants from the paper (Tables I and V).

All values are picojoules per 64-byte cache block.  ``L3`` refers to one
2 MB NUCA slice.

Table I (energy per read access, split into the H-tree interconnect inside
the cache and the data-array access itself)::

    cache     cache-ic (h-tree)   cache-access
    L1-D      179 pJ              116 pJ
    L2        675 pJ              127 pJ
    L3-slice  1985 pJ             467 pJ

Table V (energy per cache-block operation)::

    cache  write  read  cmp   copy  search  not   logic
    L3     2852   2452  840   1340  3692    1340  1672
    L2     1154   802   242   608   1396    608   704
    L1     375    295   186   324   561     324   387

The CC-operation energies avoid the H-tree transfer entirely (the dominant
read-energy term for large caches), which is where most of the in-place
advantage comes from.  ``search`` includes one key-replication write
(3692 = 840 cmp + 2852 write for L3), amortized over large searches.
"""

from __future__ import annotations

from ..errors import ConfigError, ISAError

L1 = "L1-D"
L2 = "L2"
L3 = "L3-slice"

LEVELS = (L1, L2, L3)

CACHE_IC_ENERGY_PJ: dict[str, float] = {L1: 179.0, L2: 675.0, L3: 1985.0}
"""Table I: H-tree interconnect energy per read access."""

CACHE_ACCESS_ENERGY_PJ: dict[str, float] = {L1: 116.0, L2: 127.0, L3: 467.0}
"""Table I: data-array access energy per read access."""

CC_OP_ENERGY_PJ: dict[str, dict[str, float]] = {
    L3: {
        "write": 2852.0,
        "read": 2452.0,
        "cmp": 840.0,
        "copy": 1340.0,
        "search": 3692.0,
        "not": 1340.0,
        "logic": 1672.0,
    },
    L2: {
        "write": 1154.0,
        "read": 802.0,
        "cmp": 242.0,
        "copy": 608.0,
        "search": 1396.0,
        "not": 608.0,
        "logic": 704.0,
    },
    L1: {
        "write": 375.0,
        "read": 295.0,
        "cmp": 186.0,
        "copy": 324.0,
        "search": 561.0,
        "not": 324.0,
        "logic": 387.0,
    },
}
"""Table V: per-64-byte-block energy of cache and CC operations."""

_OP_COLUMN = {
    "read": "read",
    "write": "write",
    "cmp": "cmp",
    "search": "search",
    "copy": "copy",
    "buz": "copy",
    "not": "not",
    "and": "logic",
    "or": "logic",
    "nor": "logic",
    "xor": "logic",
    "clmul": "cmp",
    "add": "logic",
    "mul": "logic",
    "reduce": "logic",
}
"""Maps sub-array op names onto Table V columns.  ``buz`` shares the copy
column (same write-only data path); ``clmul`` shares the cmp column (same
1.5x energy class per Section VI-C).  The bit-serial arithmetic ops
(``add``/``mul``/``reduce``) charge the logic column *per bit-serial step*
— use :func:`cc_arith_energy`, which scales by the step count, rather than
:func:`cc_op_energy` directly."""


def _level_table(level: str) -> dict[str, float]:
    try:
        return CC_OP_ENERGY_PJ[level]
    except KeyError:
        raise ConfigError(f"no energy table for cache level {level!r}") from None


def read_energy(level: str) -> float:
    """Energy of one conventional 64-byte read at ``level`` (pJ)."""
    return _level_table(level)["read"]


def write_energy(level: str) -> float:
    """Energy of one conventional 64-byte write at ``level`` (pJ)."""
    return _level_table(level)["write"]


def cc_op_energy(level: str, op: str) -> float:
    """Energy of one CC block operation ``op`` at ``level`` (pJ)."""
    table = _level_table(level)
    try:
        return table[_OP_COLUMN[op]]
    except KeyError:
        raise ISAError(f"unknown CC operation {op!r}") from None


def cc_arith_energy(level: str, op: str, elem_bits: int,
                    n_elems: int | None = None) -> float:
    """Energy of one bit-serial arithmetic block operation (pJ).

    Each bit-serial step is a dual-row activation of the same circuit
    class as the logical ops, so the per-op energy is the Table V logic
    energy scaled by the step count (:func:`repro.sram.timing.arith_steps`).
    ``n_elems`` (elements per block) is required for ``reduce``.
    """
    from ..sram.timing import arith_steps

    return arith_steps(op, elem_bits, n_elems) * cc_op_energy(level, op)


def transpose_energy(level: str) -> float:
    """Energy of converting one block between row-major and bit-serial
    layout (pJ).

    The transpose unit sits at the sub-array periphery (Neural Cache
    Section 5): one data-array read plus one data-array write, with no
    H-tree traversal — the Table V read/write energies minus their
    Table I interconnect shares.
    """
    ic = CACHE_IC_ENERGY_PJ[level]
    table = _level_table(level)
    return max(table["read"] - ic, 0.0) + max(table["write"] - ic, 0.0)


def htree_fraction(level: str) -> float:
    """Fraction of a read access spent in the H-tree (Table I).

    Roughly 60% for L1 and 80% for L2/L3 - the share of data-movement
    energy that *only* in-place computation (not near-place) can eliminate.
    """
    ic = CACHE_IC_ENERGY_PJ[level]
    return ic / (ic + CACHE_ACCESS_ENERGY_PJ[level])
