"""Component-wise dynamic-energy accounting.

The paper's energy figures break dynamic energy into four components:
``core`` (instruction processing), ``cache-access`` (data arrays),
``cache-ic`` (in-cache H-tree interconnect), and ``noc`` (ring).  The
per-level split (``l1-access``, ``l2-ic``, ...) is additionally needed for
Figure 8(b).  :class:`EnergyLedger` accumulates pJ per component and offers
the groupings used by each figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Component:
    """Canonical component names used across the library."""

    CORE = "core"
    L1_ACCESS = "l1-access"
    L1_IC = "l1-ic"
    L2_ACCESS = "l2-access"
    L2_IC = "l2-ic"
    L3_ACCESS = "l3-access"
    L3_IC = "l3-ic"
    NOC = "noc"
    MEMORY = "memory"

    ACCESS = (L1_ACCESS, L2_ACCESS, L3_ACCESS)
    IC = (L1_IC, L2_IC, L3_IC)
    ALL = (CORE, L1_ACCESS, L1_IC, L2_ACCESS, L2_IC, L3_ACCESS, L3_IC, NOC, MEMORY)

    _BY_LEVEL = {
        "L1-D": (L1_ACCESS, L1_IC),
        "L1-I": (L1_ACCESS, L1_IC),
        "L2": (L2_ACCESS, L2_IC),
        "L3-slice": (L3_ACCESS, L3_IC),
    }

    @classmethod
    def for_level(cls, level_name: str) -> tuple[str, str]:
        """``(access, ic)`` component names for a cache level."""
        return cls._BY_LEVEL[level_name]


@dataclass
class EnergyLedger:
    """Accumulates dynamic energy (pJ) per component."""

    pj: dict[str, float] = field(default_factory=dict)

    def add(self, component: str, picojoules: float) -> None:
        """Charge ``picojoules`` to ``component``."""
        self.pj[component] = self.pj.get(component, 0.0) + picojoules

    def get(self, component: str) -> float:
        return self.pj.get(component, 0.0)

    def total(self) -> float:
        """Total dynamic energy in pJ."""
        return sum(self.pj.values())

    def total_nj(self) -> float:
        return self.total() / 1000.0

    # -- groupings used by the paper's figures -------------------------------

    def core(self) -> float:
        return self.get(Component.CORE)

    def cache_access(self) -> float:
        """Figure 7(b) ``cache-access`` bar segment."""
        return sum(self.get(c) for c in Component.ACCESS)

    def cache_ic(self) -> float:
        """Figure 7(b) ``cache-ic`` bar segment."""
        return sum(self.get(c) for c in Component.IC)

    def noc(self) -> float:
        return self.get(Component.NOC)

    def data_movement(self) -> float:
        """Everything except the core component (Section VI-D definition)."""
        return self.total() - self.core()

    def breakdown(self) -> dict[str, float]:
        """Figure 7(b)-style four-way breakdown, in pJ."""
        return {
            "core": self.core(),
            "cache-access": self.cache_access(),
            "cache-ic": self.cache_ic(),
            "noc": self.noc(),
        }

    def by_level(self) -> dict[str, float]:
        """Figure 8(b)-style per-component breakdown, in pJ."""
        return {c: self.get(c) for c in Component.ALL if self.get(c)}

    # -- arithmetic -----------------------------------------------------------

    def copy(self) -> "EnergyLedger":
        return EnergyLedger(dict(self.pj))

    def diff(self, other: "EnergyLedger") -> dict[str, float]:
        """Per-component savings of ``self`` relative to ``other``
        (positive values mean ``other`` spends more)."""
        keys = set(self.pj) | set(other.pj)
        return {k: other.get(k) - self.get(k) for k in sorted(keys)}

    def merge(self, other: "EnergyLedger") -> None:
        for component, pj in other.pj.items():
            self.add(component, pj)

    def reset(self) -> None:
        self.pj.clear()
