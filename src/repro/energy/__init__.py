"""Energy modeling (McPAT-substitute) for the Compute Caches reproduction.

The paper derives cache energies from McPAT and SPICE and prints the
constants it uses; this package consumes those published constants directly:

* Table I  - per-read H-tree (``cache-ic``) vs data-array (``cache-access``)
  energy for L1-D, L2, and an L3 slice;
* Table V  - per-64-byte-block energy of every CC operation at every level;
* Section VI-C - relative delay/energy multipliers for compute sub-arrays.

:class:`~repro.energy.accounting.EnergyLedger` accumulates dynamic energy by
component (core, per-level access, per-level interconnect, NoC) to reproduce
the stacked-bar breakdowns of Figures 7, 8, and 11, and
:class:`~repro.energy.mcpat.PowerModel` adds the static (leakage) terms.
"""

from .accounting import Component, EnergyLedger
from .mcpat import PowerModel
from .tables import (
    CACHE_ACCESS_ENERGY_PJ,
    CACHE_IC_ENERGY_PJ,
    CC_OP_ENERGY_PJ,
    cc_op_energy,
    read_energy,
    write_energy,
)

__all__ = [
    "Component",
    "EnergyLedger",
    "PowerModel",
    "CACHE_ACCESS_ENERGY_PJ",
    "CACHE_IC_ENERGY_PJ",
    "CC_OP_ENERGY_PJ",
    "cc_op_energy",
    "read_energy",
    "write_energy",
]
