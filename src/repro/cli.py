"""Command-line interface: regenerate the paper's exhibits from a shell.

Usage::

    python -m repro bench <suite>    # any benchmark suite (fig3-fig11,
                                     # sweeps, qdnn, speed, streambw,
                                     # crypto) behind one dispatcher
    python -m repro bench fig7       # micro-benchmarks (Fig 7a-c)
    python -m repro bench fig9 --scale 0.5
                                     # applications (Fig 9a-b)
    python -m repro bench speed --instructions 32 --passes 4
                                     # sustained simulator throughput
                                     # -> BENCH_speed.json
    python -m repro bench streambw --clusters 1,2,4
                                     # STREAM NUMA bandwidth sweep
                                     # -> BENCH_streambw.json
    python -m repro bench crypto     # GHASH/CRC/NTT on cc_clmul + fault
                                     # study -> BENCH_crypto.json
    python -m repro tables           # Tables I, III, V
    python -m repro demo             # quickstart walkthrough
    python -m repro export --full --jobs 4
                                     # machine-readable results JSON
    python -m repro profile t.trace --chrome-trace t.json
                                     # cycle-attribution profile of a trace
    python -m repro serve --port 8765 --workers 4
                                     # simulation job service (HTTP/JSON)
    python -m repro loadgen --requests 1000 --concurrency 32
                                     # load-test a service -> BENCH_serve.json

Every ``bench`` suite shares one flag set — ``--jobs N`` (process-pool
parallelism), ``--no-cache``, ``--cache-dir``, the simulation trio
``--backend``/``--trace-events``/``--seed``, and ``--out`` — see
``docs/benchmarks.md`` for the runner architecture and cache semantics.
The suite registry lives in :mod:`repro.bench.suites`
(``repro.api.bench_suites()``).

The pre-``bench`` per-suite subcommands (``repro fig7``, ``repro
speed``, ...) keep working as deprecated aliases that emit a
``DeprecationWarning``; the ``faults`` subcommand runs a deterministic
fault-injection campaign and prints a resilience report (see
``docs/faults.md``).
"""

from __future__ import annotations

import argparse
import sys

from .params import BACKENDS


def _runner_from(args):
    """Build the sweep runner a figure/export command was asked for."""
    from .bench.runner import PointRunner

    return PointRunner(jobs=args.jobs, cache_dir=args.cache_dir,
                       use_cache=not args.no_cache,
                       backend=getattr(args, "backend", None))


def _finish_runner(runner, args=None) -> None:
    """The post-command cache-stats footer (grepped by CI); with
    ``--trace-events``, also the runner's wall-clock attribution."""
    if args is not None and getattr(args, "trace_events", False):
        from .bench.runner import format_runner_profile

        print()
        print(format_runner_profile(runner.tracer))
    print()
    print(runner.stats.line())


def _cmd_tables(_args) -> None:
    from .bench.microbench import table1_rows, table3_rows, table5_rows
    from .bench.report import render_table

    print(render_table(table1_rows(), "Table I: cache energy per read access"))
    print()
    print(render_table(table3_rows(), "Table III: geometry & operand locality"))
    print()
    print(render_table(table5_rows(), "Table V: CC energy (pJ) per 64-byte block"))


def _cmd_fig3(args) -> None:
    from .bench.microbench import figure3_energy_proportions
    from .bench.report import render_table

    rows = [
        {"config": cfg, **vals}
        for cfg, vals in figure3_energy_proportions(
            backend=args.backend, seed=args.seed).items()
    ]
    print(render_table(rows, "Figure 3: bulk-compare energy proportions"))


def _cmd_fig7(args) -> None:
    from .bench.microbench import figure7, figure7_summary
    from .bench.report import render_figure7

    runner = _runner_from(args)
    results = figure7(size=args.size, runner=runner,
                      backend=args.backend, seed=args.seed)
    print(render_figure7(results))
    print()
    for key, value in figure7_summary(results).items():
        print(f"  {key}: {value:.2f}")
    _finish_runner(runner, args)


def _cmd_fig8(args) -> None:
    from .bench.microbench import figure8a_inplace_vs_nearplace, figure8b_levels
    from .bench.report import render_table

    runner = _runner_from(args)
    rows = []
    for kernel, pair in figure8a_inplace_vs_nearplace(
            args.size, runner=runner, backend=args.backend,
            seed=args.seed).items():
        rows.append({
            "kernel": kernel,
            "in-place nJ": pair["inplace"].total_energy_nj,
            "near-place nJ": pair["nearplace"].total_energy_nj,
            "energy ratio": pair["nearplace"].total_energy_nj
            / pair["inplace"].total_energy_nj,
            "throughput ratio": pair["nearplace"].steady_cycles
            / pair["inplace"].steady_cycles,
        })
    print(render_table(rows, "Figure 8(a): in-place vs near-place"))
    print()
    rows = []
    for kernel, levels in figure8b_levels(args.size, runner=runner,
                                          backend=args.backend,
                                          seed=args.seed).items():
        for level, d in levels.items():
            rows.append({
                "kernel": kernel, "level": level,
                "savings nJ": d["total_savings_pj"] / 1000,
                "savings fraction": d["savings_fraction"],
            })
    print(render_table(rows, "Figure 8(b): dynamic-energy savings by level"))
    _finish_runner(runner, args)


def _cmd_fig9(args) -> None:
    from .bench.appbench import figure9
    from .bench.report import render_figure9

    runner = _runner_from(args)
    print(render_figure9(figure9(scale=args.scale, runner=runner,
                                 backend=args.backend, seed=args.seed)))
    _finish_runner(runner, args)


def _cmd_qdnn(args) -> None:
    from .bench.appbench import figure_qdnn
    from .bench.report import render_figure9

    runner = _runner_from(args)
    summary = figure_qdnn(scale=args.scale, runner=runner,
                          backend=args.backend, seed=args.seed)
    print(render_figure9({"qdnn": summary}))
    print(f"  instructions: {summary.baseline_instructions} baseline -> "
          f"{summary.cc_instructions} CC")
    _finish_runner(runner, args)


def _cmd_docscheck(args) -> None:
    from pathlib import Path

    from .docscheck import run_docscheck, write_isa_table

    if args.write_isa_table:
        write_isa_table(Path(args.root) if args.root else Path.cwd())
        print("docs/isa.md: generated ISA table rewritten")
        return
    errors = run_docscheck(args.root, examples=not args.no_examples,
                           verbose=args.verbose)
    if errors:
        for err in errors:
            print(f"FAIL {err}")
        raise SystemExit(1)
    print("docscheck: all documentation checks passed")


def _cmd_fig10(args) -> None:
    from .bench.checkpointbench import figure10_overheads, summarize_overheads
    from .bench.report import render_figure10

    runner = _runner_from(args)
    overheads = figure10_overheads(intervals=args.intervals, runner=runner,
                                   backend=args.backend)
    print(render_figure10(overheads))
    print()
    for key, value in summarize_overheads(overheads).items():
        print(f"  {key}: {value:.1%}")
    _finish_runner(runner, args)


def _cmd_fig11(args) -> None:
    from .bench.checkpointbench import figure11_energy
    from .bench.report import render_figure11

    runner = _runner_from(args)
    print(render_figure11(figure11_energy(intervals=args.intervals,
                                          runner=runner,
                                          backend=args.backend)))
    _finish_runner(runner, args)


def _cmd_sweeps(args) -> None:
    from .bench.report import render_table
    from .bench.runner import format_runner_profile
    from .bench.sweeps import (
        noc_distance_sweep,
        operand_size_sweep,
        partition_parallelism_sweep,
        wordline_activation_sweep,
    )

    runner = _runner_from(args)
    print(render_table(operand_size_sweep(kernel=args.kernel, runner=runner,
                                          backend=args.backend,
                                          seed=args.seed),
                       f"Operand-size sweep ({args.kernel})"))
    print()
    print(render_table(partition_parallelism_sweep(runner=runner,
                                                   backend=args.backend,
                                                   seed=args.seed),
                       "Partition-parallelism sweep (copy)"))
    print()
    print(render_table(wordline_activation_sweep(),
                       "Word-line activation sweep"))
    print()
    print(render_table(noc_distance_sweep(), "NoC distance sweep"))
    print()
    print(format_runner_profile(runner.tracer))
    _finish_runner(runner, args)


def _cmd_demo(args) -> None:
    import random

    from . import ComputeCacheMachine, cc_ops

    m = ComputeCacheMachine(backend=args.backend,
                            trace_events=args.trace_events or None)
    a, b, c = m.arena.alloc_colocated(4096, 3)
    if args.seed is None:
        m.load(a, bytes(range(256)) * 16)
    else:
        m.load(a, random.Random(f"{args.seed}:demo").randbytes(4096))
    m.load(b, b"\x0f" * 4096)
    res = m.cc(cc_ops.cc_and(a, b, c, 4096))
    print(f"cc_and over 4 KB: level={res.level}, {res.inplace_ops} in-place "
          f"block ops, {res.cycles:.0f} cycles")
    print(f"first 16 result bytes: {m.peek(c, 16).hex()}")
    print(f"dynamic energy: {m.ledger.total_nj():.1f} nJ "
          f"({m.ledger.breakdown()})")
    if args.trace_events:
        from collections import Counter

        counts = Counter(e.kind for e in m.tracer.snapshot())
        print("events: " + ", ".join(f"{kind}: {n}"
                                     for kind, n in sorted(counts.items())))


def _cmd_profile(args) -> None:
    from .events import format_profile, profile_trace, write_chrome_trace
    from .machine import ComputeCacheMachine
    from .params import sandybridge_8core, small_test_machine

    config = (small_test_machine() if args.machine == "small"
              else sandybridge_8core())
    if args.buffer is not None:
        from dataclasses import replace
        config = replace(config, event_buffer_capacity=args.buffer)
    machine = ComputeCacheMachine(config, backend=args.backend,
                                  trace_events=True)
    with open(args.trace, encoding="utf-8") as handle:
        text = handle.read()
    profile, result, machine = profile_trace(text, machine=machine)
    print(f"trace: {args.trace}  "
          f"({result.instructions:,} instructions, "
          f"{result.cc_instructions:,} CC, "
          f"{result.cycles:,.1f} cycles, "
          f"{result.dynamic_nj:,.1f} nJ dynamic)")
    print()
    print(format_profile(profile))
    if args.chrome_trace:
        write_chrome_trace(machine.tracer.snapshot(), args.chrome_trace)
        print()
        print(f"wrote Chrome-trace JSON to {args.chrome_trace} "
              f"(load in Perfetto / chrome://tracing)")
    if not profile.validate(result.cycles):
        sys.exit(1)


def _cmd_validate(args) -> None:
    from .validate import run_validation

    if not run_validation(backend=args.backend):
        sys.exit(1)


def _cmd_export(args) -> None:
    from .bench.export import write_results

    runner = _runner_from(args)
    doc = write_results(args.out, full=args.full, runner=runner,
                        backend=args.backend)
    exhibits = [k for k in doc if k.startswith(("table", "figure"))]
    print(f"wrote {args.out}: {len(exhibits)} exhibits, "
          f"validation_ok={doc['validation_ok']}")
    _finish_runner(runner, args)


def _cmd_serve(args) -> None:
    import asyncio

    from .serve import JobService, ReproServer

    async def main() -> None:
        journal = None
        if not args.no_journal:
            journal = args.journal or f"{args.cache_dir}/serve-journal.jsonl"
        service = JobService(
            workers=args.workers, cache_dir=args.cache_dir,
            use_cache=not args.no_cache, backend=args.backend,
            max_queue=args.max_queue, timeout_s=args.job_timeout,
            retries=args.retries, journal_path=journal,
            pool_jobs=args.jobs)
        server = ReproServer(service, host=args.host, port=args.port)
        await server.start()
        print(f"repro serve listening on {server.url} "
              f"(workers={args.workers}, cache="
              f"{'off' if args.no_cache else args.cache_dir}, "
              f"journal={journal or 'off'})", flush=True)

        import contextlib
        import signal

        loop = asyncio.get_running_loop()
        drain = asyncio.Event()
        with contextlib.suppress(NotImplementedError):
            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(sig, drain.set)
        waiter = asyncio.create_task(drain.wait())
        stopped = asyncio.create_task(server.serve_until_stopped())
        await asyncio.wait({waiter, stopped},
                           return_when=asyncio.FIRST_COMPLETED)
        if drain.is_set():
            print("draining...", flush=True)
            await server.stop(drain=True)
        waiter.cancel()
        stopped.cancel()
        if args.trace_events:
            from .bench.runner import format_runner_profile

            print(format_runner_profile(service.tracer))
        print(service.stats.line())

    asyncio.run(main())


def _cmd_loadgen(args) -> None:
    import asyncio

    from .bench.report import write_bench
    from .serve.loadgen import LoadgenConfig, run_loadgen, summarize

    cfg = LoadgenConfig(
        url=args.url, requests=args.requests, concurrency=args.concurrency,
        distinct=args.distinct, distribution=args.distribution,
        zipf_s=args.zipf_s, seed=args.seed if args.seed is not None else 0,
        point=args.point, sleep_ms=args.sleep_ms,
        contract_p99_ms=args.contract_p99_ms, workers=args.workers,
        cache_dir=args.cache_dir, use_cache=not args.no_cache,
        backend=args.backend)
    doc = asyncio.run(run_loadgen(cfg))
    write_bench(doc, args.out)
    print(summarize(doc))
    print(f"wrote {args.out}")
    metrics = doc["metrics"]
    ok = (metrics["lost"] == 0 and metrics["duplicated"] == 0
          and metrics["inconsistent"] == 0 and doc["contract"]["passed"])
    if not ok:
        sys.exit(1)


def _cmd_speed(args) -> None:
    import json

    from .bench.report import write_bench
    from .bench.speed import SpeedConfig, run_speed, summarize

    baseline = None
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    if args.backend is not None:
        backends = (args.backend,)
    else:
        backends = tuple(args.backends.split(","))
    cfg = SpeedConfig(
        kernel=args.kernel, size=args.size, instructions=args.instructions,
        passes=args.passes, window=args.window, backends=backends,
        seed=args.seed if args.seed is not None else 42,
        min_speedup=args.min_speedup, baseline=baseline,
        tolerance=args.tolerance)
    doc = run_speed(cfg)
    write_bench(doc, args.out)
    print(summarize(doc))
    print(f"wrote {args.out}")
    if not doc["contract"]["passed"]:
        for failure in doc["contract"]["failures"]:
            print(f"contract failure: {failure}", file=sys.stderr)
        sys.exit(1)


def _cmd_streambw(args) -> None:
    from .bench.report import write_bench
    from .bench.streambw import StreamBWConfig, run_streambw_sweep, summarize

    backends = (args.backend,) if args.backend is not None else BACKENDS
    cfg = StreamBWConfig(
        kernels=tuple(args.kernels.split(",")),
        clusters=tuple(int(c) for c in args.clusters.split(",")),
        cores_per_cluster=args.cores_per_cluster,
        words=args.words, placement=args.placement,
        inter_hop_latency=args.inter_hop_latency,
        seed=args.seed if args.seed is not None else 107,
        check_words=args.check_words, backends=backends)
    runner = _runner_from(args)
    doc = run_streambw_sweep(cfg, runner=runner)
    write_bench(doc, args.out)
    print(summarize(doc))
    print(f"wrote {args.out}")
    _finish_runner(runner, args)
    if not doc["contract"]["passed"]:
        for failure in doc["contract"]["failures"]:
            print(f"contract failure: {failure}", file=sys.stderr)
        sys.exit(1)


def _cmd_crypto(args) -> None:
    from .bench.crypto import CryptoSweepConfig, run_crypto_sweep, summarize
    from .bench.report import write_bench

    backends = (args.backend,) if args.backend is not None else BACKENDS
    cfg = CryptoSweepConfig(
        kernels=tuple(args.kernels.split(",")),
        ghash_blocks=args.ghash_blocks, crc_bytes=args.crc_bytes,
        ntt_n=args.ntt_n,
        seed=args.seed if args.seed is not None else 108,
        backends=backends, fault_seed=args.fault_seed,
        pulse_every=args.pulse_every, run_faults=not args.no_faults)
    runner = _runner_from(args)
    doc = run_crypto_sweep(cfg, runner=runner, backend=args.backend)
    write_bench(doc, args.out)
    print(summarize(doc))
    print(f"wrote {args.out}")
    _finish_runner(runner, args)
    if not doc["contract"]["passed"]:
        for failure in doc["contract"]["failures"]:
            print(f"contract failure: {failure}", file=sys.stderr)
        sys.exit(1)


def _cmd_faults(args) -> None:
    import json

    from .faults import default_plan, run_campaign

    if args.plan:
        from dataclasses import replace

        from .config_io import load_fault_plan

        plan = load_fault_plan(args.plan)
        if args.seed != plan.seed:
            plan = replace(plan, seed=args.seed)
    else:
        plan = default_plan(args.seed)
    backends = BACKENDS if args.backend == "both" else (args.backend,)
    reports = [run_campaign(plan, backend=backend) for backend in backends]
    print(reports[0].format())
    ok = all(report.silent == 0 for report in reports)
    if len(reports) > 1:
        match = len({report.image_digest for report in reports}) == 1
        print()
        print("cross-backend digest: "
              + ("MATCH" if match else "MISMATCH")
              + f" ({' vs '.join(report.backend for report in reports)})")
        ok = ok and match
    if args.report:
        doc = [report.to_dict() for report in reports]
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
        print(f"wrote {args.report}")
    if not ok:
        sys.exit(1)


def _suite_fn(suite, deprecated: bool):
    """The dispatch target for one registry suite: the legacy alias warns
    first (the `_compat` pattern applied to subcommands), then both paths
    run the same implementation."""

    def fn(args) -> None:
        if deprecated:
            from ._compat import warn_deprecated_command

            warn_deprecated_command(suite.name, f"bench {suite.name}")
        if suite.out_default is None and getattr(args, "out", None):
            _run_teed(suite, args)
        else:
            suite.run(args)

    return fn


def _run_teed(suite, args) -> None:
    """``--out`` on a print-only suite: tee the rendered report to the
    file while still printing it."""
    import contextlib
    import io

    class _Tee(io.TextIOBase):
        def __init__(self, *streams):
            self.streams = streams

        def write(self, s):
            for stream in self.streams:
                stream.write(s)
            return len(s)

        def flush(self):
            for stream in self.streams:
                stream.flush()

    with open(args.out, "w", encoding="utf-8") as handle:
        with contextlib.redirect_stdout(_Tee(sys.stdout, handle)):
            suite.run(args)
    print(f"wrote {args.out}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compute Caches (HPCA 2017) reproduction - experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    runner_args = argparse.ArgumentParser(add_help=False)
    runner_args.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="simulate points on N worker processes (default 1 = serial)")
    runner_args.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk result cache")
    runner_args.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-cache directory (default .repro-cache)")

    # The common trio every simulation subcommand accepts.
    sim_args = argparse.ArgumentParser(add_help=False)
    sim_args.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="execution backend (default: config default, packed)")
    sim_args.add_argument(
        "--trace-events", action="store_true",
        help="collect event traces and print an attribution summary")
    sim_args.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="workload seed override (commands with fully deterministic "
             "workloads ignore it)")

    sub.add_parser("tables", help="Tables I, III, V").set_defaults(fn=_cmd_tables)

    # The registry-driven benchmark dispatcher: one `repro bench <suite>`
    # subparser per registered suite, plus a deprecated top-level alias
    # with identical flags (the pre-PR-10 command surface).
    from .bench.suites import BENCH_SUITES

    pbench = sub.add_parser(
        "bench",
        help="run a benchmark suite: repro bench <suite> "
             "(see docs/benchmarks.md)")
    bench_sub = pbench.add_subparsers(dest="suite", required=True,
                                      metavar="<suite>")
    for suite in BENCH_SUITES.values():
        for home, deprecated in ((bench_sub, False), (sub, True)):
            help_text = (f"(deprecated alias of 'repro bench {suite.name}') "
                         f"{suite.help}" if deprecated else suite.help)
            sp = home.add_parser(suite.name, help=help_text,
                                 parents=[runner_args, sim_args])
            sp.add_argument(
                "--out", default=suite.out_default, metavar="OUT",
                help=(f"output document (default {suite.out_default})"
                      if suite.out_default else
                      "also write the rendered report to this file"))
            if suite.configure is not None:
                suite.configure(sp)
            sp.set_defaults(fn=_suite_fn(suite, deprecated))

    pdc = sub.add_parser(
        "docscheck",
        help="documentation consistency: ISA table, links, doc examples")
    pdc.add_argument("--root", default=None,
                     help="repository root (default: auto-detect)")
    pdc.add_argument("--no-examples", action="store_true",
                     help="skip executing fenced doc examples")
    pdc.add_argument("--write-isa-table", action="store_true",
                     help="rewrite the generated ISA table in docs/isa.md")
    pdc.add_argument("--verbose", action="store_true",
                     help="name each example as it runs")
    pdc.set_defaults(fn=_cmd_docscheck)

    pd = sub.add_parser("demo", help="quick CC walkthrough",
                        parents=[sim_args])
    pd.set_defaults(fn=_cmd_demo)

    pp = sub.add_parser(
        "profile",
        help="replay a trace with event tracing and report cycle attribution",
        parents=[sim_args],
    )
    pp.add_argument("trace", help="trace file (see repro.trace for the grammar)")
    pp.add_argument("--machine", choices=("paper", "small"), default="paper",
                    help="machine config: paper (Table IV) or small (test-sized)")
    pp.add_argument("--buffer", type=int, default=None,
                    help="event ring-buffer capacity (default 1Mi events)")
    pp.add_argument("--chrome-trace", metavar="OUT.json", default=None,
                    help="also write a Chrome-trace/Perfetto JSON timeline")
    pp.set_defaults(fn=_cmd_profile)

    pv = sub.add_parser(
        "validate", help="fast end-to-end self-check of every layer",
        parents=[sim_args],
    )
    pv.set_defaults(fn=_cmd_validate)

    pe = sub.add_parser("export", help="write machine-readable results JSON",
                        parents=[runner_args, sim_args])
    pe.add_argument("--out", default="results.json")
    pe.add_argument("--full", action="store_true",
                    help="include Figures 8b/9/10/11 (minutes of simulation)")
    pe.set_defaults(fn=_cmd_export)

    ps = sub.add_parser(
        "serve",
        help="run the simulation job service (HTTP/JSON; see "
             "docs/serving.md)",
        parents=[runner_args, sim_args])
    ps.add_argument("--host", default="127.0.0.1")
    ps.add_argument("--port", type=int, default=8765,
                    help="listen port (0 = ephemeral; default 8765)")
    ps.add_argument("--workers", type=int, default=4,
                    help="concurrent job workers (default 4); --jobs N>1 "
                         "additionally gives each worker a process pool")
    ps.add_argument("--max-queue", type=int, default=1024,
                    help="backpressure limit on queued jobs (default 1024)")
    ps.add_argument("--job-timeout", type=float, default=60.0,
                    help="default per-job wall-clock timeout in seconds")
    ps.add_argument("--retries", type=int, default=1,
                    help="default per-job retry budget after timeouts")
    ps.add_argument("--journal", metavar="PATH", default=None,
                    help="queue journal path (default "
                         "<cache-dir>/serve-journal.jsonl)")
    ps.add_argument("--no-journal", action="store_true",
                    help="disable queue persistence")
    ps.set_defaults(fn=_cmd_serve)

    pl = sub.add_parser(
        "loadgen",
        help="replay concurrent jobs against a service and write "
             "BENCH_serve.json (see docs/serving.md)",
        parents=[runner_args, sim_args])
    pl.add_argument("--url", default=None,
                    help="service base URL (default: spawn an in-process "
                         "server on an ephemeral port)")
    pl.add_argument("--requests", type=int, default=1000)
    pl.add_argument("--concurrency", type=int, default=32)
    pl.add_argument("--distinct", type=int, default=50,
                    help="distinct job configurations in the catalog")
    pl.add_argument("--distribution", choices=("zipf", "uniform"),
                    default="zipf")
    pl.add_argument("--zipf-s", type=float, default=1.1,
                    help="Zipf popularity exponent (default 1.1)")
    pl.add_argument("--point", choices=("selftest", "sleep", "kernel"),
                    default="selftest",
                    help="job kind in the catalog (default selftest)")
    pl.add_argument("--sleep-ms", type=float, default=0.0,
                    help="simulated per-job work for --point sleep")
    pl.add_argument("--workers", type=int, default=4,
                    help="workers for the spawned server (ignored w/ --url)")
    pl.add_argument("--contract-p99-ms", type=float, default=None,
                    help="fail (exit 1) if p99 latency exceeds this")
    pl.add_argument("--out", default="BENCH_serve.json")
    pl.set_defaults(fn=_cmd_loadgen)

    pf = sub.add_parser(
        "faults",
        help="run a deterministic fault-injection campaign and report "
             "resilience (see docs/faults.md)",
    )
    pf.add_argument("--seed", type=int, default=0, metavar="N",
                    help="fault-schedule seed (default 0)")
    pf.add_argument("--plan", metavar="PLAN.json", default=None,
                    help="fault plan JSON (default: the built-in default "
                         "plan covering every fault kind)")
    pf.add_argument("--backend", choices=BACKENDS + ("both",), default="both",
                    help="backend(s) to campaign on; 'both' (default) also "
                         "cross-checks the report digests")
    pf.add_argument("--trace-events", action="store_true",
                    help="accepted for CLI uniformity (fault campaigns "
                         "always trace events)")
    pf.add_argument("--report", metavar="OUT.json", default=None,
                    help="also write the resilience report(s) as JSON")
    pf.set_defaults(fn=_cmd_faults)
    return parser


#: Hidden aliases for flags that were renamed when the trio was unified;
#: they keep working with a deprecation note on stderr.
DEPRECATED_FLAGS = {
    "--exec-backend": "--backend",
    "--trace": "--trace-events",
    "--events": "--trace-events",
    "--rng-seed": "--seed",
    "--workload-seed": "--seed",
}


def _rewrite_deprecated_flags(argv: list[str]) -> list[str]:
    out = []
    for arg in argv:
        flag, eq, value = arg.partition("=")
        replacement = DEPRECATED_FLAGS.get(flag)
        if replacement is not None:
            print(f"note: {flag} is deprecated; use {replacement}",
                  file=sys.stderr)
            arg = replacement + eq + value
        out.append(arg)
    return out


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    args = build_parser().parse_args(_rewrite_deprecated_flags(list(argv)))
    args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
