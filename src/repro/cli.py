"""Command-line interface: regenerate the paper's exhibits from a shell.

Usage::

    python -m repro fig7             # micro-benchmarks (Fig 7a-c)
    python -m repro fig3             # energy proportions (Fig 3 top)
    python -m repro fig8             # in-place vs near-place + levels
    python -m repro fig9 --scale 0.5 # applications (Fig 9a-b)
    python -m repro fig10            # checkpoint overheads
    python -m repro fig11            # checkpoint energy
    python -m repro sweeps           # design-space sweeps around 4 KB
    python -m repro tables           # Tables I, III, V
    python -m repro demo             # quickstart walkthrough
    python -m repro export --full --jobs 4
                                     # machine-readable results JSON
    python -m repro profile t.trace --chrome-trace t.json
                                     # cycle-attribution profile of a trace

The figure, sweep, and export commands take ``--jobs N`` (process-pool
parallelism), ``--no-cache``, and ``--cache-dir`` — see
``docs/benchmarks.md`` for the runner architecture and cache semantics.
"""

from __future__ import annotations

import argparse
import sys

from .params import BACKENDS


def _runner_from(args):
    """Build the sweep runner a figure/export command was asked for."""
    from .bench.runner import PointRunner

    return PointRunner(jobs=args.jobs, cache_dir=args.cache_dir,
                       use_cache=not args.no_cache)


def _finish_runner(runner) -> None:
    """The post-command cache-stats footer (grepped by CI)."""
    print()
    print(runner.stats.line())


def _cmd_tables(_args) -> None:
    from .bench.microbench import table1_rows, table3_rows, table5_rows
    from .bench.report import render_table

    print(render_table(table1_rows(), "Table I: cache energy per read access"))
    print()
    print(render_table(table3_rows(), "Table III: geometry & operand locality"))
    print()
    print(render_table(table5_rows(), "Table V: CC energy (pJ) per 64-byte block"))


def _cmd_fig3(_args) -> None:
    from .bench.microbench import figure3_energy_proportions
    from .bench.report import render_table

    rows = [
        {"config": cfg, **vals}
        for cfg, vals in figure3_energy_proportions().items()
    ]
    print(render_table(rows, "Figure 3: bulk-compare energy proportions"))


def _cmd_fig7(args) -> None:
    from .bench.microbench import figure7, figure7_summary
    from .bench.report import render_figure7

    runner = _runner_from(args)
    results = figure7(size=args.size, runner=runner)
    print(render_figure7(results))
    print()
    for key, value in figure7_summary(results).items():
        print(f"  {key}: {value:.2f}")
    _finish_runner(runner)


def _cmd_fig8(args) -> None:
    from .bench.microbench import figure8a_inplace_vs_nearplace, figure8b_levels
    from .bench.report import render_table

    runner = _runner_from(args)
    rows = []
    for kernel, pair in figure8a_inplace_vs_nearplace(args.size,
                                                      runner=runner).items():
        rows.append({
            "kernel": kernel,
            "in-place nJ": pair["inplace"].total_energy_nj,
            "near-place nJ": pair["nearplace"].total_energy_nj,
            "energy ratio": pair["nearplace"].total_energy_nj
            / pair["inplace"].total_energy_nj,
            "throughput ratio": pair["nearplace"].steady_cycles
            / pair["inplace"].steady_cycles,
        })
    print(render_table(rows, "Figure 8(a): in-place vs near-place"))
    print()
    rows = []
    for kernel, levels in figure8b_levels(args.size, runner=runner).items():
        for level, d in levels.items():
            rows.append({
                "kernel": kernel, "level": level,
                "savings nJ": d["total_savings_pj"] / 1000,
                "savings fraction": d["savings_fraction"],
            })
    print(render_table(rows, "Figure 8(b): dynamic-energy savings by level"))
    _finish_runner(runner)


def _cmd_fig9(args) -> None:
    from .bench.appbench import figure9
    from .bench.report import render_figure9

    runner = _runner_from(args)
    print(render_figure9(figure9(scale=args.scale, runner=runner)))
    _finish_runner(runner)


def _cmd_fig10(args) -> None:
    from .bench.checkpointbench import figure10_overheads, summarize_overheads
    from .bench.report import render_figure10

    runner = _runner_from(args)
    overheads = figure10_overheads(intervals=args.intervals, runner=runner)
    print(render_figure10(overheads))
    print()
    for key, value in summarize_overheads(overheads).items():
        print(f"  {key}: {value:.1%}")
    _finish_runner(runner)


def _cmd_fig11(args) -> None:
    from .bench.checkpointbench import figure11_energy
    from .bench.report import render_figure11

    runner = _runner_from(args)
    print(render_figure11(figure11_energy(intervals=args.intervals,
                                          runner=runner)))
    _finish_runner(runner)


def _cmd_sweeps(args) -> None:
    from .bench.report import render_table
    from .bench.runner import format_runner_profile
    from .bench.sweeps import (
        noc_distance_sweep,
        operand_size_sweep,
        partition_parallelism_sweep,
        wordline_activation_sweep,
    )

    runner = _runner_from(args)
    print(render_table(operand_size_sweep(kernel=args.kernel, runner=runner),
                       f"Operand-size sweep ({args.kernel})"))
    print()
    print(render_table(partition_parallelism_sweep(runner=runner),
                       "Partition-parallelism sweep (copy)"))
    print()
    print(render_table(wordline_activation_sweep(),
                       "Word-line activation sweep"))
    print()
    print(render_table(noc_distance_sweep(), "NoC distance sweep"))
    print()
    print(format_runner_profile(runner.tracer))
    _finish_runner(runner)


def _cmd_demo(args) -> None:
    from . import ComputeCacheMachine, cc_ops

    m = ComputeCacheMachine(backend=args.backend)
    a, b, c = m.arena.alloc_colocated(4096, 3)
    m.load(a, bytes(range(256)) * 16)
    m.load(b, b"\x0f" * 4096)
    res = m.cc(cc_ops.cc_and(a, b, c, 4096))
    print(f"cc_and over 4 KB: level={res.level}, {res.inplace_ops} in-place "
          f"block ops, {res.cycles:.0f} cycles")
    print(f"first 16 result bytes: {m.peek(c, 16).hex()}")
    print(f"dynamic energy: {m.ledger.total_nj():.1f} nJ "
          f"({m.ledger.breakdown()})")


def _cmd_profile(args) -> None:
    from .events import format_profile, profile_trace, write_chrome_trace
    from .machine import ComputeCacheMachine
    from .params import sandybridge_8core, small_test_machine

    config = (small_test_machine() if args.machine == "small"
              else sandybridge_8core())
    if args.buffer is not None:
        from dataclasses import replace
        config = replace(config, event_buffer_capacity=args.buffer)
    machine = ComputeCacheMachine(config, backend=args.backend,
                                  trace_events=True)
    with open(args.trace, encoding="utf-8") as handle:
        text = handle.read()
    profile, result, machine = profile_trace(text, machine=machine)
    print(f"trace: {args.trace}  "
          f"({result.instructions:,} instructions, "
          f"{result.cc_instructions:,} CC, "
          f"{result.cycles:,.1f} cycles, "
          f"{result.dynamic_nj:,.1f} nJ dynamic)")
    print()
    print(format_profile(profile))
    if args.chrome_trace:
        write_chrome_trace(machine.tracer.snapshot(), args.chrome_trace)
        print()
        print(f"wrote Chrome-trace JSON to {args.chrome_trace} "
              f"(load in Perfetto / chrome://tracing)")
    if not profile.validate(result.cycles):
        sys.exit(1)


def _cmd_validate(args) -> None:
    from .validate import run_validation

    if not run_validation(backend=args.backend):
        sys.exit(1)


def _cmd_export(args) -> None:
    from .bench.export import write_results

    runner = _runner_from(args)
    doc = write_results(args.out, full=args.full, runner=runner)
    exhibits = [k for k in doc if k.startswith(("table", "figure"))]
    print(f"wrote {args.out}: {len(exhibits)} exhibits, "
          f"validation_ok={doc['validation_ok']}")
    _finish_runner(runner)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compute Caches (HPCA 2017) reproduction - experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    runner_args = argparse.ArgumentParser(add_help=False)
    runner_args.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="simulate points on N worker processes (default 1 = serial)")
    runner_args.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the on-disk result cache")
    runner_args.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-cache directory (default .repro-cache)")

    sub.add_parser("tables", help="Tables I, III, V").set_defaults(fn=_cmd_tables)
    sub.add_parser("fig3", help="Figure 3 energy proportions").set_defaults(fn=_cmd_fig3)

    p7 = sub.add_parser("fig7", help="Figure 7 micro-benchmarks",
                        parents=[runner_args])
    p7.add_argument("--size", type=int, default=4096, help="operand bytes")
    p7.set_defaults(fn=_cmd_fig7)

    p8 = sub.add_parser("fig8", help="Figure 8 in/near-place + levels",
                        parents=[runner_args])
    p8.add_argument("--size", type=int, default=4096)
    p8.set_defaults(fn=_cmd_fig8)

    p9 = sub.add_parser("fig9", help="Figure 9 applications",
                        parents=[runner_args])
    p9.add_argument("--scale", type=float, default=0.5,
                    help="workload scale factor (1.0 = bench scale)")
    p9.set_defaults(fn=_cmd_fig9)

    p10 = sub.add_parser("fig10", help="Figure 10 checkpoint overheads",
                         parents=[runner_args])
    p10.add_argument("--intervals", type=int, default=1)
    p10.set_defaults(fn=_cmd_fig10)

    p11 = sub.add_parser("fig11", help="Figure 11 checkpoint energy",
                         parents=[runner_args])
    p11.add_argument("--intervals", type=int, default=1)
    p11.set_defaults(fn=_cmd_fig11)

    psw = sub.add_parser(
        "sweeps", help="design-space sweeps around the 4 KB operating point",
        parents=[runner_args])
    psw.add_argument("--kernel", default="logical",
                     help="kernel for the operand-size sweep")
    psw.set_defaults(fn=_cmd_sweeps)

    pd = sub.add_parser("demo", help="quick CC walkthrough")
    pd.add_argument("--backend", choices=BACKENDS, default=None,
                    help="execution backend (default: config default, packed)")
    pd.set_defaults(fn=_cmd_demo)

    pp = sub.add_parser(
        "profile",
        help="replay a trace with event tracing and report cycle attribution",
    )
    pp.add_argument("trace", help="trace file (see repro.trace for the grammar)")
    pp.add_argument("--backend", choices=BACKENDS, default=None,
                    help="execution backend (default: config default, packed)")
    pp.add_argument("--machine", choices=("paper", "small"), default="paper",
                    help="machine config: paper (Table IV) or small (test-sized)")
    pp.add_argument("--buffer", type=int, default=None,
                    help="event ring-buffer capacity (default 1Mi events)")
    pp.add_argument("--chrome-trace", metavar="OUT.json", default=None,
                    help="also write a Chrome-trace/Perfetto JSON timeline")
    pp.set_defaults(fn=_cmd_profile)

    pv = sub.add_parser(
        "validate", help="fast end-to-end self-check of every layer"
    )
    pv.add_argument("--backend", choices=BACKENDS, default=None,
                    help="force the battery onto one execution backend")
    pv.set_defaults(fn=_cmd_validate)

    pe = sub.add_parser("export", help="write machine-readable results JSON",
                        parents=[runner_args])
    pe.add_argument("--out", default="results.json")
    pe.add_argument("--full", action="store_true",
                    help="include Figures 8b/9/10/11 (minutes of simulation)")
    pe.set_defaults(fn=_cmd_export)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
