"""Fault plans: the declarative schedule of a fault-injection campaign.

A :class:`FaultPlan` is to the resilience subsystem what
:class:`~repro.params.MachineConfig` is to the machine: a frozen,
JSON-round-trippable description from which every run is reproducible.
The plan carries one master ``seed`` and a set of :class:`FaultSpec`
entries, one per fault kind; the injector derives an independent,
deterministic random stream per kind (``f"{seed}:{kind}"``), so adding
or removing one spec never perturbs the schedule of the others.

Fault kinds
-----------

==========================  ====================================================
``sram.bitflip``            Transient single-bit upset in a resident L3 block
                            (a particle strike in the physical sub-array).
                            SECDED must correct it on the next scrub pass.
``sram.double-bitflip``     Two bits of one clean, unshared block.  SECDED
                            detects but cannot correct; recovery invalidates
                            the block and refetches it from memory.
``controller.pin-steal``    A forwarded coherence request steals a pinned
                            operand line (Section IV-F); the controller must
                            release, retry, and after ``pin_retry_limit``
                            attempts degrade to the RISC fallback.
``controller.fetch-timeout``An operand fetch times out; drains into the same
                            retry/fallback path as a lost pin.
``directory.duplicate``     A forwarded invalidate/downgrade is delivered
                            twice; the protocol must be idempotent.
``directory.delay``         A forwarded request is delayed by
                            ``params["delay_cycles"]`` extra cycles.
``runner.timeout``          A sweep-runner worker future times out, forcing
                            the retry-then-serial fallback.
``runner.crash``            The worker pool breaks, forcing the serial
                            fallback for all remaining points.
==========================  ====================================================

File I/O lives in :mod:`repro.config_io` (``save_fault_plan`` /
``load_fault_plan``), next to the machine-config serializers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import FaultPlanError

FAULT_KINDS = (
    "sram.bitflip",
    "sram.double-bitflip",
    "controller.pin-steal",
    "controller.fetch-timeout",
    "directory.duplicate",
    "directory.delay",
    "runner.timeout",
    "runner.crash",
)

PLAN_SCHEMA = "repro.fault-plan/1"


@dataclass(frozen=True)
class FaultSpec:
    """Schedule for one fault kind.

    ``probability`` is evaluated once per injection opportunity (per
    resident block for SRAM strikes, per hook consultation for
    controller/directory faults, per submitted point for runner chaos);
    ``max_injections`` caps the total (0 = unlimited).  ``params`` holds
    kind-specific knobs (e.g. ``delay_cycles`` for ``directory.delay``).
    """

    kind: str
    probability: float = 1.0
    max_injections: int = 0
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"fault probability must be in [0, 1], got {self.probability!r}"
            )
        if self.max_injections < 0:
            raise FaultPlanError(
                f"max_injections must be >= 0, got {self.max_injections!r}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, reproducible fault campaign description."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        kinds = [s.kind for s in self.specs]
        dupes = {k for k in kinds if kinds.count(k) > 1}
        if dupes:
            raise FaultPlanError(f"duplicate fault specs for {sorted(dupes)}")
        object.__setattr__(self, "specs", tuple(self.specs))

    def spec(self, kind: str) -> FaultSpec | None:
        for s in self.specs:
            if s.kind == kind:
                return s
        return None

    def kinds(self) -> frozenset[str]:
        return frozenset(s.kind for s in self.specs)

    # -- serialization (see repro.config_io for file helpers) -----------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": PLAN_SCHEMA,
            "seed": self.seed,
            "faults": [
                {
                    "kind": s.kind,
                    "probability": s.probability,
                    "max_injections": s.max_injections,
                    "params": dict(s.params),
                }
                for s in self.specs
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "FaultPlan":
        schema = doc.get("schema")
        if schema != PLAN_SCHEMA:
            raise FaultPlanError(f"unsupported fault-plan schema {schema!r}")
        try:
            specs = tuple(
                FaultSpec(
                    kind=entry["kind"],
                    probability=entry.get("probability", 1.0),
                    max_injections=entry.get("max_injections", 0),
                    params=dict(entry.get("params", {})),
                )
                for entry in doc["faults"]
            )
            return cls(seed=doc["seed"], specs=specs)
        except KeyError as exc:
            raise FaultPlanError(f"fault-plan document missing field {exc}") from None
        except TypeError as exc:
            raise FaultPlanError(f"malformed fault-plan document: {exc}") from None


def default_plan(seed: int = 0) -> FaultPlan:
    """The standard campaign: every fault kind, bounded injection counts.

    Probabilities are tuned so a campaign over the built-in workload
    exercises every degradation path the paper describes (ECC scrub
    correction, refetch on detected-uncorrectable, pin-retry, RISC
    fallback, directory idempotence, runner serial fallback) in a few
    seconds of simulation.
    """
    return FaultPlan(seed=seed, specs=(
        FaultSpec("sram.bitflip", probability=0.25, max_injections=16),
        FaultSpec("sram.double-bitflip", probability=0.15, max_injections=3),
        FaultSpec("controller.pin-steal", probability=0.45, max_injections=8),
        FaultSpec("controller.fetch-timeout", probability=0.3, max_injections=5),
        FaultSpec("directory.duplicate", probability=0.6, max_injections=6),
        FaultSpec("directory.delay", probability=0.6, max_injections=6,
                  params={"delay_cycles": 24}),
        FaultSpec("runner.timeout", probability=0.6, max_injections=2),
        FaultSpec("runner.crash", probability=0.5, max_injections=1),
    ))
