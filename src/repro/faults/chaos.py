"""Bench-runner chaos: injected worker timeouts and pool crashes.

:class:`RunnerChaos` installs a fake worker pool into a
:class:`~repro.bench.runner.PointRunner` through its ``_make_pool``
seam.  The pool executes points inline (in-process, so no real workers
are harmed) but fails selected futures according to the plan's
``runner.timeout`` / ``runner.crash`` specs:

* a *timeout* raises :class:`concurrent.futures.TimeoutError` from
  ``future.result()``, driving the runner's timeout → retry →
  serial-fallback path;
* a *crash* raises :class:`concurrent.futures.BrokenExecutor`, after
  which the runner must degrade every remaining point to the serial
  fallback.

Both paths must still deliver correct results — the campaign verifies
the returned documents bit-for-bit against a chaos-free run.
"""

from __future__ import annotations

import random
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeout

from .plan import FaultPlan

_RUNNER_KINDS = ("runner.crash", "runner.timeout")


class _ChaosFuture:
    """A future that either computes inline or fails as scheduled."""

    def __init__(self, fn, args, mode: str | None) -> None:
        self._fn = fn
        self._args = args
        self._mode = mode

    def result(self, timeout: float | None = None):
        if self._mode == "timeout":
            raise FutureTimeout("injected worker timeout")
        if self._mode == "crash":
            raise BrokenExecutor("injected worker-pool crash")
        return self._fn(*self._args)

    def cancel(self) -> bool:
        return True


class ChaosPool:
    """Duck-typed stand-in for ``ProcessPoolExecutor``."""

    def __init__(self, chaos: "RunnerChaos") -> None:
        self._chaos = chaos

    def submit(self, fn, *args) -> _ChaosFuture:
        return _ChaosFuture(fn, args, self._chaos.draw())

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        pass


class RunnerChaos:
    """Seeded schedule of runner faults for one campaign."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.injected: dict[str, int] = {}
        self._spec = {s.kind: s for s in plan.specs if s.kind in _RUNNER_KINDS}
        self._rng = {
            kind: random.Random(f"{plan.seed}:{kind}") for kind in self._spec
        }

    def _want(self, kind: str) -> bool:
        spec = self._spec.get(kind)
        if spec is None:
            return False
        if spec.max_injections and \
                self.injected.get(kind, 0) >= spec.max_injections:
            return False
        return self._rng[kind].random() < spec.probability

    def draw(self) -> str | None:
        """Fault mode for the next submitted future."""
        for kind, mode in (("runner.crash", "crash"),
                           ("runner.timeout", "timeout")):
            if self._want(kind):
                self.injected[kind] = self.injected.get(kind, 0) + 1
                return mode
        return None

    def install(self, runner) -> None:
        """Replace ``runner``'s pool factory with the chaos pool."""
        runner._make_pool = lambda workers: ChaosPool(self)
