"""Deterministic fault injection and resilience campaigns.

The paper's architecture is full of degradation paths — SECDED-corrected
bit-line upsets (Section IV-I), controller RISC fallback after
``pin_retry_limit`` failed pinning attempts (Section IV-E), coherence-
forwarded lock releases (Section IV-F) — and this subsystem stresses all
of them, end to end:

* :class:`FaultPlan` / :class:`FaultSpec` — the seed-driven, JSON-round-
  trippable schedule of faults (see :mod:`repro.config_io` for file I/O);
* :class:`FaultInjector` — installs the simulator's fault hooks and
  drives SRAM particle strikes plus the ECC recovery scrub;
* :class:`RunnerChaos` — injected sweep-runner worker timeouts/crashes;
* :func:`run_campaign` — golden-vs-faulty differential audit producing a
  :class:`ResilienceReport` (``repro faults`` on the command line).

Every injection emits a ``fault.inject`` event and every recovery a
``fault.recover`` event through :mod:`repro.events`.
"""

from .campaign import ResilienceReport, run_campaign, run_workload
from .chaos import ChaosPool, RunnerChaos
from .injector import FaultInjector
from .plan import FAULT_KINDS, FaultPlan, FaultSpec, default_plan

__all__ = [
    "FAULT_KINDS",
    "ChaosPool",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ResilienceReport",
    "RunnerChaos",
    "default_plan",
    "run_campaign",
    "run_workload",
]
