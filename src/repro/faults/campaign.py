"""Fault campaigns: golden-vs-faulty runs and the resilience report.

A campaign executes a fixed, deterministic CC workload twice on a
test-sized machine — once fault-free (the *golden* run) and once under a
:class:`~repro.faults.plan.FaultPlan` — then audits every architectural
output: final memory images of every operand region (via the coherent
``peek`` path) and every instruction's result value.  Any divergence is
a **silent corruption**; the acceptance bar for the modeled recovery
machinery (SECDED scrub, pin-retry → RISC fallback, idempotent
directory forwarding, runner serial fallback) is that the count is zero.

The workload, the fault schedule, and therefore the whole
:class:`ResilienceReport` are deterministic functions of the plan — the
same campaign is bit-identical across the ``packed`` and ``bitexact``
backends and across reruns (``repro faults --backend both`` verifies
this by comparing report digests).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from ..core.isa import (
    cc_and,
    cc_cmp,
    cc_copy,
    cc_not,
    cc_or,
    cc_search,
    cc_xor,
)
from ..machine import ComputeCacheMachine
from ..params import small_test_machine
from .chaos import RunnerChaos
from .injector import FaultInjector
from .plan import FaultPlan, default_plan

_REGION = 4096


@dataclass
class ResilienceReport:
    """What happened to every injected fault."""

    seed: int
    backend: str
    injected: dict[str, int] = field(default_factory=dict)
    corrected: int = 0
    refetched: int = 0
    retried: int = 0
    degraded_risc: int = 0
    absorbed: int = 0
    surfaced: int = 0
    degraded_serial: int = 0
    runner_timeouts: int = 0
    runner_retries: int = 0
    silent: int = 0
    image_digest: str = ""

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def detected(self) -> int:
        """ECC-detected upsets (corrected, refetched, or surfaced)."""
        return self.corrected + self.refetched + self.surfaced

    def to_dict(self) -> dict:
        return {
            "schema": "repro.resilience-report/1",
            "seed": self.seed,
            "backend": self.backend,
            "injected": {k: self.injected[k] for k in sorted(self.injected)},
            "total_injected": self.total_injected,
            "detected": self.detected,
            "corrected": self.corrected,
            "refetched": self.refetched,
            "retried": self.retried,
            "degraded_risc": self.degraded_risc,
            "absorbed": self.absorbed,
            "surfaced": self.surfaced,
            "degraded_serial": self.degraded_serial,
            "runner_timeouts": self.runner_timeouts,
            "runner_retries": self.runner_retries,
            "silent": self.silent,
            "image_digest": self.image_digest,
        }

    def format(self) -> str:
        lines = [
            f"resilience report (seed={self.seed}, backend={self.backend})",
            "  injected:",
        ]
        for kind in sorted(self.injected):
            lines.append(f"    {kind:<26} {self.injected[kind]}")
        lines += [
            f"  total injected            {self.total_injected}",
            f"  ECC detected              {self.detected}",
            f"    corrected (SECDED)      {self.corrected}",
            f"    refetched (invalidate)  {self.refetched}",
            f"    surfaced (uncorrectable){self.surfaced:>2}",
            f"  retried (pin/fetch)       {self.retried}",
            f"  degraded to RISC          {self.degraded_risc}",
            f"  absorbed (directory)      {self.absorbed}",
            f"  degraded to serial        {self.degraded_serial}"
            f" (timeouts={self.runner_timeouts}, retries={self.runner_retries})",
            f"  silent corruptions        {self.silent}",
            f"  image digest              {self.image_digest[:16]}…",
        ]
        return "\n".join(lines)


@dataclass
class WorkloadRun:
    """Architectural outputs of one workload execution."""

    machine: ComputeCacheMachine
    injector: FaultInjector | None
    images: dict[str, bytes]
    op_results: list[tuple[str, object, str]]


def _workload_ops(a: int, b: int, c: int):
    """The campaign's CC instruction mix (labels are stable identifiers)."""
    return [
        ("and", cc_and(a, b, c, _REGION)),
        ("xor", cc_xor(a, b, c, _REGION)),
        ("cmp", cc_cmp(a, b, 512)),
        ("or", cc_or(a, b, c, _REGION)),
        ("not", cc_not(a, c, _REGION)),
        ("search", cc_search(a, b, 512)),
        ("copy", cc_copy(b, c, _REGION)),
    ]


def run_workload(plan: FaultPlan, backend: str | None = None,
                 inject: bool = True) -> WorkloadRun:
    """Execute the campaign workload, with or without fault injection.

    The instruction stream, data, and cross-core sharing pattern are
    identical either way; only the injector differs — so the golden and
    faulty runs are directly comparable.
    """
    m = ComputeCacheMachine(small_test_machine(), backend=backend,
                            trace_events=True)
    injector = None
    if inject:
        injector = FaultInjector(m, plan)
        injector.install()
    rng = random.Random(f"{plan.seed}:data")
    a, b, c = m.arena.alloc_colocated(_REGION, 3)
    m.load(a, rng.randbytes(_REGION))
    m.load(b, rng.randbytes(_REGION))
    m.warm_l3(a, _REGION)
    m.warm_l3(b, _REGION)

    op_results: list[tuple[str, object, str]] = []
    for step, (label, instr) in enumerate(_workload_ops(a, b, c)):
        # Give the directory something to forward: core 1 takes private
        # copies of part of a source region before each CC instruction.
        m.read(a + (step % 4) * 1024, 256, core=1)
        if injector is not None:
            injector.pulse()
        res = m.cc(instr)
        digest = hashlib.sha256(res.result_bytes or b"").hexdigest()
        op_results.append((label, res.result, digest))
    if injector is not None:
        injector.pulse()  # final scrub: no strike may outlive the campaign

    images = {
        "a": m.peek(a, _REGION),
        "b": m.peek(b, _REGION),
        "c": m.peek(c, _REGION),
    }
    m.hierarchy.check_inclusion()
    m.hierarchy.check_single_writer()
    return WorkloadRun(machine=m, injector=injector, images=images,
                       op_results=op_results)


def _count_recoveries(tracer, outcome: str) -> int:
    return sum(1 for e in tracer.by_kind("fault.recover")
               if e.outcome == outcome)


def _runner_phase(plan: FaultPlan):
    """Chaos-injected sweep-runner batch; returns (chaos, stats, silent)."""
    from ..bench.runner import Point, PointRunner

    chaos = RunnerChaos(plan)
    runner = PointRunner(jobs=2, use_cache=False, timeout_s=30.0, retries=1)
    chaos.install(runner)
    values = list(range(8))
    docs = runner.run([
        Point("selftest", {"value": v}, label=f"chaos:{v}") for v in values
    ])
    expected = [{"value": v, "doubled": 2 * v} for v in values]
    silent = sum(1 for doc, want in zip(docs, expected) if doc != want)
    return chaos, runner.stats, silent


def run_campaign(plan: FaultPlan | None = None, backend: str | None = None,
                 include_runner: bool = True) -> ResilienceReport:
    """Run one full fault campaign and audit it against a golden run."""
    plan = plan if plan is not None else default_plan()
    golden = run_workload(plan, backend=backend, inject=False)
    faulty = run_workload(plan, backend=backend, inject=True)

    silent = 0
    for name in golden.images:
        if golden.images[name] != faulty.images[name]:
            silent += 1
    for gold, got in zip(golden.op_results, faulty.op_results):
        if gold != got:
            silent += 1

    hasher = hashlib.sha256()
    for name in sorted(faulty.images):
        hasher.update(name.encode())
        hasher.update(faulty.images[name])
    for label, result, digest in faulty.op_results:
        hasher.update(f"{label}:{result}:{digest}".encode())

    tracer = faulty.machine.tracer
    injector = faulty.injector
    report = ResilienceReport(
        seed=plan.seed,
        backend=faulty.machine.config.backend,
        injected=dict(injector.injected) if injector else {},
        corrected=_count_recoveries(tracer, "corrected"),
        refetched=_count_recoveries(tracer, "refetched"),
        retried=_count_recoveries(tracer, "retried"),
        degraded_risc=_count_recoveries(tracer, "degraded-risc"),
        absorbed=_count_recoveries(tracer, "absorbed"),
        surfaced=_count_recoveries(tracer, "surfaced"),
        silent=silent,
    )

    if include_runner and plan.kinds() & {"runner.timeout", "runner.crash"}:
        chaos, stats, runner_silent = _runner_phase(plan)
        report.injected.update(chaos.injected)
        report.degraded_serial = stats.serial_fallbacks
        report.runner_timeouts = stats.timeouts
        report.runner_retries = stats.retries
        report.silent += runner_silent

    hasher.update(repr(sorted(report.injected.items())).encode())
    report.image_digest = hasher.hexdigest()
    return report
