"""The fault injector: deterministic delivery of a :class:`FaultPlan`.

One :class:`FaultInjector` attaches to one machine.  It installs the
fault hooks the simulator exposes (``contention_hook`` and
``fetch_fault_hook`` on every controller, ``coherence_fault_hook`` on the
hierarchy) and drives the SRAM particle strikes plus the ECC recovery
scrub between operations (:meth:`pulse`).

Determinism: each fault kind draws from its own
``random.Random(f"{seed}:{kind}")`` stream, and every injection
opportunity (a hook consultation, a resident block visited by a pulse)
occurs at a simulation-determined point that is identical across the
``packed`` and ``bitexact`` backends.  The same plan therefore produces
the same fault schedule — and the same resilience report — on both
backends and across reruns.

Every injection emits a ``fault.inject`` event and every recovery a
``fault.recover`` event through the machine's tracer, so a traced
campaign is fully auditable.
"""

from __future__ import annotations

import random

from ..core.scrub import ScrubService
from ..errors import ECCError
from .plan import FaultPlan

_BITS_PER_BLOCK = 64 * 8


class FaultInjector:
    """Deliver a plan's faults into a live machine, deterministically."""

    def __init__(self, machine, plan: FaultPlan) -> None:
        self.machine = machine
        self.plan = plan
        self.tracer = machine.tracer
        self.injected: dict[str, int] = {}
        self.recovered: dict[str, int] = {}
        self.surfaced: list[str] = []
        self._spec = {spec.kind: spec for spec in plan.specs}
        self._rng = {
            spec.kind: random.Random(f"{plan.seed}:{spec.kind}")
            for spec in plan.specs
        }
        self._scrubs: dict[int, ScrubService] = {}

    # -- bookkeeping ---------------------------------------------------------------

    def _want(self, kind: str) -> bool:
        """One injection-opportunity draw for ``kind``."""
        spec = self._spec.get(kind)
        if spec is None:
            return False
        if spec.max_injections and \
                self.injected.get(kind, 0) >= spec.max_injections:
            return False
        return self._rng[kind].random() < spec.probability

    def _record_inject(self, kind: str, **fields) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if self.tracer is not None:
            self.tracer.emit("fault.inject", reason=kind, **fields)

    def _record_recover(self, outcome: str, reason: str, **fields) -> None:
        self.recovered[outcome] = self.recovered.get(outcome, 0) + 1
        if self.tracer is not None:
            self.tracer.emit("fault.recover", outcome=outcome, reason=reason,
                             **fields)

    # -- hook installation ---------------------------------------------------------

    def install(self) -> None:
        """Attach the controller and coherence hooks the plan needs."""
        kinds = self.plan.kinds()
        if "controller.pin-steal" in kinds:
            for ctrl in self.machine.controllers:
                ctrl.contention_hook = self._pin_steal
        if "controller.fetch-timeout" in kinds:
            for ctrl in self.machine.controllers:
                ctrl.fetch_fault_hook = self._fetch_timeout
        if kinds & {"directory.duplicate", "directory.delay"}:
            self.machine.hierarchy.coherence_fault_hook = self._coherence_fault

    def uninstall(self) -> None:
        for ctrl in self.machine.controllers:
            if ctrl.contention_hook == self._pin_steal:
                ctrl.contention_hook = None
            if ctrl.fetch_fault_hook == self._fetch_timeout:
                ctrl.fetch_fault_hook = None
        if self.machine.hierarchy.coherence_fault_hook == self._coherence_fault:
            self.machine.hierarchy.coherence_fault_hook = None

    # -- controller hooks ----------------------------------------------------------

    def _pin_steal(self, addr: int) -> bool:
        if self._want("controller.pin-steal"):
            self._record_inject("controller.pin-steal", addr=addr)
            return True
        return False

    def _fetch_timeout(self, addr: int) -> bool:
        if self._want("controller.fetch-timeout"):
            self._record_inject("controller.fetch-timeout", addr=addr)
            return True
        return False

    # -- coherence hook ------------------------------------------------------------

    def _coherence_fault(self, addr: int, holder: int):
        if self._want("directory.duplicate"):
            self._record_inject("directory.duplicate", addr=addr, core=holder)
            self.recovered["absorbed"] = self.recovered.get("absorbed", 0) + 1
            return ("duplicate", 0)
        if self._want("directory.delay"):
            spec = self._spec["directory.delay"]
            delay = int(spec.params.get("delay_cycles", 24))
            self._record_inject("directory.delay", addr=addr, core=holder,
                                span=float(delay))
            self.recovered["absorbed"] = self.recovered.get("absorbed", 0) + 1
            return ("delay", delay)
        return None

    # -- SRAM strikes and recovery scrub -------------------------------------------

    def _scrub_service(self, slice_id: int) -> ScrubService:
        svc = self._scrubs.get(slice_id)
        if svc is None:
            svc = ScrubService(self.machine.hierarchy.l3[slice_id])
            self._scrubs[slice_id] = svc
        return svc

    def _strike_candidates(self, slice_id: int, clean_only: bool) -> list[int]:
        """Resident L3 blocks eligible for a strike, in deterministic
        (fill) order.  ``clean_only`` restricts to clean, unshared blocks
        — the ones an uncorrectable upset can recover from by refetch."""
        h = self.machine.hierarchy
        l3 = h.l3[slice_id]
        out = []
        for addr in l3.resident_addresses():
            if l3.is_pinned(addr):
                continue
            if clean_only:
                if l3.state_of(addr).dirty:
                    continue
                entry = h.directory[slice_id].peek(addr)
                if entry is not None and entry.sharers:
                    continue
            out.append(addr)
        return out

    def pulse(self) -> None:
        """One between-operations injection window.

        Refreshes the ECC side-band, lands the plan's particle strikes,
        then runs the recovery scrub: single-bit upsets are SECDED-
        corrected in place; uncorrectable (double-bit) upsets in clean
        blocks are invalidated and refetch from memory on next use.  An
        uncorrectable upset in a *dirty* block would be unrecoverable —
        the plan never schedules one, and the scrub would surface it as
        :class:`~repro.errors.ECCError`.
        """
        h = self.machine.hierarchy
        for slice_id in range(len(h.l3)):
            self._scrub_service(slice_id).protect_resident()
        for slice_id in range(len(h.l3)):
            self._strike_slice(slice_id)
        self.scrub_and_recover()

    def _strike_slice(self, slice_id: int) -> None:
        svc = self._scrub_service(slice_id)
        struck: set[int] = set()  # one upset per block per pulse: a third
        # flip in an already-hit ECC word could alias to a valid syndrome
        if "sram.bitflip" in self._spec:
            rng = self._rng["sram.bitflip"]
            for addr in self._strike_candidates(slice_id, clean_only=False):
                if not self._want("sram.bitflip"):
                    continue
                bit = rng.randrange(_BITS_PER_BLOCK)
                svc.inject_strike(addr, bit)
                struck.add(addr)
                self._record_inject("sram.bitflip", addr=addr, unit=bit,
                                    level="L3")
        if "sram.double-bitflip" in self._spec:
            rng = self._rng["sram.double-bitflip"]
            for addr in self._strike_candidates(slice_id, clean_only=True):
                if addr in struck or not self._want("sram.double-bitflip"):
                    continue
                # Both flips must land in the same 64-bit word: SECDED is
                # per-word, so bits in different words would just be two
                # correctable single-bit errors.
                bit = rng.randrange(_BITS_PER_BLOCK)
                word = bit - bit % 64
                other = word + (bit % 64 + 1 + rng.randrange(63)) % 64
                svc.inject_strike(addr, bit)
                svc.inject_strike(addr, other)
                self._record_inject("sram.double-bitflip", addr=addr,
                                    unit=bit, level="L3")

    def scrub_and_recover(self) -> None:
        """Sweep every protected block; correct, refetch, or surface.

        Unlike :meth:`~repro.core.scrub.ScrubService.scrub_pass` (which
        propagates the first uncorrectable error and abandons the rest of
        the sweep), this recovery sweep classifies every block: SECDED
        single-bit corrections are written back, uncorrectable clean
        blocks are dropped to refetch from memory, and uncorrectable
        dirty blocks surface an :class:`~repro.errors.ECCError` after the
        sweep finishes (data genuinely lost — never silent).
        """
        h = self.machine.hierarchy
        lost: list[str] = []
        for slice_id in range(len(h.l3)):
            svc = self._scrubs.get(slice_id)
            if svc is None:
                continue
            l3 = h.l3[slice_id]
            for addr in list(l3.resident_addresses()):
                try:
                    ecc = svc.scrubber.ecc_of(addr)
                except Exception:
                    continue  # filled since the last protect pass
                data = l3.read_block(addr)
                try:
                    corrected = svc.codec.check_block(data, ecc)
                except ECCError:
                    if l3.state_of(addr).dirty:
                        msg = (f"uncorrectable ECC error in dirty block "
                               f"{addr:#x} (slice {slice_id})")
                        self.surfaced.append(msg)
                        self._record_recover("surfaced", "sram.double-bitflip",
                                             addr=addr, level="L3")
                        lost.append(msg)
                        continue
                    l3.invalidate(addr)
                    h.directory[slice_id].drop(addr)
                    self._record_recover("refetched", "sram.double-bitflip",
                                         addr=addr, level="L3")
                    continue
                if corrected != data:
                    l3.write_block(addr, corrected, dirty=True)
                    svc.scrubber.protect(addr, corrected)
                    self._record_recover("corrected", "sram.bitflip",
                                         addr=addr, level="L3")
        if lost:
            raise ECCError("; ".join(lost))
