"""Cycle-attribution: roll event streams into per-phase / per-instruction profiles.

The aggregator consumes the ring buffer of :class:`~repro.events.Event`
records a traced run produced and answers the paper's attribution
questions (Figures 7-9, Table V): where did the cycles go - issue slots,
exposed load stalls, CC operand fetch, in-place vs near-place compute -
and why did block operations miss in-place execution (locality miss, pin
loss, forced near-place).

Attribution invariant
---------------------

``core.phase`` events tile the machine timeline: their spans sum to the
run's total machine cycles.  :meth:`TraceProfile.validate` checks this
(and is asserted in the test-suite); a truncated ring buffer (dropped
events) refuses to validate rather than reporting a silently-short total.

On the controller side, the ``cc.attr`` spans of one instruction piece sum
to that piece's latency, so the CC table is internally consistent too.
CC latency *overlaps* the core timeline (RMO, Section IV-G): only its
non-hidden part appears in the machine phases, as ``cc-drain``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field

from .tracer import Event

MACHINE_PHASES = ("issue", "load-stall", "mlp-stall", "cc-drain")
CC_PHASES = ("decode", "operand-fetch", "transpose", "compute-inplace",
             "compute-nearplace", "notify")


@dataclass
class CCInstructionRow:
    """Attribution of one page-local CC instruction piece."""

    core: int
    instr_id: int
    opcode: str
    level: str
    cycles: float
    phases: dict[str, float] = field(default_factory=dict)
    block_ops: dict[str, int] = field(default_factory=dict)


@dataclass
class TraceProfile:
    """Everything the profiler derives from one traced run."""

    total_cycles: float
    machine_phases: dict[str, float]
    cc_phases: dict[str, float]
    cc_instructions: list[CCInstructionRow]
    block_op_outcomes: dict[str, int]
    fallback_reasons: dict[str, int]
    level_block_ops: dict[str, dict[str, int]]
    level_compute_cycles: dict[str, float]
    cache_counts: dict[str, dict[str, int]]
    directory_counts: dict[str, int]
    pin_retries: int
    pin_losses: int
    key_replications: int
    dropped_events: int
    topo_hops: dict[str, dict[str, float]] = field(default_factory=dict)
    """Inter-cluster traffic per route label (``"c0->c1"``): message and
    hop counts split by data/control.  Empty on flat (1-cluster) machines."""

    @property
    def attributed_cycles(self) -> float:
        return sum(self.machine_phases.values())

    def validate(self, total_cycles: float | None = None,
                 rel_tol: float = 1e-9, abs_tol: float = 1e-6) -> bool:
        """True iff the machine phases sum to the machine cycles.

        A stream that lost events to ring-buffer wraparound cannot account
        for the full timeline and never validates.
        """
        if self.dropped_events:
            return False
        target = self.total_cycles if total_cycles is None else total_cycles
        return math.isclose(self.attributed_cycles, target,
                            rel_tol=rel_tol, abs_tol=abs_tol)


def _bump(table: dict, key, amount=1) -> None:
    table[key] = table.get(key, 0) + amount


def build_profile(events: Iterable[Event],
                  total_cycles: float | None = None,
                  dropped_events: int = 0) -> TraceProfile:
    """Aggregate an event stream into a :class:`TraceProfile`.

    ``total_cycles`` is the run's reported machine cycles (e.g.
    ``TraceResult.cycles``); when omitted, the sum of the machine phases is
    used (which trivially validates).
    """
    events = list(events)
    machine_phases: dict[str, float] = {}
    cc_phases: dict[str, float] = {}
    rows: dict[tuple[int, int], CCInstructionRow] = {}
    outcomes: dict[str, int] = {}
    reasons: dict[str, int] = {}
    level_ops: dict[str, dict[str, int]] = {}
    level_cycles: dict[str, float] = {}
    cache_counts: dict[str, dict[str, int]] = {}
    dir_counts: dict[str, int] = {}
    topo_hops: dict[str, dict[str, float]] = {}
    pin_retries = pin_losses = key_replications = 0

    # Pass 1: per-instruction rows (the controller emits the completion
    # record after the attribution events it summarizes).
    for ev in events:
        if ev.kind == "cc.instruction":
            rows[(ev.core, ev.instr_id)] = CCInstructionRow(
                core=ev.core, instr_id=ev.instr_id, opcode=ev.opcode,
                level=ev.level, cycles=ev.span,
            )

    for ev in events:
        kind = ev.kind
        if kind == "core.phase":
            _bump(machine_phases, ev.phase, ev.span)
        elif kind == "cc.attr":
            _bump(cc_phases, ev.phase, ev.span)
            if ev.phase in ("compute-inplace", "compute-nearplace"):
                # Same definition as CCControllerStats.level_compute_cycles
                # (compute makespan per level) so the profiler and
                # collect_stats can never disagree.
                _bump(level_cycles, ev.level, ev.span)
            row = rows.get((ev.core, ev.instr_id))
            if row is not None:
                _bump(row.phases, ev.phase, ev.span)
        elif kind == "cc.block_op":
            _bump(outcomes, ev.outcome)
            if ev.reason is not None:
                _bump(reasons, ev.reason)
            _bump(level_ops.setdefault(ev.level, {}), ev.outcome)
            row = rows.get((ev.core, ev.instr_id))
            if row is not None:
                _bump(row.block_ops, ev.outcome)
        elif kind == "cc.pin_retry":
            pin_retries += 1
        elif kind == "cc.pin_loss":
            pin_losses += 1
        elif kind == "cc.key_replicate":
            key_replications += 1
        elif kind.startswith("cache."):
            table = cache_counts.setdefault(ev.level, {})
            if kind == "cache.lookup":
                _bump(table, "lookups")
                if ev.outcome == "hit":
                    _bump(table, "hits")
            else:
                _bump(table, kind.split(".", 1)[1] + "s")
        elif kind.startswith("htree."):
            table = cache_counts.setdefault(ev.level, {})
            _bump(table, kind.replace(".", "_") + "s")
        elif kind == "topo.hop":
            table = topo_hops.setdefault(ev.reason, {})
            _bump(table, f"{ev.outcome}_messages")
            _bump(table, f"{ev.outcome}_hops", ev.span)
        elif kind.startswith("dir."):
            _bump(dir_counts, kind.split(".", 1)[1])

    ordered_rows = sorted(rows.values(), key=lambda r: (r.core, r.instr_id))

    total = sum(machine_phases.values()) if total_cycles is None else total_cycles
    return TraceProfile(
        total_cycles=total,
        machine_phases=machine_phases,
        cc_phases=cc_phases,
        cc_instructions=ordered_rows,
        block_op_outcomes=outcomes,
        fallback_reasons=reasons,
        level_block_ops=level_ops,
        level_compute_cycles=level_cycles,
        cache_counts=cache_counts,
        directory_counts=dir_counts,
        pin_retries=pin_retries,
        pin_losses=pin_losses,
        key_replications=key_replications,
        dropped_events=dropped_events,
        topo_hops=topo_hops,
    )


def profile_machine(machine, total_cycles: float | None = None) -> TraceProfile:
    """Profile from a machine's attached tracer (raises if tracing is off)."""
    tracer = machine.tracer
    if tracer is None:
        raise ValueError(
            "machine has no event tracer; construct it with trace_events=True"
        )
    return build_profile(tracer.snapshot(), total_cycles=total_cycles,
                         dropped_events=tracer.dropped)


def profile_trace(text: str, machine=None, core: int = 0):
    """Replay a trace with tracing enabled; returns (TraceProfile, TraceResult, machine).

    ``machine`` must have an attached tracer when given; otherwise a
    default machine with tracing enabled is built.
    """
    from ..machine import ComputeCacheMachine
    from ..trace import run_trace

    m = machine or ComputeCacheMachine(trace_events=True)
    if m.tracer is None:
        raise ValueError(
            "machine has no event tracer; construct it with trace_events=True"
        )
    result = run_trace(text, m, core=core)
    profile = profile_machine(m, total_cycles=result.cycles)
    return profile, result, m


# -- rendering ---------------------------------------------------------------------


def _phase_table(title: str, phases: dict[str, float], order: tuple[str, ...],
                 total_label: str, total: float) -> list[str]:
    lines = [title]
    width = max([len(p) for p in order] + [len(total_label)]) + 2
    shown = 0.0
    for phase in order:
        cycles = phases.get(phase, 0.0)
        shown += cycles
        share = cycles / total if total else 0.0
        lines.append(f"  {phase:<{width}} {cycles:14,.1f}  {share:7.1%}")
    for phase, cycles in phases.items():  # anything unexpected still shows
        if phase not in order:
            shown += cycles
            lines.append(f"  {phase:<{width}} {cycles:14,.1f}")
    lines.append(f"  {total_label:<{width}} {shown:14,.1f}")
    return lines


def format_profile(profile: TraceProfile) -> str:
    """Human-readable attribution report."""
    out: list[str] = []
    out += _phase_table(
        "=== Machine cycle attribution (phases tile the timeline) ===",
        profile.machine_phases, MACHINE_PHASES,
        "total", profile.total_cycles,
    )
    status = "OK" if profile.validate() else "MISMATCH"
    out.append(f"  machine cycles reported: {profile.total_cycles:,.1f}  "
               f"[attribution {status}]")
    if profile.dropped_events:
        out.append(f"  WARNING: {profile.dropped_events:,} events dropped "
                   f"(ring buffer full) - totals are partial")

    cc_total = sum(profile.cc_phases.values())
    if cc_total:
        out.append("")
        out += _phase_table(
            "=== CC controller attribution (overlaps the core timeline) ===",
            profile.cc_phases, CC_PHASES, "total cc cycles", cc_total,
        )

    if profile.block_op_outcomes:
        out.append("")
        out.append("=== CC block operations ===")
        for outcome in ("in-place", "near-place", "risc-fallback"):
            count = profile.block_op_outcomes.get(outcome, 0)
            out.append(f"  {outcome:<16} {count:10,}")
        if profile.fallback_reasons:
            reasons = ", ".join(
                f"{reason}: {count:,}"
                for reason, count in sorted(profile.fallback_reasons.items())
            )
            out.append(f"  fallback reasons: {reasons}")
        out.append(f"  pin retries: {profile.pin_retries:,}  "
                   f"pin losses: {profile.pin_losses:,}  "
                   f"key replications: {profile.key_replications:,}")
        for level in sorted(profile.level_block_ops):
            ops = profile.level_block_ops[level]
            cycles = profile.level_compute_cycles.get(level, 0.0)
            per_outcome = ", ".join(
                f"{o}: {n:,}" for o, n in sorted(ops.items())
            )
            out.append(f"  {level}: {per_outcome}; "
                       f"{cycles:,.1f} compute cycles")

    if profile.cache_counts:
        out.append("")
        out.append("=== Cache / H-tree events ===")
        for level in sorted(profile.cache_counts):
            c = profile.cache_counts[level]
            lookups = c.get("lookups", 0)
            hits = c.get("hits", 0)
            hit_part = f" ({hits / lookups:.1%} hit)" if lookups else ""
            out.append(
                f"  {level}: {lookups:,} lookups{hit_part}, "
                f"{c.get('reads', 0):,} reads / {c.get('writes', 0):,} writes, "
                f"{c.get('fills', 0):,} fills, "
                f"{c.get('writebacks', 0):,} writebacks; "
                f"H-tree {c.get('htree_transfers', 0):,} transfers / "
                f"{c.get('htree_commands', 0):,} commands"
            )

    if profile.directory_counts:
        parts = ", ".join(f"{k}: {v:,}"
                          for k, v in sorted(profile.directory_counts.items()))
        out.append(f"  directory: {parts}")

    if profile.topo_hops:
        out.append("")
        out.append("=== NUMA topology traffic (inter-cluster) ===")
        for route in sorted(profile.topo_hops):
            t = profile.topo_hops[route]
            out.append(
                f"  {route}: "
                f"{int(t.get('data_messages', 0)):,} data / "
                f"{int(t.get('control_messages', 0)):,} control messages, "
                f"{t.get('data_hops', 0.0) + t.get('control_hops', 0.0):,.0f} "
                f"cluster-ring flit-hop units"
            )

    if profile.cc_instructions:
        out.append("")
        out.append("=== Per-instruction CC attribution ===")
        out.append("  core  id  opcode        level  cycles      "
                    "fetch    compute  block ops")
        for row in profile.cc_instructions:
            compute = (row.phases.get("compute-inplace", 0.0)
                       + row.phases.get("compute-nearplace", 0.0))
            ops = "/".join(
                str(row.block_ops.get(o, 0))
                for o in ("in-place", "near-place", "risc-fallback")
            )
            out.append(
                f"  {row.core:>4}  {row.instr_id:>2}  {row.opcode:<12} "
                f"{row.level:<6} {row.cycles:9,.1f} {row.phases.get('operand-fetch', 0.0):9,.1f} "
                f"{compute:9,.1f}  {ops}"
            )
    return "\n".join(out)
