"""Structured event tracing: the ring-buffer tracer and the event schema.

The tracer is the observability backbone of the simulator: every layer -
the CC controller, the in-place / near-place executors, the cache levels,
the H-trees, the coherence directory, and the core timing model - emits
:class:`Event` records into one shared bounded ring buffer.  Tracing is
enabled at :class:`~repro.params.MachineConfig` level (``trace_events``);
when it is off the components hold ``tracer=None`` and the only residual
cost on a hot path is a single ``is not None`` check.

Events are *simulation-deterministic*: they carry simulated cycles, never
wall-clock time, so two machines configured identically produce identical
event streams - including across the ``bitexact`` and ``packed`` execution
backends (enforced by the differential-equivalence harness).

Event kinds
-----------

==================  ==========================================================
``core.phase``      One machine-timeline segment (``phase``: ``issue``,
                    ``load-stall``, ``mlp-stall``, ``cc-drain``) with its
                    start ``cycle`` and ``span``.  The spans of all
                    ``core.phase`` events of a run tile the timeline: they
                    sum to the run's total machine cycles (the attribution
                    invariant).
``cc.timeline``     One CC instruction placed on the timeline by the core
                    model (``phase``: ``total`` = full latency,
                    ``occupancy`` = controller-busy portion).
``cc.instruction``  One page-local CC instruction piece completing at the
                    controller (``span`` = its latency in cycles).
``cc.attr``         Controller-side attribution of one instruction piece
                    (``phase``: ``decode``, ``operand-fetch``,
                    ``compute-inplace``, ``compute-nearplace``, ``notify``);
                    spans sum to the piece's ``cc.instruction`` span.
``cc.dispatch``     Batched-vs-sequential dispatch decision (``reason``:
                    ``data-hazard`` or ``occupancy`` when sequential).
``cc.block_op``     One simple vector operation (``outcome``: ``in-place``,
                    ``near-place``, ``risc-fallback``; ``reason``:
                    ``locality-miss``, ``pin-loss``, ``forced``).
``cc.fetch``        One operand fetch to the compute level (``span`` =
                    fetch latency).
``cc.transpose``    Row-major -> bit-serial layout conversion before an
                    arithmetic instruction (``blocks`` converted,
                    ``span`` = conversion makespan in cycles).
``cc.pin_retry``    A lost pin forcing a re-fetch attempt.
``cc.pin_loss``     A forwarded coherence request stealing a pinned line.
``cc.key_replicate``A search key written into a partition's key row.
``subarray.op``     One in-place sub-array operation.
``nearplace.op``    One near-place logic-unit operation.
``cache.lookup``    Tag lookup (``outcome``: ``hit`` / ``miss``).
``cache.read``      Conventional block read (array + H-tree).
``cache.write``     Conventional block write.
``cache.fill``      Block allocation (fill).
``cache.writeback`` Dirty victim pushed out by a fill.
``htree.transfer``  One 64-byte block moved over a cache's H-tree.
``htree.command``   One CC block command broadcast on the address bus.
``dir.grant``       Directory grant (``outcome``: ``owner`` / ``sharer``).
``dir.revoke``      Directory sharer removal (``reason``: ``redundant``
                    for an idempotent duplicate delivery).
``dir.drop``        Directory entry dropped (L3 eviction).
``topo.hop``        One interconnect message crossing a cluster boundary
                    (multi-cluster topologies only; ``unit`` = source
                    cluster, ``blocks`` = destination cluster, ``span`` =
                    inter-cluster hops traversed, ``outcome``: ``data`` /
                    ``control``, ``reason`` = ``c<src>->c<dst>`` route
                    label).  A flat 1-cluster machine emits none, keeping
                    its event stream identical to the pre-topology model.
``runner.point``    One sweep-runner point (``phase``: ``cache-hit``,
                    ``computed``, ``timeout``, ``retry``,
                    ``serial-fallback``, ``failed``; ``span`` =
                    wall-clock seconds, not simulated cycles).
``runner.batch``    One sweep-runner batch (``span`` = wall seconds).
``serve.job``       One job-service transition (``phase``: ``queued``,
                    ``coalesced``, ``requeued``, ``start``, ``timeout``,
                    ``retry``, ``done``, ``failed``, ``shutdown``;
                    ``reason`` = job id, ``opcode`` = point function,
                    ``span`` = wall seconds).
``fault.inject``    One fault delivered by :mod:`repro.faults` (``reason``
                    names the fault kind, e.g. ``sram.bitflip``,
                    ``controller.pin-steal``, ``directory.duplicate``).
``fault.recover``   One recovery action (``outcome``: ``corrected`` =
                    SECDED scrub fixed a single-bit upset, ``refetched`` =
                    uncorrectable clean block invalidated, ``retried`` =
                    operands re-pinned after a loss, ``degraded-risc`` =
                    RISC fallback after ``pin_retry_limit`` attempts,
                    ``absorbed`` = duplicated/delayed forwarded request
                    handled idempotently, ``surfaced`` = unrecoverable,
                    raised as an error).
==================  ==========================================================
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, fields


@dataclass(frozen=True)
class Event:
    """One traced simulation event.

    Only the fields meaningful for the event's ``kind`` are set; the rest
    stay ``None``.  ``cycle`` is a machine-timeline position (set by the
    core model, which owns the clock); controller- and cache-side events
    carry durations (``span``) but no absolute position.
    """

    seq: int
    kind: str
    core: int | None = None
    level: str | None = None
    unit: int | None = None
    opcode: str | None = None
    partition: object = None
    addr: int | None = None
    instr_id: int | None = None
    cycle: float | None = None
    span: float = 0.0
    outcome: str | None = None
    reason: str | None = None
    phase: str | None = None
    blocks: int | None = None


EVENT_FIELDS = tuple(f.name for f in fields(Event))


class EventTracer:
    """Bounded ring buffer of :class:`Event` records.

    ``capacity`` bounds memory: once full, the oldest events are dropped
    (``dropped`` counts them, and the profiler refuses to validate a
    truncated stream).  ``enabled`` allows pausing an attached tracer;
    components constructed without a tracer skip even the method call.
    """

    __slots__ = ("capacity", "events", "enabled", "_seq")

    def __init__(self, capacity: int = 1 << 20, enabled: bool = True) -> None:
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.events: deque[Event] = deque(maxlen=capacity)
        self.enabled = enabled
        self._seq = 0

    # -- recording ------------------------------------------------------------------

    def emit(self, kind: str, **fields: object) -> None:
        """Append one event (no-op while paused)."""
        if not self.enabled:
            return
        self.events.append(Event(seq=self._seq, kind=kind, **fields))
        self._seq += 1

    # -- inspection -----------------------------------------------------------------

    @property
    def total_emitted(self) -> int:
        return self._seq

    @property
    def dropped(self) -> int:
        """Events lost to ring-buffer wraparound."""
        return self._seq - len(self.events)

    def snapshot(self) -> list[Event]:
        """Stable copy of the current buffer contents (oldest first)."""
        return list(self.events)

    def clear(self) -> None:
        """Empty the buffer and reset sequence numbering."""
        self.events.clear()
        self._seq = 0

    def by_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
