"""Event tracing, cycle attribution, and Chrome-trace export.

See :mod:`repro.events.tracer` for the event schema, and
``docs/profiling.md`` for the workflow.  Enable tracing through
``MachineConfig(trace_events=True)`` or
``ComputeCacheMachine(trace_events=True)``; profile a trace file with
``python -m repro profile <trace>``.
"""

from .attribution import (
    CC_PHASES,
    MACHINE_PHASES,
    CCInstructionRow,
    TraceProfile,
    build_profile,
    format_profile,
    profile_machine,
    profile_trace,
)
from .chrometrace import chrome_trace, write_chrome_trace
from .tracer import Event, EventTracer

__all__ = [
    "CC_PHASES",
    "MACHINE_PHASES",
    "CCInstructionRow",
    "Event",
    "EventTracer",
    "TraceProfile",
    "build_profile",
    "chrome_trace",
    "format_profile",
    "profile_machine",
    "profile_trace",
    "write_chrome_trace",
]


from .._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "Event", "EventTracer", "TraceProfile", "build_profile", "format_profile",
    "profile_machine", "profile_trace", "chrome_trace", "write_chrome_trace",
))
