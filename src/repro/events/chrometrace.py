"""Chrome-trace (Perfetto-loadable) JSON export of a traced run.

Timeline-bearing events (``core.phase`` and ``cc.timeline`` - the ones the
core model stamps with an absolute cycle) become *complete* slices in the
Chrome Trace Event Format, which both ``chrome://tracing`` and
https://ui.perfetto.dev load directly.  One process per core, three
tracks:

* ``core``        - the machine timeline, tiled by phase (issue slots,
  exposed stalls, CC drain);
* ``cc latency``  - each CC instruction's full latency (overlapping the
  core track: RMO lets the core run ahead);
* ``cc occupancy``- the portion of that latency the controller itself is
  busy (decode + command issue + near-place logic-unit time).

Timestamps are simulated cycles, written as microseconds (the format's
native unit), so "1 us" in the viewer reads as one core cycle.
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from .tracer import Event

_TRACKS = {"core": 0, "cc latency": 1, "cc occupancy": 2}


def chrome_trace(events: Iterable[Event]) -> dict:
    """Build the Chrome Trace Event Format document for an event stream."""
    trace_events: list[dict] = []
    cores_seen: set[int] = set()

    def slice_event(name: str, core: int, track: str, ts: float, dur: float,
                    args: dict) -> None:
        cores_seen.add(core)
        trace_events.append({
            "name": name,
            "cat": track,
            "ph": "X",
            "ts": ts,
            "dur": dur,
            "pid": core,
            "tid": _TRACKS[track],
            "args": args,
        })

    for ev in events:
        if ev.cycle is None or ev.core is None:
            continue  # only timeline-stamped events become slices
        if ev.kind == "core.phase":
            name = ev.phase if ev.outcome is None else f"{ev.phase}:{ev.outcome}"
            slice_event(name, ev.core, "core", ev.cycle, ev.span,
                        {"phase": ev.phase})
        elif ev.kind == "cc.timeline":
            track = "cc occupancy" if ev.phase == "occupancy" else "cc latency"
            slice_event(ev.opcode or "cc", ev.core, track, ev.cycle, ev.span,
                        {"opcode": ev.opcode, "phase": ev.phase})

    for core in sorted(cores_seen):
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": core, "tid": 0,
            "args": {"name": f"core {core}"},
        })
        for track, tid in _TRACKS.items():
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": core, "tid": tid,
                "args": {"name": track},
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": {"time_unit": "1 us == 1 simulated core cycle"}}


def write_chrome_trace(events: Iterable[Event], path: str) -> dict:
    """Write the Chrome-trace JSON to ``path``; returns the document."""
    doc = chrome_trace(events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1)
    return doc
