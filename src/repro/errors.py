"""Exception hierarchy for the Compute Caches reproduction.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause.
The sub-classes mirror the architectural failure modes the paper discusses:
operand-locality violations, multi-row activation limits, page-spanning
operands (which raise a pipeline exception in hardware), pinned-line
conflicts, and ECC mismatches.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """A machine/cache configuration is internally inconsistent."""


class AddressError(ReproError):
    """An address is out of range or mis-aligned for the requested access."""


class OperandLocalityError(ReproError):
    """Two operands do not share a block partition (Section IV-C).

    In-place bit-line computation requires both operands to be stored in
    rows of the same sub-array that share bit-lines.  The controller
    normally falls back to near-place computation instead of raising; this
    error surfaces when the caller explicitly requested in-place execution.
    """


class ActivationLimitError(ReproError):
    """More word-lines were activated than the circuit tolerates.

    Jeloka et al. demonstrated no data corruption with up to 64
    simultaneously-activated word-lines; the sub-array model enforces a
    configurable cap and raises this error beyond it.
    """


class DataCorruptionError(ReproError):
    """Multi-row activation corrupted bit-cells.

    Only raised when the sub-array is configured with
    ``wordline_underdrive=False`` (fault-injection mode) - the paper's
    circuit lowers the word-line voltage to bias against writes, which
    prevents this failure.
    """


class PageSpanError(ReproError):
    """A CC operand crosses a page boundary (Section IV-D).

    In hardware this raises a pipeline exception whose handler splits the
    instruction; the library's controller performs the same split, and only
    raises when splitting is disabled.
    """


class PinnedLineError(ReproError):
    """A cache line needed by a CC operation could not be pinned."""


class CoherenceError(ReproError):
    """Internal coherence-protocol invariant violation (a bug, not a race)."""


class ECCError(ReproError):
    """An uncorrectable error was detected by the ECC machinery."""


class ISAError(ReproError):
    """A CC instruction is malformed (bad opcode, size, or alignment)."""


class RunnerError(ReproError):
    """A benchmark simulation point failed inside the sweep runner."""


class FaultPlanError(ConfigError):
    """A fault-injection plan is malformed (unknown kind, bad probability)."""


class ServeError(ReproError):
    """A job submitted to the simulation service is invalid, or the
    service cannot accept it (draining, stopped, unknown point function)."""


class QueueFullError(ServeError):
    """The service job queue is at its backpressure limit; the submitter
    should retry later (HTTP 429 at the front end)."""


from ._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "ReproError", "ConfigError", "AddressError", "OperandLocalityError",
    "ActivationLimitError", "DataCorruptionError", "PageSpanError",
    "PinnedLineError", "CoherenceError", "ECCError", "ISAError",
    "RunnerError", "FaultPlanError", "ServeError", "QueueFullError",
))
