"""The stable public API of the Compute Caches reproduction.

This module is the supported import surface::

    from repro.api import ComputeCacheMachine, cc_ops, FaultPlan

Everything in ``__all__`` follows the compatibility policy spelled out in
``docs/api.md`` ("stability tiers"): symbols here keep working across
minor releases, while the deep module paths they come from
(``repro.params``, ``repro.events``, ``repro.bench.runner``, …) are
internal — importing the same names from those paths still works but
raises a :class:`DeprecationWarning`.

The classic top-level spelling ``from repro import ComputeCacheMachine``
remains supported as well.
"""

from __future__ import annotations

# -- machine, configuration, ISA -----------------------------------------------------
from .alloc import Arena, SuperpageArena
from .apps import (
    bitmap_db,
    bmm,
    crypto,
    qdnn,
    streambw,
    stringmatch,
    textgen,
    wordcount,
)
from .apps.checkpoint import run_checkpoint
from .apps.common import AppResult, fresh_machine
from .apps.crypto import (
    CryptoConfig,
    crc_fold,
    crypto_plan,
    ghash,
    ntt_polymul,
    run_crypto,
    run_crypto_campaign,
)
from .apps.splash import PROFILES, SplashProfile
from .apps.streambw import run_streambw
from .asm import assemble, format_instruction, parse
from .bench.crypto import CryptoSweepConfig, run_crypto_sweep
from .bench.report import bench_document, bench_provenance, write_bench
from .bench.runner import Point, PointRunner
from .bench.streambw import StreamBWConfig, run_streambw_sweep
from .bench.suites import BenchSuite, bench_suites
from .compiler import ArrayRef, VectorCompiler, VectorPlan, compile_and_run
from .config_io import (
    config_digest,
    config_from_dict,
    config_from_json,
    config_to_dict,
    config_to_json,
    fault_plan_from_json,
    fault_plan_to_json,
    load_config,
    load_fault_plan,
    save_config,
    save_fault_plan,
)
from .core import isa as cc_ops
from .docscheck import generate_isa_table, run_docscheck
from .bench.speed import SpeedConfig, run_speed
from .core.controller import CCResult, ComputeCacheController
from .core.isa import ARITH_ELEM_BITS, CCInstruction, Opcode
from .core.scrub import ScrubService
from .core.transpose import TransposeUnit
from .core.stream import CCInstructionStream, CCOccupancyTimeline, StreamResult
from .cpu.multicore import MulticoreResult, MulticoreRunner
from .cpu.program import Instr, InstrKind, Program
from .errors import (
    ActivationLimitError,
    AddressError,
    CoherenceError,
    ConfigError,
    DataCorruptionError,
    ECCError,
    FaultPlanError,
    ISAError,
    OperandLocalityError,
    PageSpanError,
    PinnedLineError,
    QueueFullError,
    ReproError,
    RunnerError,
    ServeError,
)
from .events import (
    Event,
    EventTracer,
    TraceProfile,
    build_profile,
    chrome_trace,
    format_profile,
    profile_machine,
    profile_trace,
    write_chrome_trace,
)
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ResilienceReport,
    RunnerChaos,
    default_plan,
    run_campaign,
)
from .machine import ComputeCacheMachine
from .serve import (
    BackgroundServer,
    Job,
    JobQueue,
    JobService,
    LoadgenConfig,
    ReproServer,
    run_loadgen,
)
from .params import (
    BACKENDS,
    BLOCK_SIZE,
    PAGE_SIZE,
    WORD_SIZE,
    CacheLevelConfig,
    ComputeCacheConfig,
    CoreConfig,
    MachineConfig,
    MemoryConfig,
    RingConfig,
    TopologyConfig,
    multi_cluster,
    sandybridge_8core,
    small_test_machine,
)
from .sram import BitCellArray, CellType
from .stats import MachineSnapshot, collect_stats, format_stats
from .trace import run_trace, run_trace_file

__all__ = [
    # machine & configuration
    "ComputeCacheMachine",
    "MachineConfig",
    "CacheLevelConfig",
    "ComputeCacheConfig",
    "CoreConfig",
    "MemoryConfig",
    "RingConfig",
    "TopologyConfig",
    "multi_cluster",
    "sandybridge_8core",
    "small_test_machine",
    "BACKENDS",
    "BLOCK_SIZE",
    "PAGE_SIZE",
    "WORD_SIZE",
    "Arena",
    "SuperpageArena",
    "BitCellArray",
    "CellType",
    # ISA & execution
    "cc_ops",
    "ARITH_ELEM_BITS",
    "TransposeUnit",
    "CCInstruction",
    "CCResult",
    "ComputeCacheController",
    "Opcode",
    "Program",
    "Instr",
    "InstrKind",
    "CCInstructionStream",
    "CCOccupancyTimeline",
    "StreamResult",
    "MulticoreRunner",
    "MulticoreResult",
    # configuration I/O
    "config_to_dict",
    "config_from_dict",
    "config_to_json",
    "config_from_json",
    "config_digest",
    "save_config",
    "load_config",
    # events & profiling
    "Event",
    "EventTracer",
    "TraceProfile",
    "build_profile",
    "format_profile",
    "profile_machine",
    "profile_trace",
    "chrome_trace",
    "write_chrome_trace",
    # sweep runner & suite registry
    "PointRunner",
    "Point",
    "BenchSuite",
    "bench_suites",
    "bench_document",
    "bench_provenance",
    "write_bench",
    # simulation service & load generator
    "JobService",
    "Job",
    "JobQueue",
    "ReproServer",
    "BackgroundServer",
    "LoadgenConfig",
    "run_loadgen",
    "SpeedConfig",
    "run_speed",
    "StreamBWConfig",
    "run_streambw_sweep",
    # faults & resilience
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "RunnerChaos",
    "ResilienceReport",
    "default_plan",
    "run_campaign",
    "fault_plan_to_json",
    "fault_plan_from_json",
    "save_fault_plan",
    "load_fault_plan",
    "ScrubService",
    # statistics
    "MachineSnapshot",
    "collect_stats",
    "format_stats",
    # asm / compiler / trace front-ends
    "parse",
    "assemble",
    "format_instruction",
    "VectorCompiler",
    "VectorPlan",
    "ArrayRef",
    "compile_and_run",
    "run_trace",
    "run_trace_file",
    "run_docscheck",
    "generate_isa_table",
    # applications
    "AppResult",
    "fresh_machine",
    "run_checkpoint",
    "PROFILES",
    "SplashProfile",
    "bitmap_db",
    "bmm",
    "crypto",
    "qdnn",
    "streambw",
    "stringmatch",
    "textgen",
    "wordcount",
    "run_streambw",
    # crypto suite
    "CryptoConfig",
    "CryptoSweepConfig",
    "ghash",
    "crc_fold",
    "ntt_polymul",
    "run_crypto",
    "run_crypto_campaign",
    "run_crypto_sweep",
    "crypto_plan",
    # errors
    "ReproError",
    "ConfigError",
    "AddressError",
    "OperandLocalityError",
    "ActivationLimitError",
    "DataCorruptionError",
    "PageSpanError",
    "PinnedLineError",
    "CoherenceError",
    "ECCError",
    "ISAError",
    "RunnerError",
    "FaultPlanError",
    "ServeError",
    "QueueFullError",
]
