"""Machine configuration for the Compute Caches reproduction.

The default configuration reproduces Table IV of the paper: an 8-core CMP
modeled after Intel SandyBridge with a three-level cache hierarchy, a ring
interconnect, and directory-based MESI coherence.  Cache geometries follow
Table III (banks, block partitions, and the minimum number of low address
bits that must match for operand locality).

All sizes are in bytes, all latencies in core cycles, and all energies in
picojoules unless noted otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from .errors import ConfigError

BLOCK_SIZE = 64
"""Cache block size in bytes (fixed at 64 throughout the paper)."""

PAGE_SIZE = 4096
"""Virtual-memory page size in bytes; operand locality holds for
page-aligned operands because pages are 4 KB (Section IV-C)."""

WORD_SIZE = 8
"""Machine word size in bytes (64-bit words)."""


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def log2i(n: int) -> int:
    """Integer log2 of a power of two; raises :class:`ConfigError` otherwise."""
    if not _is_pow2(n):
        raise ConfigError(f"{n} is not a power of two")
    return n.bit_length() - 1


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry and timing of one cache level (or one NUCA slice for L3).

    The block-partition layout implements the paper's operand-locality-aware
    organization (Figure 5): all ways of a set map to a single block
    partition, and the bank/partition-select bits are the low bits of the
    set index, so two addresses share a partition iff their low
    ``min_locality_bits`` address bits are equal (Table III).
    """

    name: str
    size: int
    ways: int
    banks: int
    bps_per_bank: int
    hit_latency: int
    block_size: int = BLOCK_SIZE

    def __post_init__(self) -> None:
        for label, value in (
            ("size", self.size),
            ("ways", self.ways),
            ("banks", self.banks),
            ("bps_per_bank", self.bps_per_bank),
            ("block_size", self.block_size),
        ):
            if not _is_pow2(value):
                raise ConfigError(f"{self.name}: {label}={value} must be a power of two")
        if self.size % (self.ways * self.block_size):
            raise ConfigError(f"{self.name}: size not divisible by ways*block")
        if self.sets < self.banks * self.bps_per_bank:
            raise ConfigError(
                f"{self.name}: fewer sets ({self.sets}) than block partitions "
                f"({self.banks * self.bps_per_bank})"
            )

    @property
    def blocks(self) -> int:
        """Total cache blocks in this level."""
        return self.size // self.block_size

    @property
    def sets(self) -> int:
        return self.blocks // self.ways

    @property
    def set_index_bits(self) -> int:
        return log2i(self.sets)

    @property
    def offset_bits(self) -> int:
        return log2i(self.block_size)

    @property
    def bank_bits(self) -> int:
        return log2i(self.banks)

    @property
    def bp_bits(self) -> int:
        return log2i(self.bps_per_bank)

    @property
    def num_partitions(self) -> int:
        """Block partitions across the whole level."""
        return self.banks * self.bps_per_bank

    @property
    def blocks_per_partition(self) -> int:
        return self.blocks // self.num_partitions

    @property
    def sets_per_partition(self) -> int:
        return self.sets // self.num_partitions

    @property
    def min_locality_bits(self) -> int:
        """Low address bits that must match for operand locality (Table III).

        offset bits + bank-select bits + partition-select bits.
        """
        return self.offset_bits + self.bank_bits + self.bp_bits

    @property
    def subarray_rows(self) -> int:
        """Rows per sub-array; one cache block per row in our layout."""
        return self.blocks_per_partition

    @property
    def subarray_cols(self) -> int:
        """Bit-lines per sub-array; one 64-byte block per row -> 512 columns."""
        return self.block_size * 8


@dataclass(frozen=True)
class CoreConfig:
    """Processor core parameters (Table IV plus energy constants).

    ``epi_*`` values are whole-core energy-per-instruction constants in pJ
    (fetch/decode/rename/wakeup/commit included - McPAT puts a
    SandyBridge-class out-of-order core near 1 nJ/instruction).  They are
    calibrated so a scalar bulk-compare spends roughly three quarters of
    its energy on instruction processing (Figure 3 top-left).
    """

    frequency_ghz: float = 2.66
    load_queue_entries: int = 48
    store_queue_entries: int = 32
    vector_lsq_entries: int = 16
    simd_width: int = 32
    epi_scalar: float = 800.0
    epi_simd: float = 1000.0
    epi_cc: float = 1100.0
    static_power_core_mw: float = 450.0

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz


@dataclass(frozen=True)
class RingConfig:
    """Shared ring interconnect (Table IV)."""

    hop_latency: int = 3
    link_width_bits: int = 256
    stops: int = 8
    energy_per_hop_per_flit: float = 52.0

    @property
    def flits_per_block(self) -> int:
        return (BLOCK_SIZE * 8) // self.link_width_bits

    def avg_hops(self) -> float:
        """Average hop count between two uniformly random ring stops."""
        return self.stops / 4.0


@dataclass(frozen=True)
class TopologyConfig:
    """Multi-cluster (NUMA) organization of cores and L3 slices.

    The machine's ring stops are partitioned block-wise into ``clusters``
    equal groups.  Stops inside a cluster talk over that cluster's local
    ring (:class:`~repro.params.RingConfig` costs); traffic between
    clusters is routed through each cluster's gateway stop (stop 0 of the
    group) onto a second-level cluster ring whose hops are slower and more
    expensive (``inter_hop_latency``, ``inter_energy_per_hop_per_flit``).

    ``clusters=1`` (the default) is *exactly* today's flat machine: the
    routing, latency, and energy models all reduce to the plain
    bidirectional ring, bit-for-bit (pinned by
    ``tests/test_topology_property.py``).

    ``slice_interleave`` selects the L3 page-homing policy:

    * ``"first-touch"`` (default, the paper's Section IV-C policy): a page
      is homed on the NUCA slice at the first toucher's ring stop.
    * ``"page"``: static address interleaving, ``slice = page % l3_slices``
      - a partition of the physical address space with no overlap or gap.
    """

    clusters: int = 1
    inter_hop_latency: int = 24
    inter_link_width_bits: int = 256
    inter_energy_per_hop_per_flit: float = 260.0
    slice_interleave: str = "first-touch"

    def __post_init__(self) -> None:
        if self.clusters < 1:
            raise ConfigError("topology needs at least one cluster")
        if self.inter_hop_latency < 0:
            raise ConfigError("inter-cluster hop latency cannot be negative")
        if self.inter_energy_per_hop_per_flit < 0:
            raise ConfigError("inter-cluster hop energy cannot be negative")
        if (self.inter_link_width_bits <= 0
                or (BLOCK_SIZE * 8) % self.inter_link_width_bits):
            raise ConfigError(
                f"inter-cluster link width {self.inter_link_width_bits} must "
                f"divide a {BLOCK_SIZE * 8}-bit block"
            )
        if self.slice_interleave not in ("first-touch", "page"):
            raise ConfigError(
                f"unknown slice_interleave {self.slice_interleave!r}; "
                "expected 'first-touch' or 'page'"
            )

    @property
    def inter_flits_per_block(self) -> int:
        return (BLOCK_SIZE * 8) // self.inter_link_width_bits


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip memory model (Table IV)."""

    latency: int = 120
    energy_per_block: float = 15000.0
    bandwidth_blocks_per_cycle: float = 0.25


@dataclass(frozen=True)
class ComputeCacheConfig:
    """Parameters specific to the Compute Cache extensions (Sections IV, VI-C)."""

    inplace_latency: int = 14
    nearplace_latency: int = 22
    transpose_latency: int = 8
    """Cycles to convert one cache block between row-major and bit-serial
    layout in the sub-array-periphery transpose unit (Neural Cache)."""
    max_activated_wordlines: int = 64
    max_operand_bytes: int = 16 * 1024
    cmp_search_max_bytes: int = 512
    search_key_bytes: int = 64
    pin_retry_limit: int = 2
    area_overhead_fraction: float = 0.08
    commands_per_cycle: int = 1
    """CC block-operations the controller can issue per cycle (the address
    bus in the H-tree is not replicated, Section IV-D)."""


BACKENDS = ("bitexact", "packed")
"""Valid sub-array execution backends (see :mod:`repro.sram.subarray`)."""


@dataclass(frozen=True)
class MachineConfig:
    """Complete machine description (Table IV defaults).

    ``backend`` selects the functional execution backend for every compute
    sub-array in the machine: ``"packed"`` (the default) runs vectorized
    numpy kernels over packed bytes, ``"bitexact"`` simulates the bit-level
    circuits.  The two are bit-for-bit equivalent (results, statistics, and
    energy) - enforced by the differential-equivalence harness - so
    ``bitexact`` is only needed for circuit-level experiments.
    """

    cores: int = 8
    core: CoreConfig = field(default_factory=CoreConfig)
    l1d: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(
            name="L1-D", size=32 * 1024, ways=8, banks=2, bps_per_bank=2, hit_latency=5
        )
    )
    l1i: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(
            name="L1-I", size=32 * 1024, ways=4, banks=2, bps_per_bank=2, hit_latency=5
        )
    )
    l2: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(
            name="L2", size=256 * 1024, ways=8, banks=8, bps_per_bank=2, hit_latency=11
        )
    )
    l3_slice: CacheLevelConfig = field(
        default_factory=lambda: CacheLevelConfig(
            name="L3-slice",
            size=2 * 1024 * 1024,
            ways=16,
            banks=16,
            bps_per_bank=4,
            hit_latency=11,
        )
    )
    l3_slices: int = 8
    ring: RingConfig = field(default_factory=RingConfig)
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    cc: ComputeCacheConfig = field(default_factory=ComputeCacheConfig)
    memory_size: int = 64 * 1024 * 1024
    static_power_uncore_mw: float = 1400.0
    backend: str = "packed"
    trace_events: bool = False
    """Attach a structured event tracer (:mod:`repro.events`) to every
    layer of the machine.  Off by default: the only residual cost of the
    instrumentation is a ``tracer is not None`` check on the hot paths."""
    event_buffer_capacity: int = 1 << 20
    """Ring-buffer capacity of the event tracer (oldest events are dropped
    once full; the profiler refuses to validate a truncated stream)."""

    def __post_init__(self) -> None:
        if self.memory_size % PAGE_SIZE:
            raise ConfigError("memory_size must be a multiple of the page size")
        if self.l3_slices != self.ring.stops:
            raise ConfigError("one ring stop per L3 slice is assumed")
        if self.ring.stops % self.topology.clusters:
            raise ConfigError(
                f"{self.ring.stops} ring stops do not divide into "
                f"{self.topology.clusters} equal clusters"
            )
        if self.cores % self.topology.clusters:
            raise ConfigError(
                f"{self.cores} cores do not divide into "
                f"{self.topology.clusters} equal clusters"
            )
        if self.backend not in BACKENDS:
            raise ConfigError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.event_buffer_capacity <= 0:
            raise ConfigError("event_buffer_capacity must be positive")

    @property
    def l3_total_size(self) -> int:
        return self.l3_slice.size * self.l3_slices

    def scaled(self, memory_size: int | None = None, cores: int | None = None) -> "MachineConfig":
        """Return a copy with selected top-level fields replaced."""
        kwargs = {}
        if memory_size is not None:
            kwargs["memory_size"] = memory_size
        if cores is not None:
            kwargs["cores"] = cores
        return replace(self, **kwargs)


def sandybridge_8core(memory_size: int = 64 * 1024 * 1024) -> MachineConfig:
    """The paper's evaluation machine (Table IV)."""
    return MachineConfig(memory_size=memory_size)


def small_test_machine(memory_size: int = 1024 * 1024) -> MachineConfig:
    """A shrunken machine used by the test-suite for fast runs.

    Geometry ratios (banks, partitions, way-mapping) are preserved so that
    operand-locality behaviour matches the full machine.
    """
    return MachineConfig(
        cores=2,
        l1d=CacheLevelConfig(
            name="L1-D", size=4 * 1024, ways=4, banks=2, bps_per_bank=2, hit_latency=5
        ),
        l1i=CacheLevelConfig(
            name="L1-I", size=4 * 1024, ways=2, banks=2, bps_per_bank=2, hit_latency=5
        ),
        l2=CacheLevelConfig(
            name="L2", size=16 * 1024, ways=4, banks=4, bps_per_bank=2, hit_latency=11
        ),
        l3_slice=CacheLevelConfig(
            name="L3-slice", size=64 * 1024, ways=8, banks=4, bps_per_bank=2, hit_latency=11
        ),
        l3_slices=2,
        ring=RingConfig(stops=2),
        memory_size=memory_size,
    )


def multi_cluster(
    clusters: int,
    cores_per_cluster: int,
    *,
    full_size: bool = False,
    inter_hop_latency: int = 24,
    slice_interleave: str = "first-touch",
    memory_size: int | None = None,
) -> MachineConfig:
    """A clustered (NUMA) machine: ``clusters`` x ``cores_per_cluster`` cores.

    One ring stop (and one L3 slice) per core, stops partitioned into
    ``clusters`` equal groups bridged by the inter-cluster ring (see
    :class:`TopologyConfig`).  Cache geometry comes from
    :func:`small_test_machine` (or Table IV with ``full_size=True``), so a
    1-cluster instance of the same core count is the flat machine the
    test-suite already pins.  Memory scales with the core count.
    """
    if clusters < 1 or cores_per_cluster < 1:
        raise ConfigError("need at least one cluster and one core per cluster")
    base = sandybridge_8core() if full_size else small_test_machine()
    cores = clusters * cores_per_cluster
    if memory_size is None:
        memory_size = cores * (base.memory_size // base.cores)
    return replace(
        base,
        cores=cores,
        l3_slices=cores,
        ring=replace(base.ring, stops=cores),
        topology=TopologyConfig(
            clusters=clusters,
            inter_hop_latency=inter_hop_latency,
            slice_interleave=slice_interleave,
        ),
        memory_size=memory_size,
    )


def validate_table3(config: MachineConfig) -> dict[str, int]:
    """Return the Table III min-address-bit constraint for each level."""
    return {
        config.l1d.name: config.l1d.min_locality_bits,
        config.l2.name: config.l2.min_locality_bits,
        config.l3_slice.name: config.l3_slice.min_locality_bits,
    }


def ns_to_cycles(ns: float, core: CoreConfig) -> int:
    """Convert nanoseconds to (rounded-up) core cycles."""
    return int(math.ceil(ns / core.cycle_ns))


from ._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "MachineConfig", "CacheLevelConfig", "ComputeCacheConfig", "CoreConfig",
    "MemoryConfig", "RingConfig", "TopologyConfig", "sandybridge_8core",
    "small_test_machine", "multi_cluster",
))
