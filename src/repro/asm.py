"""Assembler / disassembler for the Compute Cache ISA (Table II).

A one-line text form for CC instructions plus the baseline trace events,
round-trippable, used by the trace frontend and handy in tests and docs::

    cc_and   0x1000, 0x2000, 0x3000, 4096
    cc_search 0x8000, 0x8fc0, 512
    cc_clmul256 0x0, 0x4000, 0x8000, 8192
    cc_clmul256.bcast 0x0, 0x4000, 0x8000, 8192
    cc_add16 0x1000, 0x2000, 0x3000, 4096
    cc_reduce8 0x1000, 4096

Grammar: ``<mnemonic> <operand>(, <operand>)*`` with operands in the
Table II order (src1 [, src2] [, dest], size); numbers are decimal or
0x-hex; ``#`` starts a comment.
"""

from __future__ import annotations

from .core.isa import CCInstruction, Opcode
from .errors import ISAError

_MNEMONICS = {op.value: op for op in Opcode}


def _parse_int(token: str) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise ISAError(f"bad numeric operand {token!r}") from None


def _split_mnemonic(mnemonic: str) -> tuple[Opcode, int | None, int | None, bool]:
    """Decode mnemonic into (opcode, lane_bits, elem_bits, broadcast)."""
    broadcast = mnemonic.endswith(".bcast")
    if broadcast:
        mnemonic = mnemonic[: -len(".bcast")]
    if mnemonic.startswith("cc_clmul") and mnemonic != "cc_clmul":
        lanes = mnemonic[len("cc_clmul"):]
        try:
            lane_bits = int(lanes)
        except ValueError:
            raise ISAError(f"bad clmul lane width in {mnemonic!r}") from None
        return Opcode.CLMUL, lane_bits, None, broadcast
    for arith in (Opcode.ADD, Opcode.MUL, Opcode.REDUCE):
        prefix = arith.value  # cc_add / cc_mul / cc_reduce
        if mnemonic.startswith(prefix) and mnemonic != prefix:
            try:
                elem_bits = int(mnemonic[len(prefix):])
            except ValueError:
                raise ISAError(
                    f"bad element width in {mnemonic!r}"
                ) from None
            return arith, None, elem_bits, broadcast
    opcode = _MNEMONICS.get(mnemonic)
    if opcode is None:
        raise ISAError(f"unknown mnemonic {mnemonic!r}")
    if opcode is Opcode.CLMUL:
        return opcode, 64, None, broadcast
    if opcode.is_arith:
        return opcode, None, 8, broadcast
    if broadcast:
        raise ISAError(f"{mnemonic!r} does not support .bcast")
    return opcode, None, None, broadcast


def parse(line: str) -> CCInstruction:
    """Parse one assembly line into a validated :class:`CCInstruction`."""
    text = line.split("#", 1)[0].strip()
    if not text:
        raise ISAError("empty instruction line")
    parts = text.split(None, 1)
    if len(parts) != 2:
        raise ISAError(f"missing operands in {line!r}")
    mnemonic, rest = parts
    opcode, lane_bits, elem_bits, broadcast = _split_mnemonic(mnemonic)
    operands = [_parse_int(tok) for tok in rest.split(",")]

    if opcode is Opcode.BUZ:
        if len(operands) != 2:
            raise ISAError("cc_buz takes: addr, size")
        return CCInstruction(opcode, src1=operands[0], size=operands[1])
    if opcode is Opcode.REDUCE:
        if len(operands) != 2:
            raise ISAError(f"{mnemonic} takes: src, size")
        return CCInstruction(opcode, src1=operands[0], size=operands[1],
                             elem_bits=elem_bits)
    if opcode in (Opcode.ADD, Opcode.MUL):
        if len(operands) != 4:
            raise ISAError(f"{mnemonic} takes: a, b, dest, size")
        return CCInstruction(opcode, src1=operands[0], src2=operands[1],
                             dest=operands[2], size=operands[3],
                             elem_bits=elem_bits)
    if opcode in (Opcode.COPY, Opcode.NOT):
        if len(operands) != 3:
            raise ISAError(f"{mnemonic} takes: src, dest, size")
        return CCInstruction(opcode, src1=operands[0], dest=operands[1],
                             size=operands[2])
    if opcode in (Opcode.CMP, Opcode.SEARCH):
        if len(operands) != 3:
            raise ISAError(f"{mnemonic} takes: a, b, size")
        return CCInstruction(opcode, src1=operands[0], src2=operands[1],
                             size=operands[2])
    # and / or / xor / clmul
    if len(operands) != 4:
        raise ISAError(f"{mnemonic} takes: a, b, dest, size")
    return CCInstruction(opcode, src1=operands[0], src2=operands[1],
                         dest=operands[2], size=operands[3],
                         lane_bits=lane_bits, broadcast_src2=broadcast)


def format_instruction(instr: CCInstruction) -> str:
    """Disassemble back to the canonical one-line form."""
    op = instr.opcode
    mnemonic = op.value
    if op is Opcode.CLMUL:
        mnemonic = f"cc_clmul{instr.lane_bits}"
        if instr.broadcast_src2:
            mnemonic += ".bcast"
    elif op.is_arith:
        mnemonic = f"{op.value}{instr.elem_bits}"
    fields = [f"{instr.src1:#x}"]
    if instr.src2 is not None:
        fields.append(f"{instr.src2:#x}")
    if instr.dest is not None:
        fields.append(f"{instr.dest:#x}")
    fields.append(str(instr.size))
    return f"{mnemonic} " + ", ".join(fields)


def assemble(text: str) -> list[CCInstruction]:
    """Assemble a multi-line listing (comments and blanks allowed)."""
    out = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        try:
            out.append(parse(stripped))
        except ISAError as exc:
            raise ISAError(f"line {lineno}: {exc}") from None
    return out


from ._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "parse", "assemble", "format_instruction",
))
