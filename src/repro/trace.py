"""Trace-driven frontend: run text traces through the machine.

A trace is a line-oriented file mixing core events with CC assembly
(:mod:`repro.asm`)::

    # initialize memory (backdoor, before caching)
    init   0x0,    repeat:0xff*4096
    init   0x1000, zeros:4096

    load   0x0,    8              # scalar load
    store  0x40,   bytes:00112233 # scalar store with literal data
    simd_load 0x80, 32
    cc_or  0x0, 0x1000, 0x2000, 4096
    fence

Event grammar (one per line, ``#`` comments):

=============  ===========================================
``init``       ``addr, <data-spec>``  - backdoor memory fill
``load``       ``addr[, size][, dependent][, streaming]``
``store``      ``addr, <data-spec>``
``simd_load``  ``addr[, size]``
``simd_store`` ``addr, <data-spec>``
``scalar``     (no operands) - one ALU op
``branch``     (no operands)
``fence``      (no operands)
``cc_*``       Table II assembly (see :mod:`repro.asm`)
=============  ===========================================

Data specs: ``zeros:N``, ``repeat:0xVV*N``, ``bytes:<hex>``.

Data-spec grammar rules: the count ``N`` must be a *non-negative* integer
(decimal or ``0x`` hex) - a negative count is a parse error, not an empty
payload - and ``bytes:`` data must be an even number of hex digits (whole
bytes).  Violations raise :class:`~repro.errors.ISAError` tagged with the
offending trace line number.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .asm import parse as parse_cc
from .cpu.program import Instr, Program
from .errors import ISAError
from .machine import ComputeCacheMachine


@dataclass
class TraceResult:
    """Outcome of replaying one trace."""

    cycles: float
    instructions: int
    cc_instructions: int
    dynamic_nj: float
    cc_results: list = field(default_factory=list)


def _parse_count(text: str, spec: str) -> int:
    """A data-spec byte count: a non-negative decimal or ``0x`` integer."""
    count = int(text, 0)
    if count < 0:
        raise ISAError(
            f"negative byte count {count} in data spec {spec!r} "
            f"(counts must be >= 0)"
        )
    return count


def _parse_data_spec(spec: str) -> bytes:
    spec = spec.strip()
    if spec.startswith("zeros:"):
        return bytes(_parse_count(spec[len("zeros:"):], spec))
    if spec.startswith("repeat:"):
        body = spec[len("repeat:"):]
        value_s, _, count_s = body.partition("*")
        if not count_s:
            raise ISAError(f"repeat spec needs 0xVV*N, got {spec!r}")
        return bytes([int(value_s, 0) & 0xFF]) * _parse_count(count_s, spec)
    if spec.startswith("bytes:"):
        hexstr = spec[len("bytes:"):]
        try:
            return bytes.fromhex(hexstr)
        except ValueError:
            raise ISAError(
                f"bad hex in {spec!r} (data must be an even number of "
                f"hex digits - whole bytes)"
            ) from None
    raise ISAError(f"unknown data spec {spec!r}")


def _operands(rest: str) -> list[str]:
    return [tok.strip() for tok in rest.split(",")] if rest.strip() else []


class TraceReader:
    """Parses a trace into backdoor initializations plus a Program."""

    def __init__(self) -> None:
        self.inits: list[tuple[int, bytes]] = []
        self.program = Program("trace")

    def feed_line(self, line: str, lineno: int = 0) -> None:
        text = line.split("#", 1)[0].strip()
        if not text:
            return
        try:
            self._dispatch(text)
        except (ISAError, ValueError) as exc:
            raise ISAError(f"trace line {lineno}: {exc}") from None

    def _dispatch(self, text: str) -> None:
        head, _, rest = text.partition(" ")
        head = head.lower()
        if head.startswith("cc_"):
            self.program.append(Instr.cc_op(parse_cc(text)))
            return
        ops = _operands(rest)
        if head == "init":
            if len(ops) != 2:
                raise ISAError("init takes: addr, data-spec")
            self.inits.append((int(ops[0], 0), _parse_data_spec(ops[1])))
        elif head in ("load", "simd_load"):
            if not ops:
                raise ISAError(f"{head} needs an address")
            addr = int(ops[0], 0)
            size = int(ops[1], 0) if len(ops) > 1 else (32 if head == "simd_load" else 8)
            flags = {o.lower() for o in ops[2:]}
            if head == "simd_load":
                self.program.append(Instr.simd_load(addr, size))
            else:
                self.program.append(Instr.load(
                    addr, size,
                    dependent="dependent" in flags,
                    streaming="streaming" in flags,
                ))
        elif head in ("store", "simd_store"):
            if len(ops) != 2:
                raise ISAError(f"{head} takes: addr, data-spec")
            addr = int(ops[0], 0)
            data = _parse_data_spec(ops[1])
            if head == "simd_store":
                self.program.append(Instr.simd_store(addr, data))
            else:
                self.program.append(Instr.store(addr, data))
        elif head == "scalar":
            self.program.append(Instr.scalar())
        elif head == "branch":
            self.program.append(Instr.branch())
        elif head == "fence":
            self.program.append(Instr.fence())
        else:
            raise ISAError(f"unknown trace event {head!r}")

    def feed(self, text: str) -> "TraceReader":
        for lineno, line in enumerate(text.splitlines(), start=1):
            self.feed_line(line, lineno)
        return self


def run_trace(text: str, machine: ComputeCacheMachine | None = None,
              core: int = 0) -> TraceResult:
    """Replay a trace on a machine; returns timing/energy accounting."""
    m = machine or ComputeCacheMachine()
    reader = TraceReader().feed(text)
    for addr, data in reader.inits:
        m.load(addr, data)
    snap = m.snapshot_energy()
    res = m.run(reader.program, core=core)
    return TraceResult(
        cycles=res.cycles,
        instructions=res.instructions,
        cc_instructions=res.cc_instructions,
        dynamic_nj=m.energy_since(snap).total_nj(),
        cc_results=res.cc_results,
    )


def run_trace_file(path: str, machine: ComputeCacheMachine | None = None) -> TraceResult:
    """Replay a trace file."""
    with open(path, encoding="utf-8") as handle:
        return run_trace(handle.read(), machine)


from ._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "run_trace", "run_trace_file",
))
