"""Machine-wide statistics aggregation and reporting.

Pulls counters from every layer - sub-arrays, tag arrays, caches, ring,
directory, memory, CC controllers - into one structured snapshot, for
debugging, for the benches' ``extra_info``, and for users profiling their
own workloads::

    from repro.stats import collect_stats, format_stats
    snap = collect_stats(machine)
    print(format_stats(snap))
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .machine import ComputeCacheMachine


@dataclass
class CacheLevelSnapshot:
    name: str
    lookups: int
    hits: int
    misses: int
    reads: int
    writes: int
    fills: int
    writebacks: int
    evictions: int
    cc_inplace_ops: int
    cc_nearplace_ops: int
    htree_transfers: int
    htree_commands: int
    subarray_reads: int
    subarray_writes: int
    subarray_compute_ops: int
    cc_compute_cycles: float = 0.0
    """Compute makespan the CC controllers attributed to this level -
    the same definition the event profiler uses
    (:class:`repro.events.TraceProfile.level_compute_cycles`), so the two
    reports can never disagree."""

    @property
    def hit_rate(self) -> float:
        """Tag hit fraction; 0.0 when the level was never looked up."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class MachineSnapshot:
    levels: dict[str, CacheLevelSnapshot]
    ring_control_messages: int
    ring_data_messages: int
    ring_energy_pj: float
    memory_reads: int
    memory_writes: int
    cc_instructions: int
    cc_inplace_ops: int
    cc_nearplace_ops: int
    cc_risc_ops: int
    cc_key_replications: int
    cc_pin_retries: int
    cc_page_splits: int
    dynamic_energy_nj: float
    energy_breakdown_nj: dict[str, float] = field(default_factory=dict)
    cc_fallback_reasons: dict[str, int] = field(default_factory=dict)
    """Block ops that missed in-place execution, keyed by why
    (``locality-miss``, ``pin-loss``, ``forced``)."""
    cc_level_compute_cycles: dict[str, float] = field(default_factory=dict)
    """CC compute makespan per cache level."""
    forced_unpins: int = 0
    """Pinned lines stolen by forwarded coherence requests (including
    injected ``controller.pin-steal`` faults, see :mod:`repro.faults`)."""
    directory_redundant_revokes: int = 0
    """Idempotent no-op revocations — duplicated forwarded requests."""


def _level_snapshot(name: str, caches) -> CacheLevelSnapshot:
    agg = dict(lookups=0, hits=0, reads=0, writes=0, fills=0, writebacks=0,
               evictions=0, inplace=0, nearplace=0, transfers=0, commands=0,
               sreads=0, swrites=0, sops=0)
    for cache in caches:
        agg["lookups"] += cache.tags.stats.lookups
        agg["hits"] += cache.tags.stats.hits
        agg["reads"] += cache.stats.reads
        agg["writes"] += cache.stats.writes
        agg["evictions"] += cache.tags.stats.evictions
        agg["fills"] += cache.stats.fills
        agg["writebacks"] += cache.stats.writebacks_out
        agg["inplace"] += cache.stats.cc_inplace_ops
        agg["nearplace"] += cache.stats.cc_nearplace_ops
        agg["transfers"] += cache.htree.data_transfers
        agg["commands"] += cache.htree.commands_issued
        for sub in cache.geometry.subarrays:
            agg["sreads"] += sub.stats.reads
            agg["swrites"] += sub.stats.writes
            agg["sops"] += sub.stats.total_compute_ops
    return CacheLevelSnapshot(
        name=name,
        lookups=agg["lookups"], hits=agg["hits"],
        misses=agg["lookups"] - agg["hits"],
        reads=agg["reads"], writes=agg["writes"],
        fills=agg["fills"], writebacks=agg["writebacks"],
        evictions=agg["evictions"],
        cc_inplace_ops=agg["inplace"], cc_nearplace_ops=agg["nearplace"],
        htree_transfers=agg["transfers"], htree_commands=agg["commands"],
        subarray_reads=agg["sreads"], subarray_writes=agg["swrites"],
        subarray_compute_ops=agg["sops"],
    )


def collect_stats(machine: ComputeCacheMachine) -> MachineSnapshot:
    """One coherent snapshot of every counter in the machine."""
    hier = machine.hierarchy
    levels = {
        "L1": _level_snapshot("L1", hier.l1),
        "L2": _level_snapshot("L2", hier.l2),
        "L3": _level_snapshot("L3", hier.l3),
    }
    cc = dict(instructions=0, inplace=0, nearplace=0, risc=0,
              keys=0, retries=0, splits=0)
    reasons: dict[str, int] = {}
    level_cycles: dict[str, float] = {}
    for controller in machine.controllers:
        s = controller.stats
        cc["instructions"] += s.instructions
        cc["inplace"] += s.block_ops_inplace
        cc["nearplace"] += s.block_ops_nearplace
        cc["risc"] += s.block_ops_risc
        cc["keys"] += s.key_replications
        cc["retries"] += s.pin_retries
        cc["splits"] += s.page_splits
        for reason, count in s.fallback_reasons.items():
            reasons[reason] = reasons.get(reason, 0) + count
        for level, cycles in s.level_compute_cycles.items():
            level_cycles[level] = level_cycles.get(level, 0.0) + cycles
    for name, level in levels.items():
        level.cc_compute_cycles = level_cycles.get(name, 0.0)
    return MachineSnapshot(
        levels=levels,
        ring_control_messages=hier.ring.stats.control_messages,
        ring_data_messages=hier.ring.stats.data_messages,
        ring_energy_pj=hier.ring.stats.energy_pj,
        memory_reads=hier.memory.block_reads,
        memory_writes=hier.memory.block_writes,
        cc_instructions=cc["instructions"],
        cc_inplace_ops=cc["inplace"],
        cc_nearplace_ops=cc["nearplace"],
        cc_risc_ops=cc["risc"],
        cc_key_replications=cc["keys"],
        cc_pin_retries=cc["retries"],
        cc_page_splits=cc["splits"],
        dynamic_energy_nj=machine.ledger.total_nj(),
        energy_breakdown_nj={
            k: v / 1000.0 for k, v in machine.ledger.breakdown().items()
        },
        cc_fallback_reasons=reasons,
        cc_level_compute_cycles=level_cycles,
        forced_unpins=len(hier.forced_unpins),
        directory_redundant_revokes=sum(
            d.redundant_revokes for d in hier.directory
        ),
    )


def format_stats(snap: MachineSnapshot) -> str:
    """Human-readable multi-section report."""
    lines = ["=== Machine statistics ==="]
    for name, level in snap.levels.items():
        hit_part = (f"{level.lookups:,} lookups ({level.hit_rate:.1%} hit), "
                    if level.lookups else "")
        lines.append(
            f"{name}: {hit_part}{level.reads:,} reads / {level.writes:,} writes, "
            f"{level.fills:,} fills, {level.writebacks:,} writebacks, "
            f"{level.cc_inplace_ops:,} in-place / "
            f"{level.cc_nearplace_ops:,} near-place CC ops"
            + (f" ({level.cc_compute_cycles:,.1f} compute cycles)"
               if level.cc_compute_cycles else "")
        )
        lines.append(
            f"    sub-arrays: {level.subarray_reads:,} reads, "
            f"{level.subarray_writes:,} writes, "
            f"{level.subarray_compute_ops:,} compute ops; "
            f"H-tree: {level.htree_transfers:,} transfers"
        )
    lines.append(
        f"ring: {snap.ring_control_messages:,} control + "
        f"{snap.ring_data_messages:,} data messages "
        f"({snap.ring_energy_pj / 1000:.1f} nJ)"
    )
    lines.append(
        f"memory: {snap.memory_reads:,} block reads, "
        f"{snap.memory_writes:,} block writes"
    )
    lines.append(
        f"CC: {snap.cc_instructions:,} instructions -> "
        f"{snap.cc_inplace_ops:,} in-place / {snap.cc_nearplace_ops:,} "
        f"near-place / {snap.cc_risc_ops:,} RISC block ops; "
        f"{snap.cc_key_replications:,} key replications, "
        f"{snap.cc_pin_retries:,} pin retries, "
        f"{snap.cc_page_splits:,} page splits"
    )
    if snap.cc_fallback_reasons:
        parts = ", ".join(f"{reason}: {count:,}"
                          for reason, count in sorted(snap.cc_fallback_reasons.items()))
        lines.append(f"    fallback reasons: {parts}")
    if snap.forced_unpins or snap.directory_redundant_revokes:
        lines.append(
            f"    resilience: {snap.forced_unpins:,} forced unpins, "
            f"{snap.directory_redundant_revokes:,} redundant revokes"
        )
    lines.append(f"dynamic energy: {snap.dynamic_energy_nj:,.1f} nJ")
    for component, nj in snap.energy_breakdown_nj.items():
        lines.append(f"    {component:14s} {nj:12,.1f} nJ")
    return "\n".join(lines)


from ._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "MachineSnapshot", "collect_stats", "format_stats",
))
