"""Machine-configuration serialization (reproducibility plumbing).

Experiments should be re-runnable from a recorded configuration.  These
helpers turn a :class:`~repro.params.MachineConfig` into a plain dict /
JSON document and back, with full round-trip fidelity::

    doc = config_to_dict(machine.config)
    json.dump(doc, open("machine.json", "w"))
    ...
    config = config_from_dict(json.load(open("machine.json")))
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from .errors import ConfigError
from .params import (
    CacheLevelConfig,
    ComputeCacheConfig,
    CoreConfig,
    MachineConfig,
    MemoryConfig,
    RingConfig,
    TopologyConfig,
)

_LEVEL_FIELDS = ("name", "size", "ways", "banks", "bps_per_bank",
                 "hit_latency", "block_size")
_CORE_FIELDS = ("frequency_ghz", "load_queue_entries", "store_queue_entries",
                "vector_lsq_entries", "simd_width", "epi_scalar", "epi_simd",
                "epi_cc", "static_power_core_mw")
_RING_FIELDS = ("hop_latency", "link_width_bits", "stops",
                "energy_per_hop_per_flit")
_MEMORY_FIELDS = ("latency", "energy_per_block", "bandwidth_blocks_per_cycle")
_CC_FIELDS = ("inplace_latency", "nearplace_latency", "max_activated_wordlines",
              "max_operand_bytes", "cmp_search_max_bytes", "search_key_bytes",
              "pin_retry_limit", "area_overhead_fraction", "commands_per_cycle")
_TOPOLOGY_FIELDS = ("clusters", "inter_hop_latency", "inter_link_width_bits",
                    "inter_energy_per_hop_per_flit", "slice_interleave")


def _dump(obj: Any, fields: tuple[str, ...]) -> dict[str, Any]:
    return {f: getattr(obj, f) for f in fields}


def config_to_dict(config: MachineConfig) -> dict[str, Any]:
    """Serialize a machine configuration to plain data.

    ``backend`` (the functional execution backend) is part of the
    document; observability settings (``trace_events``,
    ``event_buffer_capacity``) are deliberately *not* — they cannot change
    simulation results, so two configs differing only in tracing
    serialize (and hash, see :func:`config_digest`) identically.

    ``topology`` appears in the document only when it differs from the
    default flat machine, so every document (and digest) produced before
    multi-cluster topologies existed remains byte-identical — and the
    sweep runner's on-disk cache entries for flat configs stay valid.
    """
    doc = {
        "schema": "repro.machine-config/1",
        "backend": config.backend,
        "cores": config.cores,
        "l3_slices": config.l3_slices,
        "memory_size": config.memory_size,
        "static_power_uncore_mw": config.static_power_uncore_mw,
        "core": _dump(config.core, _CORE_FIELDS),
        "l1d": _dump(config.l1d, _LEVEL_FIELDS),
        "l1i": _dump(config.l1i, _LEVEL_FIELDS),
        "l2": _dump(config.l2, _LEVEL_FIELDS),
        "l3_slice": _dump(config.l3_slice, _LEVEL_FIELDS),
        "ring": _dump(config.ring, _RING_FIELDS),
        "memory": _dump(config.memory, _MEMORY_FIELDS),
        "cc": _dump(config.cc, _CC_FIELDS),
    }
    if config.topology != TopologyConfig():
        doc["topology"] = _dump(config.topology, _TOPOLOGY_FIELDS)
    return doc


def config_from_dict(doc: dict[str, Any]) -> MachineConfig:
    """Rebuild a machine configuration; validates on construction."""
    schema = doc.get("schema")
    if schema != "repro.machine-config/1":
        raise ConfigError(f"unsupported config schema {schema!r}")
    extra: dict[str, Any] = {}
    if "backend" in doc:
        extra["backend"] = doc["backend"]
    if "topology" in doc:
        try:
            extra["topology"] = TopologyConfig(**doc["topology"])
        except TypeError as exc:
            raise ConfigError(f"malformed topology section: {exc}") from None
    try:
        return MachineConfig(
            **extra,
            cores=doc["cores"],
            l3_slices=doc["l3_slices"],
            memory_size=doc["memory_size"],
            static_power_uncore_mw=doc["static_power_uncore_mw"],
            core=CoreConfig(**doc["core"]),
            l1d=CacheLevelConfig(**doc["l1d"]),
            l1i=CacheLevelConfig(**doc["l1i"]),
            l2=CacheLevelConfig(**doc["l2"]),
            l3_slice=CacheLevelConfig(**doc["l3_slice"]),
            ring=RingConfig(**doc["ring"]),
            memory=MemoryConfig(**doc["memory"]),
            cc=ComputeCacheConfig(**doc["cc"]),
        )
    except KeyError as exc:
        raise ConfigError(f"config document missing field {exc}") from None
    except TypeError as exc:
        raise ConfigError(f"malformed config document: {exc}") from None


def config_to_json(config: MachineConfig, indent: int = 2) -> str:
    return json.dumps(config_to_dict(config), indent=indent, sort_keys=True)


def canonical_json(doc: Any) -> str:
    """Deterministic minimal JSON encoding (sorted keys, no whitespace) —
    the form hashed by :func:`config_digest` and the sweep runner's
    result-cache keys."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), default=float)


def config_digest(config: MachineConfig) -> str:
    """Content hash of a machine configuration.

    Stable across processes and Python versions (it hashes the canonical
    JSON serialization, not ``repr``); used by
    :mod:`repro.bench.runner` as the ``config`` component of a simulation
    point's cache key.
    """
    return hashlib.sha256(canonical_json(config_to_dict(config)).encode()).hexdigest()


def config_from_json(text: str) -> MachineConfig:
    return config_from_dict(json.loads(text))


def save_config(config: MachineConfig, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(config_to_json(config))


def load_config(path: str) -> MachineConfig:
    with open(path, encoding="utf-8") as handle:
        return config_from_json(handle.read())


# -- fault plans (repro.faults) ------------------------------------------------------


def fault_plan_to_json(plan, indent: int = 2) -> str:
    return json.dumps(plan.to_dict(), indent=indent, sort_keys=True)


def fault_plan_from_json(text: str):
    from .faults.plan import FaultPlan

    return FaultPlan.from_dict(json.loads(text))


def save_fault_plan(plan, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(fault_plan_to_json(plan))


def load_fault_plan(path: str):
    with open(path, encoding="utf-8") as handle:
        return fault_plan_from_json(handle.read())


from ._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "config_to_dict", "config_from_dict", "config_to_json", "config_from_json",
    "config_digest", "save_config", "load_config", "fault_plan_to_json",
    "fault_plan_from_json", "save_fault_plan", "load_fault_plan",
))
