"""Deprecation shims for deep-import paths superseded by :mod:`repro.api`.

:func:`deprecate_deep_imports` marks a module's public symbols as
reachable-but-deprecated: external code that imports them from the deep
path (``from repro.params import MachineConfig``) gets a
:class:`DeprecationWarning` pointing at the façade, while the import
keeps working exactly as before.  Internal ``repro.*`` callers — and the
import machinery acting on their behalf — are exempt, so the library
never warns about its own layering.

Implementation: the module's ``__class__`` is swapped to a
:class:`types.ModuleType` subclass whose ``__getattribute__`` inspects
the calling frame.  This catches *attribute* access on the module object
(which is what both ``from mod import name`` and ``mod.name`` compile
to), costs nothing on modules that are not shimmed, and — unlike a
module-level ``__getattr__`` — also fires for names that really are
defined in the module.
"""

from __future__ import annotations

import sys
import warnings
from types import ModuleType

#: Top-level package names whose frames never trigger a warning: the
#: library itself, and the import machinery (``_handle_fromlist`` probes
#: package attributes from an importlib frame on behalf of whoever runs
#: the import — the real caller is still checked by the bytecode-level
#: getattr that follows).
_EXEMPT_TOPLEVEL = frozenset({"repro", "importlib", "_frozen_importlib"})

FACADE = "repro.api"


class _DeprecatedAttrModule(ModuleType):
    """Module type that warns on deep imports of façade symbols."""

    def __getattribute__(self, name: str):
        value = ModuleType.__getattribute__(self, name)
        if name.startswith("_"):
            return value
        d = ModuleType.__getattribute__(self, "__dict__")
        symbols = d.get("__deprecated_symbols__")
        if symbols is None or name not in symbols:
            return value
        caller = sys._getframe(1).f_globals.get("__name__", "")
        if caller.partition(".")[0] in _EXEMPT_TOPLEVEL:
            return value
        warnings.warn(
            f"importing {name!r} from {d.get('__name__')!r} is deprecated; "
            f"use 'from {FACADE} import {name}'",
            DeprecationWarning, stacklevel=2,
        )
        return value


def deprecate_deep_imports(module_name: str, symbols) -> None:
    """Shim ``module_name``: deep imports of ``symbols`` warn, everything
    else (and every ``repro.*``-internal access) stays silent."""
    module = sys.modules[module_name]
    module.__deprecated_symbols__ = frozenset(symbols)
    module.__class__ = _DeprecatedAttrModule


def warn_deprecated_command(old: str, new: str) -> None:
    """The CLI's counterpart to the deep-import shim: a legacy subcommand
    (``repro speed``) that moved behind the unified dispatcher warns and
    keeps working.  Also printed to stderr so shell users — who never see
    Python warnings filtered into a log — get the migration note too."""
    message = (f"'repro {old}' is deprecated; use 'repro {new}' "
               f"(same flags; see docs/api.md)")
    warnings.warn(message, DeprecationWarning, stacklevel=3)
    print(f"note: {message}", file=sys.stderr)
