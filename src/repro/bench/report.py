"""ASCII rendering of benchmark results, plus the shared ``BENCH_*.json``
document writer.

Every benchmark trajectory file the repo emits (``BENCH_speed.json``,
``BENCH_streambw.json``, ``BENCH_serve.json``, ``BENCH_crypto.json``,
``results.json``) opens with the same two fields — a ``schema`` tag and
the deterministic :func:`bench_provenance` header — so documents from
different trees or backends are always distinguishable and documents
from the same tree are bit-identical however they were produced.
:func:`bench_document` assembles that envelope in one place and
:func:`write_bench` serializes it with one canonical JSON layout.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from typing import Any


def bench_provenance() -> dict[str, Any]:
    """The shared benchmark-JSON provenance header (deterministic per
    source tree): execution backend, source-tree content fingerprint,
    git commit, and the fixed workload seeds.  Deliberately *not* here:
    anything that varies between equivalent runs of the same tree (job
    count, wall-clock, cache hits), which would break the
    serial/parallel/cached bit-identity contract."""
    from ..params import sandybridge_8core
    from .points import WORKLOAD_SEEDS
    from .runner import code_fingerprint, git_revision

    return {
        "backend": sandybridge_8core().backend,
        "code_version": code_fingerprint(),
        "git_commit": git_revision(),
        "workload_seeds": dict(WORKLOAD_SEEDS),
    }


def bench_document(schema: str, config: Mapping[str, Any],
                   **sections: Any) -> dict[str, Any]:
    """Assemble a ``BENCH_*.json`` document with the unified envelope:
    ``schema`` + ``provenance`` + ``config`` first, then the suite's own
    sections in the order given."""
    doc: dict[str, Any] = {
        "schema": schema,
        "provenance": bench_provenance(),
        "config": dict(config),
    }
    for name, section in sections.items():
        doc[name] = section
    return doc


def write_bench(doc: Mapping[str, Any], path) -> None:
    """Serialize a benchmark document with the canonical layout every
    suite shares (sorted keys, indent 1 — byte-stable across runs)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")


def render_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(empty)"
    headers = list(rows[0].keys())
    cells = [[_fmt(row[h]) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(series: Mapping[str, float], title: str = "", width: int = 48,
                unit: str = "") -> str:
    """ASCII horizontal bar chart - the paper's figures are bar charts, so
    ``-s`` output can show the same visual shape."""
    if not series:
        return f"{title}\n(empty)"
    peak = max(series.values()) or 1.0
    label_w = max(len(k) for k in series)
    lines = [title] if title else []
    for key, value in series.items():
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(f"{key.ljust(label_w)} |{bar.ljust(width)}| "
                     f"{_fmt(value)}{unit}")
    return "\n".join(lines)


def render_stacked_bars(series: Mapping[str, Mapping[str, float]],
                        title: str = "", width: int = 48) -> str:
    """Stacked ASCII bars (one glyph per component), for the paper's
    component-breakdown figures (7b, 7c, 11)."""
    if not series:
        return f"{title}\n(empty)"
    glyphs = "#=+:*o%@"
    components: list[str] = []
    for parts in series.values():
        for name in parts:
            if name not in components:
                components.append(name)
    peak = max(sum(parts.values()) for parts in series.values()) or 1.0
    label_w = max(len(k) for k in series)
    lines = [title] if title else []
    for key, parts in series.items():
        bar = ""
        for i, component in enumerate(components):
            value = parts.get(component, 0.0)
            bar += glyphs[i % len(glyphs)] * round(width * value / peak)
        total = sum(parts.values())
        lines.append(f"{key.ljust(label_w)} |{bar.ljust(width)}| {_fmt(total)}")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(components)
    )
    lines.append(f"{''.ljust(label_w)}  legend: {legend}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_figure7(results) -> str:
    """Figure 7's three panels as one table."""
    rows = []
    for kernel, pair in results.items():
        base, cc = pair["base32"], pair["cc"]
        rows.append({
            "kernel": kernel,
            "Base_32 cycles": base.cycles,
            "CC_L3 cycles": cc.cycles,
            "throughput gain": base.steady_cycles / cc.steady_cycles,
            "Base_32 dyn nJ": base.dynamic.total() / 1000,
            "CC_L3 dyn nJ": cc.dynamic.total() / 1000,
            "dyn saving": 1 - cc.dynamic.total() / base.dynamic.total(),
            "total ratio": base.total_energy_nj / cc.total_energy_nj,
        })
    return render_table(rows, "Figure 7: 4 KB micro-benchmarks, Base_32 vs CC_L3")


def render_breakdown(ledger, title: str) -> str:
    """A Figure 7(b)-style component breakdown."""
    rows = [{"component": k, "nJ": v / 1000.0} for k, v in ledger.breakdown().items()]
    return render_table(rows, title)


def render_figure9(comparisons) -> str:
    rows = []
    for app, comp in comparisons.items():
        rows.append({
            "application": app,
            "speedup (Fig 9b)": comp.speedup,
            "total-energy ratio (Fig 9a)": comp.total_energy_ratio,
            "instr reduction": comp.instruction_reduction,
            "outputs match": comp.outputs_match,
        })
    return render_table(rows, "Figure 9: application speedup and energy")


def render_figure10(overheads) -> str:
    rows = []
    for bench, per_engine in overheads.items():
        rows.append({
            "benchmark": bench,
            "Base %": per_engine["base"] * 100,
            "Base_32 %": per_engine["base32"] * 100,
            "CC_L3 %": per_engine["cc"] * 100,
        })
    return render_table(rows, "Figure 10: checkpointing overhead (%)")


def render_figure11(energies) -> str:
    rows = []
    for bench, per_engine in energies.items():
        rows.append({
            "benchmark": bench,
            "no_chkpt nJ": per_engine["no_chkpt"],
            "Base nJ": per_engine["base"],
            "Base_32 nJ": per_engine["base32"],
            "CC_L3 nJ": per_engine["cc"],
        })
    return render_table(rows, "Figure 11: total energy with checkpointing")
