"""Machine-readable results export (artifact-evaluation plumbing).

``python -m repro export --out results.json`` runs the fast exhibits and
writes one JSON document containing the machine configuration, a
provenance header, every table, the micro-benchmark figures, and the
validation verdict - the artifact a reviewer diffs against
EXPERIMENTS.md.

The heavyweight exhibits (Figures 9-11) are included only with
``--full`` (several minutes of simulation).  Every figure is produced
through :mod:`repro.bench.runner`, so ``--jobs N`` fans the grid out
over worker processes and an unchanged tree re-exports almost entirely
from the on-disk result cache; the document is bit-identical either way
(see ``tests/test_runner.py``).

The ``provenance`` header pins what produced the numbers - execution
backend, source-tree content fingerprint, git commit, and the fixed
workload seeds - so results JSON from different trees (where cached
points would have been invalid) is always distinguishable.  Deliberately
*not* in the header: anything that varies between equivalent runs of the
same tree (job count, cache hit counts, wall-clock), which would break
the serial/parallel/cached bit-identity contract.
"""

from __future__ import annotations

import json
from typing import Any

from ..config_io import config_to_dict
from ..params import sandybridge_8core
from . import appbench, checkpointbench, microbench
from .report import bench_provenance
from .runner import PointRunner


def _kernel_entry(meas) -> dict[str, Any]:
    return {
        "cycles": meas.cycles,
        "steady_cycles": meas.steady_cycles,
        "instructions": meas.instructions,
        "dynamic_nj": round(meas.dynamic.total_nj(), 3),
        "dynamic_breakdown_nj": {
            k: round(v / 1000.0, 3) for k, v in meas.dynamic.breakdown().items()
        },
        "total_nj": round(meas.total_energy_nj, 3),
    }


def provenance() -> dict[str, Any]:
    """The results-JSON provenance header (deterministic per tree).

    Delegates to the shared writer so every ``BENCH_*.json`` trajectory
    file carries an identical header (see :mod:`repro.bench.report`).
    """
    return bench_provenance()


def export_fast(runner: PointRunner | None = None,
                backend: str | None = None) -> dict[str, Any]:
    """Tables I/III/V, Figures 3/7/8a, and the validation battery."""
    from ..validate import run_validation

    runner = runner or PointRunner()
    fig7 = microbench.figure7(runner=runner, backend=backend)
    fig8a = microbench.figure8a_inplace_vs_nearplace(runner=runner,
                                                     backend=backend)
    doc: dict[str, Any] = {
        "schema": "repro.results/1",
        "provenance": provenance(),
        "machine": config_to_dict(sandybridge_8core()),
        "validation_ok": run_validation(verbose=False, backend=backend),
        "table1": microbench.table1_rows(),
        "table3": microbench.table3_rows(),
        "table5": microbench.table5_rows(),
        "figure3": microbench.figure3_energy_proportions(runner=runner,
                                                         backend=backend),
        "figure7": {
            kernel: {cfg: _kernel_entry(meas) for cfg, meas in pair.items()}
            for kernel, pair in fig7.items()
        },
        "figure7_summary": microbench.figure7_summary(fig7),
        "figure8a": {
            kernel: {cfg: _kernel_entry(meas) for cfg, meas in pair.items()}
            for kernel, pair in fig8a.items()
        },
    }
    return doc


def export_full(scale: float = 0.5, intervals: int = 1,
                runner: PointRunner | None = None,
                backend: str | None = None) -> dict[str, Any]:
    """Everything in :func:`export_fast` plus Figures 8b, 9, 10, 11."""
    runner = runner or PointRunner()
    doc = export_fast(runner=runner, backend=backend)
    doc["figure8b"] = microbench.figure8b_levels(runner=runner, backend=backend)
    comparisons = appbench.figure9(scale=scale, runner=runner, backend=backend)
    doc["figure9"] = {
        app: {
            "speedup": round(comp.speedup, 3),
            "instruction_reduction": round(comp.instruction_reduction, 4),
            "total_energy_ratio": round(comp.total_energy_ratio, 3),
            "outputs_match": comp.outputs_match,
        }
        for app, comp in comparisons.items()
    }
    nc = appbench.figure_qdnn(scale=scale, runner=runner, backend=backend)
    doc["neural_cache"] = {
        "qdnn": {
            "speedup": round(nc.speedup, 3),
            "instruction_reduction": round(nc.instruction_reduction, 4),
            "total_energy_ratio": round(nc.total_energy_ratio, 3),
            "outputs_match": nc.outputs_match,
            "baseline_instructions": nc.baseline_instructions,
            "cc_instructions": nc.cc_instructions,
        }
    }
    doc["figure10"] = checkpointbench.figure10_overheads(intervals=intervals,
                                                         runner=runner,
                                                         backend=backend)
    doc["figure11"] = checkpointbench.figure11_energy(intervals=intervals,
                                                      runner=runner,
                                                      backend=backend)
    return doc


def write_results(path: str, full: bool = False,
                  runner: PointRunner | None = None,
                  backend: str | None = None, **kwargs) -> dict[str, Any]:
    """Export and write to ``path``; returns the document."""
    doc = (export_full(runner=runner, backend=backend, **kwargs) if full
           else export_fast(runner=runner, backend=backend))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True, default=float)
    return doc
