"""Machine-readable results export (artifact-evaluation plumbing).

``python -m repro export --out results.json`` runs the fast exhibits and
writes one JSON document containing the machine configuration, every
table, the micro-benchmark figures, and the validation verdict - the
artifact a reviewer diffs against EXPERIMENTS.md.

The heavyweight exhibits (Figures 9-11) are included only with
``--full`` (several minutes of simulation).
"""

from __future__ import annotations

import json
from typing import Any

from ..config_io import config_to_dict
from ..params import sandybridge_8core
from . import appbench, checkpointbench, microbench


def _kernel_entry(meas) -> dict[str, Any]:
    return {
        "cycles": meas.cycles,
        "steady_cycles": meas.steady_cycles,
        "instructions": meas.instructions,
        "dynamic_nj": round(meas.dynamic.total_nj(), 3),
        "dynamic_breakdown_nj": {
            k: round(v / 1000.0, 3) for k, v in meas.dynamic.breakdown().items()
        },
        "total_nj": round(meas.total_energy_nj, 3),
    }


def export_fast() -> dict[str, Any]:
    """Tables I/III/V, Figures 3/7/8a, and the validation battery."""
    from ..validate import run_validation

    fig7 = microbench.figure7()
    fig8a = microbench.figure8a_inplace_vs_nearplace()
    doc: dict[str, Any] = {
        "schema": "repro.results/1",
        "machine": config_to_dict(sandybridge_8core()),
        "validation_ok": run_validation(verbose=False),
        "table1": microbench.table1_rows(),
        "table3": microbench.table3_rows(),
        "table5": microbench.table5_rows(),
        "figure3": microbench.figure3_energy_proportions(),
        "figure7": {
            kernel: {cfg: _kernel_entry(meas) for cfg, meas in pair.items()}
            for kernel, pair in fig7.items()
        },
        "figure7_summary": microbench.figure7_summary(fig7),
        "figure8a": {
            kernel: {cfg: _kernel_entry(meas) for cfg, meas in pair.items()}
            for kernel, pair in fig8a.items()
        },
    }
    return doc


def export_full(scale: float = 0.5, intervals: int = 1) -> dict[str, Any]:
    """Everything in :func:`export_fast` plus Figures 8b, 9, 10, 11."""
    doc = export_fast()
    doc["figure8b"] = microbench.figure8b_levels()
    comparisons = appbench.figure9(scale=scale)
    doc["figure9"] = {
        app: {
            "speedup": round(comp.speedup, 3),
            "instruction_reduction": round(comp.instruction_reduction, 4),
            "total_energy_ratio": round(comp.total_energy_ratio, 3),
            "outputs_match": comp.outputs_match,
        }
        for app, comp in comparisons.items()
    }
    doc["figure10"] = checkpointbench.figure10_overheads(intervals=intervals)
    doc["figure11"] = checkpointbench.figure11_energy(intervals=intervals)
    return doc


def write_results(path: str, full: bool = False, **kwargs) -> dict[str, Any]:
    """Export and write to ``path``; returns the document."""
    doc = export_full(**kwargs) if full else export_fast()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True, default=float)
    return doc
