"""NUMA bandwidth sweep — ``repro streambw`` -> ``BENCH_streambw.json``.

Runs the STREAM kernels (:mod:`repro.apps.streambw`) over a grid of
cluster counts, in both variants — scalar Base_32 through the multicore
runner and CC-lowered into the L3 slices — and compares the measured CC
bandwidth against an *analytic scalar roofline*:

* **issue bound** — each core issues one instruction per cycle, so a
  kernel whose inner loop spends :func:`scalar_instructions_per_granule`
  instructions moving ``STREAM_FACTORS x 32`` analytic bytes can never
  exceed that ratio, regardless of the memory system;
* **bandwidth bound** — a streaming core sustains at most
  ``MEMORY_LEVEL_PARALLELISM`` outstanding misses, each a control
  request to the page's home slice plus a data block back, so remote
  homes cap bytes/cycle at ``64 x MLP / round-trip``.  The round trip
  deliberately omits the L1/L2 lookup pipeline, so the bound is a true
  upper bound on what any scalar schedule could achieve.

Under ``"hub"`` placement every page is homed on cluster 0, so the
bandwidth bound decays as clusters are added (more cores fetch across
ever-longer gateway routes) while CC execution — which moves control
messages, not data blocks — stays flat.  The *crossover* the sweep
reports is the smallest cluster count where a kernel's measured CC
bandwidth beats the scalar roofline outright.

The output document carries a ``numa_scaling`` section (per-point rows,
per-kernel rooflines, crossover cluster counts) plus a three-part
contract enforced by the CI ``streambw-smoke`` job:

1. at least one kernel exhibits a CC-over-roofline crossover;
2. a 1-cluster machine is cycle- and energy-identical to the same
   machine running on the flat pre-topology :class:`RingInterconnect`;
3. the packed and bitexact backends produce bit-identical numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..apps.streambw import (
    GRANULE,
    STREAM_FACTORS,
    STREAM_KERNELS,
    run_streambw,
    scalar_instructions_per_granule,
)
from ..cache.ring import RingInterconnect
from ..cache.topology import ClusterInterconnect
from ..config_io import config_to_dict
from ..cpu.core_model import MEMORY_LEVEL_PARALLELISM
from ..errors import ReproError
from ..machine import ComputeCacheMachine
from ..params import BACKENDS, BLOCK_SIZE, MachineConfig, multi_cluster
from .microbench import _resolve_runner
from .report import bench_document
from .runner import Point

STREAMBW_SCHEMA = "repro.streambw/1"


@dataclass
class StreamBWConfig:
    """One ``repro streambw`` sweep (CLI flags map 1:1 onto these fields)."""

    kernels: tuple[str, ...] = STREAM_KERNELS
    clusters: tuple[int, ...] = (1, 2, 4)
    cores_per_cluster: int = 2
    words: int = 1024               # uint32 elements per array per core
    placement: str = "hub"          # "hub" = NUMA stress, "local" = best case
    inter_hop_latency: int = 24
    seed: int = 107
    check_words: int = 256          # identity checks run at this small size
    backends: tuple[str, ...] = BACKENDS


def machine_for(clusters: int, cores_per_cluster: int,
                inter_hop_latency: int = 24) -> MachineConfig:
    """The sweep's machine at one cluster count (test-scale caches)."""
    return multi_cluster(clusters, cores_per_cluster,
                         inter_hop_latency=inter_hop_latency)


# -- the analytic scalar roofline ------------------------------------------------------


def _home_slices(config: MachineConfig, core: int, placement: str) -> list[int]:
    """L3 slices a core's pages are homed on (mirrors ``stage_workload``)."""
    if placement == "hub":
        return list(range(config.ring.stops // config.topology.clusters))
    return [core % config.ring.stops]


def scalar_roofline(config: MachineConfig, kernel: str,
                    placement: str = "hub") -> float:
    """Upper bound (bytes/cycle) on scalar STREAM bandwidth for a machine.

    Per core: ``min(issue bound, bandwidth bound)``, summed over cores.
    The bandwidth bound uses the best-case miss round trip — home-slice
    control request + L3 hit + data block back, with no L1/L2 pipeline
    charge — so no scalar schedule on this machine can beat it.
    """
    if kernel not in STREAM_FACTORS:
        raise ReproError(f"unknown stream kernel {kernel!r}")
    ring = ClusterInterconnect(config.ring, config.topology)
    l3_hit = config.l3_slice.hit_latency
    issue_bound = (STREAM_FACTORS[kernel] * GRANULE
                   / scalar_instructions_per_granule(kernel))
    total = 0.0
    for core in range(config.cores):
        stop = RingInterconnect.core_stop(core, config.ring.stops)
        homes = _home_slices(config, core, placement)
        rtt = sum(ring.latency(stop, home, data=False) + l3_hit
                  + ring.latency(home, stop, data=True)
                  for home in homes) / len(homes)
        bw_bound = (BLOCK_SIZE * MEMORY_LEVEL_PARALLELISM / rtt
                    if rtt else float("inf"))
        total += min(issue_bound, bw_bound)
    return total


# -- grid execution through the sweep runner -------------------------------------------


def streambw_point_spec(kernel: str, variant: str, clusters: int,
                        cfg: StreamBWConfig) -> Point:
    """The :class:`~repro.bench.runner.Point` descriptor for one cell."""
    return Point("streambw", {
        "kernel": kernel, "variant": variant, "clusters": clusters,
        "cores_per_cluster": cfg.cores_per_cluster, "words": cfg.words,
        "placement": cfg.placement,
        "inter_hop_latency": cfg.inter_hop_latency, "seed": cfg.seed,
    }, label=f"streambw/{kernel}/{variant}@c{clusters}")


def _grid(cfg: StreamBWConfig) -> list[tuple[str, str, int]]:
    cells = []
    for kernel in cfg.kernels:
        variants = ("scalar", "cc") if kernel in STREAM_KERNELS else ("scalar",)
        for clusters in cfg.clusters:
            for variant in variants:
                cells.append((kernel, variant, clusters))
    return cells


# -- in-process identity checks --------------------------------------------------------


def flat_equivalence_check(cfg: StreamBWConfig,
                           kernel: str = "add") -> dict[str, Any]:
    """A 1-cluster machine vs the same machine on the flat pre-topology
    ring: cycles, instructions, and the full energy ledger must be
    bit-identical (the golden-compat guarantee of the topology layer)."""
    runs = {}
    for mode in ("clustered", "flat"):
        machine_cfg = machine_for(1, cfg.cores_per_cluster,
                                  cfg.inter_hop_latency)
        machine = ComputeCacheMachine(machine_cfg)
        if mode == "flat":
            machine.hierarchy.ring = RingInterconnect(machine_cfg.ring,
                                                      machine.ledger)
        res = run_streambw(kernel, machine, variant="scalar",
                           words=cfg.check_words, placement=cfg.placement,
                           seed=cfg.seed)
        runs[mode] = {
            "cycles": res.cycles,
            "instructions": res.instructions,
            "energy_pj": dict(res.energy.pj),
        }
    return {
        "kernel": kernel,
        "identical": runs["clustered"] == runs["flat"],
        **runs,
    }


def backend_equivalence_check(cfg: StreamBWConfig,
                              kernel: str = "add") -> dict[str, Any]:
    """One CC point per backend; every number must be bit-identical."""
    clusters = max(cfg.clusters)
    runs = {}
    for backend in cfg.backends:
        machine = ComputeCacheMachine(
            machine_for(clusters, cfg.cores_per_cluster,
                        cfg.inter_hop_latency),
            backend=backend)
        res = run_streambw(kernel, machine, variant="cc",
                           words=cfg.check_words, placement=cfg.placement,
                           seed=cfg.seed)
        runs[backend] = {
            "cycles": res.cycles,
            "instructions": res.instructions,
            "energy_pj": dict(res.energy.pj),
            "stats": dict(res.stats),
        }
    values = list(runs.values())
    return {
        "kernel": kernel,
        "clusters": clusters,
        "backends": list(cfg.backends),
        "identical": all(v == values[0] for v in values[1:]),
    }


# -- the benchmark document ------------------------------------------------------------


def run_streambw_sweep(cfg: StreamBWConfig,
                       runner=None) -> dict[str, Any]:
    """Run the sweep; returns the ``BENCH_streambw.json`` document."""
    for kernel in cfg.kernels:
        if kernel not in STREAM_FACTORS:
            raise ReproError(f"unknown stream kernel {kernel!r}")
    runner = _resolve_runner(runner)
    cells = _grid(cfg)
    docs = runner.run([streambw_point_spec(kernel, variant, clusters, cfg)
                       for kernel, variant, clusters in cells])

    rows = []
    bw = {}           # (kernel, variant, clusters) -> measured bytes/cycle
    for (kernel, variant, clusters), doc in zip(cells, docs):
        row = dict(doc)
        row["roofline_bytes_per_cycle"] = scalar_roofline(
            machine_for(clusters, cfg.cores_per_cluster,
                        cfg.inter_hop_latency),
            kernel, cfg.placement)
        rows.append(row)
        bw[(kernel, variant, clusters)] = row["bytes_per_cycle"]

    rooflines = {
        kernel: {
            str(clusters): scalar_roofline(
                machine_for(clusters, cfg.cores_per_cluster,
                            cfg.inter_hop_latency),
                kernel, cfg.placement)
            for clusters in cfg.clusters
        }
        for kernel in cfg.kernels
    }
    crossover_clusters: dict[str, int | None] = {}
    for kernel in cfg.kernels:
        if kernel not in STREAM_KERNELS:
            continue
        crossover_clusters[kernel] = next(
            (clusters for clusters in sorted(cfg.clusters)
             if bw[(kernel, "cc", clusters)]
             > rooflines[kernel][str(clusters)]),
            None)

    flat = flat_equivalence_check(cfg)
    backend = backend_equivalence_check(cfg)
    failures = []
    if not any(c is not None for c in crossover_clusters.values()):
        failures.append("no kernel's CC bandwidth crossed the scalar "
                        "roofline at any cluster count")
    if not flat["identical"]:
        failures.append("1-cluster machine is not bit-identical to the "
                        "flat pre-topology ring")
    if not backend["identical"]:
        failures.append("packed and bitexact backends disagree")

    return bench_document(
        STREAMBW_SCHEMA,
        {
            "kernels": list(cfg.kernels),
            "clusters": list(cfg.clusters),
            "cores_per_cluster": cfg.cores_per_cluster,
            "words": cfg.words,
            "placement": cfg.placement,
            "inter_hop_latency": cfg.inter_hop_latency,
            "seed": cfg.seed,
        },
        machine=config_to_dict(
            machine_for(max(cfg.clusters), cfg.cores_per_cluster,
                        cfg.inter_hop_latency)),
        numa_scaling={
            "rows": rows,
            "rooflines": rooflines,
            "crossover_clusters": crossover_clusters,
        },
        checks={
            "flat_ring": flat,
            "backends": backend,
        },
        contract={
            "passed": not failures,
            "failures": failures,
        },
    )


def summarize(doc: dict[str, Any]) -> str:
    """Human-readable digest of a ``BENCH_streambw.json`` document."""
    lines = ["STREAM bandwidth over clusters (bytes/cycle, "
             f"placement={doc['config']['placement']}):"]
    section = doc["numa_scaling"]
    by_cell = {(r["kernel"], r["variant"], r["clusters"]): r
               for r in section["rows"]}
    for kernel in doc["config"]["kernels"]:
        parts = []
        for clusters in doc["config"]["clusters"]:
            scalar = by_cell[(kernel, "scalar", clusters)]
            cc = by_cell.get((kernel, "cc", clusters))
            roof = section["rooflines"][kernel][str(clusters)]
            cell = f"c{clusters}: {scalar['bytes_per_cycle']:.1f}"
            if cc is not None:
                cell += f"/cc {cc['bytes_per_cycle']:.1f}"
            cell += f" (roof {roof:.1f})"
            parts.append(cell)
        cross = section["crossover_clusters"].get(kernel)
        tail = (f"  crossover at {cross} clusters" if cross is not None
                else "  no crossover")
        lines.append(f"  {kernel:<6} " + " | ".join(parts) + tail)
    flat = doc["checks"]["flat_ring"]
    backend = doc["checks"]["backends"]
    lines.append("1-cluster == flat ring: "
                 + ("IDENTICAL" if flat["identical"] else "MISMATCH"))
    lines.append("backends " + "/".join(backend["backends"]) + ": "
                 + ("IDENTICAL" if backend["identical"] else "MISMATCH"))
    lines.append("contract: " + ("PASS" if doc["contract"]["passed"]
                                 else "FAIL"))
    return "\n".join(lines)
