"""Sustained simulator-throughput benchmark — ``repro speed``.

Measures how fast the *simulator itself* executes CC instructions
(wall-clock instructions/sec, and the simulated bytes/sec those
instructions cover), on a fig7-scale workload: disjoint 4 KB operands
warmed to L3, re-issued for several passes the way a streaming kernel
re-issues the same instruction shapes.  Each backend is measured twice —
once through the plain one-at-a-time controller path and once through
the :class:`~repro.core.stream.CCInstructionStream` scheduler — and the
results are cross-checked bit-for-bit (per-instruction results and the
final energy ledger must match exactly; the run aborts otherwise).

The output document, ``BENCH_speed.json``, is the second entry of the
repo's ``BENCH_*`` performance trajectory (after ``BENCH_serve.json``):
``repro speed`` enforces two optional contracts, a minimum stream-over-
sequential speedup (``--min-speedup``) and a maximum regression of
stream instructions/sec against a committed baseline document
(``--baseline`` / ``--tolerance``), and the CI ``speed-smoke`` job fails
on either.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any

from ..core import isa
from ..errors import ReproError
from ..machine import ComputeCacheMachine
from ..params import BACKENDS
from .report import bench_document

SPEED_SCHEMA = "repro.bench-speed/1"

KERNEL_BUILDERS = {
    "and": lambda a, b, c, size: isa.cc_and(a, b, c, size),
    "or": lambda a, b, c, size: isa.cc_or(a, b, c, size),
    "xor": lambda a, b, c, size: isa.cc_xor(a, b, c, size),
    "not": lambda a, b, c, size: isa.cc_not(a, c, size),
    "copy": lambda a, b, c, size: isa.cc_copy(a, c, size),
    "buz": lambda a, b, c, size: isa.cc_buz(c, size),
    "cmp": lambda a, b, c, size: isa.cc_cmp(a, b, min(size, 512)),
}


@dataclass
class SpeedConfig:
    """One ``repro speed`` run (CLI flags map 1:1 onto these fields)."""

    kernel: str = "xor"
    size: int = 4096                # bytes per operand (fig7 scale)
    instructions: int = 32          # distinct instructions (disjoint operands)
    passes: int = 4                 # sustained re-issues of the stream
    window: int = 8                 # stream fusion window
    backends: tuple[str, ...] = ("packed", "bitexact")
    seed: int = 42
    min_speedup: float | None = None       # contract: stream vs sequential
    baseline: dict[str, Any] | None = None  # committed BENCH_speed.json doc
    tolerance: float = 0.2                 # allowed fractional ips regression


def _build(cfg: SpeedConfig, backend: str):
    """A machine plus the instruction stream, operands warmed to L3."""
    if cfg.kernel not in KERNEL_BUILDERS:
        raise ReproError(
            f"unknown speed kernel {cfg.kernel!r}; "
            f"expected one of {sorted(KERNEL_BUILDERS)}")
    machine = ComputeCacheMachine(backend=backend)
    build = KERNEL_BUILDERS[cfg.kernel]
    rng = random.Random(cfg.seed)
    instrs = []
    for _ in range(cfg.instructions):
        a, b, c = machine.arena.alloc_colocated(cfg.size, 3)
        machine.load(a, bytes(rng.randrange(256) for _ in range(cfg.size)))
        machine.load(b, bytes(rng.randrange(256) for _ in range(cfg.size)))
        instrs.append(build(a, b, c, cfg.size))
        for addr in (a, b, c):
            machine.warm_l3(addr, cfg.size)
    return machine, instrs


def _measure_sequential(machine, instrs, passes: int) -> tuple[float, list]:
    controller = machine.controllers[0]
    for instr in instrs:          # settle: dest states, memos
        controller.execute(instr)
    last = []
    t0 = time.perf_counter()
    for _ in range(passes):
        last = [controller.execute(instr) for instr in instrs]
    return time.perf_counter() - t0, last


def _measure_stream(machine, instrs, passes: int, window: int):
    machine.cc_stream(instrs, window=window)   # settle
    stream_result = None
    t0 = time.perf_counter()
    for _ in range(passes):
        stream_result = machine.cc_stream(instrs, window=window)
    return time.perf_counter() - t0, stream_result


def _throughput(cfg: SpeedConfig, wall_s: float) -> dict[str, float]:
    executed = cfg.passes * cfg.instructions
    ips = executed / wall_s if wall_s else 0.0
    return {
        "wall_s": wall_s,
        "instructions": executed,
        "instructions_per_s": ips,
        "simulated_bytes_per_s": ips * cfg.size,
    }


def run_speed(cfg: SpeedConfig) -> dict[str, Any]:
    """Run the benchmark; returns the ``BENCH_speed.json`` document."""
    backends_doc: dict[str, Any] = {}
    for backend in cfg.backends:
        if backend not in BACKENDS:
            raise ReproError(f"unknown backend {backend!r}")
        m_seq, instrs_seq = _build(cfg, backend)
        wall_seq, last_seq = _measure_sequential(m_seq, instrs_seq, cfg.passes)
        m_str, instrs_str = _build(cfg, backend)
        wall_str, stream_result = _measure_stream(
            m_str, instrs_str, cfg.passes, cfg.window)

        # Differential cross-check: the stream path must be bit-identical.
        seq_sig = [(r.result, r.cycles, r.level, r.occupancy_cycles)
                   for r in last_seq]
        str_sig = [(r.result, r.cycles, r.level, r.occupancy_cycles)
                   for r in stream_result.results]
        bit_identical = (seq_sig == str_sig
                         and dict(m_seq.ledger.pj) == dict(m_str.ledger.pj))
        if not bit_identical:
            raise ReproError(
                f"{backend}: stream execution diverged from sequential "
                "(results or energy ledger differ)")

        seq = _throughput(cfg, wall_seq)
        stream = _throughput(cfg, wall_str)
        backends_doc[backend] = {
            "sequential": seq,
            "stream": stream,
            "speedup": (stream["instructions_per_s"]
                        / seq["instructions_per_s"]
                        if seq["instructions_per_s"] else 0.0),
            "bit_identical": bit_identical,
            "fused_fraction": stream_result.fused_fraction,
            "kernel_calls": stream_result.kernel_calls,
            "serial_cycles": stream_result.serial_cycles,
            "overlapped_cycles": stream_result.overlapped_cycles,
            "overlap_speedup": stream_result.overlap_speedup,
        }

    contract = _check_contract(cfg, backends_doc)
    return bench_document(
        SPEED_SCHEMA,
        {
            "kernel": cfg.kernel,
            "size": cfg.size,
            "instructions": cfg.instructions,
            "passes": cfg.passes,
            "window": cfg.window,
            "backends": list(cfg.backends),
            "seed": cfg.seed,
        },
        backends=backends_doc,
        contract=contract,
    )


def _check_contract(cfg: SpeedConfig,
                    backends_doc: dict[str, Any]) -> dict[str, Any]:
    """The two gates CI enforces: minimum fusion speedup, and no large
    instructions/sec regression against a committed baseline."""
    failures: list[str] = []
    if cfg.min_speedup is not None:
        for backend, doc in backends_doc.items():
            if doc["speedup"] < cfg.min_speedup:
                failures.append(
                    f"{backend}: stream speedup {doc['speedup']:.2f}x "
                    f"below the {cfg.min_speedup:.2f}x contract")
    baseline_ips: dict[str, float] = {}
    if cfg.baseline is not None:
        for backend, doc in backends_doc.items():
            base = (cfg.baseline.get("backends", {})
                    .get(backend, {}).get("stream", {})
                    .get("instructions_per_s"))
            if base is None:
                continue
            baseline_ips[backend] = base
            floor = base * (1.0 - cfg.tolerance)
            measured = doc["stream"]["instructions_per_s"]
            if measured < floor:
                failures.append(
                    f"{backend}: stream {measured:.0f} instructions/s is "
                    f">{cfg.tolerance:.0%} below the committed baseline "
                    f"{base:.0f}/s")
    return {
        "min_speedup": cfg.min_speedup,
        "baseline_instructions_per_s": baseline_ips or None,
        "tolerance": cfg.tolerance if cfg.baseline is not None else None,
        "failures": failures,
        "passed": not failures,
    }


def summarize(doc: dict[str, Any]) -> str:
    """The grep-friendly ``speed:`` summary line."""
    parts = [f"speed: kernel={doc['config']['kernel']}"
             f" size={doc['config']['size']}"]
    for backend, b in doc["backends"].items():
        parts.append(
            f"{backend}: seq={b['sequential']['instructions_per_s']:.0f}/s"
            f" stream={b['stream']['instructions_per_s']:.0f}/s"
            f" speedup={b['speedup']:.2f}x"
            f" fused={100.0 * b['fused_fraction']:.0f}%")
    parts.append("contract=" + ("pass" if doc["contract"]["passed"] else "FAIL"))
    return " | ".join(parts)
