"""Checkpointing benchmark harness: Figures 10 and 11.

Runs the six SPLASH-2 profiles with no checkpointing, scalar (Base),
Base_32 SIMD, and CC_L3 page-copy engines; reports per-benchmark overhead
(Figure 10) and total energy including leakage over the measured runtime
(Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..apps.checkpoint import CheckpointRun, run_checkpoint
from ..apps.splash import BENCHMARKS, PROFILES
from ..machine import ComputeCacheMachine
from ..params import sandybridge_8core

ENGINES = ("base", "base32", "cc")


@dataclass
class CheckpointComparison:
    """All engines for one benchmark profile."""

    benchmark: str
    runs: dict[str, CheckpointRun]

    def overhead(self, engine: str) -> float:
        return self.runs[engine].overhead

    def total_energy_nj(self, engine: str) -> float:
        run = self.runs[engine]
        m = ComputeCacheMachine(sandybridge_8core())
        return m.total_energy(run.energy, run.total_cycles).total


def run_benchmark(name: str, intervals: int = 2,
                  backend: str | None = None) -> CheckpointComparison:
    prof = replace(PROFILES[name], intervals=intervals)
    runs = {}
    for engine in ("none",) + ENGINES:
        m = ComputeCacheMachine(sandybridge_8core(), backend=backend)
        runs[engine] = run_checkpoint(prof, engine, m)
    return CheckpointComparison(benchmark=name, runs=runs)


def _checkpoint_points(intervals: int, benchmarks: tuple[str, ...],
                       runner, backend: str | None = None) -> list[dict]:
    """One ``checkpoint`` runner point per benchmark; each point carries
    both the Figure 10 overheads and the Figure 11 energies, so
    regenerating both figures (or re-running one with a warm cache)
    simulates every profile once."""
    from .microbench import _resolve_runner
    from .runner import Point

    runner = _resolve_runner(runner)
    extra = {"backend": backend} if backend is not None else {}
    return runner.run([
        Point("checkpoint", {"benchmark": name, "intervals": intervals,
                             **extra},
              label=f"checkpoint:{name}x{intervals}")
        for name in benchmarks
    ])


def figure10_overheads(intervals: int = 2,
                       benchmarks: tuple[str, ...] = BENCHMARKS,
                       runner=None,
                       backend: str | None = None) -> dict[str, dict[str, float]]:
    """Figure 10: checkpointing performance overhead (%) per benchmark."""
    docs = _checkpoint_points(intervals, benchmarks, runner, backend=backend)
    return {doc["benchmark"]: doc["overheads"] for doc in docs}


def figure11_energy(intervals: int = 2,
                    benchmarks: tuple[str, ...] = BENCHMARKS,
                    runner=None,
                    backend: str | None = None) -> dict[str, dict[str, float]]:
    """Figure 11: total energy (nJ) per benchmark, including no_chkpt."""
    docs = _checkpoint_points(intervals, benchmarks, runner, backend=backend)
    return {doc["benchmark"]: doc["energy"] for doc in docs}


def summarize_overheads(overheads: dict[str, dict[str, float]]) -> dict[str, float]:
    """Geomean-free summary: arithmetic-mean overhead per engine (the
    paper quotes averages: Base_32 ~30%, CC ~6%) plus the worst case."""
    out = {}
    for engine in ENGINES:
        values = [overheads[b][engine] for b in overheads]
        out[f"avg_{engine}"] = sum(values) / len(values)
        out[f"max_{engine}"] = max(values)
    return out
