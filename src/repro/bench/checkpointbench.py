"""Checkpointing benchmark harness: Figures 10 and 11.

Runs the six SPLASH-2 profiles with no checkpointing, scalar (Base),
Base_32 SIMD, and CC_L3 page-copy engines; reports per-benchmark overhead
(Figure 10) and total energy including leakage over the measured runtime
(Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..apps.checkpoint import CheckpointRun, run_checkpoint
from ..apps.splash import BENCHMARKS, PROFILES
from ..machine import ComputeCacheMachine
from ..params import sandybridge_8core

ENGINES = ("base", "base32", "cc")


@dataclass
class CheckpointComparison:
    """All engines for one benchmark profile."""

    benchmark: str
    runs: dict[str, CheckpointRun]

    def overhead(self, engine: str) -> float:
        return self.runs[engine].overhead

    def total_energy_nj(self, engine: str) -> float:
        run = self.runs[engine]
        m = ComputeCacheMachine(sandybridge_8core())
        return m.total_energy(run.energy, run.total_cycles).total


def run_benchmark(name: str, intervals: int = 2) -> CheckpointComparison:
    prof = replace(PROFILES[name], intervals=intervals)
    runs = {}
    for engine in ("none",) + ENGINES:
        m = ComputeCacheMachine(sandybridge_8core())
        runs[engine] = run_checkpoint(prof, engine, m)
    return CheckpointComparison(benchmark=name, runs=runs)


def figure10_overheads(intervals: int = 2,
                       benchmarks: tuple[str, ...] = BENCHMARKS) -> dict[str, dict[str, float]]:
    """Figure 10: checkpointing performance overhead (%) per benchmark."""
    out = {}
    for name in benchmarks:
        comp = run_benchmark(name, intervals)
        out[name] = {engine: comp.overhead(engine) for engine in ENGINES}
    return out


def figure11_energy(intervals: int = 2,
                    benchmarks: tuple[str, ...] = BENCHMARKS) -> dict[str, dict[str, float]]:
    """Figure 11: total energy (nJ) per benchmark, including no_chkpt."""
    out = {}
    for name in benchmarks:
        comp = run_benchmark(name, intervals)
        out[name] = {
            "no_chkpt": comp.total_energy_nj("none"),
            **{engine: comp.total_energy_nj(engine) for engine in ENGINES},
        }
    return out


def summarize_overheads(overheads: dict[str, dict[str, float]]) -> dict[str, float]:
    """Geomean-free summary: arithmetic-mean overhead per engine (the
    paper quotes averages: Base_32 ~30%, CC ~6%) plus the worst case."""
    out = {}
    for engine in ENGINES:
        values = [overheads[b][engine] for b in overheads]
        out[f"avg_{engine}"] = sum(values) / len(values)
        out[f"max_{engine}"] = max(values)
    return out
