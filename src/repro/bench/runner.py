"""Parallel sweep/figure execution engine with an on-disk result cache.

Every exhibit of the paper's evaluation (Figures 7–11, the design-space
sweeps) is a grid of independent simulation points, so the bench layer
submits :class:`Point` descriptors here instead of looping inline.  The
runner

* fans points out over a **process pool** (``jobs`` workers; Figure 9's
  four applications or Figure 10's six SPLASH profiles run concurrently),
* keys every point by a **deterministic content hash** of
  ``(point function, kwargs — including the machine-config document —,
  execution backend, code version)`` and serves unchanged points from a
  JSON-per-point **result cache** (``.repro-cache/`` by default) instead
  of re-simulating,
* applies a **per-point timeout with bounded retry**, and after the
  retries are exhausted (or whenever a pool cannot be created at all)
  **degrades gracefully to serial in-process execution**, and
* reports progress and failures through a
  :class:`repro.events.EventTracer` (``runner.point`` / ``runner.batch``
  events carrying wall-clock spans), so sweep wall-clock can be
  attributed the same way ``repro profile`` attributes simulated cycles.

Determinism contract: point functions are pure functions of their kwargs
(all workload seeds are fixed — see
:data:`repro.bench.points.WORKLOAD_SEEDS`), and every result is
canonicalized through a JSON round trip before it is returned *or*
cached.  Parallel, serial, and cache-served runs of the same tree are
therefore bit-identical — ``tests/test_runner.py`` pins this.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import RunnerError
from ..events import EventTracer

CACHE_SCHEMA = "repro.point-result/2"

_CODE_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Content hash of every ``repro`` source file (cached per process).

    Editing any module under ``src/repro/`` changes the fingerprint and
    therefore invalidates every cached point — results can never be
    served from a cache written by different simulator code.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _CODE_FINGERPRINT = digest.hexdigest()[:20]
    return _CODE_FINGERPRINT


def git_revision() -> str | None:
    """``HEAD`` commit of the source checkout (``-dirty`` suffixed when
    the tree has local modifications); ``None`` outside a git checkout."""
    import repro

    cwd = Path(repro.__file__).resolve().parent
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None
    return f"{rev}-dirty" if status else rev


def default_backend() -> str:
    """The execution backend points run on when their kwargs carry no
    machine-config document (the :class:`~repro.params.MachineConfig`
    default)."""
    from ..params import sandybridge_8core

    return sandybridge_8core().backend


@dataclass(frozen=True)
class Point:
    """One simulation point: a registered point-function name plus its
    JSON-serializable kwargs (see :mod:`repro.bench.points`)."""

    fn: str
    kwargs: dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def describe(self) -> str:
        return self.label or f"{self.fn}({self.kwargs})"


def point_key(fn: str, kwargs: dict[str, Any], backend: str,
              code_version: str) -> str:
    """Deterministic cache key of one point: sha-256 over the canonical
    JSON of (function name, kwargs, backend, code version)."""
    from ..config_io import canonical_json

    payload = canonical_json({
        "schema": CACHE_SCHEMA,
        "fn": fn,
        "kwargs": kwargs,
        "backend": backend,
        "code_version": code_version,
    })
    return hashlib.sha256(payload.encode()).hexdigest()


def _canonical(result: Any) -> Any:
    """Round-trip a result through canonical JSON so fresh (serial or
    parallel) and cache-served results are the same object graph:
    sorted dict ordering everywhere, floats exactly preserved."""
    return json.loads(json.dumps(result, sort_keys=True, default=float))


def result_digest(result: Any) -> str:
    """Integrity hash of a (canonicalized) point result — stored in the
    cache envelope and re-verified on every load, so a torn write or
    bit-rotted file that still parses as JSON can never be served."""
    from ..config_io import canonical_json

    return hashlib.sha256(canonical_json(result).encode()).hexdigest()


def _execute_point(fn_name: str, kwargs: dict[str, Any]) -> Any:
    """Worker-side entry: resolve the registry name and run the point.
    Module-level so it pickles under every multiprocessing start method."""
    from .points import POINT_FUNCTIONS

    try:
        fn = POINT_FUNCTIONS[fn_name]
    except KeyError:
        raise RunnerError(f"unknown point function {fn_name!r}") from None
    return fn(**kwargs)


class ResultCache:
    """JSON-per-point on-disk result cache.

    One ``<key>.json`` envelope per point under ``directory``.  A load is
    served only when the envelope parses, carries the current schema, its
    ``result_sha256`` integrity digest matches the stored result, and —
    when the caller states them — its provenance fields (``fn``,
    ``backend``, ``code_version``) match the requesting point.  Anything
    else (truncated or torn files, invalid UTF-8, bit rot, envelopes
    copied between trees) is a **miss** that the next store overwrites —
    never an error, never served.
    """

    def __init__(self, directory: str | os.PathLike = ".repro-cache") -> None:
        self.directory = Path(directory)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str, fn: str | None = None, backend: str | None = None,
             code_version: str | None = None) -> Any | None:
        """The cached result for ``key``, or ``None`` on a miss.

        ``fn`` / ``backend`` / ``code_version``, when given, are checked
        against the envelope's provenance fields — a mismatched envelope
        (however it got there) is a miss, not a crash and not garbage.
        """
        try:
            envelope = json.loads(self._path(key).read_text(encoding="utf-8"))
        except (OSError, ValueError, RecursionError):
            return None
        if not isinstance(envelope, dict) or envelope.get("schema") != CACHE_SCHEMA:
            return None
        if "result" not in envelope:
            return None
        for field_name, expected in (("fn", fn), ("backend", backend),
                                     ("code_version", code_version)):
            if expected is not None and envelope.get(field_name) != expected:
                return None
        try:
            if envelope.get("result_sha256") != result_digest(envelope["result"]):
                return None
        except (TypeError, ValueError, RecursionError):
            return None
        return envelope["result"]

    def store(self, key: str, point: Point, backend: str, code_version: str,
              result: Any) -> None:
        """Write the envelope atomically (tmp file + rename)."""
        envelope = {
            "schema": CACHE_SCHEMA,
            "fn": point.fn,
            "kwargs": point.kwargs,
            "backend": backend,
            "code_version": code_version,
            "result": result,
            "result_sha256": result_digest(result),
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(envelope, sort_keys=True, indent=1),
                       encoding="utf-8")
        os.replace(tmp, path)


@dataclass
class RunnerStats:
    """Counters for one or more :meth:`PointRunner.run` batches."""

    points: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    computed: int = 0
    timeouts: int = 0
    retries: int = 0
    serial_fallbacks: int = 0
    failures: int = 0
    wall_s: float = 0.0
    jobs: int = 1

    def hit_rate(self) -> float:
        return self.cache_hits / self.points if self.points else 0.0

    def line(self) -> str:
        """One grep-friendly summary line (CI uploads this as an artifact
        and pins the warm-run hit rate)."""
        return (
            f"cache-stats: points={self.points} hits={self.cache_hits} "
            f"deduplicated={self.deduplicated} computed={self.computed} "
            f"timeouts={self.timeouts} retries={self.retries} "
            f"serial_fallbacks={self.serial_fallbacks} "
            f"failures={self.failures} "
            f"hit_rate={100.0 * self.hit_rate():.1f}% "
            f"jobs={self.jobs} wall_s={self.wall_s:.2f}"
        )


class PointRunner:
    """Fan simulation points out over workers, with cached results.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every point serially
        in-process — the no-multiprocessing code path, also used as the
        degradation target when a pool cannot be created.
    cache_dir / use_cache:
        Where the JSON-per-point result cache lives and whether to read
        or write it.  Library callers default to *no* caching so plain
        ``figure7()`` calls never touch the working directory; the CLI
        enables it (``--no-cache`` / ``--cache-dir`` flip these).
    timeout_s / retries:
        Per-point wall-clock timeout for pool execution and how many
        times a timed-out point is resubmitted before the runner falls
        back to running it serially in-process (where it cannot time
        out).  ``timeout_s=None`` disables timeouts.
    tracer:
        An :class:`~repro.events.EventTracer` receiving ``runner.point``
        and ``runner.batch`` events (a private one is created when not
        given; see :func:`runner_wall_profile`).
    backend:
        Overrides the backend component of cache keys; defaults to the
        machine-config default backend.
    """

    def __init__(self, jobs: int = 1, cache_dir: str | os.PathLike = ".repro-cache",
                 use_cache: bool = False, timeout_s: float | None = 600.0,
                 retries: int = 1, tracer: EventTracer | None = None,
                 backend: str | None = None) -> None:
        if jobs < 1:
            raise RunnerError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise RunnerError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir)
        self.use_cache = use_cache
        self.timeout_s = timeout_s
        self.retries = retries
        self.tracer = tracer if tracer is not None else EventTracer(capacity=1 << 16)
        self.backend = backend
        self.stats = RunnerStats(jobs=jobs)

    # -- plumbing ---------------------------------------------------------------------

    def _emit(self, phase: str, point: Point, span: float = 0.0,
              outcome: str | None = None) -> None:
        self.tracer.emit("runner.point", phase=phase, span=span,
                         opcode=point.fn, reason=point.describe(),
                         outcome=outcome)

    def _key(self, point: Point) -> str:
        return point_key(point.fn, point.kwargs,
                         self.backend or default_backend(), code_fingerprint())

    @staticmethod
    def _make_pool(workers: int):
        """Pool factory — a seam for tests and for environments without
        ``multiprocessing`` (any exception here degrades to serial)."""
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=workers)

    def _run_serial(self, point: Point, phase: str = "computed") -> Any:
        start = time.perf_counter()
        try:
            result = _canonical(_execute_point(point.fn, point.kwargs))
        except Exception as exc:
            self.stats.failures += 1
            self._emit("failed", point, span=time.perf_counter() - start)
            raise RunnerError(
                f"simulation point {point.describe()} failed: {exc}") from exc
        self._emit(phase, point, span=time.perf_counter() - start,
                   outcome="serial")
        return result

    # -- execution --------------------------------------------------------------------

    def run(self, points: Sequence[Point]) -> list[Any]:
        """Execute ``points`` and return their results in input order.

        Cache hits are resolved first; the remaining points are
        deduplicated by key, executed (pool or serial), canonicalized,
        cached, and stitched back into input order.
        """
        batch_start = time.perf_counter()
        points = list(points)
        self.stats.points += len(points)
        keys = [self._key(p) for p in points]
        results: list[Any] = [None] * len(points)

        pending: list[int] = []
        owner_of_key: dict[str, int] = {}
        for i, (point, key) in enumerate(zip(points, keys)):
            if self.use_cache:
                cached = self.cache.load(
                    key, fn=point.fn, backend=self.backend or default_backend(),
                    code_version=code_fingerprint())
                if cached is not None:
                    results[i] = cached
                    self.stats.cache_hits += 1
                    self._emit("cache-hit", point, outcome="cache")
                    continue
            if key in owner_of_key:
                self.stats.deduplicated += 1
                continue
            owner_of_key[key] = i
            pending.append(i)

        if pending:
            self._run_pending(points, keys, results, pending)

        for i, key in enumerate(keys):
            if results[i] is None and key in owner_of_key:
                results[i] = results[owner_of_key[key]]

        self.stats.wall_s += time.perf_counter() - batch_start
        self.tracer.emit("runner.batch", phase="total",
                         span=time.perf_counter() - batch_start,
                         reason=f"{len(points)} points")
        return results

    def _run_pending(self, points: list[Point], keys: list[str],
                     results: list[Any], pending: list[int]) -> None:
        pool = None
        if self.jobs > 1 and pending:
            try:
                pool = self._make_pool(min(self.jobs, len(pending)))
            except Exception:
                self._emit("serial-fallback", points[pending[0]],
                           outcome="pool-unavailable")
        if pool is None:
            for i in pending:
                results[i] = self._run_serial(points[i])
                self.stats.computed += 1
                self._store(keys[i], points[i], results[i])
            return

        from concurrent.futures import BrokenExecutor
        from concurrent.futures import TimeoutError as FutureTimeout

        try:
            futures = {
                i: pool.submit(_execute_point, points[i].fn, points[i].kwargs)
                for i in pending
            }
            broken = False
            for i in pending:
                point = points[i]
                start = time.perf_counter()
                result = None
                if not broken:
                    attempts = 0
                    while True:
                        try:
                            result = _canonical(
                                futures[i].result(timeout=self.timeout_s))
                            self._emit("computed", point,
                                       span=time.perf_counter() - start,
                                       outcome="parallel")
                            break
                        except FutureTimeout:
                            self.stats.timeouts += 1
                            futures[i].cancel()
                            self._emit("timeout", point,
                                       span=time.perf_counter() - start)
                            if attempts < self.retries:
                                attempts += 1
                                self.stats.retries += 1
                                futures[i] = pool.submit(
                                    _execute_point, point.fn, point.kwargs)
                                self._emit("retry", point)
                                continue
                            break
                        except BrokenExecutor:
                            broken = True
                            break
                        except RunnerError:
                            raise
                        except Exception as exc:
                            self.stats.failures += 1
                            self._emit("failed", point,
                                       span=time.perf_counter() - start)
                            raise RunnerError(
                                f"simulation point {point.describe()} "
                                f"failed: {exc}") from exc
                if result is None:
                    # Timed out past the retry budget, or the pool died:
                    # run this point serially in-process.
                    self.stats.serial_fallbacks += 1
                    result = self._run_serial(point, phase="serial-fallback")
                results[i] = result
                self.stats.computed += 1
                self._store(keys[i], point, result)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _store(self, key: str, point: Point, result: Any) -> None:
        if self.use_cache:
            self.cache.store(key, point, self.backend or default_backend(),
                             code_fingerprint(), result)


# -- wall-clock attribution ----------------------------------------------------------


def runner_wall_profile(tracer: EventTracer) -> dict[str, dict[str, float]]:
    """Fold a runner's event stream into per-phase wall-clock totals —
    the sweep-level analogue of the cycle-attribution profile
    ``repro profile`` builds from simulation events."""
    profile: dict[str, dict[str, float]] = {}
    for event in tracer.by_kind("runner.point"):
        row = profile.setdefault(event.phase or "?",
                                 {"count": 0.0, "seconds": 0.0})
        row["count"] += 1
        row["seconds"] += event.span
    return profile


def format_runner_profile(tracer: EventTracer) -> str:
    """Human-readable :func:`runner_wall_profile` table."""
    profile = runner_wall_profile(tracer)
    if not profile:
        return "runner: no points executed"
    width = max(len(phase) for phase in profile)
    lines = ["runner wall-clock attribution:"]
    for phase, row in sorted(profile.items(),
                             key=lambda kv: -kv[1]["seconds"]):
        lines.append(f"  {phase.ljust(width)}  {int(row['count']):4d} pts  "
                     f"{row['seconds']:8.2f} s")
    return "\n".join(lines)


from .._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "PointRunner", "Point",
))
