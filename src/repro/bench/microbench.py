"""Micro-benchmark harness: copy / compare / search / logical (Section VI-D).

Reproduces Figures 3, 7(a-c) and 8(a-b), and Tables I, III and V.

Methodology (matching the paper's): operands are 4 KB, resident in L3
(`CC_L3`), and each kernel is also run with 32-byte SIMD (`Base_32`) and -
for Figure 3 - a scalar core.  Throughput for the CC configurations uses
the steady-state bottleneck (back-to-back independent CC instructions
overlap: the shared command bus and sub-array occupancy limit the pipeline,
while per-instruction decode/notify overheads amortize away); baseline
throughput uses measured end-to-end cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import isa
from ..cpu import simd
from ..cpu.program import Program
from ..energy.accounting import EnergyLedger
from ..energy.tables import (
    CACHE_ACCESS_ENERGY_PJ,
    CACHE_IC_ENERGY_PJ,
    CC_OP_ENERGY_PJ,
)
from ..machine import ComputeCacheMachine
from ..params import MachineConfig, sandybridge_8core, validate_table3
from .points import measurement_from_point
from .runner import Point, PointRunner

KERNELS = ("copy", "compare", "search", "logical")
OPERAND_BYTES = 4096


def _resolve_runner(runner: PointRunner | None) -> PointRunner:
    """Default runner: serial, uncached — same behavior as the historical
    inline loops.  Pass an explicit :class:`~repro.bench.runner.PointRunner`
    (the CLI does) for parallelism and cached results."""
    return runner if runner is not None else PointRunner()


def kernel_point_spec(kernel: str, config: str, size: int,
                      level: str = "L3",
                      machine: dict | None = None,
                      backend: str | None = None,
                      seed: int | None = None) -> Point:
    """The :class:`~repro.bench.runner.Point` descriptor for one
    (kernel, configuration) micro-benchmark cell.

    ``backend`` and ``seed`` enter the kwargs only when overridden, so
    default-run cache keys are unchanged by their existence.
    """
    kwargs: dict = {"kernel": kernel, "config": config, "size": size,
                    "level": level}
    if machine is not None:
        kwargs["machine"] = machine
    if backend is not None:
        kwargs["backend"] = backend
    if seed is not None:
        kwargs["seed"] = seed
    return Point("kernel", kwargs,
                 label=f"{kernel}/{config}@{level}/{size}B")


@dataclass
class KernelMeasurement:
    """One (kernel, configuration) measurement."""

    kernel: str
    config: str
    cycles: float
    steady_cycles: float
    instructions: int
    dynamic: EnergyLedger
    total_energy_nj: float = 0.0
    bytes_processed: int = OPERAND_BYTES

    @property
    def throughput_bytes_per_cycle(self) -> float:
        return self.bytes_processed / self.steady_cycles

    def throughput_mops(self, frequency_ghz: float, op_bytes: int = 8) -> float:
        """Million word-operations per second (Figure 7(a)'s unit up to a
        constant)."""
        ops = self.bytes_processed / op_bytes
        seconds = self.steady_cycles / (frequency_ghz * 1e9)
        return ops / seconds / 1e6


def _machine() -> ComputeCacheMachine:
    return ComputeCacheMachine(sandybridge_8core())


def _stage_operands(m: ComputeCacheMachine, count: int, size: int,
                    seed: int = 42) -> list[int]:
    rng = np.random.default_rng(seed)
    addrs = m.arena.alloc_colocated(size, count)
    for addr in addrs:
        m.load(addr, rng.integers(0, 256, size, dtype=np.uint8).tobytes())
    for addr in addrs:
        m.warm_l3(addr, size)
    return addrs


def _baseline_program(kernel: str, a: int, b: int, c: int, size: int) -> Program:
    if kernel == "copy":
        return simd.simd_copy(a, c, size)
    if kernel == "compare":
        return simd.simd_compare(a, b, size)
    if kernel == "search":
        return simd.simd_search(a, b, size)
    if kernel == "logical":
        return simd.simd_or(a, b, c, size)
    raise ValueError(f"unknown kernel {kernel!r}")


def _scalar_program(kernel: str, a: int, b: int, c: int, size: int) -> Program:
    if kernel == "copy":
        return simd.scalar_copy(a, c, size)
    if kernel == "compare":
        return simd.scalar_compare(a, b, size)
    if kernel == "search":
        return simd.scalar_search(a, b, size)
    if kernel == "logical":
        return simd.scalar_or(a, b, c, size)
    raise ValueError(f"unknown kernel {kernel!r}")


def _cc_instruction(kernel: str, a: int, b: int, c: int, size: int):
    if kernel == "copy":
        return isa.cc_copy(a, c, size)
    if kernel == "compare":
        # cc_cmp is capped at 512 B per instruction; issue a burst.
        return [isa.cc_cmp(a + off, b + off, 512) for off in range(0, size, 512)]
    if kernel == "search":
        return isa.cc_search(a, b, size)
    if kernel == "logical":
        return isa.cc_or(a, b, c, size)
    raise ValueError(f"unknown kernel {kernel!r}")


def run_kernel(kernel: str, config: str, size: int = OPERAND_BYTES,
               level: str = "L3",
               machine_config: MachineConfig | None = None,
               backend: str | None = None,
               seed: int = 42) -> KernelMeasurement:
    """Measure one kernel in one configuration.

    ``config`` is one of ``scalar``, ``base32``, ``cc`` (in-place) or
    ``cc_near`` (forced near-place).  ``level`` places the operands at L1,
    L2, or L3 before measuring (Figure 8(b)).  ``backend`` overrides the
    execution backend; ``seed`` drives the operand-staging data.
    """
    m = ComputeCacheMachine(machine_config or sandybridge_8core(),
                            backend=backend)
    a, b, c = _stage_operands(m, 3, size, seed=seed)
    if level in ("L1", "L2"):
        for addr in (a, b, c):
            m.touch_range(addr, size, for_write=(addr == c))
        if level == "L2":
            for addr in (a, b, c):
                for block in range(addr, addr + size, 64):
                    m.hierarchy.cc_prepare(0, "L2", block, is_dest=False)
    snap = m.snapshot_energy()

    if config == "scalar":
        res = m.run(_scalar_program(kernel, a, b, c, size))
        cycles = steady = res.cycles
        instructions = res.instructions
    elif config == "base32":
        res = m.run(_baseline_program(kernel, a, b, c, size))
        cycles = steady = res.cycles
        instructions = res.instructions
    elif config in ("cc", "cc_near"):
        instrs = _cc_instruction(kernel, a, b, c, size)
        if not isinstance(instrs, list):
            instrs = [instrs]
        force_near = config == "cc_near"
        results = [
            m.cc(ins, force_level=level if level != "L3" else None,
                 force_nearplace=force_near)
            for ins in instrs
        ]
        cycles = sum(r.cycles for r in results)
        # Steady state: independent CC instructions pipeline; the command
        # bus / sub-array occupancy (compute phase) is the bottleneck.
        steady = max(sum(r.compute_cycles for r in results), 1.0)
        instructions = len(instrs)
        m.ledger.add("core", instructions * m.config.core.epi_cc)
    else:
        raise ValueError(f"unknown configuration {config!r}")

    dyn = m.energy_since(snap)
    total = m.total_energy(dyn, cycles)
    return KernelMeasurement(
        kernel=kernel, config=config, cycles=cycles, steady_cycles=steady,
        instructions=instructions, dynamic=dyn,
        total_energy_nj=total.total, bytes_processed=size,
    )


# -- Figure 7: throughput + dynamic + total energy, Base_32 vs CC_L3 ------------------


def figure7(size: int = OPERAND_BYTES,
            runner: PointRunner | None = None,
            backend: str | None = None,
            seed: int | None = None) -> dict[str, dict[str, KernelMeasurement]]:
    """All four kernels in Base_32 and CC_L3 (Figures 7a, 7b, 7c)."""
    runner = _resolve_runner(runner)
    cells = [(kernel, config) for kernel in KERNELS
             for config in ("base32", "cc")]
    docs = runner.run([kernel_point_spec(k, c, size, backend=backend, seed=seed)
                       for k, c in cells])
    out: dict[str, dict[str, KernelMeasurement]] = {}
    for (kernel, config), doc in zip(cells, docs):
        out.setdefault(kernel, {})[config] = measurement_from_point(doc)
    return out


def figure7_summary(results: dict[str, dict[str, KernelMeasurement]]) -> dict[str, float]:
    """Headline numbers: mean throughput gain and dynamic-energy saving."""
    gains, savings = [], []
    for kernel in KERNELS:
        base, cc = results[kernel]["base32"], results[kernel]["cc"]
        gains.append(base.steady_cycles / cc.steady_cycles)
        savings.append(1 - cc.dynamic.total() / base.dynamic.total())
    return {
        "mean_throughput_gain": float(np.mean(gains)),
        "mean_dynamic_saving": float(np.mean(savings)),
        "min_throughput_gain": float(min(gains)),
        "mean_total_energy_ratio": float(np.mean([
            results[k]["base32"].total_energy_nj / results[k]["cc"].total_energy_nj
            for k in KERNELS
        ])),
    }


# -- Figure 8(a): in-place vs near-place -----------------------------------------------


def figure8a_inplace_vs_nearplace(size: int = OPERAND_BYTES,
                                  runner: PointRunner | None = None,
                                  backend: str | None = None,
                                  seed: int | None = None,
                                  ) -> dict[str, dict[str, KernelMeasurement]]:
    runner = _resolve_runner(runner)
    cells = [(kernel, config) for kernel in KERNELS
             for config in ("cc", "cc_near")]
    docs = runner.run([kernel_point_spec(k, c, size, backend=backend, seed=seed)
                       for k, c in cells])
    out: dict[str, dict[str, KernelMeasurement]] = {}
    for (kernel, config), doc in zip(cells, docs):
        key = "inplace" if config == "cc" else "nearplace"
        out.setdefault(kernel, {})[key] = measurement_from_point(doc)
    return out


# -- Figure 8(b): savings by compute level ----------------------------------------------


def figure8b_levels(size: int = OPERAND_BYTES,
                    runner: PointRunner | None = None,
                    backend: str | None = None,
                    seed: int | None = None,
                    ) -> dict[str, dict[str, dict[str, float]]]:
    """Dynamic-energy savings of CC vs Base_32 with operands resident at
    each cache level; per-component savings in pJ (Figure 8(b)'s bars)."""
    runner = _resolve_runner(runner)
    cells = [(kernel, level, config) for kernel in KERNELS
             for level in ("L3", "L2", "L1") for config in ("base32", "cc")]
    docs = runner.run([kernel_point_spec(k, c, size, level=lvl,
                                         backend=backend, seed=seed)
                       for k, lvl, c in cells])
    meas = {cell: measurement_from_point(doc) for cell, doc in zip(cells, docs)}
    out: dict[str, dict[str, dict[str, float]]] = {}
    for kernel in KERNELS:
        out[kernel] = {}
        for level in ("L3", "L2", "L1"):
            base = meas[(kernel, level, "base32")]
            cc = meas[(kernel, level, "cc")]
            out[kernel][level] = {
                "savings_by_component": cc.dynamic.diff(base.dynamic),
                "total_savings_pj": base.dynamic.total() - cc.dynamic.total(),
                "savings_fraction": 1 - cc.dynamic.total() / base.dynamic.total(),
            }
    return out


# -- Figure 3 (top): energy proportions for bulk compare ----------------------------------


def figure3_energy_proportions(size: int = OPERAND_BYTES,
                               runner: PointRunner | None = None,
                               backend: str | None = None,
                               seed: int | None = None,
                               ) -> dict[str, dict[str, float]]:
    """Core vs data-movement dynamic-energy split for a bulk compare on a
    scalar core, a SIMD core, and a Compute Cache."""
    runner = _resolve_runner(runner)
    configs = ("scalar", "base32", "cc")
    docs = runner.run([kernel_point_spec("compare", c, size,
                                         backend=backend, seed=seed)
                       for c in configs])
    out = {}
    for config, doc in zip(configs, docs):
        meas = measurement_from_point(doc)
        total = meas.dynamic.total()
        out[config] = {
            "core_fraction": meas.dynamic.core() / total,
            "data_movement_fraction": meas.dynamic.data_movement() / total,
            "total_nj": total / 1000.0,
        }
    return out


# -- Tables ---------------------------------------------------------------------------------


def table1_rows() -> list[dict[str, float | str]]:
    """Table I: per-read H-tree vs data-array energy."""
    return [
        {
            "cache": level,
            "cache-ic (h-tree) pJ": CACHE_IC_ENERGY_PJ[level],
            "cache-access pJ": CACHE_ACCESS_ENERGY_PJ[level],
            "h-tree fraction": CACHE_IC_ENERGY_PJ[level]
            / (CACHE_IC_ENERGY_PJ[level] + CACHE_ACCESS_ENERGY_PJ[level]),
        }
        for level in ("L1-D", "L2", "L3-slice")
    ]


def table3_rows(config: MachineConfig | None = None) -> list[dict[str, int | str]]:
    """Table III: geometry and operand-locality constraints."""
    cfg = config or sandybridge_8core()
    rows = []
    for level in (cfg.l1d, cfg.l2, cfg.l3_slice):
        rows.append({
            "cache": level.name,
            "banks": level.banks,
            "BP": level.bps_per_bank,
            "block size": level.block_size,
            "min address bits match": level.min_locality_bits,
        })
    assert {r["cache"]: r["min address bits match"] for r in rows} == validate_table3(cfg)
    return rows


def table5_rows() -> list[dict[str, float | str]]:
    """Table V: cache energy per 64-byte block operation."""
    rows = []
    for level in ("L3-slice", "L2", "L1-D"):
        row: dict[str, float | str] = {"cache": level}
        row.update(CC_OP_ENERGY_PJ[level])
        rows.append(row)
    return rows

