"""Benchmark harnesses regenerating every table and figure of the paper.

Each function returns structured rows mirroring one exhibit of the
evaluation (Section VI); ``benchmarks/`` wraps them in pytest-benchmark
entries that print the same series the paper plots and assert the *shape*
of the results (who wins, by roughly what factor, in what order).

==================  ==========================================================
Exhibit             Harness
==================  ==========================================================
Table I             :func:`repro.bench.microbench.table1_rows`
Table III           :func:`repro.bench.microbench.table3_rows`
Table V             :func:`repro.bench.microbench.table5_rows`
Figure 3 (top)      :func:`repro.bench.microbench.figure3_energy_proportions`
Figure 7 (a-c)      :func:`repro.bench.microbench.figure7`
Figure 8 (a)        :func:`repro.bench.microbench.figure8a_inplace_vs_nearplace`
Figure 8 (b)        :func:`repro.bench.microbench.figure8b_levels`
Figure 9 (a, b)     :func:`repro.bench.appbench.figure9`
Figure 10           :func:`repro.bench.checkpointbench.figure10_overheads`
Figure 11           :func:`repro.bench.checkpointbench.figure11_energy`
==================  ==========================================================
Every harness submits its (machine config × workload) grid through
:mod:`repro.bench.runner` — a process-pool execution engine with an
on-disk result cache keyed by content hash — via point functions
registered in :mod:`repro.bench.points`.  See ``docs/benchmarks.md``
for the workflow (``--jobs``, ``--no-cache``, cache-key semantics).
"""

from . import (
    appbench,
    checkpointbench,
    crypto,
    microbench,
    points,
    report,
    runner,
    suites,
    sweeps,
)

__all__ = ["appbench", "checkpointbench", "crypto", "microbench", "points",
           "report", "runner", "suites", "sweeps"]
