"""Simulation-point functions: the unit of work the sweep runner executes.

The paper's evaluation is an embarrassingly parallel grid — every figure
and sweep simulates many independent (machine config × workload) points.
A *point function* is one cell of that grid as a module-level callable
that

* takes only JSON-serializable keyword arguments (so a point can be
  content-hashed into a cache key and shipped to a worker process), and
* returns only JSON-serializable data (so the result can be cached on
  disk and reloaded bit-identically).

Functions register under a short name in :data:`POINT_FUNCTIONS`; the
runner submits ``Point(fn="kernel", kwargs={...})`` descriptors and the
worker side resolves the name back to the callable — names, not
closures, cross the process boundary, which keeps every
``multiprocessing`` start method working.

The figure harnesses (:mod:`repro.bench.microbench`,
:mod:`~repro.bench.appbench`, :mod:`~repro.bench.checkpointbench`,
:mod:`~repro.bench.sweeps`) build their exhibits from these points and
rebuild their legacy result objects (e.g.
:class:`~repro.bench.microbench.KernelMeasurement`) with
:func:`measurement_from_point`.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Callable

from ..config_io import config_from_dict
from ..energy.accounting import EnergyLedger

POINT_FUNCTIONS: dict[str, Callable[..., dict[str, Any]]] = {}

#: Fixed workload seeds (exported in the results-JSON provenance header):
#: every stochastic input in the evaluation grid is derived from one of
#: these, which is what makes simulation points deterministic and
#: therefore cacheable by content hash.
WORKLOAD_SEEDS = {
    "microbench-operands": 42,
    "wordcount-corpus": 101,
    "stringmatch-workload": 102,
    "bmm-matrices": 103,
    "bitmap-dataset": 104,
    "bitmap-query-mix": 105,
    "qdnn-network": 106,
    "streambw-arrays": 107,
    "crypto-workload": 108,
    "wordline-sweep": 2024,
}


def point_function(name: str):
    """Register a point function under ``name`` in :data:`POINT_FUNCTIONS`."""

    def register(fn):
        POINT_FUNCTIONS[name] = fn
        return fn

    return register


# -- kernel micro-benchmark points -----------------------------------------------------


@point_function("kernel")
def kernel_point(kernel: str, config: str, size: int = 4096,
                 level: str = "L3",
                 machine: dict[str, Any] | None = None,
                 backend: str | None = None,
                 seed: int = 42) -> dict[str, Any]:
    """One (kernel, configuration) micro-benchmark measurement.

    ``machine`` is an optional machine-config document
    (:func:`repro.config_io.config_to_dict` form) for sweep points that
    vary the hardware; ``None`` means the paper's Table IV machine.
    ``backend`` overrides the execution backend and ``seed`` the
    operand-staging data; both enter the cache key only when a spec
    carries them explicitly (see ``kernel_point_spec``).
    """
    from .microbench import run_kernel

    machine_config = config_from_dict(machine) if machine is not None else None
    meas = run_kernel(kernel, config, size=size, level=level,
                      machine_config=machine_config, backend=backend,
                      seed=seed)
    return {
        "kernel": meas.kernel,
        "config": meas.config,
        "cycles": meas.cycles,
        "steady_cycles": meas.steady_cycles,
        "instructions": meas.instructions,
        "bytes_processed": meas.bytes_processed,
        "dynamic_pj": dict(meas.dynamic.pj),
        "total_energy_nj": meas.total_energy_nj,
    }


def measurement_from_point(doc: dict[str, Any]):
    """Rebuild a :class:`~repro.bench.microbench.KernelMeasurement` from a
    ``kernel`` point result (exact: the ledger is a plain pJ dict and
    floats survive the JSON round trip bit-identically)."""
    from .microbench import KernelMeasurement

    return KernelMeasurement(
        kernel=doc["kernel"],
        config=doc["config"],
        cycles=doc["cycles"],
        steady_cycles=doc["steady_cycles"],
        instructions=doc["instructions"],
        dynamic=EnergyLedger(dict(doc["dynamic_pj"])),
        total_energy_nj=doc["total_energy_nj"],
        bytes_processed=doc["bytes_processed"],
    )


# -- application points (Figure 9) -----------------------------------------------------


@point_function("app")
def app_point(app: str, scale: float = 1.0,
              backend: str | None = None,
              seed: int | None = None) -> dict[str, Any]:
    """One Figure 9 application, baseline vs CC, reduced to plain data.

    The size mapping per ``scale`` mirrors what
    :func:`repro.bench.appbench.figure9` has always used.  ``backend``
    overrides the execution backend; ``seed`` replaces the app's fixed
    workload seed (:data:`WORKLOAD_SEEDS`).
    """
    from . import appbench

    if app == "wordcount":
        comp = appbench.bench_wordcount(n_words=int(6000 * scale),
                                        backend=backend, seed=seed)
    elif app == "stringmatch":
        comp = appbench.bench_stringmatch(n_words=max(256, int(4096 * scale)),
                                          backend=backend, seed=seed)
    elif app == "bmm":
        comp = appbench.bench_bmm(n=256 if scale >= 1.0 else 128,
                                  backend=backend, seed=seed)
    elif app == "db-bitmap":
        comp = appbench.bench_bitmap(n_rows=max(1 << 14, int((1 << 17) * scale)),
                                     backend=backend, seed=seed)
    elif app == "qdnn":
        comp = appbench.bench_qdnn(h=32 if scale >= 1.0 else 16,
                                   w=32 if scale >= 1.0 else 16,
                                   backend=backend, seed=seed)
    else:
        raise ValueError(f"unknown application {app!r}")
    return {
        "app": comp.app,
        "speedup": comp.speedup,
        "instruction_reduction": comp.instruction_reduction,
        "total_energy_ratio": comp.total_energy_ratio,
        "outputs_match": comp.outputs_match,
        "baseline_cycles": comp.baseline.cycles,
        "cc_cycles": comp.cc.cycles,
        "baseline_instructions": comp.baseline.instructions,
        "cc_instructions": comp.cc.instructions,
        "baseline_total_nj": comp.baseline_total_nj,
        "cc_total_nj": comp.cc_total_nj,
    }


# -- STREAM bandwidth points (repro streambw) ------------------------------------------


@point_function("streambw")
def streambw_point(kernel: str, variant: str = "scalar",
                   clusters: int = 1, cores_per_cluster: int = 2,
                   words: int = 1024, placement: str = "hub",
                   inter_hop_latency: int = 24,
                   machine: dict[str, Any] | None = None,
                   backend: str | None = None,
                   seed: int = 107) -> dict[str, Any]:
    """One verified STREAM bandwidth measurement on a multi-cluster
    machine (:func:`repro.apps.streambw.run_streambw`).

    ``machine`` optionally replaces the ``multi_cluster`` test machine
    with an explicit config document; the ``clusters``/``cores_per_
    cluster``/``inter_hop_latency`` knobs are ignored when it is given.
    """
    from ..apps.streambw import run_streambw
    from ..machine import ComputeCacheMachine
    from ..params import multi_cluster

    if machine is not None:
        config = config_from_dict(machine)
    else:
        config = multi_cluster(clusters, cores_per_cluster,
                               inter_hop_latency=inter_hop_latency)
    m = ComputeCacheMachine(config, backend=backend)
    res = run_streambw(kernel, m, variant=variant, words=words,
                       placement=placement, seed=seed)
    doc = dict(res.stats)
    doc["instructions"] = res.instructions
    doc["dynamic_pj"] = dict(res.energy.pj)
    return doc


# -- crypto points (repro bench crypto) ------------------------------------------------


@point_function("crypto")
def crypto_point(kernel: str, variant: str = "cc",
                 ghash_blocks: int = 64, crc_bytes: int = 1024,
                 ntt_n: int = 128, ntt_q: int = 8192,
                 machine: dict[str, Any] | None = None,
                 backend: str | None = None,
                 seed: int = 108) -> dict[str, Any]:
    """One verified crypto-kernel measurement
    (:func:`repro.apps.crypto.run_crypto`): ``ghash``/``crc32``/``crc64``/
    ``ntt`` in the ``cc`` or ``scalar`` variant, reduced to plain data
    plus the canonical output digest (the cross-backend identity probe).

    ``machine`` optionally replaces the paper's Table IV machine with an
    explicit config document.
    """
    from ..apps.crypto import CryptoConfig, output_digest, run_crypto
    from ..machine import ComputeCacheMachine
    from ..params import sandybridge_8core

    config = (config_from_dict(machine) if machine is not None
              else sandybridge_8core())
    m = ComputeCacheMachine(config, backend=backend)
    cfg = CryptoConfig(seed=seed, ghash_blocks=ghash_blocks,
                       crc_bytes=crc_bytes, ntt_n=ntt_n, ntt_q=ntt_q)
    res = run_crypto(kernel, variant, machine=m, cfg=cfg)
    return {
        "kernel": kernel,
        "variant": variant,
        "cycles": res.cycles,
        "instructions": res.instructions,
        "cc_instructions": int(res.stats.get("cc_instructions", 0)),
        "dynamic_pj": dict(res.energy.pj),
        "total_nj": m.total_energy(res.energy, res.cycles).total,
        "matches_reference": bool(res.stats["matches_reference"]),
        "output_digest": output_digest(res),
    }


# -- checkpointing points (Figures 10 and 11) ------------------------------------------


@point_function("checkpoint")
def checkpoint_point(benchmark: str, intervals: int = 2,
                     backend: str | None = None) -> dict[str, Any]:
    """All engines for one SPLASH-2 profile: overheads (Figure 10) and
    total energies (Figure 11) from a single set of runs — the two
    figures share this point, so regenerating both simulates each
    benchmark once."""
    from .checkpointbench import ENGINES, run_benchmark

    comp = run_benchmark(benchmark, intervals, backend=backend)
    return {
        "benchmark": benchmark,
        "intervals": intervals,
        "overheads": {engine: comp.overhead(engine) for engine in ENGINES},
        "energy": {
            "no_chkpt": comp.total_energy_nj("none"),
            **{engine: comp.total_energy_nj(engine) for engine in ENGINES},
        },
    }


# -- runner self-test point ------------------------------------------------------------


@point_function("selftest")
def selftest_point(value: int = 0, sleep_in_worker_s: float = 0.0,
                   fail: bool = False) -> dict[str, Any]:
    """Deterministic toy point for exercising the runner itself.

    ``sleep_in_worker_s`` only sleeps inside a pool *worker* process
    (detected via ``multiprocessing.parent_process``), so the runner's
    timeout → retry → serial-fallback path can be tested: the parallel
    attempts time out, then the in-process serial fallback returns
    instantly.
    """
    if fail:
        raise ValueError(f"selftest point asked to fail (value={value})")
    if sleep_in_worker_s and multiprocessing.parent_process() is not None:
        time.sleep(sleep_in_worker_s)
    return {"value": value, "doubled": 2 * value}


@point_function("sleep")
def sleep_point(seconds: float = 0.0, value: int = 0) -> dict[str, Any]:
    """Deterministic-result point that burns real wall-clock time.

    Unlike ``selftest``'s ``sleep_in_worker_s`` this sleeps in *any*
    process, so the service layer's per-job timeout path — which executes
    points on in-process threads — can be exercised, and ``repro
    loadgen`` can emulate arbitrarily heavy jobs while keeping the result
    (and therefore the dedup/cache behaviour) exact.
    """
    if seconds:
        time.sleep(seconds)
    return {"value": value, "slept_s": seconds}
