"""Crypto workload sweep: ``repro bench crypto`` -> ``BENCH_crypto.json``.

One sweep covers the paper-relevant story for the crypto suite
(:mod:`repro.apps.crypto`):

* every kernel (GHASH, CRC32, CRC64, negacyclic NTT multiply) in both
  the CC lowering and the scalar-CPU baseline on the Table IV machine,
  reduced to latency/energy ratios (schema ``repro.crypto/1``);
* a packed-vs-bitexact output-digest identity check per kernel (the
  same probe the differential harness uses, at check scale);
* the silent-error resilience section: every kernel replayed under the
  PR 4 machine-fault campaign (SRAM strikes, pin steals, fetch
  timeouts, directory faults) via
  :func:`repro.apps.crypto.run_crypto_campaign`, reporting detected vs
  silent corruption with the kernel's own integrity oracle
  (tag/checksum/recomputation) as the last line of defense.

The ``contract`` section is the CI gate: bit-exact outputs everywhere,
zero silent corruptions, CC wins latency *and* total energy on the
GF(2) kernels, and the NTT — which trades a bounded bit-serial energy
premium for a large latency win, like the qdnn suite — clears a
speedup floor while staying above a total-energy floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..apps.crypto import CRYPTO_KERNELS, CryptoConfig, run_crypto_campaign
from ..errors import ReproError
from ..params import BACKENDS
from .microbench import _resolve_runner
from .report import bench_document
from .runner import Point

CRYPTO_SCHEMA = "repro.crypto/1"

#: GF(2)-linear kernels where the clmul fold must beat the scalar
#: baseline on both axes (the paper's bulk-bitwise sweet spot).
GF2_KERNELS = ("ghash", "crc32", "crc64")


@dataclass(frozen=True)
class CryptoSweepConfig:
    """Grid + contract knobs for the crypto sweep."""

    kernels: tuple[str, ...] = CRYPTO_KERNELS
    ghash_blocks: int = 64
    crc_bytes: int = 1024
    ntt_n: int = 128
    ntt_q: int = 8192
    seed: int = 108
    backends: tuple[str, ...] = BACKENDS
    #: Smaller sizes for the cross-backend identity probe (the bitexact
    #: backend simulates bit-serial loops; full scale would dominate the
    #: sweep's wall-clock without changing the verdict).
    check_ghash_blocks: int = 8
    check_crc_bytes: int = 128
    check_ntt_n: int = 32
    #: Fault campaign: plan seed and CC-instruction pulse period.
    fault_seed: int = 0
    pulse_every: int = 8
    run_faults: bool = True
    #: Contract floors.  GF(2) kernels must win outright; the NTT is
    #: latency-led with a bounded bit-serial energy premium (same
    #: narrative the qdnn suite pins in benchmarks/test_neural_cache.py).
    gf2_speedup_floor: float = 1.0
    gf2_energy_floor: float = 1.0
    ntt_speedup_floor: float = 2.0
    ntt_energy_floor: float = 0.25


def crypto_point_spec(kernel: str, variant: str, cfg: CryptoSweepConfig,
                      backend: str | None = None,
                      check_scale: bool = False) -> Point:
    """The :class:`~repro.bench.runner.Point` for one sweep cell."""
    kwargs: dict[str, Any] = {
        "kernel": kernel,
        "variant": variant,
        "ghash_blocks": (cfg.check_ghash_blocks if check_scale
                         else cfg.ghash_blocks),
        "crc_bytes": cfg.check_crc_bytes if check_scale else cfg.crc_bytes,
        "ntt_n": cfg.check_ntt_n if check_scale else cfg.ntt_n,
        "ntt_q": cfg.ntt_q,
        "seed": cfg.seed,
    }
    if backend is not None:
        kwargs["backend"] = backend
    return Point(fn="crypto", kwargs=kwargs,
                 label=f"crypto/{kernel}/{variant}"
                       + (f"@{backend}" if backend else ""))


def backend_identity_check(cfg: CryptoSweepConfig,
                           runner=None) -> dict[str, Any]:
    """Per-kernel output digests of the CC lowering on every backend —
    they must agree bit-for-bit (check scale)."""
    runner = _resolve_runner(runner)
    cells = [(kernel, backend) for kernel in cfg.kernels
             for backend in cfg.backends]
    docs = runner.run([crypto_point_spec(kernel, "cc", cfg, backend=backend,
                                         check_scale=True)
                       for kernel, backend in cells])
    digests: dict[str, dict[str, str]] = {}
    for (kernel, backend), doc in zip(cells, docs):
        digests.setdefault(kernel, {})[backend] = doc["output_digest"]
    return {
        "backends": list(cfg.backends),
        "digests": digests,
        "identical": all(len(set(per.values())) == 1
                         for per in digests.values()),
    }


def _ratio(numer: float, denom: float) -> float:
    return numer / denom if denom else 0.0


def run_crypto_sweep(cfg: CryptoSweepConfig | None = None,
                     runner=None,
                     backend: str | None = None) -> dict[str, Any]:
    """Run the sweep; returns the ``BENCH_crypto.json`` document."""
    cfg = cfg or CryptoSweepConfig()
    for kernel in cfg.kernels:
        if kernel not in CRYPTO_KERNELS:
            raise ReproError(f"unknown crypto kernel {kernel!r} "
                             f"(expected one of {CRYPTO_KERNELS})")
    runner = _resolve_runner(runner)

    cells = [(kernel, variant) for kernel in cfg.kernels
             for variant in ("cc", "scalar")]
    docs = runner.run([crypto_point_spec(kernel, variant, cfg,
                                         backend=backend)
                       for kernel, variant in cells])
    by_cell = {cell: doc for cell, doc in zip(cells, docs)}

    kernels_doc: dict[str, Any] = {}
    for kernel in cfg.kernels:
        cc = by_cell[(kernel, "cc")]
        scalar = by_cell[(kernel, "scalar")]
        dyn_cc = sum(cc["dynamic_pj"].values())
        dyn_scalar = sum(scalar["dynamic_pj"].values())
        kernels_doc[kernel] = {
            "cc": cc,
            "scalar": scalar,
            "speedup": _ratio(scalar["cycles"], cc["cycles"]),
            "instruction_reduction":
                1 - _ratio(cc["instructions"], scalar["instructions"]),
            "dynamic_energy_ratio": _ratio(dyn_scalar, dyn_cc),
            "total_energy_ratio": _ratio(scalar["total_nj"], cc["total_nj"]),
            "outputs_match": bool(cc["matches_reference"]
                                  and scalar["matches_reference"]),
        }

    backends_check = backend_identity_check(cfg, runner=runner)

    faults_doc: dict[str, Any] = {}
    if cfg.run_faults:
        from ..apps.crypto import crypto_plan

        plan = crypto_plan(cfg.fault_seed)
        for kernel in cfg.kernels:
            faults_doc[kernel] = run_crypto_campaign(
                kernel, plan=plan, backend=backend,
                pulse_every=cfg.pulse_every)

    failures: list[str] = []
    for kernel, entry in kernels_doc.items():
        if not entry["outputs_match"]:
            failures.append(f"{kernel}: output diverged from the reference")
        speedup_floor = (cfg.ntt_speedup_floor if kernel == "ntt"
                         else cfg.gf2_speedup_floor)
        energy_floor = (cfg.ntt_energy_floor if kernel == "ntt"
                        else cfg.gf2_energy_floor)
        if entry["speedup"] < speedup_floor:
            failures.append(
                f"{kernel}: CC speedup {entry['speedup']:.2f}x below the "
                f"{speedup_floor:.2f}x floor")
        if entry["total_energy_ratio"] < energy_floor:
            failures.append(
                f"{kernel}: total-energy ratio "
                f"{entry['total_energy_ratio']:.2f} below the "
                f"{energy_floor:.2f} floor")
    if not backends_check["identical"]:
        failures.append("packed and bitexact backends disagree on a "
                        "kernel output digest")
    for kernel, campaign in faults_doc.items():
        if campaign["silent"]:
            failures.append(f"{kernel}: {campaign['silent']} silent "
                            f"corruption(s) under the fault campaign")
        if not campaign["faulty_matches_reference"]:
            failures.append(f"{kernel}: faulty run's output failed its own "
                            "integrity oracle")

    return bench_document(
        CRYPTO_SCHEMA,
        {
            "kernels": list(cfg.kernels),
            "ghash_blocks": cfg.ghash_blocks,
            "crc_bytes": cfg.crc_bytes,
            "ntt_n": cfg.ntt_n,
            "ntt_q": cfg.ntt_q,
            "seed": cfg.seed,
            "backends": list(cfg.backends),
            "fault_seed": cfg.fault_seed,
            "pulse_every": cfg.pulse_every,
        },
        kernels=kernels_doc,
        checks={"backends": backends_check},
        faults=faults_doc,
        contract={
            "gf2_speedup_floor": cfg.gf2_speedup_floor,
            "gf2_energy_floor": cfg.gf2_energy_floor,
            "ntt_speedup_floor": cfg.ntt_speedup_floor,
            "ntt_energy_floor": cfg.ntt_energy_floor,
            "passed": not failures,
            "failures": failures,
        },
    )


def summarize(doc: dict[str, Any]) -> str:
    """Human-readable digest of a ``BENCH_crypto.json`` document."""
    lines = ["crypto kernels, CC vs scalar CPU (Table IV machine):"]
    for kernel, entry in doc["kernels"].items():
        lines.append(
            f"  {kernel:6s} speedup={entry['speedup']:6.2f}x  "
            f"total-energy ratio={entry['total_energy_ratio']:5.2f}  "
            f"instr reduction={entry['instruction_reduction']:6.1%}  "
            f"outputs match={entry['outputs_match']}")
    checks = doc["checks"]["backends"]
    lines.append(f"  cross-backend digests identical: {checks['identical']} "
                 f"({', '.join(checks['backends'])})")
    if doc["faults"]:
        lines.append("fault campaign (detected / injected, silent):")
        for kernel, campaign in doc["faults"].items():
            lines.append(
                f"  {kernel:6s} detected={campaign['detected_total']:3d} / "
                f"injected={campaign['injected_total']:3d}  "
                f"silent={campaign['silent']}  "
                f"oracle={campaign['oracle']}")
    verdict = "PASS" if doc["contract"]["passed"] else "FAIL"
    lines.append(f"contract: {verdict}")
    return "\n".join(lines)
