"""Cross-validation: analytic CC timing vs a discrete-event simulation.

The controller computes in-place makespans analytically (issue
serialization + busiest-partition chain).  This module re-derives the same
quantity with a cycle-stepped event simulation of the actual resources -
the shared command bus and one busy-flag per sub-array - so the analytic
formula can be *proven* equal (not just plausible) across random operation
mixes.

Model being validated (Section IV-D):

* one block command leaves the controller per cycle (the H-tree address
  bus is not replicated);
* the controller issues *out of order from the operation table*: any
  pending operation whose target sub-array is free may take the bus slot
  (this is precisely what the operation table is for - no head-of-line
  blocking behind a busy sub-array);
* each operation occupies its sub-array for ``op_latency`` cycles;
* the instruction completes when the last operation finishes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError


@dataclass(frozen=True)
class EventSimResult:
    makespan: int
    issue_stalls: int
    per_partition_finish: dict[int, int]


def simulate_inplace_schedule(partition_of_op: list[int], op_latency: int,
                              commands_per_cycle: int = 1) -> EventSimResult:
    """Cycle-stepped simulation of one instruction's in-place block ops.

    ``partition_of_op[i]`` is the sub-array (block partition) op *i*
    targets, in controller issue order.
    """
    if op_latency < 1:
        raise ReproError("op latency must be at least one cycle")
    pending = list(partition_of_op)
    busy_until: dict[int, int] = {}
    finish: dict[int, int] = {}
    cycle = 0
    issue_stalls = 0
    while pending:
        slots = commands_per_cycle
        issued_any = False
        i = 0
        while i < len(pending) and slots:
            partition = pending[i]
            if busy_until.get(partition, 0) <= cycle:
                busy_until[partition] = cycle + op_latency
                finish[partition] = cycle + op_latency
                pending.pop(i)
                slots -= 1
                issued_any = True
            else:
                i += 1
        if not issued_any and pending:
            issue_stalls += 1
        cycle += 1
    makespan = max(finish.values(), default=0)
    return EventSimResult(makespan=makespan, issue_stalls=issue_stalls,
                          per_partition_finish=finish)


def analytic_makespan(partition_of_op: list[int], op_latency: int,
                      commands_per_cycle: int = 1) -> float:
    """The controller's closed form: issue time + busiest-partition chain.

    Exact when ops are issued partition-round-robin (the layout consecutive
    cache blocks produce); an upper bound under adversarial orderings is
    ``issue + busiest * latency`` which this returns.
    """
    if not partition_of_op:
        return 0.0
    n_ops = len(partition_of_op)
    issue = -(-n_ops // commands_per_cycle)  # ceil
    busiest = max(partition_of_op.count(p) for p in set(partition_of_op))
    return issue + busiest * op_latency


def validate_schedule(partition_of_op: list[int], op_latency: int = 14,
                      commands_per_cycle: int = 1) -> dict[str, float]:
    """Run both models; returns their makespans and the gap."""
    event = simulate_inplace_schedule(partition_of_op, op_latency,
                                      commands_per_cycle)
    closed = analytic_makespan(partition_of_op, op_latency, commands_per_cycle)
    return {
        "event_makespan": float(event.makespan),
        "analytic_makespan": closed,
        "gap": closed - event.makespan,
        "issue_stalls": float(event.issue_stalls),
    }


def round_robin_partitions(n_ops: int, n_partitions: int) -> list[int]:
    """The schedule consecutive cache blocks produce: blocks walk the
    partitions cyclically (consecutive sets -> consecutive banks/BPs)."""
    return [i % n_partitions for i in range(n_ops)]
