"""Parameter sweeps beyond the paper's fixed 4 KB operating point.

The paper evaluates 4 KB operands on one machine; these sweeps map out the
design space around that point:

* :func:`operand_size_sweep` - where the CC advantage grows/saturates as
  operands scale from one block to the 16 KB ISA limit;
* :func:`partition_parallelism_sweep` - how the number of block partitions
  (sub-arrays) bounds in-place throughput, the crossover that motivates
  hundreds of sub-arrays per LLC;
* :func:`wordline_activation_sweep` - circuit headroom: multi-row
  activation up to the 64-word-line limit Jeloka et al. demonstrated.

The two simulation-backed sweeps (operand size, partition parallelism)
submit their grid through :mod:`repro.bench.runner` — pass ``runner=``
for parallel/cached execution; the analytic sweeps (word-line, NoC) run
inline since each costs microseconds.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..config_io import config_to_dict
from ..errors import ActivationLimitError
from ..params import CacheLevelConfig, MachineConfig, sandybridge_8core
from ..sram import BitCellArray
from .microbench import _resolve_runner, kernel_point_spec
from .points import measurement_from_point


def operand_size_sweep(kernel: str = "logical",
                       sizes: tuple[int, ...] = (64, 256, 1024, 4096, 16384),
                       runner=None,
                       backend: str | None = None,
                       seed: int | None = None) -> list[dict[str, float]]:
    """CC-vs-Base_32 gain as a function of operand size."""
    runner = _resolve_runner(runner)
    docs = runner.run([kernel_point_spec(kernel, config, size,
                                         backend=backend, seed=seed)
                       for size in sizes for config in ("base32", "cc")])
    rows = []
    for i, size in enumerate(sizes):
        base = measurement_from_point(docs[2 * i])
        cc = measurement_from_point(docs[2 * i + 1])
        rows.append({
            "size": size,
            "base32_cycles": base.cycles,
            "cc_cycles": cc.cycles,
            "throughput_gain": base.steady_cycles / cc.steady_cycles,
            "dynamic_saving": 1 - cc.dynamic.total() / base.dynamic.total(),
        })
    return rows


def partition_parallelism_sweep(
    kernel: str = "copy",
    bps_options: tuple[int, ...] = (1, 2, 4),
    size: int = 4096,
    runner=None,
    backend: str | None = None,
    seed: int | None = None,
) -> list[dict[str, float]]:
    """In-place makespan vs the number of block partitions per bank.

    More partitions = more sub-arrays computing concurrently; with few
    partitions the per-partition serial chain (14 cycles per op) dominates.
    Each machine variant is one runner point whose cache key covers the
    modified config document.
    """
    runner = _resolve_runner(runner)
    variants = []
    for bps in bps_options:
        base_cfg = sandybridge_8core()
        l3 = CacheLevelConfig(
            name="L3-slice", size=base_cfg.l3_slice.size,
            ways=base_cfg.l3_slice.ways, banks=base_cfg.l3_slice.banks,
            bps_per_bank=bps, hit_latency=base_cfg.l3_slice.hit_latency,
        )
        variants.append((bps, l3, replace(base_cfg, l3_slice=l3)))
    docs = runner.run([
        kernel_point_spec(kernel, "cc", size, machine=config_to_dict(cfg),
                          backend=backend, seed=seed)
        for _, _, cfg in variants
    ])
    rows = []
    for (bps, l3, _), doc in zip(variants, docs):
        cc = measurement_from_point(doc)
        rows.append({
            "bps_per_bank": bps,
            "partitions": l3.num_partitions,
            "cc_compute_cycles": cc.steady_cycles,
            "throughput_bytes_per_cycle": cc.throughput_bytes_per_cycle,
        })
    return rows


def wordline_activation_sweep(max_rows: int = 64,
                              cols: int = 512) -> list[dict[str, object]]:
    """Multi-row AND/NOR correctness up to the activation limit.

    Jeloka et al. measured no corruption up to 64 simultaneous word-lines;
    the model enforces the same limit and this sweep demonstrates both the
    correct algebra below it and the hard stop above it.
    """
    rng = np.random.default_rng(2024)
    rows_out: list[dict[str, object]] = []
    for n in (2, 4, 8, 16, 32, 64):
        arr = BitCellArray(rows=max(n, 64) + 1, cols=cols, max_activated=max_rows)
        data = rng.integers(0, 2, size=(n, cols)).astype(bool)
        for i in range(n):
            arr.write_row(i, data[i])
        bl, blb = arr.activate(list(range(n)))
        ok = bool(
            (bl == data.all(axis=0)).all() and (blb == ~data.any(axis=0)).all()
        )
        rows_out.append({"rows_activated": n, "algebra_exact": ok})
    over_limit = False
    try:
        arr = BitCellArray(rows=max_rows + 2, cols=cols, max_activated=max_rows)
        arr.activate(list(range(max_rows + 1)))
    except ActivationLimitError:
        over_limit = True
    rows_out.append({"rows_activated": max_rows + 1, "algebra_exact": None,
                     "rejected": over_limit})
    return rows_out


def noc_distance_sweep(config: MachineConfig | None = None) -> list[dict[str, float]]:
    """Ring energy/latency vs hop distance - the data-movement term CC
    eliminates entirely for L3-resident operands."""
    from ..cache.ring import RingInterconnect

    cfg = config or sandybridge_8core()
    ring = RingInterconnect(cfg.ring)
    rows = []
    for distance in range(cfg.ring.stops // 2 + 1):
        rows.append({
            "hops": distance,
            "block_latency_cycles": ring.latency(0, distance, data=True),
            "block_energy_pj": ring.block_transfer_energy(0, distance),
        })
    return rows
