"""Registry of benchmark suites behind the ``repro bench`` dispatcher.

PRs 1-9 grew one top-level subcommand per benchmark suite (``fig7``,
``fig9``, ``speed``, ``streambw``, ``qdnn``, ...), each re-declaring its
own flag handling.  This registry collapses that sprawl: every suite is
a :class:`BenchSuite` entry — name, help line, suite-specific flags
(:attr:`BenchSuite.configure`), default output document, and the command
implementation — and the CLI generates both the ``repro bench <suite>``
subparsers *and* the deprecated legacy aliases from it, so every suite
shares one flag set (``--jobs/--no-cache/--cache-dir/--backend/
--trace-events/--seed/--out``) by construction.

:func:`bench_suites` is the stable, read-only view exported through
:mod:`repro.api`.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable


def _cli_command(name: str) -> Callable:
    """Resolve a command implementation in :mod:`repro.cli` lazily (the
    CLI imports this module to build its parser, so the reference must
    not be evaluated at import time)."""

    def run(args: argparse.Namespace) -> None:
        from .. import cli

        getattr(cli, name)(args)

    return run


@dataclass(frozen=True)
class BenchSuite:
    """One benchmark suite reachable as ``repro bench <name>``.

    ``out_default`` names the suite's benchmark document
    (``BENCH_*.json``); ``None`` marks a print-only suite, for which
    ``--out`` tees the rendered report to a file instead.
    """

    name: str
    help: str
    run: Callable[[argparse.Namespace], None]
    configure: Callable[[argparse.ArgumentParser], None] | None = None
    out_default: str | None = None


def _configure_size(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--size", type=int, default=4096,
                        help="operand bytes (default 4096)")


def _configure_scale_half(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload scale factor (1.0 = bench scale)")


def _configure_qdnn(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (1.0 = 32x32 input)")


def _configure_intervals(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--intervals", type=int, default=1)


def _configure_sweeps(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kernel", default="logical",
                        help="kernel for the operand-size sweep")


def _configure_speed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kernel", default="xor",
                        choices=("and", "or", "xor", "not", "copy", "buz",
                                 "cmp"),
                        help="CC kernel shape to stream (default xor)")
    parser.add_argument("--size", type=int, default=4096,
                        help="bytes per operand (default 4096, fig7 scale)")
    parser.add_argument("--instructions", type=int, default=32,
                        help="distinct disjoint-operand instructions per pass")
    parser.add_argument("--passes", type=int, default=4,
                        help="timed re-issues of the whole stream")
    parser.add_argument("--window", type=int, default=8,
                        help="stream fusion window (default 8)")
    parser.add_argument("--backends", default="packed,bitexact",
                        metavar="A,B",
                        help="comma-separated backends to measure (ignored "
                             "when --backend picks a single one)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        metavar="X",
                        help="fail (exit 1) if stream speedup over the "
                             "sequential path falls below X on any backend")
    parser.add_argument("--baseline", metavar="BENCH_speed.json",
                        default=None,
                        help="committed baseline document to regress against")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional instructions/sec regression "
                             "vs --baseline (default 0.2)")


def _configure_streambw(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kernels", default="copy,scale,add,triad",
                        metavar="K,K",
                        help="comma-separated kernels (default: the four "
                             "STREAM kernels; gather/scatter run "
                             "scalar-only)")
    parser.add_argument("--clusters", default="1,2,4", metavar="N,N",
                        help="cluster counts to sweep (default 1,2,4)")
    parser.add_argument("--cores-per-cluster", type=int, default=2,
                        help="cores (= ring stops = L3 slices) per cluster")
    parser.add_argument("--words", type=int, default=1024,
                        help="uint32 elements per array per core "
                             "(default 1024)")
    parser.add_argument("--placement", choices=("hub", "local"),
                        default="hub",
                        help="page placement: hub homes every page on "
                             "cluster 0 (NUMA stress); local homes pages "
                             "core-locally")
    parser.add_argument("--inter-hop-latency", type=int, default=24,
                        help="cluster-ring hop latency in cycles "
                             "(default 24)")
    parser.add_argument("--check-words", type=int, default=256,
                        help="array size for the flat-ring and "
                             "cross-backend bit-identity checks "
                             "(default 256)")


def _configure_crypto(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kernels", default="ghash,crc32,crc64,ntt",
                        metavar="K,K",
                        help="comma-separated crypto kernels (default: all)")
    parser.add_argument("--ghash-blocks", type=int, default=64,
                        help="16-byte GHASH message blocks (default 64)")
    parser.add_argument("--crc-bytes", type=int, default=1024,
                        help="CRC message bytes (default 1024)")
    parser.add_argument("--ntt-n", type=int, default=128,
                        help="negacyclic polynomial degree (default 128)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="fault-campaign plan seed (default 0)")
    parser.add_argument("--pulse-every", type=int, default=8,
                        help="fault pulse period in CC instructions")
    parser.add_argument("--no-faults", action="store_true",
                        help="skip the silent-error resilience section")


#: Every benchmark suite, in the order ``repro bench --help`` lists them.
BENCH_SUITES: dict[str, BenchSuite] = {
    suite.name: suite
    for suite in (
        BenchSuite("fig3", "Figure 3 energy proportions",
                   _cli_command("_cmd_fig3")),
        BenchSuite("fig7", "Figure 7 micro-benchmarks",
                   _cli_command("_cmd_fig7"), configure=_configure_size),
        BenchSuite("fig8", "Figure 8 in/near-place + levels",
                   _cli_command("_cmd_fig8"), configure=_configure_size),
        BenchSuite("fig9", "Figure 9 applications",
                   _cli_command("_cmd_fig9"),
                   configure=_configure_scale_half),
        BenchSuite("fig10", "Figure 10 checkpoint overheads",
                   _cli_command("_cmd_fig10"),
                   configure=_configure_intervals),
        BenchSuite("fig11", "Figure 11 checkpoint energy",
                   _cli_command("_cmd_fig11"),
                   configure=_configure_intervals),
        BenchSuite("sweeps",
                   "design-space sweeps around the 4 KB operating point",
                   _cli_command("_cmd_sweeps"), configure=_configure_sweeps),
        BenchSuite("qdnn", "Neural Cache quantized-DNN benchmark",
                   _cli_command("_cmd_qdnn"), configure=_configure_qdnn),
        BenchSuite("speed",
                   "sustained simulator-throughput benchmark (sequential "
                   "vs stream scheduler; see docs/benchmarks.md)",
                   _cli_command("_cmd_speed"), configure=_configure_speed,
                   out_default="BENCH_speed.json"),
        BenchSuite("streambw",
                   "STREAM NUMA bandwidth sweep over cluster counts "
                   "(see docs/topology.md)",
                   _cli_command("_cmd_streambw"),
                   configure=_configure_streambw,
                   out_default="BENCH_streambw.json"),
        BenchSuite("crypto",
                   "crypto kernels on cc_clmul vs scalar CPU, with the "
                   "silent-error resilience study (see docs/crypto.md)",
                   _cli_command("_cmd_crypto"),
                   configure=_configure_crypto,
                   out_default="BENCH_crypto.json"),
    )
}


def bench_suites() -> dict[str, BenchSuite]:
    """The benchmark-suite registry behind ``repro bench <suite>`` —
    name -> :class:`BenchSuite` (a copy; mutating it does not affect the
    CLI)."""
    return dict(BENCH_SUITES)
