"""Application benchmark harness: Figure 9 (a) and (b).

Runs the four applications - WordCount, StringMatch, BMM, DB-BitMap - in
baseline and Compute Cache form at scaled-but-regime-preserving sizes (the
WordCount dictionary exceeds L2 so searches live in L3; BMM's packed BT
matrix fits L1; bitmap bins are hundreds of cache blocks), and reports:

* Figure 9(b): speedup of CC over the Base_32 baseline, and
* Figure 9(a): total-energy ratio (dynamic + leakage over the measured
  runtime, the paper's stacked bars).

Shape targets: all four speedups > 1, ordered BMM highest; instruction
reductions near the paper's 87% / 32% / 98% / 43%.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..apps import bitmap_db, bmm, qdnn, stringmatch, textgen, wordcount
from ..apps.common import AppResult, fresh_machine
from ..params import sandybridge_8core

APPS = ("wordcount", "stringmatch", "bmm", "db-bitmap")


@dataclass
class AppComparison:
    """Baseline-vs-CC measurement of one application."""

    app: str
    baseline: AppResult
    cc: AppResult
    baseline_total_nj: float
    cc_total_nj: float

    @property
    def speedup(self) -> float:
        return self.baseline.cycles / self.cc.cycles

    @property
    def instruction_reduction(self) -> float:
        return 1 - self.cc.instructions / self.baseline.instructions

    @property
    def total_energy_ratio(self) -> float:
        """Figure 9(a): baseline total energy / CC total energy."""
        return self.baseline_total_nj / self.cc_total_nj

    @property
    def outputs_match(self) -> bool:
        out_b, out_c = self.baseline.output, self.cc.output
        try:
            import numpy as np

            if isinstance(out_b, np.ndarray):
                return bool(np.array_equal(out_b, out_c))
        except ImportError:  # pragma: no cover
            pass
        if isinstance(out_b, list) and out_b and isinstance(out_b[0], tuple):
            return sorted(out_b) == sorted(out_c)
        return out_b == out_c


def _compare(app: str, run_baseline, run_cc,
             backend: str | None = None) -> AppComparison:
    config = sandybridge_8core()
    if backend is not None:
        config = replace(config, backend=backend)
    mb = fresh_machine(config)
    base = run_baseline(mb)
    base_total = mb.total_energy(base.energy, base.cycles).total
    mc = fresh_machine(config)
    cc = run_cc(mc)
    cc_total = mc.total_energy(cc.energy, cc.cycles).total
    return AppComparison(app=app, baseline=base, cc=cc,
                         baseline_total_nj=base_total, cc_total_nj=cc_total)


def bench_wordcount(n_words: int = 6000, vocab_size: int = 6000,
                    backend: str | None = None,
                    seed: int | None = None) -> AppComparison:
    """Dictionary of ~6000 x 64 B = 384 KB: larger than L2, L3-resident -
    the paper's regime (719 KB dictionary)."""
    corpus = textgen.zipf_corpus(101 if seed is None else seed, n_words,
                                 vocab_size=vocab_size)
    cfg = wordcount.WordCountConfig(n_bins=676, bin_capacity=16,
                                    dict_capacity=vocab_size + 64)
    return _compare(
        "wordcount",
        lambda m: wordcount.run_wordcount(corpus, "baseline", m, cfg),
        lambda m: wordcount.run_wordcount(corpus, "cc", m, cfg),
        backend=backend,
    )


def bench_stringmatch(n_words: int = 4096, n_keys: int = 4,
                      backend: str | None = None,
                      seed: int | None = None) -> AppComparison:
    workload = stringmatch.make_workload(102 if seed is None else seed,
                                         n_words, n_keys=n_keys,
                                         vocab_size=1500)
    return _compare(
        "stringmatch",
        lambda m: stringmatch.run_stringmatch(workload, "baseline", m),
        lambda m: stringmatch.run_stringmatch(workload, "cc", m),
        backend=backend,
    )


def bench_bmm(n: int = 256, backend: str | None = None,
              seed: int | None = None) -> AppComparison:
    """The paper's 256 x 256 bit matrices."""
    workload = bmm.make_matrices(103 if seed is None else seed, n=n)
    return _compare(
        "bmm",
        lambda m: bmm.run_bmm(workload, "baseline", m),
        lambda m: bmm.run_bmm(workload, "cc", m),
        backend=backend,
    )


def bench_bitmap(n_rows: int = 1 << 17, n_queries: int = 6,
                 backend: str | None = None,
                 seed: int | None = None) -> AppComparison:
    """16 KB bins (hundreds of cache blocks), OR-heavy query mix."""
    dataset = bitmap_db.make_dataset(104 if seed is None else seed,
                                     n_rows=n_rows, cardinalities=(16, 8))
    queries = bitmap_db.make_query_mix(
        dataset, 105 if seed is None else seed + 1, n_queries=n_queries)
    return _compare(
        "db-bitmap",
        lambda m: bitmap_db.run_bitmap_queries(dataset, queries, "baseline", m),
        lambda m: bitmap_db.run_bitmap_queries(dataset, queries, "cc", m),
        backend=backend,
    )


def bench_qdnn(h: int = 32, w: int = 32, n_out: int = 10,
               backend: str | None = None,
               seed: int | None = None) -> AppComparison:
    """Quantized DNN inference on the bit-serial arithmetic tier (the
    Neural Cache follow-on workload, not part of Figure 9): a 3x3
    convolution plus fully-connected layer, scalar loop nest vs
    ``cc_mul``/``cc_add``/``cc_reduce``."""
    workload = qdnn.make_network(106 if seed is None else seed,
                                 h=h, w=w, n_out=n_out)
    return _compare(
        "qdnn",
        lambda m: qdnn.run_qdnn(workload, "baseline", m),
        lambda m: qdnn.run_qdnn(workload, "cc", m),
        backend=backend,
    )


@dataclass(frozen=True)
class AppSummary:
    """JSON-round-trippable reduction of an :class:`AppComparison` —
    what an ``app`` simulation point returns through the sweep runner.
    Exposes the same derived metrics Figure 9's consumers read."""

    app: str
    speedup: float
    instruction_reduction: float
    total_energy_ratio: float
    outputs_match: bool
    baseline_cycles: float
    cc_cycles: float
    baseline_instructions: int
    cc_instructions: int
    baseline_total_nj: float
    cc_total_nj: float


def figure9(scale: float = 1.0, runner=None,
            backend: str | None = None,
            seed: int | None = None) -> dict[str, AppSummary]:
    """Figure 9 (a) and (b): all four applications, one runner point each
    (they simulate concurrently under ``--jobs``).

    ``scale`` < 1 shrinks workloads proportionally for quick runs; the
    per-application size mapping lives in
    :func:`repro.bench.points.app_point`.
    """
    from .microbench import _resolve_runner
    from .runner import Point

    runner = _resolve_runner(runner)
    extra = {}
    if backend is not None:
        extra["backend"] = backend
    if seed is not None:
        extra["seed"] = seed
    docs = runner.run([
        Point("app", {"app": app, "scale": scale, **extra}, label=f"fig9:{app}")
        for app in APPS
    ])
    return {doc["app"]: AppSummary(**doc) for doc in docs}


def figure_qdnn(scale: float = 1.0, runner=None,
                backend: str | None = None,
                seed: int | None = None) -> AppSummary:
    """The Neural Cache QDNN benchmark as one sweep-runner point (same
    ``app`` point family as Figure 9, so it caches and parallelizes the
    same way)."""
    from .microbench import _resolve_runner
    from .runner import Point

    runner = _resolve_runner(runner)
    extra = {}
    if backend is not None:
        extra["backend"] = backend
    if seed is not None:
        extra["seed"] = seed
    (doc,) = runner.run([
        Point("app", {"app": "qdnn", "scale": scale, **extra},
              label="neural-cache:qdnn")
    ])
    return AppSummary(**doc)



