"""Memory consistency for CC instructions (Section IV-G).

The design assumes the RMO model (current language models - C++/Java DRF -
need nothing stronger): no ordering is enforced between data reads and
writes, including CC operations, and the simple vector operations *within*
one CC instruction may run in parallel.  Programmers order memory with
fences; a fence cannot commit until all preceding operations - including
pending CC instructions - complete.  It is not possible to fence between
the scalar element-operations inside a single vector CC instruction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ReproError


class OpKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    CC_R = "cc-r"
    CC_RW = "cc-rw"
    FENCE = "fence"


@dataclass
class PendingOp:
    op_id: int
    kind: OpKind


@dataclass
class FenceStats:
    fences: int = 0
    ops_drained_at_fences: int = 0
    max_drain: int = 0


class RMOOrderModel:
    """Tracks pending memory operations and fence-drain semantics.

    Under RMO the model never forces ordering between two non-fence
    operations; :meth:`may_issue` therefore only returns False for a fence
    with pending predecessors - exactly the paper's rule that "processor
    stalls commit of a fence operation until preceding pending operations
    are completed, including CC operations".
    """

    def __init__(self) -> None:
        self._pending: dict[int, PendingOp] = {}
        self._next_id = 0
        self.stats = FenceStats()

    def issue(self, kind: OpKind) -> int:
        """Record issue of a memory operation; returns its id."""
        if kind is OpKind.FENCE:
            raise ReproError("fences go through drain_for_fence, not issue")
        op_id = self._next_id
        self._next_id += 1
        self._pending[op_id] = PendingOp(op_id, kind)
        return op_id

    def complete(self, op_id: int) -> None:
        if op_id not in self._pending:
            raise ReproError(f"completing unknown memory op {op_id}")
        del self._pending[op_id]

    def may_issue(self, kind: OpKind) -> bool:
        """RMO issue rule: everything but a fence is unordered."""
        if kind is OpKind.FENCE:
            return not self._pending
        return True

    def drain_for_fence(self) -> int:
        """Commit a fence: returns the number of operations it had to wait
        for (all of them, in this atomic model, are then completed)."""
        drained = len(self._pending)
        self.stats.fences += 1
        self.stats.ops_drained_at_fences += drained
        self.stats.max_drain = max(self.stats.max_drain, drained)
        self._pending.clear()
        return drained

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def pending_cc(self) -> list[PendingOp]:
        return [p for p in self._pending.values() if p.kind in (OpKind.CC_R, OpKind.CC_RW)]


def intra_instruction_fence_possible() -> bool:
    """Section IV-G: like conventional vector instructions, no fence can be
    specified between the scalar operations of one CC instruction."""
    return False


class TSOOrderModel(RMOOrderModel):
    """Total-store-order exploration (the paper's noted future work).

    Section IV-G: "while we believe stronger memory model guarantees for
    Compute Caches is an interesting problem (to be explored in future
    work), we assume RMO."  This subclass explores that problem: under
    TSO, stores (and CC-RW instructions, which behave like stores) must
    retire in order, and a load may not bypass an *earlier CC-RW* whose
    output it might need (no forwarding exists from vector stores).

    The practical consequence the model exposes: CC-RW latency that RMO
    hides behind independent work becomes ordering-visible under TSO, so a
    TSO Compute Cache would either stall stores behind CC completions or
    need the speculation machinery conventional TSO cores use for stores.
    """

    def may_issue(self, kind: OpKind) -> bool:
        if kind is OpKind.FENCE:
            return not self._pending
        if kind in (OpKind.STORE, OpKind.CC_RW):
            # In-order store stream: no store may issue past a pending
            # store-class operation.
            return not any(
                p.kind in (OpKind.STORE, OpKind.CC_RW)
                for p in self._pending.values()
            )
        if kind is OpKind.LOAD:
            # Loads may bypass pending scalar stores (TSO's store buffer)
            # but not pending CC-RW vectors: their results are unknown
            # until the cache performs them and cannot be forwarded.
            return not any(
                p.kind is OpKind.CC_RW for p in self._pending.values()
            )
        return True

    def ordering_stalls(self, kind: OpKind) -> bool:
        """Convenience: would issuing ``kind`` right now have to wait?"""
        return not self.may_issue(kind)

