"""Page-span exception handling (Section IV-D).

"If the address range of any operand of a CC instruction spans multiple
pages, it raises a pipeline exception.  The exception handler splits the
instruction into multiple CC operations such that each of its operands are
within a page."

:func:`split_by_pages` is that handler: it cuts the instruction at every
operand's page-crossing offsets so each fragment's operands each stay
inside one page.  The search key is a single 64-byte block and is never
split (it cannot span a page when block-aligned).
"""

from __future__ import annotations

from ..errors import PageSpanError
from ..params import PAGE_SIZE
from .isa import CCInstruction


def _crossing_offsets(addr: int, size: int) -> set[int]:
    """Byte offsets (relative to the operand start) where pages change."""
    offsets = set()
    first_boundary = (addr // PAGE_SIZE + 1) * PAGE_SIZE
    boundary = first_boundary
    while boundary < addr + size:
        offsets.add(boundary - addr)
        boundary += PAGE_SIZE
    return offsets


def split_by_pages(instr: CCInstruction, allow_split: bool = True) -> list[CCInstruction]:
    """Split a CC instruction so no operand crosses a page boundary.

    With ``allow_split=False`` a spanning instruction raises
    :class:`PageSpanError` instead (modeling a program that masked the
    exception).
    """
    if not instr.spans_page_boundary():
        return [instr]
    if not allow_split:
        raise PageSpanError(
            f"{instr.opcode.value} operand spans a page boundary and splitting is disabled"
        )
    cuts: set[int] = set()
    for name, addr in instr.operands().items():
        if name == "src2" and instr.key_is_fixed_block:
            continue
        if name == "dest" and instr.opcode.value == "cc_clmul":
            continue  # scalar result store; never forces a split
        cuts |= _crossing_offsets(addr, instr.size)
    pieces: list[CCInstruction] = []
    remaining = instr
    consumed = 0
    for cut in sorted(cuts):
        head, remaining = remaining.split_at(cut - consumed)
        pieces.append(head)
        consumed = cut
    pieces.append(remaining)
    return pieces
