"""The Compute Cache architecture - the paper's primary contribution.

This package implements everything Section IV describes on top of the
:mod:`repro.cache` and :mod:`repro.sram` substrates:

* the CC ISA (Table II) with its operand-size and alignment rules;
* the CC controller with its instruction, operation, and key tables
  (Section IV-D), level selection and operand fetching (IV-E), pinning with
  coherence-driven release and RISC fallback (IV-E/IV-F);
* in-place execution in sub-arrays and the near-place logic unit (IV-J);
* page-span exception splitting (IV-D);
* the split scalar/vector LSQ and store buffers (IV-H);
* RMO fence semantics (IV-G);
* ECC schemes for every CC operation (IV-I), including a real SECDED
  Hamming(72, 64) code whose linearity enables the XOR-check scheme.
"""

from .controller import CCResult, ComputeCacheController
from .ecc import EccCodec, EccPolicy
from .isa import CCInstruction, Opcode
from .lsq import ScalarStoreBuffer, VectorLSQ, VectorStoreBuffer

__all__ = [
    "CCResult",
    "ComputeCacheController",
    "EccCodec",
    "EccPolicy",
    "CCInstruction",
    "Opcode",
    "ScalarStoreBuffer",
    "VectorLSQ",
    "VectorStoreBuffer",
]
