"""Memory disambiguation for CC vector instructions (Section IV-H).

CC instructions access address *ranges*, not single words, so the paper
splits the core's disambiguation structures:

* a dedicated **vector LSQ** whose entries carry the address ranges of each
  operand (up to 12 range comparisons per entry);
* a **scalar store buffer** that still coalesces adjacent stores;
* a **non-coalescing vector store buffer** (a CC-RW instruction's output is
  unknown until the cache performs it, so it cannot coalesce).

Because the two store buffers may simultaneously hold stores to the same
location, each entry carries a *successor pointer* and a *stall bit*: the
younger conflicting store stalls until its predecessor completes, which
preserves program order between same-location stores.

Forwarding rules: no forwarding from vector stores to any load, and none
from any store to a vector load.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError

MAX_RANGE_COMPARISONS = 12


@dataclass(frozen=True)
class AddressRange:
    """A byte range [start, start+size)."""

    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size

    def overlaps(self, other: "AddressRange") -> bool:
        return self.start < other.end and other.start < self.end


@dataclass
class VectorEntry:
    """One vector LSQ / vector store-buffer entry."""

    entry_id: int
    is_store: bool
    ranges: list[AddressRange]
    stalled: bool = False
    successor: int | None = None
    completed: bool = False

    def conflicts_with(self, r: AddressRange) -> bool:
        return any(mine.overlaps(r) for mine in self.ranges)


@dataclass
class ScalarStore:
    """One scalar store-buffer entry (word granularity, coalescing)."""

    entry_id: int
    addr: int
    size: int
    stalled: bool = False
    successor: int | None = None
    completed: bool = False

    @property
    def range(self) -> AddressRange:
        return AddressRange(self.addr, self.size)


class VectorLSQ:
    """Vector load/store queue with address-range conflict checks."""

    def __init__(self, capacity: int = 16) -> None:
        self.capacity = capacity
        self._entries: dict[int, VectorEntry] = {}
        self._next_id = 0
        self.range_checks = 0

    def insert(self, ranges: list[AddressRange], is_store: bool) -> VectorEntry:
        if len(self._entries) >= self.capacity:
            raise ReproError("vector LSQ full; core must stall")
        if len(ranges) > MAX_RANGE_COMPARISONS:
            raise ReproError(
                f"{len(ranges)} ranges exceed the {MAX_RANGE_COMPARISONS}-comparison entry limit"
            )
        entry = VectorEntry(self._next_id, is_store, list(ranges))
        self._entries[self._next_id] = entry
        self._next_id += 1
        return entry

    def conflicting_stores(self, r: AddressRange) -> list[VectorEntry]:
        """Uncompleted vector stores whose ranges overlap ``r``."""
        out = []
        for entry in self._entries.values():
            self.range_checks += len(entry.ranges)
            if entry.is_store and not entry.completed and entry.conflicts_with(r):
                out.append(entry)
        return out

    def complete(self, entry_id: int) -> None:
        entry = self._entries.pop(entry_id, None)
        if entry is None:
            raise ReproError(f"completing unknown vector LSQ entry {entry_id}")
        entry.completed = True

    def __len__(self) -> int:
        return len(self._entries)


class ScalarStoreBuffer:
    """Coalescing scalar store buffer."""

    def __init__(self, capacity: int = 32, coalesce_bytes: int = 64) -> None:
        self.capacity = capacity
        self.coalesce_bytes = coalesce_bytes
        self._entries: dict[int, ScalarStore] = {}
        self._next_id = 0
        self.coalesced = 0

    def insert(self, addr: int, size: int) -> ScalarStore:
        block = addr // self.coalesce_bytes
        for entry in self._entries.values():
            if not entry.completed and not entry.stalled and \
                    entry.addr // self.coalesce_bytes == block:
                lo = min(entry.addr, addr)
                hi = max(entry.addr + entry.size, addr + size)
                entry.addr, entry.size = lo, hi - lo
                self.coalesced += 1
                return entry
        if len(self._entries) >= self.capacity:
            raise ReproError("scalar store buffer full; core must stall")
        entry = ScalarStore(self._next_id, addr, size)
        self._entries[self._next_id] = entry
        self._next_id += 1
        return entry

    def complete(self, entry_id: int) -> ScalarStore:
        entry = self._entries.pop(entry_id, None)
        if entry is None:
            raise ReproError(f"completing unknown scalar store {entry_id}")
        entry.completed = True
        return entry

    def entries(self) -> list[ScalarStore]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


class VectorStoreBuffer:
    """Non-coalescing vector store buffer (CC-RW results are unknown until
    the cache performs them, so coalescing is impossible)."""

    def __init__(self, capacity: int = 16) -> None:
        self.capacity = capacity
        self._entries: dict[int, VectorEntry] = {}
        self._next_id = 0

    def insert(self, ranges: list[AddressRange]) -> VectorEntry:
        if len(self._entries) >= self.capacity:
            raise ReproError("vector store buffer full; core must stall")
        if len(ranges) > MAX_RANGE_COMPARISONS:
            raise ReproError(
                f"{len(ranges)} ranges exceed the {MAX_RANGE_COMPARISONS}-comparison entry limit"
            )
        entry = VectorEntry(self._next_id, True, list(ranges))
        self._entries[self._next_id] = entry
        self._next_id += 1
        return entry

    def complete(self, entry_id: int) -> VectorEntry:
        entry = self._entries.pop(entry_id, None)
        if entry is None:
            raise ReproError(f"completing unknown vector store {entry_id}")
        entry.completed = True
        return entry

    def entries(self) -> list[VectorEntry]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


class StoreOrderPolice:
    """Enforces program order between same-location stores across the two
    store buffers (the successor-pointer + stall-bit mechanism)."""

    def __init__(self, scalar: ScalarStoreBuffer, vector: VectorStoreBuffer) -> None:
        self.scalar = scalar
        self.vector = vector
        self.stalls_imposed = 0

    def admit_scalar(self, addr: int, size: int) -> ScalarStore:
        """Insert a scalar store, stalling it behind any conflicting older
        vector store."""
        new_range = AddressRange(addr, size)
        entry = self.scalar.insert(addr, size)
        for older in self.vector.entries():
            if not older.completed and older.conflicts_with(new_range):
                entry.stalled = True
                older.successor = entry.entry_id
                self.stalls_imposed += 1
                break
        return entry

    def admit_vector(self, ranges: list[AddressRange]) -> VectorEntry:
        """Insert a vector store, stalling it behind any conflicting older
        scalar store."""
        entry = self.vector.insert(ranges)
        for older in self.scalar.entries():
            if older.completed or older.stalled:
                continue
            if any(r.overlaps(older.range) for r in ranges):
                entry.stalled = True
                older.successor = entry.entry_id
                self.stalls_imposed += 1
                break
        return entry

    def scalar_completed(self, entry_id: int) -> None:
        """Retire a scalar store; clear the stall bit of its successor."""
        entry = self.scalar.complete(entry_id)
        if entry.successor is not None:
            for vec in self.vector.entries():
                if vec.entry_id == entry.successor:
                    vec.stalled = False

    def vector_completed(self, entry_id: int) -> None:
        """Retire a vector store; clear the stall bit of its successor."""
        entry = self.vector.complete(entry_id)
        if entry.successor is not None:
            for sc in self.scalar.entries():
                if sc.entry_id == entry.successor:
                    sc.stalled = False

    @staticmethod
    def may_forward(store_is_vector: bool, load_is_vector: bool) -> bool:
        """Forwarding legality: vector stores forward to nothing; vector
        loads receive forwarding from nothing."""
        return not store_is_vector and not load_is_vector

