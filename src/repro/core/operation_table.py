"""The CC controller's operation table (Section IV-D).

A CC instruction is broken into *simple vector operations* whose operands
span at most one cache block.  Each operation-table entry tracks the status
of every operand of one such operation (present / being fetched) and the
operation's lifecycle: it is issued to the sub-array only once all operands
are resident and pinned at the compute level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ReproError


class OperandStatus(enum.Enum):
    MISSING = "missing"
    FETCHING = "fetching"
    READY = "ready"


class OpStatus(enum.Enum):
    WAITING = "waiting-operands"
    READY = "ready"
    ISSUED = "issued"
    DONE = "done"
    FAILED = "failed"


@dataclass
class BlockOperand:
    """One cache-block operand of a simple vector operation."""

    addr: int
    is_dest: bool
    status: OperandStatus = OperandStatus.MISSING
    pinned: bool = False


@dataclass
class BlockOperation:
    """One simple vector operation (operands span a single cache block)."""

    instr_id: int
    op_index: int
    subarray_op: str
    operands: list[BlockOperand]
    lane_bits: int | None = None
    elem_bits: int | None = None
    """Element width of the bit-serial arithmetic ops (cc_add/mul/reduce)."""
    status: OpStatus = OpStatus.WAITING
    partition: int | None = None
    inplace: bool = True
    pin_attempts: int = 0
    result_bits: int = 0
    result_bit_count: int = 0
    fallback_reason: str | None = None
    """Why the op missed in-place execution (``locality-miss``,
    ``pin-loss``, ``forced``); ``None`` when it ran in place."""

    @property
    def addresses(self) -> list[int]:
        return [o.addr for o in self.operands]

    @property
    def source_operands(self) -> list[BlockOperand]:
        return [o for o in self.operands if not o.is_dest]

    @property
    def dest_operand(self) -> BlockOperand | None:
        for o in self.operands:
            if o.is_dest:
                return o
        return None

    def all_ready(self) -> bool:
        return all(o.status is OperandStatus.READY for o in self.operands)

    def mark_ready_if_complete(self) -> None:
        if self.status is OpStatus.WAITING and self.all_ready():
            self.status = OpStatus.READY


class OperationTable:
    """Fixed-capacity table of in-flight simple vector operations."""

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._ops: dict[tuple[int, int], BlockOperation] = {}
        self.peak_occupancy = 0
        self.total_allocated = 0

    def allocate(self, op: BlockOperation) -> BlockOperation:
        key = (op.instr_id, op.op_index)
        if key in self._ops:
            raise ReproError(f"duplicate operation-table entry {key}")
        if len(self._ops) >= self.capacity:
            raise ReproError(
                f"operation table full ({self.capacity} entries); controller must stall"
            )
        self._ops[key] = op
        self.total_allocated += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._ops))
        return op

    def get(self, instr_id: int, op_index: int) -> BlockOperation:
        try:
            return self._ops[(instr_id, op_index)]
        except KeyError:
            raise ReproError(f"unknown operation ({instr_id}, {op_index})") from None

    def retire(self, instr_id: int, op_index: int) -> None:
        op = self.get(instr_id, op_index)
        if op.status not in (OpStatus.DONE, OpStatus.FAILED):
            raise ReproError(f"retiring unfinished operation ({instr_id}, {op_index})")
        del self._ops[(instr_id, op_index)]

    def pending_for(self, instr_id: int) -> list[BlockOperation]:
        return [op for (iid, _), op in self._ops.items() if iid == instr_id]

    def __len__(self) -> int:
        return len(self._ops)
