"""In-place execution of simple vector operations in cache sub-arrays.

Given a :class:`~repro.core.operation_table.BlockOperation` whose operands
are resident and pinned at a compute level, the executor locates each
operand's (sub-array, row), issues the bit-line operation, charges the
Table V energy, and returns any result bits (for CC-R operations) plus the
operation latency.

In-place execution requires all operands in the same block partition; the
executor asserts this (the controller should only route locality-satisfying
operations here) and raises :class:`OperandLocalityError` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bitops import popcount_mask
from ..cache.cache import CacheLevel
from ..energy.mcpat import charge_cc_arith, charge_cc_op
from ..errors import OperandLocalityError, ReproError
from ..params import BLOCK_SIZE
from ..sram.timing import ARITH_OPS, arith_steps
from .operation_table import BlockOperation, OpStatus


@dataclass(frozen=True)
class InPlaceOutcome:
    """Result of one in-place block operation."""

    result_bits: int
    result_bit_count: int
    latency: float
    partition: int
    result_data: bytes | None = None


class InPlaceExecutor:
    """Issues bit-line compute operations into a cache level's sub-arrays."""

    def __init__(self, inplace_latency: int = 14) -> None:
        self.inplace_latency = inplace_latency
        self.ops_executed = 0

    def op_latency(self, subop: str, elem_bits: int | None = None) -> int:
        """Latency of one in-place block op.

        The single-step ops take the fixed ``inplace_latency``; the
        bit-serial arithmetic ops add one cycle per bit-serial step on top
        of the same decode/sequencing overhead."""
        if subop in ARITH_OPS:
            if elem_bits is None:
                raise ReproError(f"{subop} needs an element width")
            n_elems = (BLOCK_SIZE * 8) // elem_bits
            return self.inplace_latency + arith_steps(subop, elem_bits, n_elems)
        return self.inplace_latency

    def _charge(self, level: CacheLevel, subop: str,
                elem_bits: int | None) -> None:
        """Table-V ledger charge for one in-place block op (step-scaled
        for the arithmetic tier)."""
        if subop in ARITH_OPS:
            n_elems = (BLOCK_SIZE * 8) // (elem_bits or 8)
            charge_cc_arith(level.ledger, level.name, subop, elem_bits or 8,
                            n_elems)
            return
        # Search's Table V energy (cmp + key write) is charged in two
        # parts: the compare here, the key-replication write by the
        # controller's key table (amortized across blocks sharing a
        # partition).
        charge_cc_op(level.ledger, level.name,
                     "cmp" if subop == "search" else subop)

    def execute(self, level: CacheLevel, op: BlockOperation) -> InPlaceOutcome:
        """Run one simple vector operation in place."""
        addrs = op.addresses
        partitions = {level.geometry.partition_of(a) for a in addrs}
        if len(partitions) != 1:
            raise OperandLocalityError(
                f"in-place {op.subarray_op} operands {['%#x' % a for a in addrs]} span "
                f"partitions {sorted(partitions)} of {level.name}"
            )
        partition = partitions.pop()
        handler = getattr(self, f"_op_{op.subarray_op}", None)
        if handler is None:
            raise ReproError(f"no in-place handler for {op.subarray_op!r}")
        outcome = handler(level, op, partition)
        self._charge(level, op.subarray_op, op.elem_bits)
        level.stats.cc_inplace_ops += 1
        self.ops_executed += 1
        if level.tracer is not None:
            level.tracer.emit(
                "subarray.op", level=level.name, unit=level.unit,
                opcode=op.subarray_op, partition=partition,
                addr=op.operands[0].addr, instr_id=op.instr_id,
                span=float(self.op_latency(op.subarray_op, op.elem_bits)),
            )
        return outcome

    def execute_batch(self, level: CacheLevel, subarray, partition: int,
                      items: list[tuple[BlockOperation, tuple]]) -> None:
        """Run one sub-array's worth of simple vector operations at once.

        ``items`` pairs each :class:`BlockOperation` with its located
        ``(row_a, row_b, row_dest)`` triple (unused slots ``None``).  The
        whole group is a single :meth:`ComputeSubarray.op_batch` call - one
        vectorized kernel under the packed backend, the per-row circuit ops
        under bit-exact - with per-op accounting identical to issuing the
        operations through :meth:`execute` one at a time.
        """
        if not items:
            return
        subop = items[0][0].subarray_op
        lane_bits = items[0][0].lane_bits
        elem_bits = items[0][0].elem_bits
        rows_a = [rows[0] for _, rows in items]
        rows_b = [rows[1] for _, rows in items] if items[0][1][1] is not None else None
        rows_dest = [rows[2] for _, rows in items] if items[0][1][2] is not None else None
        results = subarray.op_batch(
            subop, rows_a, rows_b, rows_dest,
            key_bytes=BLOCK_SIZE, lane_bits=lane_bits, elem_bits=elem_bits,
        )
        span = float(self.op_latency(subop, elem_bits))
        for (op, _rows), result in zip(items, results):
            if subop == "cmp":
                op.result_bits, op.result_bit_count = result, BLOCK_SIZE // 8
            elif subop == "search":
                op.result_bits, op.result_bit_count = result & 1, 1
            elif subop == "clmul":
                lanes = (BLOCK_SIZE * 8) // (lane_bits or 64)
                bits = int.from_bytes(result, "little") & ((1 << lanes) - 1)
                op.result_bits, op.result_bit_count = bits, lanes
            elif subop == "reduce":
                # The block-wide sum can exceed 64 result bits' packing
                # contract, so it rides result_bits raw (bit_count 0) and
                # the controller accumulates it CLMUL-style.
                op.result_bits, op.result_bit_count = result, 0
            else:
                op.result_bits, op.result_bit_count = 0, 0
            op.partition = partition
            op.inplace = True
            op.status = OpStatus.ISSUED
            self._charge(level, subop, elem_bits)
            level.stats.cc_inplace_ops += 1
            self.ops_executed += 1
            if level.tracer is not None:
                level.tracer.emit(
                    "subarray.op", level=level.name, unit=level.unit,
                    opcode=subop, partition=partition,
                    addr=op.operands[0].addr, instr_id=op.instr_id,
                    span=span,
                )

    # -- split seam for cross-instruction fusion (repro.core.stream) ---------------

    def account_batch(self, level: CacheLevel, partition: int,
                      items: list[tuple[BlockOperation, tuple]]) -> None:
        """The controller-side half of :meth:`execute_batch`: Table-V
        charges, level stats, and ``subarray.op`` events for a group of
        located ops, *without* running the kernel.

        The stream scheduler calls this in canonical per-instruction order
        while deferring the actual sub-array kernels to a fused
        :meth:`kernel_batch` call, keeping the ledger and event stream
        bit-identical to one-at-a-time execution.  All emitted fields are
        known before the kernel runs (result bits are not part of them).
        """
        subop = items[0][0].subarray_op
        span = float(self.op_latency(subop, items[0][0].elem_bits))
        for op, _rows in items:
            op.partition = partition
            op.inplace = True
            op.status = OpStatus.ISSUED
            self._charge(level, subop, op.elem_bits)
            level.stats.cc_inplace_ops += 1
            self.ops_executed += 1
            if level.tracer is not None:
                level.tracer.emit(
                    "subarray.op", level=level.name, unit=level.unit,
                    opcode=subop, partition=partition,
                    addr=op.operands[0].addr, instr_id=op.instr_id,
                    span=span,
                )

    def kernel_batch(self, subarray,
                     items: list[tuple[BlockOperation, tuple]]) -> None:
        """The kernel half of :meth:`execute_batch`: one
        :meth:`~repro.sram.ComputeSubarray.op_batch` call over (possibly)
        many instructions' ops, assigning result bits per op.

        Sub-array accounting happens inside ``op_batch`` in item order, so
        as long as callers keep items in instruction order per sub-array
        the per-sub-array stats are bit-identical to sequential execution.
        """
        if not items:
            return
        subop = items[0][0].subarray_op
        lane_bits = items[0][0].lane_bits
        elem_bits = items[0][0].elem_bits
        rows_a = [rows[0] for _, rows in items]
        rows_b = [rows[1] for _, rows in items] if items[0][1][1] is not None else None
        rows_dest = [rows[2] for _, rows in items] if items[0][1][2] is not None else None
        results = subarray.op_batch(
            subop, rows_a, rows_b, rows_dest,
            key_bytes=BLOCK_SIZE, lane_bits=lane_bits, elem_bits=elem_bits,
        )
        for (op, _rows), result in zip(items, results):
            if subop == "cmp":
                op.result_bits, op.result_bit_count = result, BLOCK_SIZE // 8
            elif subop == "search":
                op.result_bits, op.result_bit_count = result & 1, 1
            elif subop == "clmul":
                lanes = (BLOCK_SIZE * 8) // (lane_bits or 64)
                bits = int.from_bytes(result, "little") & ((1 << lanes) - 1)
                op.result_bits, op.result_bit_count = bits, lanes
            elif subop == "reduce":
                op.result_bits, op.result_bit_count = result, 0
            else:
                op.result_bits, op.result_bit_count = 0, 0

    # -- per-op handlers ----------------------------------------------------------

    def _rows(self, level: CacheLevel, op: BlockOperation) -> list[int]:
        rows = []
        for operand in op.operands:
            _, row = level.locate(operand.addr)
            rows.append(row)
        return rows

    def _logical(self, level: CacheLevel, op: BlockOperation, partition: int,
                 method_name: str) -> InPlaceOutcome:
        sub = level.geometry.subarrays[partition]
        src = [o for o in op.operands if not o.is_dest]
        dest = op.dest_operand
        if len(src) != 2 or dest is None:
            raise ReproError(f"{op.subarray_op} needs two sources and a destination")
        _, row_a = level.locate(src[0].addr)
        _, row_b = level.locate(src[1].addr)
        _, row_d = level.locate(dest.addr)
        method = getattr(sub, method_name)
        result = method(row_a, row_b, dest=row_d)
        return InPlaceOutcome(0, 0, self.inplace_latency, partition, result_data=result)

    def _op_and(self, level, op, partition):
        return self._logical(level, op, partition, "op_and")

    def _op_or(self, level, op, partition):
        return self._logical(level, op, partition, "op_or")

    def _op_xor(self, level, op, partition):
        return self._logical(level, op, partition, "op_xor")

    def _op_not(self, level: CacheLevel, op: BlockOperation, partition: int) -> InPlaceOutcome:
        sub = level.geometry.subarrays[partition]
        src = op.source_operands
        dest = op.dest_operand
        if len(src) != 1 or dest is None:
            raise ReproError("not needs one source and a destination")
        _, row_s = level.locate(src[0].addr)
        _, row_d = level.locate(dest.addr)
        result = sub.op_not(row_s, dest=row_d)
        return InPlaceOutcome(0, 0, self.inplace_latency, partition, result_data=result)

    def _op_copy(self, level: CacheLevel, op: BlockOperation, partition: int) -> InPlaceOutcome:
        sub = level.geometry.subarrays[partition]
        src = op.source_operands
        dest = op.dest_operand
        if len(src) != 1 or dest is None:
            raise ReproError("copy needs one source and a destination")
        _, row_s = level.locate(src[0].addr)
        _, row_d = level.locate(dest.addr)
        result = sub.op_copy(row_s, row_d)
        return InPlaceOutcome(0, 0, self.inplace_latency, partition, result_data=result)

    def _op_buz(self, level: CacheLevel, op: BlockOperation, partition: int) -> InPlaceOutcome:
        sub = level.geometry.subarrays[partition]
        dest = op.dest_operand
        if dest is None:
            raise ReproError("buz needs a destination")
        _, row_d = level.locate(dest.addr)
        sub.op_buz(row_d)
        return InPlaceOutcome(0, 0, self.inplace_latency, partition,
                              result_data=bytes(BLOCK_SIZE))

    def _op_cmp(self, level: CacheLevel, op: BlockOperation, partition: int) -> InPlaceOutcome:
        sub = level.geometry.subarrays[partition]
        src = op.source_operands
        if len(src) != 2:
            raise ReproError("cmp needs two sources")
        _, row_a = level.locate(src[0].addr)
        _, row_b = level.locate(src[1].addr)
        mask = sub.op_cmp(row_a, row_b)
        words = BLOCK_SIZE // 8
        return InPlaceOutcome(mask, words, self.inplace_latency, partition)

    def _op_search(self, level: CacheLevel, op: BlockOperation, partition: int) -> InPlaceOutcome:
        sub = level.geometry.subarrays[partition]
        src = op.source_operands
        if len(src) != 1:
            raise ReproError("search block op needs the data source (key is in the key row)")
        _, row_data = level.locate(src[0].addr)
        mask = sub.op_search(row_data, level.geometry.key_row, key_bytes=BLOCK_SIZE)
        return InPlaceOutcome(mask & 1, 1, self.inplace_latency, partition)

    def _arith2(self, level: CacheLevel, op: BlockOperation, partition: int,
                method_name: str) -> InPlaceOutcome:
        sub = level.geometry.subarrays[partition]
        src = [o for o in op.operands if not o.is_dest]
        dest = op.dest_operand
        if len(src) != 2 or dest is None:
            raise ReproError(f"{op.subarray_op} needs two sources and a destination")
        if op.elem_bits is None:
            raise ReproError(f"{op.subarray_op} needs an element width")
        _, row_a = level.locate(src[0].addr)
        _, row_b = level.locate(src[1].addr)
        _, row_d = level.locate(dest.addr)
        method = getattr(sub, method_name)
        result = method(row_a, row_b, dest=row_d, elem_bits=op.elem_bits)
        return InPlaceOutcome(0, 0, self.op_latency(op.subarray_op, op.elem_bits),
                              partition, result_data=result)

    def _op_add(self, level, op, partition):
        return self._arith2(level, op, partition, "op_add")

    def _op_mul(self, level, op, partition):
        return self._arith2(level, op, partition, "op_mul")

    def _op_reduce(self, level: CacheLevel, op: BlockOperation, partition: int) -> InPlaceOutcome:
        sub = level.geometry.subarrays[partition]
        src = op.source_operands
        if len(src) != 1:
            raise ReproError("reduce needs one source")
        if op.elem_bits is None:
            raise ReproError("reduce needs an element width")
        _, row_s = level.locate(src[0].addr)
        total = sub.op_reduce(row_s, elem_bits=op.elem_bits)
        # bit_count stays 0: the 64-bit sum is carried raw in result_bits
        # (complete_op's little-endian packing contract tops out below it).
        return InPlaceOutcome(total, 0,
                              self.op_latency("reduce", op.elem_bits), partition)

    def _op_clmul(self, level: CacheLevel, op: BlockOperation, partition: int) -> InPlaceOutcome:
        sub = level.geometry.subarrays[partition]
        src = op.source_operands
        if op.lane_bits is None:
            raise ReproError("clmul needs a lane width")
        if len(src) == 1:
            # Broadcast variant: the second operand sits in the partition's
            # key row (replicated by the controller, BMM's A-row reuse).
            _, row_a = level.locate(src[0].addr)
            row_b = level.geometry.key_row
        elif len(src) == 2:
            _, row_a = level.locate(src[0].addr)
            _, row_b = level.locate(src[1].addr)
        else:
            raise ReproError("clmul needs one (broadcast) or two sources")
        packed = sub.op_clmul(row_a, row_b, op.lane_bits)
        lanes = (BLOCK_SIZE * 8) // op.lane_bits
        bits = int.from_bytes(packed, "little") & ((1 << lanes) - 1)
        return InPlaceOutcome(bits, lanes, self.inplace_latency, partition)


def mask_matches(mask: int) -> int:
    """Convenience: number of matching words/keys in a CC-R result mask."""
    return popcount_mask(mask)
