"""The Compute Cache controller (Sections IV-D and IV-E).

One controller sits at each core's L1 and orchestrates CC instructions:

1. **Page-span check** - operands crossing a page raise a pipeline
   exception; the handler splits the instruction per page (IV-D).
2. **Decomposition** - the instruction is broken into *simple vector
   operations* whose operands span at most one cache block, tracked in the
   operation table; instruction-level metadata (result register, completion
   count) lives in the instruction table.
3. **Level selection** - compute at the highest cache level where *all*
   operands are resident; if any operand is uncached, compute at L3 (IV-E).
4. **Operand fetch + pinning** - missing operands are fetched to the
   compute level; dirty copies in skipped levels are written back through
   the existing writeback machinery; operand lines are pinned (and MRU-
   promoted).  A forwarded coherence request releases the pin; after
   ``pin_retry_limit`` failed attempts the operation is executed as RISC
   operations by the core (IV-E).
5. **Execution** - in place when operand locality holds (the geometry
   guarantees it for page-aligned operands), else near-place at the
   controller's logic unit.  Search keys are replicated into each data
   partition's key row, tracked by the key table so repeats are free.
6. **Completion** - per-op results merge into the instruction entry; the
   L1 controller notifies the core when the count completes.

Timing model: operand fetches overlap up to a fetch-MLP; in-place block
commands stream over the unreplicated H-tree address bus at
``commands_per_cycle`` and execute concurrently across partitions but
serially within one (a sub-array does one operation at a time); near-place
operations serialize through the single per-controller logic unit.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field

from ..bitops import chunk_range
from ..cache.hierarchy import L1, L2, L3, CacheHierarchy
from ..energy.accounting import Component
from ..energy.mcpat import charge_key_broadcast, charge_key_row_write, charge_transpose
from ..errors import PinnedLineError, ReproError
from ..params import BLOCK_SIZE, MachineConfig
from .exceptions import split_by_pages
from .inplace import InPlaceExecutor
from .instruction_table import InstructionTable
from .isa import CCInstruction, Opcode
from .key_table import KeyTable
from .nearplace import NearPlaceUnit
from .operation_table import BlockOperand, BlockOperation, OperationTable, OpStatus
from .transpose import TransposeUnit

LEVEL_ORDER = (L1, L2, L3)

MIXED_LEVEL = "mixed"
"""``CCResult.level`` of a page-split instruction whose pieces computed at
different cache levels."""

MEMO_CAPACITY = 4096
"""Entries kept in the controller's decode/level-selection memo tables
before they are dropped wholesale (a simple bound, not an LRU)."""

INSTRUCTION_OVERHEAD_CYCLES = 5
"""Controller cycles to decode/dispatch one CC instruction."""

FETCH_MLP = 8
"""Overlapped operand fetches the controller sustains (MSHR-bounded)."""


@dataclass
class CCControllerStats:
    instructions: int = 0
    block_ops_inplace: int = 0
    block_ops_nearplace: int = 0
    block_ops_risc: int = 0
    key_replications: int = 0
    pin_retries: int = 0
    risc_fallbacks: int = 0
    page_splits: int = 0
    level_memo_hits: int = 0
    hazard_memo_hits: int = 0
    fetch_cycles: float = 0.0
    compute_cycles: float = 0.0
    transpose_blocks: int = 0
    transpose_cycles: float = 0.0
    fallback_reasons: dict[str, int] = field(default_factory=dict)
    """Block ops that missed in-place execution, keyed by why
    (``locality-miss``, ``pin-loss``, ``forced``)."""
    level_compute_cycles: dict[str, float] = field(default_factory=dict)
    """Compute makespan attributed to each cache level."""


@dataclass
class CCResult:
    """Outcome of one architectural CC instruction."""

    instr: CCInstruction
    result: int
    cycles: float
    level: str
    inplace_ops: int = 0
    nearplace_ops: int = 0
    risc_ops: int = 0
    fetch_cycles: float = 0.0
    compute_cycles: float = 0.0
    occupancy_cycles: float = 0.0
    """Cycles the controller (decode + the unreplicated command bus + any
    near-place logic-unit time) is busy.  The rest of ``cycles`` is
    sub-array work that overlaps with later, independent CC instructions
    targeting other partitions."""
    result_bytes: bytes = b""
    pieces: int = 1

    @property
    def used_inplace(self) -> bool:
        return self.inplace_ops > 0 and self.nearplace_ops == 0 and self.risc_ops == 0


class ComputeCacheController:
    """Per-core CC controller attached to the L1 cache."""

    def __init__(self, hierarchy: CacheHierarchy, core_id: int = 0,
                 config: MachineConfig | None = None) -> None:
        self.hierarchy = hierarchy
        self.core_id = core_id
        self.config = config or hierarchy.config
        cc = self.config.cc
        self.instruction_table = InstructionTable(capacity=8)
        self.operation_table = OperationTable(capacity=64)
        self.key_table = KeyTable(capacity=8)
        self.inplace = InPlaceExecutor(cc.inplace_latency)
        self.nearplace = NearPlaceUnit(cc.nearplace_latency)
        self.transpose = TransposeUnit(cc.transpose_latency)
        self.stats = CCControllerStats()
        self.tracer = hierarchy.tracer
        self.contention_hook: Callable[[int], bool] | None = None
        """Test hook: called with each pinned block address; returning True
        simulates a forwarded coherence request stealing the line."""
        self.fetch_fault_hook: Callable[[int], bool] | None = None
        """Fault-injection hook (:mod:`repro.faults`): called with each
        operand block address before it is pinned; returning True
        simulates an operand-fetch timeout, which drains into the same
        retry-then-RISC-fallback path as a lost pin."""
        self.reuse_policy = None
        """Optional :class:`~repro.core.reuse.ReuseAwarePolicy` refining
        level selection with reuse prediction (the paper's suggested
        future-work enhancement, Section IV-E)."""
        # Decode memoization.  Repeated instructions (streaming kernels
        # re-issue the same (opcode, operand-page) shapes constantly) skip
        # the residency probes of level selection while no fill/invalidate
        # has happened since the memo was recorded, and skip the hazard
        # analysis entirely (it is a pure function of the instruction,
        # the geometry, and the sticky page->slice map).  Both probes are
        # uncounted (no stats, energy, or events), so memoization is
        # observationally invisible.
        self._level_memo: dict[CCInstruction, tuple[int, str]] = {}
        self._hazard_memo: dict[tuple[CCInstruction, str], tuple[int, str | None]] = {}

    # -- public API -----------------------------------------------------------------

    def execute(self, instr: CCInstruction, force_level: str | None = None,
                force_nearplace: bool = False) -> CCResult:
        """Run one CC instruction to completion; returns its result."""
        pieces = split_by_pages(instr)
        if len(pieces) > 1:
            self.stats.page_splits += 1
        total = CCResult(instr=instr, result=0, cycles=0.0, level="", pieces=len(pieces))
        bits_filled = 0
        result_bytes = bytearray()
        for piece in pieces:
            res = self._execute_piece(piece, force_level, force_nearplace)
            total.cycles += res.cycles
            # Pieces of a page-split instruction may compute at different
            # levels; report "mixed" rather than whichever piece ran last.
            if not total.level:
                total.level = res.level
            elif total.level != res.level:
                total.level = MIXED_LEVEL
            total.inplace_ops += res.inplace_ops
            total.nearplace_ops += res.nearplace_ops
            total.risc_ops += res.risc_ops
            total.fetch_cycles += res.fetch_cycles
            total.compute_cycles += res.compute_cycles
            total.occupancy_cycles += res.occupancy_cycles
            if instr.opcode is Opcode.REDUCE:
                # Partial sums of a page-split reduce accumulate modulo
                # 2^64 — a shift-OR merge would corrupt them.
                total.result = (total.result + res.result) & ((1 << 64) - 1)
            elif instr.opcode.reads_only:
                width = res.instr.num_blocks * self._bits_per_block(instr)
                total.result |= res.result << bits_filled
                bits_filled += width
            result_bytes += res.result_bytes
        total.result_bytes = bytes(result_bytes)
        if instr.opcode is Opcode.CLMUL and total.result_bytes:
            # The packed inner-product bits are written once, contiguously,
            # at the architectural destination (pieces merely partition the
            # source blocks, not the result layout).
            self.hierarchy.write(self.core_id, instr.dest, total.result_bytes)
        self.stats.instructions += 1
        return total

    # -- decomposition ------------------------------------------------------------------

    def _bits_per_block(self, instr: CCInstruction) -> int:
        if instr.opcode is Opcode.CMP:
            return BLOCK_SIZE // 8
        if instr.opcode is Opcode.SEARCH:
            return 1
        return 0

    def _block_operands(self, instr: CCInstruction, block_idx: int) -> list[BlockOperand]:
        """Operands of the ``block_idx``-th simple vector operation."""
        off = block_idx * BLOCK_SIZE
        op = instr.opcode
        if op is Opcode.BUZ:
            return [BlockOperand(instr.src1 + off, is_dest=True)]
        if op in (Opcode.COPY, Opcode.NOT):
            return [
                BlockOperand(instr.src1 + off, is_dest=False),
                BlockOperand(instr.dest + off, is_dest=True),
            ]
        if op is Opcode.CMP:
            return [
                BlockOperand(instr.src1 + off, is_dest=False),
                BlockOperand(instr.src2 + off, is_dest=False),
            ]
        if op in (Opcode.SEARCH, Opcode.REDUCE):
            return [BlockOperand(instr.src1 + off, is_dest=False)]
        if op is Opcode.CLMUL:
            if instr.broadcast_src2:
                return [BlockOperand(instr.src1 + off, is_dest=False)]
            return [
                BlockOperand(instr.src1 + off, is_dest=False),
                BlockOperand(instr.src2 + off, is_dest=False),
            ]
        # and / or / xor / add / mul
        return [
            BlockOperand(instr.src1 + off, is_dest=False),
            BlockOperand(instr.src2 + off, is_dest=False),
            BlockOperand(instr.dest + off, is_dest=True),
        ]

    def _overwrites_dest(self, instr: CCInstruction) -> bool:
        """Destination blocks that are fully overwritten skip their fetch."""
        return instr.opcode in (Opcode.COPY, Opcode.BUZ, Opcode.NOT,
                                Opcode.AND, Opcode.OR, Opcode.XOR,
                                Opcode.ADD, Opcode.MUL)

    def _select_level(self, instr: CCInstruction, force_level: str | None) -> str:
        if force_level is not None:
            if force_level not in LEVEL_ORDER:
                raise ReproError(f"unknown cache level {force_level!r}")
            return force_level
        memoizable = self.reuse_policy is None
        if memoizable:
            epoch = self.hierarchy.residency_epoch()
            hit = self._level_memo.get(instr)
            if hit is not None and hit[0] == epoch:
                self.stats.level_memo_hits += 1
                return hit[1]
        addrs = []
        for name, base in instr.operands().items():
            if name == "dest" and instr.opcode is Opcode.CLMUL:
                continue  # clmul's dest receives a scalar store, not blocks
            length = BLOCK_SIZE if (name == "src2" and instr.key_is_fixed_block) else instr.size
            addrs.extend(a for a, _ in chunk_range(base, length, BLOCK_SIZE))
        residency = self.hierarchy.probe_residency(self.core_id, addrs)
        chosen = L3
        for level in LEVEL_ORDER:
            if residency[level]:
                chosen = level
                break
        if self.reuse_policy is not None:
            chosen = self.reuse_policy.select(chosen, addrs)
        if memoizable:
            if len(self._level_memo) >= MEMO_CAPACITY:
                self._level_memo.clear()
            self._level_memo[instr] = (epoch, chosen)
        return chosen

    # -- execution of one page-local piece ---------------------------------------------------

    def _execute_piece(self, instr: CCInstruction, force_level: str | None,
                       force_nearplace: bool) -> CCResult:
        level = self._select_level(instr, force_level)
        entry = self.instruction_table.allocate(instr, total_ops=instr.num_blocks)
        entry.level = level

        fetch_latencies: list[int] = []
        partition_load: dict[int, int] = {}
        inplace_ops = nearplace_ops = risc_ops = 0
        nearplace_cycles = 0.0
        clmul_bits: list[tuple[int, int]] = []
        reduce_sum = 0
        replications_before = self.stats.key_replications

        # Bit-serial layout conversion (arithmetic tier): every source
        # block not already transposed goes through the transpose unit
        # before the sub-arrays can compute on it.  Charged per
        # instruction regardless of the eventual in-place/near-place/RISC
        # outcome, so accounting is a pure function of the instruction
        # stream (backend- and dispatch-invariant).
        transpose_cycles = 0.0
        if instr.opcode.is_arith:
            ranges = [(instr.src1, instr.size)]
            if instr.src2 is not None:
                ranges.append((instr.src2, instr.size))
            blocks, transpose_cycles = self.transpose.convert(ranges)
            if blocks:
                cache = self.hierarchy.level_cache(level, self.core_id, instr.src1)
                charge_transpose(cache.ledger, cache.name, blocks)
                self.stats.transpose_blocks += blocks
                self.stats.transpose_cycles += transpose_cycles
                if self.tracer is not None:
                    self.tracer.emit(
                        "cc.transpose", core=self.core_id, level=level,
                        opcode=instr.opcode.value, instr_id=entry.instr_id,
                        blocks=blocks, span=float(transpose_cycles),
                    )

        # Key staging for cc_search and broadcast cc_clmul: read the key
        # block once; replicate it per partition through the key table.
        key_data: bytes | None = None
        if instr.key_is_fixed_block:
            key_data, key_latency = self._stage_key(instr, level)
            if key_latency:
                fetch_latencies.append(key_latency)

        # Batched dispatch (phase A: fetch/pin/locate every block op; phase
        # B: one kernel call per target sub-array) whenever it is provably
        # equivalent to issuing the ops one at a time; otherwise fall back
        # to the sequential per-op loop.  Both execution backends use the
        # same dispatch, so statistics and energy are backend-invariant.
        hazard = "forced-nearplace" if force_nearplace else self._batch_hazard(instr, level)
        batchable = hazard is None
        if self.tracer is not None:
            self.tracer.emit(
                "cc.dispatch", core=self.core_id, level=level,
                opcode=instr.opcode.value, instr_id=entry.instr_id,
                outcome="batched" if batchable else "sequential", reason=hazard,
            )
        batches: dict[tuple[int, int], list] = {}
        verify: list[tuple[BlockOperation, object, list, tuple[int, int]]] = []

        ops: list[BlockOperation] = []
        for idx in range(instr.num_blocks):
            op = BlockOperation(
                instr_id=entry.instr_id,
                op_index=entry.generate_next(),
                subarray_op=instr.opcode.subarray_op,
                operands=self._block_operands(instr, idx),
                lane_bits=instr.lane_bits,
                elem_bits=instr.elem_bits,
            )
            self.operation_table.allocate(op)
            ops.append(op)
            if batchable:
                self._stage_block_op(op, instr, level, key_data, fetch_latencies,
                                     partition_load, batches, verify)
            else:
                self._run_block_op(op, instr, level, key_data, force_nearplace,
                                   fetch_latencies, partition_load)
        if batchable:
            self._drain_batches(instr, level, key_data, batches, verify,
                                fetch_latencies, partition_load)

        tracer = self.tracer
        inplace_span = float(
            self.inplace.op_latency(instr.opcode.subarray_op, instr.elem_bits)
        )
        for op in ops:
            if op.status is OpStatus.FAILED:
                risc_ops += 1
                outcome, span = "risc-fallback", 0.0
            elif op.inplace:
                inplace_ops += 1
                outcome, span = "in-place", inplace_span
            else:
                nearplace_ops += 1
                nearplace_cycles += self.nearplace.nearplace_latency
                outcome, span = "near-place", float(self.nearplace.nearplace_latency)
            if op.fallback_reason is not None:
                self.stats.fallback_reasons[op.fallback_reason] = (
                    self.stats.fallback_reasons.get(op.fallback_reason, 0) + 1
                )
            if tracer is not None:
                tracer.emit(
                    "cc.block_op", core=self.core_id, level=level,
                    opcode=instr.opcode.value, partition=op.partition,
                    addr=op.operands[0].addr, instr_id=entry.instr_id,
                    span=span, outcome=outcome, reason=op.fallback_reason,
                )
            if instr.opcode is Opcode.CLMUL:
                clmul_bits.append((op.result_bits, op.result_bit_count))
                entry.complete_op()
            elif instr.opcode is Opcode.REDUCE:
                # Block partial sums accumulate modulo 2^64 outside the
                # instruction entry: complete_op's bit-packing contract
                # (shift-OR of fixed-width fields) cannot express them.
                reduce_sum = (reduce_sum + op.result_bits) & ((1 << 64) - 1)
                entry.complete_op()
            else:
                entry.complete_op(op.result_bits, op.result_bit_count)
            op.status = OpStatus.DONE if op.status is not OpStatus.FAILED else op.status
            self.operation_table.retire(entry.instr_id, op.op_index)

        result_bytes = b""
        if instr.opcode is Opcode.CLMUL:
            result_bytes = self._pack_clmul_result(clmul_bits)

        fetch_cycles = self._fetch_makespan(fetch_latencies)
        compute_cycles = self._compute_makespan(level, partition_load, nearplace_cycles,
                                                inplace_span)
        notify = self.config.l1d.hit_latency  # L1 controller -> core completion
        cycles = (INSTRUCTION_OVERHEAD_CYCLES + fetch_cycles + transpose_cycles
                  + compute_cycles + notify)
        # Controller occupancy: decode + every block command down the
        # unreplicated address bus, plus any serial near-place logic-unit
        # time.  Key replication is a single broadcast command (the H-tree
        # fans it out to all target sub-arrays at once).  Sub-array
        # execution itself overlaps with later instructions.
        key_writes = self.stats.key_replications - replications_before
        commands = sum(partition_load.values()) + (1 if key_writes else 0) + risc_ops
        occupancy = (
            INSTRUCTION_OVERHEAD_CYCLES
            + self._issue_cycles(level, commands)
            + nearplace_cycles
        )

        self.stats.block_ops_inplace += inplace_ops
        self.stats.block_ops_nearplace += nearplace_ops
        self.stats.block_ops_risc += risc_ops
        self.stats.fetch_cycles += fetch_cycles
        self.stats.compute_cycles += compute_cycles
        self.stats.level_compute_cycles[level] = (
            self.stats.level_compute_cycles.get(level, 0.0) + compute_cycles
        )
        self.key_table.release(entry.instr_id)
        result = reduce_sum if instr.opcode is Opcode.REDUCE else entry.result_mask
        self.instruction_table.retire(entry.instr_id)
        # Layout tracking: arithmetic destinations come out bit-serial
        # (free); any other destination write reverts its blocks to
        # row-major, so the next arithmetic use pays the conversion again.
        if instr.opcode.is_arith:
            if instr.dest is not None:
                self.transpose.mark_bit_serial(instr.dest, instr.size)
        elif instr.opcode is Opcode.BUZ:
            self.transpose.invalidate(instr.src1, instr.size)
        elif instr.dest is not None:
            self.transpose.invalidate(instr.dest, instr.operand_length("dest"))
        if tracer is not None:
            # Per-piece cycle attribution: the emitted phase spans sum
            # exactly to this piece's latency (the profiler asserts it).
            for phase, span in (
                ("decode", float(INSTRUCTION_OVERHEAD_CYCLES)),
                ("operand-fetch", float(fetch_cycles)),
                ("transpose", float(transpose_cycles)),
                ("compute-inplace", float(compute_cycles - nearplace_cycles)),
                ("compute-nearplace", float(nearplace_cycles)),
                ("notify", float(notify)),
            ):
                if span:
                    tracer.emit(
                        "cc.attr", core=self.core_id, level=level,
                        opcode=instr.opcode.value, instr_id=entry.instr_id,
                        phase=phase, span=span,
                    )
            if risc_ops == 0:
                instr_outcome = "in-place" if nearplace_ops == 0 else "near-place"
            else:
                instr_outcome = "risc-fallback" if inplace_ops == nearplace_ops == 0 else "mixed"
            tracer.emit(
                "cc.instruction", core=self.core_id, level=level,
                opcode=instr.opcode.value, instr_id=entry.instr_id,
                span=float(cycles), outcome=instr_outcome,
            )
        return CCResult(
            instr=instr, result=result, cycles=cycles, level=level,
            inplace_ops=inplace_ops, nearplace_ops=nearplace_ops, risc_ops=risc_ops,
            fetch_cycles=fetch_cycles, compute_cycles=compute_cycles,
            occupancy_cycles=occupancy, result_bytes=result_bytes,
        )

    # -- block-op lifecycle -------------------------------------------------------------------

    def _acquire_operands(self, op: BlockOperation, instr: CCInstruction, level: str,
                          key_data: bytes | None, skip_fetch: bool,
                          fetch_latencies: list[int]) -> bool:
        """Fetch and pin every operand, retrying when a pin is lost.

        Returns True once all operands are pinned.  After exactly
        ``pin_retry_limit`` failed attempts the op is handed to the RISC
        fallback (starvation avoidance, Section IV-E) and False is
        returned.  Shared by the sequential and batched dispatch paths so
        retry accounting and fallback semantics cannot diverge.
        """
        attempts = 0
        while True:
            attempts += 1
            op.pin_attempts = attempts
            lost = self._prepare_and_pin(op, level, skip_fetch, fetch_latencies)
            if not lost:
                if attempts > 1 and self.tracer is not None:
                    self.tracer.emit(
                        "fault.recover", core=self.core_id, level=level,
                        opcode=instr.opcode.value, instr_id=op.instr_id,
                        addr=op.operands[0].addr, outcome="retried",
                        reason="pin-loss", span=float(attempts - 1),
                    )
                return True
            self.stats.pin_retries += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "cc.pin_retry", core=self.core_id, level=level,
                    opcode=instr.opcode.value, instr_id=op.instr_id,
                    addr=op.operands[0].addr,
                )
            if attempts >= self.config.cc.pin_retry_limit:
                self._unpin_all(op, level)
                op.fallback_reason = "pin-loss"
                self._risc_fallback(op, instr, key_data)
                if self.tracer is not None:
                    self.tracer.emit(
                        "fault.recover", core=self.core_id, level=level,
                        opcode=instr.opcode.value, instr_id=op.instr_id,
                        addr=op.operands[0].addr, outcome="degraded-risc",
                        reason="pin-loss", span=float(attempts),
                    )
                return False

    def _run_block_op(self, op: BlockOperation, instr: CCInstruction, level: str,
                      key_data: bytes | None, force_nearplace: bool,
                      fetch_latencies: list[int], partition_load: dict[int, int]) -> None:
        skip_fetch = self._overwrites_dest(instr)
        if not self._acquire_operands(op, instr, level, key_data, skip_fetch,
                                      fetch_latencies):
            return

        cache = self.hierarchy.level_cache(level, self.core_id, op.operands[0].addr)
        use_inplace = not force_nearplace and self._locality_holds(op, level)
        try:
            if use_inplace:
                if instr.key_is_fixed_block:
                    self._replicate_key(op, instr, level, key_data)
                outcome = self.inplace.execute(cache, op)
                op.partition = outcome.partition
                partition_load[outcome.partition] = partition_load.get(outcome.partition, 0) + 1
                op.inplace = True
            else:
                # Near-place handles any operand placement, including L3
                # operands homed on different NUCA slices.
                op.fallback_reason = "forced" if force_nearplace else "locality-miss"
                outcome = self.nearplace.execute(
                    lambda addr: self.hierarchy.level_cache(level, self.core_id, addr),
                    op, key_data=key_data,
                )
                op.inplace = False
            op.result_bits = outcome.result_bits
            op.result_bit_count = outcome.result_bit_count
            op.status = OpStatus.ISSUED
        finally:
            self._unpin_all(op, level)

    # -- batched dispatch (phase A / phase B) ----------------------------------------------------

    def _batch_hazard(self, instr: CCInstruction, level: str) -> str | None:
        """Memoizing wrapper around :meth:`_batch_hazard_uncached`.

        The hazard verdict is a pure function of the instruction, the
        level's geometry, and the sticky page->slice map, so it is cached
        per ``(instr, level)`` and only invalidated by an explicit
        :meth:`~repro.cache.hierarchy.CacheHierarchy.place_page`.
        """
        key = (instr, level)
        epoch = self.hierarchy.page_map_epoch
        hit = self._hazard_memo.get(key)
        if hit is not None and hit[0] == epoch:
            self.stats.hazard_memo_hits += 1
            return hit[1]
        hazard = self._batch_hazard_uncached(instr, level)
        if len(self._hazard_memo) >= MEMO_CAPACITY:
            self._hazard_memo.clear()
        self._hazard_memo[key] = (epoch, hazard)
        return hazard

    def _batch_hazard_uncached(self, instr: CCInstruction, level: str) -> str | None:
        """Why batched dispatch is *not* provably equivalent to sequential
        (``"data-hazard"`` / ``"occupancy"``), or None when it is safe.

        Two conditions.  (1) No inter-op data hazard: a *shifted* overlap
        between the destination range and a source range makes a later
        block op read an earlier op's result, which batched gather/compute/
        scatter would miss (an exactly aligned ``dest == src`` overlap is
        within-op and safe).  (2) No capacity (occupancy) hazard: every
        operand block (plus the staged key) must be co-resident at the
        compute level and at every inclusive level below it, so no phase-A
        fetch can evict a block an earlier op already located.
        """
        op = instr.opcode
        if op in (Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOT, Opcode.COPY,
                  Opcode.ADD, Opcode.MUL):
            dest = instr.dest
            srcs = [instr.src1]
            if op in (Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.ADD, Opcode.MUL):
                srcs.append(instr.src2)
            for src in srcs:
                if src != dest and src < dest + instr.size and dest < src + instr.size:
                    return "data-hazard"
        blocks: set[int] = set()
        for name, base in instr.operands().items():
            if name == "dest" and instr.opcode is Opcode.CLMUL:
                continue  # clmul's dest receives a scalar store after phase B
            length = BLOCK_SIZE if (name == "src2" and instr.key_is_fixed_block) else instr.size
            blocks.update(a for a, _ in chunk_range(base, length, BLOCK_SIZE))
        chain = {L1: (L1, L2, L3), L2: (L2, L3), L3: (L3,)}[level]
        for check_level in chain:
            occupancy: dict[tuple[int, int], int] = {}
            for addr in blocks:
                cache = self.hierarchy.level_cache(check_level, self.core_id, addr)
                key = (id(cache), cache.geometry.decode(addr).set_index)
                occupancy[key] = occupancy.get(key, 0) + 1
                if occupancy[key] > cache.config.ways:
                    return "occupancy"
        return None

    def _stage_block_op(self, op: BlockOperation, instr: CCInstruction, level: str,
                        key_data: bytes | None, fetch_latencies: list[int],
                        partition_load: dict[int, int], batches: dict, verify: list) -> None:
        """Phase A of one block op: fetch, pin, locate rows, unpin.

        Performs exactly the cache-side work of the sequential path (same
        fetches, pins, LRU touches, key replication) but defers the
        sub-array kernel to phase B, recording the located rows.  Ops that
        cannot batch (lost pins -> RISC, no locality -> near-place) execute
        immediately, as in the sequential path.
        """
        skip_fetch = self._overwrites_dest(instr)
        if not self._acquire_operands(op, instr, level, key_data, skip_fetch,
                                      fetch_latencies):
            return
        if not self._locality_holds(op, level):
            try:
                op.fallback_reason = "locality-miss"
                outcome = self.nearplace.execute(
                    lambda addr: self.hierarchy.level_cache(level, self.core_id, addr),
                    op, key_data=key_data,
                )
                op.inplace = False
                op.result_bits = outcome.result_bits
                op.result_bit_count = outcome.result_bit_count
                op.status = OpStatus.ISSUED
            finally:
                self._unpin_all(op, level)
            return
        cache = self.hierarchy.level_cache(level, self.core_id, op.operands[0].addr)
        try:
            if instr.key_is_fixed_block:
                self._replicate_key(op, instr, level, key_data)
            subarray, rows, located = self._locate_rows(cache, op)
            partition = cache.geometry.partition_of(op.operands[0].addr)
            op.partition = partition
            partition_load[partition] = partition_load.get(partition, 0) + 1
        finally:
            self._unpin_all(op, level)
        group = (id(cache), partition)
        batches.setdefault(group, [cache, subarray, partition, []])[3].append((op, rows))
        verify.append((op, cache, located, group))

    def _locate_rows(self, cache, op: BlockOperation):
        """Sub-array rows of one locality-satisfying block op.

        Returns ``(subarray, (row_a, row_b, row_dest), located)`` where the
        unused row slots are ``None`` and ``located`` lists the
        ``(addr, row)`` pairs for phase-B re-verification.
        """
        subop = op.subarray_op
        locs = [cache.locate(o.addr) for o in op.operands]
        subarray = locs[0][0]
        located = [(o.addr, loc[1]) for o, loc in zip(op.operands, locs)]
        sources = [loc[1] for o, loc in zip(op.operands, locs) if not o.is_dest]
        dest_row = next(
            (loc[1] for o, loc in zip(op.operands, locs) if o.is_dest), None
        )
        if subop in ("and", "or", "xor", "add", "mul"):
            triple = (sources[0], sources[1], dest_row)
        elif subop == "reduce":
            triple = (sources[0], None, None)
        elif subop in ("not", "copy"):
            triple = (sources[0], None, dest_row)
        elif subop == "buz":
            triple = (dest_row, None, dest_row)
        elif subop == "cmp":
            triple = (sources[0], sources[1], None)
        elif subop == "search":
            triple = (sources[0], cache.geometry.key_row, None)
        elif subop == "clmul":
            row_b = sources[1] if len(sources) > 1 else cache.geometry.key_row
            triple = (sources[0], row_b, None)
        else:
            raise ReproError(f"no batched dispatch for {subop!r}")
        return subarray, triple, located

    def _row_intact(self, cache, addr: int, row: int) -> bool:
        """Uncounted check that a block still occupies its located row."""
        parts = cache.geometry.decode(addr)
        way = cache.tags.probe(parts.set_index, parts.tag)
        return way is not None and cache.geometry.row_of(parts.set_index, way) == row

    def _drain_batches(self, instr: CCInstruction, level: str, key_data: bytes | None,
                       batches: dict, verify: list, fetch_latencies: list[int],
                       partition_load: dict[int, int]) -> None:
        """Phase B: verify located rows, then one kernel call per sub-array.

        ``_batch_hazard`` guarantees no phase-A fetch can displace a located
        block, so verification is a pure backstop; any op whose rows did
        move is pulled out of its batch and re-executed sequentially.
        """
        while True:
            moved = [
                item for item in verify
                if not all(self._row_intact(item[1], addr, row) for addr, row in item[2])
            ]
            if not moved:
                break
            for item in moved:
                verify.remove(item)
                op, _cache, _located, group = item
                entry = batches[group]
                entry[3] = [(o, r) for o, r in entry[3] if o is not op]
                partition_load[entry[2]] -= 1
                if not partition_load[entry[2]]:
                    del partition_load[entry[2]]
                self._run_block_op(op, instr, level, key_data, False,
                                   fetch_latencies, partition_load)
        for cache, subarray, partition, items in batches.values():
            if items:
                self.inplace.execute_batch(cache, subarray, partition, items)

    def _prepare_and_pin(self, op: BlockOperation, level: str, skip_fetch: bool,
                         fetch_latencies: list[int]) -> bool:
        """Fetch and pin every operand; True if a pin was lost (retry)."""
        for operand in op.operands:
            latency = self.hierarchy.cc_prepare(
                self.core_id, level, operand.addr, operand.is_dest,
                skip_fetch=skip_fetch and operand.is_dest,
            )
            if latency:
                fetch_latencies.append(latency)
                if self.tracer is not None:
                    self.tracer.emit(
                        "cc.fetch", core=self.core_id, level=level,
                        addr=operand.addr, instr_id=op.instr_id,
                        span=float(latency),
                    )
            if self.fetch_fault_hook is not None and \
                    self.fetch_fault_hook(operand.addr):
                # Injected operand-fetch timeout: drop any partial pin set
                # and go back through the starvation-avoidance retry path.
                self._unpin_all(op, level)
                return True
            cache = self.hierarchy.level_cache(level, self.core_id, operand.addr)
            try:
                cache.pin(operand.addr, op.instr_id)
            except PinnedLineError:
                self._unpin_all(op, level)
                return True
            operand.pinned = True
        if self.contention_hook is not None:
            for operand in op.operands:
                if self.contention_hook(operand.addr):
                    # A forwarded coherence request: release the lock and
                    # respond (Section IV-F), then retry the fetch.
                    self._unpin_all(op, level)
                    return True
        return False

    def _unpin_all(self, op: BlockOperation, level: str) -> None:
        for operand in op.operands:
            if operand.pinned:
                self.hierarchy.cc_release(self.core_id, level, operand.addr)
                operand.pinned = False

    def _locality_holds(self, op: BlockOperation, level: str) -> bool:
        if len(op.operands) < 2:
            return True
        cache = self.hierarchy.level_cache(level, self.core_id, op.operands[0].addr)
        parts = {cache.geometry.partition_of(o.addr) for o in op.operands}
        if len(parts) != 1:
            return False
        # Multi-slice L3: operands must also be homed on the same slice.
        if level == L3:
            slices = {self.hierarchy.home_slice(o.addr, self.core_id) for o in op.operands}
            return len(slices) == 1
        return True

    # -- search key handling --------------------------------------------------------------------

    def _stage_key(self, instr: CCInstruction, level: str) -> tuple[bytes, int]:
        """Fetch the 64-byte key to the compute level and read it out once."""
        key_addr = instr.src2
        latency = self.hierarchy.cc_prepare(self.core_id, level, key_addr, is_dest=False)
        if latency and self.tracer is not None:
            self.tracer.emit("cc.fetch", core=self.core_id, level=level,
                             addr=key_addr, span=float(latency), outcome="key")
        cache = self.hierarchy.level_cache(level, self.core_id, key_addr)
        return cache.read_block(key_addr, charge=False), latency

    def _replicate_key(self, op: BlockOperation, instr: CCInstruction, level: str,
                       key_data: bytes | None) -> None:
        """Write the key into the data block's partition key row (once per
        partition per instruction, tracked by the key table)."""
        if key_data is None:
            raise ReproError("search with no staged key")
        data_addr = op.operands[0].addr
        cache = self.hierarchy.level_cache(level, self.core_id, data_addr)
        partition = cache.geometry.partition_of(data_addr)
        if level == L3:
            partition = (self.hierarchy.home_slice(data_addr, self.core_id), partition)
        if self.key_table.needs_replication(op.instr_id, instr.src2, level, partition):
            real_partition = partition[1] if isinstance(partition, tuple) else partition
            cache.geometry.write_key(real_partition, key_data)
            # The H-tree fans the key out to every target sub-array at
            # once: wire energy is charged per instruction, array writes
            # per partition.
            if self.key_table.needs_broadcast(op.instr_id, instr.src2, level):
                charge_key_broadcast(cache.ledger, cache.name)
            charge_key_row_write(cache.ledger, cache.name)
            self.stats.key_replications += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "cc.key_replicate", core=self.core_id, level=level,
                    partition=partition, addr=data_addr, instr_id=op.instr_id,
                )

    # -- clmul result packing ----------------------------------------------------------------------

    @staticmethod
    def _pack_clmul_result(bits: list[tuple[int, int]]) -> bytes:
        packed = 0
        filled = 0
        for value, count in bits:
            packed |= value << filled
            filled += count
        nbytes = (filled + 7) // 8
        return packed.to_bytes(max(nbytes, 1), "little")

    # -- RISC fallback (Section IV-E) -----------------------------------------------------------------

    def _risc_fallback(self, op: BlockOperation, instr: CCInstruction,
                       key_data: bytes | None) -> None:
        """Translate a block op into core loads/stores when pinning keeps
        failing (starvation avoidance)."""
        self.stats.risc_fallbacks += 1
        sources = [
            self.hierarchy.read(self.core_id, o.addr, BLOCK_SIZE)[0]
            for o in op.source_operands
        ]
        from ..bitops import bytes_and, bytes_not, bytes_or, bytes_xor

        subop = op.subarray_op
        result_data: bytes | None = None
        if subop == "copy":
            result_data = sources[0]
        elif subop == "buz":
            result_data = bytes(BLOCK_SIZE)
        elif subop == "not":
            result_data = bytes_not(sources[0])
        elif subop == "and":
            result_data = bytes_and(sources[0], sources[1])
        elif subop == "or":
            result_data = bytes_or(sources[0], sources[1])
        elif subop == "xor":
            result_data = bytes_xor(sources[0], sources[1])
        elif subop == "cmp":
            op.result_bits, op.result_bit_count = NearPlaceUnit._cmp_words(
                sources[0], sources[1]
            )
        elif subop == "search":
            if key_data is None:
                raise ReproError("RISC search fallback with no key")
            op.result_bits, op.result_bit_count = (
                1 if sources[0] == key_data else 0, 1,
            )
        elif subop == "clmul":
            other = sources[1] if len(sources) > 1 else key_data
            if other is None:
                raise ReproError("RISC clmul fallback with no key")
            op.result_bits, op.result_bit_count = NearPlaceUnit._clmul(
                sources[0], other, op.lane_bits or 64
            )
        elif subop in ("add", "mul"):
            import numpy as np

            from ..kernels import arith_rows

            result_data = arith_rows(
                subop,
                np.frombuffer(sources[0], dtype=np.uint8),
                np.frombuffer(sources[1], dtype=np.uint8),
                op.elem_bits or 8,
            )[0].tobytes()
        elif subop == "reduce":
            import numpy as np

            from ..kernels import reduce_rows

            total = int(reduce_rows(
                np.frombuffer(sources[0], dtype=np.uint8), op.elem_bits or 8
            )[0])
            op.result_bits, op.result_bit_count = total, 0
        else:
            raise ReproError(f"no RISC fallback for {subop!r}")
        dest = op.dest_operand
        if dest is not None and result_data is not None:
            self.hierarchy.write(self.core_id, dest.addr, result_data)
        # Core executes ~2 RISC ops per word plus loop overhead.
        words = BLOCK_SIZE // 8
        self.hierarchy.ledger.add(
            Component.CORE, 3 * words * self.config.core.epi_scalar
        )
        op.status = OpStatus.FAILED

    # -- timing ------------------------------------------------------------------------------

    def _fetch_makespan(self, latencies: list[int]) -> float:
        """Operand fetches overlap up to FETCH_MLP outstanding requests."""
        if not latencies:
            return 0.0
        return max(max(latencies), math.ceil(sum(latencies) / FETCH_MLP))

    def _issue_cycles(self, level: str, commands: int) -> int:
        """Cycles to stream block commands down the level's address bus."""
        if commands <= 0:
            return 0
        cache = {L1: self.hierarchy.l1[self.core_id],
                 L2: self.hierarchy.l2[self.core_id],
                 L3: self.hierarchy.l3[0]}[level]
        return cache.htree.command_issue_cycles(commands)

    def _compute_makespan(self, level: str, partition_load: dict[int, int],
                          nearplace_cycles: float,
                          inplace_latency: float | None = None) -> float:
        """In-place ops stream down the address bus and run concurrently
        across partitions, serially within one; near-place ops serialize
        through the controller's logic unit.  ``inplace_latency`` is the
        per-block-op latency (step-scaled for the arithmetic tier);
        defaults to the single-step in-place latency."""
        if inplace_latency is None:
            inplace_latency = float(self.inplace.inplace_latency)
        makespan = nearplace_cycles
        if partition_load:
            issue = self._issue_cycles(level, sum(partition_load.values()))
            busiest = max(partition_load.values())
            makespan += issue + busiest * inplace_latency
        return makespan
