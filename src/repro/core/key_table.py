"""The CC controller's key table (Section IV-D).

``cc_search`` compares many data blocks against one 64-byte key.  In-place
comparison requires the key to sit in the *same block partition* as each
data block, so the controller replicates the key into every partition where
source data resides.  The key table tracks, per instruction, which
partitions already hold the key so repeated searches by the same
instruction do not re-replicate it - the writes are what limit search's
energy savings (Section VI-D), so avoiding redundant ones matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class KeyEntry:
    """Partitions of one cache level already holding one instruction's key."""

    key_addr: int
    partitions: set[tuple[str, int]] = field(default_factory=set)
    replications: int = 0
    broadcast_levels: set[str] = field(default_factory=set)
    """Levels whose H-tree already carried this key (the broadcast wire
    energy is paid once per level per instruction)."""


class KeyTable:
    """Per-instruction key-replication tracking."""

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = capacity
        self._entries: dict[int, KeyEntry] = {}
        self.total_replications = 0
        self.replications_avoided = 0

    def ensure(self, instr_id: int, key_addr: int) -> KeyEntry:
        entry = self._entries.get(instr_id)
        if entry is None:
            if len(self._entries) >= self.capacity:
                # Evict the stalest entry; its key rows simply get rewritten.
                oldest = next(iter(self._entries))
                del self._entries[oldest]
            entry = KeyEntry(key_addr=key_addr)
            self._entries[instr_id] = entry
        return entry

    def needs_replication(self, instr_id: int, key_addr: int, level: str, partition: int) -> bool:
        """True if the key must be written into (level, partition).

        Marks the partition as populated when replication is needed, so the
        caller performs the write exactly once.
        """
        entry = self.ensure(instr_id, key_addr)
        slot = (level, partition)
        if slot in entry.partitions:
            self.replications_avoided += 1
            return False
        entry.partitions.add(slot)
        entry.replications += 1
        self.total_replications += 1
        return True

    def needs_broadcast(self, instr_id: int, key_addr: int, level: str) -> bool:
        """True exactly once per (instruction, level): whether the key's
        H-tree broadcast energy must still be charged."""
        entry = self.ensure(instr_id, key_addr)
        if level in entry.broadcast_levels:
            return False
        entry.broadcast_levels.add(level)
        return True

    def release(self, instr_id: int) -> None:
        self._entries.pop(instr_id, None)

    def partitions_of(self, instr_id: int) -> set[tuple[str, int]]:
        entry = self._entries.get(instr_id)
        return set() if entry is None else set(entry.partitions)
