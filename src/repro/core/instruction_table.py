"""The L1 CC controller's instruction table (Section IV-D).

Tracks metadata for each pending CC instruction: the accumulated result
(for CC-R instructions), how many of its simple vector operations have
completed, and which operation is generated next.  The L1 controller
notifies the core when the count reaches the total.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from .isa import CCInstruction


@dataclass
class InstructionEntry:
    """One pending CC instruction."""

    instr: CCInstruction
    instr_id: int
    total_ops: int
    completed_ops: int = 0
    next_op_index: int = 0
    result_mask: int = 0
    result_bits_filled: int = 0
    level: str | None = None
    fallback_to_risc: bool = False

    @property
    def done(self) -> bool:
        return self.completed_ops >= self.total_ops

    def generate_next(self) -> int:
        """Index of the next simple vector operation to generate."""
        if self.next_op_index >= self.total_ops:
            raise ReproError(f"instruction {self.instr_id} has no more operations to generate")
        idx = self.next_op_index
        self.next_op_index += 1
        return idx

    def complete_op(self, result_bits: int = 0, bit_count: int = 0) -> None:
        """Record one completed block operation, merging any result bits.

        Result bits from successive block ops are packed little-endian into
        the 64-bit result register (word 0 of block 0 is bit 0).
        """
        if self.done:
            raise ReproError(f"instruction {self.instr_id} already complete")
        if bit_count:
            if self.result_bits_filled + bit_count > 64:
                raise ReproError(
                    f"instruction {self.instr_id} result overflows the 64-bit register"
                )
            self.result_mask |= result_bits << self.result_bits_filled
            self.result_bits_filled += bit_count
        self.completed_ops += 1


class InstructionTable:
    """Fixed-capacity table of pending CC instructions."""

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = capacity
        self._entries: dict[int, InstructionEntry] = {}
        self._next_id = 0
        self.peak_occupancy = 0

    def allocate(self, instr: CCInstruction, total_ops: int) -> InstructionEntry:
        if len(self._entries) >= self.capacity:
            raise ReproError(
                f"instruction table full ({self.capacity} entries); core must stall"
            )
        entry = InstructionEntry(instr=instr, instr_id=self._next_id, total_ops=total_ops)
        self._entries[self._next_id] = entry
        self._next_id += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return entry

    def get(self, instr_id: int) -> InstructionEntry:
        try:
            return self._entries[instr_id]
        except KeyError:
            raise ReproError(f"unknown CC instruction id {instr_id}") from None

    def retire(self, instr_id: int) -> InstructionEntry:
        """Remove a completed instruction; returns its final entry."""
        entry = self.get(instr_id)
        if not entry.done and not entry.fallback_to_risc:
            raise ReproError(f"retiring incomplete CC instruction {instr_id}")
        del self._entries[instr_id]
        return entry

    @property
    def pending(self) -> list[InstructionEntry]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
