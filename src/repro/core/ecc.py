"""Error detection and correction for Compute Caches (Section IV-I).

A real SECDED Hamming(72, 64) code protects each 64-bit word: 7 Hamming
parity bits plus one overall parity bit give single-error correction and
double-error detection.  The code is *linear* - ``ECC(a ^ b) = ECC(a) ^
ECC(b)`` - which is exactly the property the paper's XOR-check scheme
exploits for in-place logical operations:

* ``cc_copy``   - copy the source's ECC to the destination;
* ``cc_buz``    - install the precomputed ECC of the all-zero block;
* ``cc_cmp``/``cc_search`` - compare the operands' ECCs alongside their
  data: an error is flagged when data bits match but ECC bits do not, or
  vice versa;
* logical ops   - read out ``a XOR b`` (computable alongside any in-place
  logical op) and its operands' ECCs, then verify
  ``ECC(a XOR b) == ECC(a) XOR ECC(b)`` at the ECC logic unit, which also
  computes the result's ECC; or
* *scrubbing*   - periodically sweep the cache during idle cycles,
  re-checking and correcting every protected block (soft errors are rare:
  0.7-7 errors/year), keeping the common path untouched.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..bitops import bytes_xor, parity
from ..errors import ECCError
from ..params import BLOCK_SIZE, WORD_SIZE

_DATA_BITS = 64
_HAMMING_PARITY_BITS = 7  # covers up to 120 data bits; 64 fits
_CODE_BITS = 72


def _build_masks() -> list[int]:
    """For each Hamming parity bit, the mask over the 64 data bits it covers.

    Data bits occupy the non-power-of-two codeword positions 3,5,6,7,9,...;
    parity bit *p* (at position ``2**p``) covers every codeword position with
    bit *p* set.
    """
    data_positions: list[int] = []
    pos = 1
    while len(data_positions) < _DATA_BITS:
        if pos & (pos - 1):  # not a power of two -> data position
            data_positions.append(pos)
        pos += 1
    masks = []
    for p in range(_HAMMING_PARITY_BITS):
        mask = 0
        for i, position in enumerate(data_positions):
            if position & (1 << p):
                mask |= 1 << i
        masks.append(mask)
    return masks


_PARITY_MASKS = _build_masks()
_DATA_POSITIONS = [
    pos for pos in range(1, 200) if pos & (pos - 1)
][:_DATA_BITS]
_POSITION_TO_DATA_BIT = {pos: i for i, pos in enumerate(_DATA_POSITIONS)}


def encode_word(data: int) -> int:
    """8-bit check value (7 Hamming bits + overall parity) for a 64-bit word."""
    check = 0
    for p, mask in enumerate(_PARITY_MASKS):
        check |= parity(data & mask) << p
    overall = parity(data) ^ parity(check)
    return check | (overall << _HAMMING_PARITY_BITS)


@dataclass(frozen=True)
class EccCheckResult:
    """Outcome of checking one word."""

    ok: bool
    corrected: bool
    data: int

    @classmethod
    def clean(cls, data: int) -> "EccCheckResult":
        return cls(ok=True, corrected=False, data=data)


def check_word(data: int, check: int) -> EccCheckResult:
    """Verify (and if needed correct) a 64-bit word against its check byte.

    Textbook SECDED decode: the Hamming syndrome locates a flipped bit and
    the *whole-codeword* parity (data + Hamming bits + overall bit, even by
    construction) distinguishes single from double errors.  Raises
    :class:`ECCError` on an uncorrectable (double-bit) error.
    """
    hamming_stored = check & ((1 << _HAMMING_PARITY_BITS) - 1)
    overall_stored = (check >> _HAMMING_PARITY_BITS) & 1
    expected = encode_word(data)
    syndrome = (hamming_stored ^ expected) & ((1 << _HAMMING_PARITY_BITS) - 1)
    codeword_parity = parity(data) ^ parity(hamming_stored) ^ overall_stored
    if syndrome == 0 and codeword_parity == 0:
        return EccCheckResult.clean(data)
    if codeword_parity == 1:
        # Odd total parity: exactly one bit flipped.
        if syndrome == 0:
            # The overall-parity bit itself was hit; data is intact.
            return EccCheckResult(ok=True, corrected=True, data=data)
        data_bit = _POSITION_TO_DATA_BIT.get(syndrome)
        if data_bit is None:
            # A Hamming parity bit was hit; data is intact.
            return EccCheckResult(ok=True, corrected=True, data=data)
        return EccCheckResult(ok=True, corrected=True, data=data ^ (1 << data_bit))
    # Even total parity with a non-zero syndrome: two bits flipped.
    raise ECCError(f"uncorrectable double-bit error (syndrome {syndrome:#x})")


class EccPolicy(enum.Enum):
    """ECC strategies for in-place logical operations (Section IV-I)."""

    XOR_CHECK = "xor-check"
    SCRUB = "scrub"


@dataclass
class EccStats:
    words_encoded: int = 0
    words_checked: int = 0
    corrections: int = 0
    xor_checks: int = 0
    scrub_passes: int = 0
    scrub_blocks: int = 0
    extra_transfers: int = 0


class EccCodec:
    """Block-granularity SECDED codec plus the paper's per-op ECC schemes."""

    def __init__(self, policy: EccPolicy = EccPolicy.SCRUB) -> None:
        self.policy = policy
        self.stats = EccStats()

    # -- word/block primitives ------------------------------------------------------

    def encode_block(self, data: bytes) -> bytes:
        """One check byte per 64-bit word: 8 ECC bytes per 64-byte block."""
        if len(data) % WORD_SIZE:
            raise ECCError(f"block of {len(data)} bytes is not whole words")
        out = bytearray()
        for i in range(0, len(data), WORD_SIZE):
            word = int.from_bytes(data[i : i + WORD_SIZE], "little")
            out.append(encode_word(word))
            self.stats.words_encoded += 1
        return bytes(out)

    def check_block(self, data: bytes, ecc: bytes) -> bytes:
        """Check every word; returns (possibly corrected) data."""
        if len(ecc) * WORD_SIZE != len(data):
            raise ECCError("ECC length does not match data length")
        out = bytearray()
        for i, check in enumerate(ecc):
            word = int.from_bytes(data[i * WORD_SIZE : (i + 1) * WORD_SIZE], "little")
            result = check_word(word, check)
            self.stats.words_checked += 1
            if result.corrected:
                self.stats.corrections += 1
            out += result.data.to_bytes(WORD_SIZE, "little")
        return bytes(out)

    # -- per-operation schemes --------------------------------------------------------

    def ecc_for_copy(self, src_ecc: bytes) -> bytes:
        """cc_copy: the destination's ECC is a copy of the source's."""
        return bytes(src_ecc)

    def ecc_for_buz(self, block_bytes: int = BLOCK_SIZE) -> bytes:
        """cc_buz: precomputed ECC of the all-zero block."""
        return self.encode_block(bytes(block_bytes))

    def compare_check(self, data_a: bytes, data_b: bytes, ecc_a: bytes, ecc_b: bytes) -> bool:
        """cc_cmp/cc_search ECC rule: data equality must agree with ECC
        equality; a disagreement reveals a bit error in one operand."""
        data_match = data_a == data_b
        ecc_match = ecc_a == ecc_b
        if data_match != ecc_match:
            raise ECCError(
                "compare ECC check failed: data "
                + ("match but ECCs differ" if data_match else "differ but ECCs match")
            )
        return data_match

    def xor_check(
        self, xor_data: bytes, ecc_a: bytes, ecc_b: bytes
    ) -> bytes:
        """XOR-linearity check for in-place logical ops.

        Verifies ``ECC(a XOR b) == ECC(a) XOR ECC(b)`` and returns the
        recomputed ECC of the XOR (the logic unit reuses the machinery to
        produce the result's ECC).  Each check costs extra transfers to the
        ECC logic unit, which is why scrubbing is the preferred policy.
        """
        self.stats.xor_checks += 1
        self.stats.extra_transfers += 2  # xor readout + result ECC writeback
        computed = self.encode_block(xor_data)
        expected = bytes_xor(ecc_a, ecc_b)
        if computed != expected:
            raise ECCError("XOR-linearity ECC check failed: operand bit error detected")
        return computed


class CacheScrubber:
    """Idle-cycle cache scrubbing (the paper's preferred logical-op policy).

    Holds the ECC side-band for a set of blocks and sweeps them, correcting
    single-bit errors.  Soft-error rates are 0.7-7 errors/year, so scrub
    bandwidth is negligible; the model simply counts passes and blocks.
    """

    def __init__(self, codec: EccCodec) -> None:
        self.codec = codec
        self._ecc: dict[int, bytes] = {}

    def protect(self, addr: int, data: bytes) -> None:
        """(Re)compute the ECC side-band for a block."""
        self._ecc[addr] = self.codec.encode_block(data)

    def ecc_of(self, addr: int) -> bytes:
        try:
            return self._ecc[addr]
        except KeyError:
            raise ECCError(f"no ECC side-band for block {addr:#x}") from None

    def scrub(self, blocks: dict[int, bytes]) -> dict[int, bytes]:
        """One scrub pass over ``{addr: data}``; returns corrected data."""
        self.codec.stats.scrub_passes += 1
        corrected: dict[int, bytes] = {}
        for addr, data in blocks.items():
            self.codec.stats.scrub_blocks += 1
            corrected[addr] = self.codec.check_block(data, self.ecc_of(addr))
        return corrected
