"""Cache scrubbing service: wiring the ECC scrubber to live cache levels.

Section IV-I's preferred ECC policy for in-place logical operations is
idle-cycle scrubbing.  :class:`ScrubService` attaches to a
:class:`~repro.cache.cache.CacheLevel`:

* :meth:`protect_resident` (re)computes the ECC side-band for every
  resident block (what a hardware fill path would do incrementally);
* :meth:`scrub_pass` sweeps the level during idle cycles, re-checking
  every protected resident block and writing back corrections;
* :meth:`inject_strike` flips a bit in a resident block *in the physical
  sub-array* - a particle-strike fault injection the next scrub pass must
  catch and repair.

Scrub cost is accounted as conventional reads (and writes for
corrections), so a long-running simulation can price the policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache.cache import CacheLevel
from .ecc import CacheScrubber, EccCodec, EccPolicy


@dataclass
class ScrubReport:
    """Result of one scrub pass."""

    blocks_checked: int = 0
    corrections: int = 0
    corrected_addrs: list[int] = field(default_factory=list)


class ScrubService:
    """Idle-cycle ECC scrubbing for one cache level."""

    def __init__(self, level: CacheLevel) -> None:
        self.level = level
        self.codec = EccCodec(EccPolicy.SCRUB)
        self.scrubber = CacheScrubber(self.codec)
        self.strikes_injected = 0

    def protect_resident(self) -> int:
        """Compute/refresh the ECC side-band for all resident blocks."""
        count = 0
        for addr in self.level.resident_addresses():
            self.scrubber.protect(addr, self.level.peek_block(addr))
            count += 1
        return count

    def protect_block(self, addr: int) -> None:
        """Refresh one block's side-band (a write/fill hook)."""
        self.scrubber.protect(addr, self.level.peek_block(addr))

    def inject_strike(self, addr: int, bit: int) -> None:
        """Flip one bit of a resident block in the physical sub-array."""
        data = bytearray(self.level.peek_block(addr))
        data[bit // 8] ^= 1 << (bit % 8)
        sub, row = self.level.locate(addr)
        sub.write_block(row, bytes(data))
        self.strikes_injected += 1

    def scrub_pass(self) -> ScrubReport:
        """Sweep every protected resident block; correct what flipped.

        Reads charge conventional access energy (the sweep is real cache
        traffic, just scheduled into idle cycles); corrections write back.
        """
        report = ScrubReport()
        for addr in self.level.resident_addresses():
            try:
                ecc = self.scrubber.ecc_of(addr)
            except Exception:
                continue  # block filled since the last protect pass
            data = self.level.read_block(addr)
            report.blocks_checked += 1
            corrected = self.codec.check_block(data, ecc)
            if corrected != data:
                self.level.write_block(addr, corrected, dirty=True)
                report.corrections += 1
                report.corrected_addrs.append(addr)
        return report


from .._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "ScrubService",
))
