"""Cross-instruction batching of CC instructions (the stream scheduler).

PR 1 batched *within* one CC instruction: `ComputeCacheController` stages
every block op of an instruction (phase A) and drains them as one kernel
call per sub-array (phase B).  This module batches *across* instructions:
:class:`CCInstructionStream` analyses a window of consecutive CC
instructions for independence over their operand byte ranges and, when a
run of instructions is provably equivalent to one-at-a-time execution,
fuses all their block ops into shared per-sub-array
:meth:`~repro.sram.ComputeSubarray.op_batch` kernel calls.

Fusion is *observationally invisible*: per-instruction
:class:`~repro.core.controller.CCResult` values, cache/sub-array/controller
statistics, the energy ledger, and the event stream are bit-identical to
executing the same instructions one at a time through
:meth:`ComputeCacheController.execute` (``tests/test_stream_property.py``
proves it differentially).  The wins are simulator wall-clock throughput
(fewer Python-level probes and one vectorized kernel call per sub-array
instead of one per instruction) and an *overlapped* machine-cycle model:
:class:`StreamResult` reports both the serial sum of per-instruction
latencies and the RMO-overlap makespan (controller occupancy serializes,
sub-array work overlaps — the same model
:class:`~repro.cpu.core_model.CoreModel` applies, via
:class:`CCOccupancyTimeline`).

A run of instructions is fused only when every member provably hits the
sequential path's zero-cost staging:

* single page-local piece, fusable opcode (``and/or/xor/not/copy/buz/cmp``;
  key-replicating and ``clmul`` instructions fall back to sequential);
* one shared compute level and opcode/lane width (keeps per-sub-array
  accounting order, and therefore float accumulation, canonical);
* the controller's per-instruction hazard analysis reports no hazard
  (so the ``cc.dispatch`` event matches the sequential path verbatim);
* operand block sets of distinct members are fully disjoint (no data
  hazards, no pin conflicts);
* every operand block is resident at the compute level with no private
  copies above it (L3: no directory sharers; L2: nothing in L1; dests
  writable) — exactly the condition under which the sequential
  ``cc_prepare`` fast path performs no fetch, charge, or event;
* operand locality holds for every block op (no near-place execution);
* no contention/fetch-fault hooks and no reuse policy are installed
  (fault-injection campaigns always take the sequential path).

Anything else executes through the unmodified sequential path, so the
stream accepts arbitrary instruction sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache.block import MESIState
from ..cache.hierarchy import L1, L2, L3
from ..errors import CoherenceError, ReproError
from .controller import (
    INSTRUCTION_OVERHEAD_CYCLES,
    MEMO_CAPACITY,
    CCResult,
    ComputeCacheController,
)
from .isa import CCInstruction, Opcode
from .operation_table import BlockOperand, BlockOperation, OpStatus

DEFAULT_WINDOW = 8
"""Instructions considered for one fused group.  Clamped to the
instruction table's capacity: every member holds a live instruction-table
entry until the group's kernels complete (hardware would stall the same
way)."""

LOCATE_MEMO_CAPACITY = 1 << 16
"""Entries kept in the per-block locate memo.  Sized for fig7-scale
streams (hundreds of instructions x 64 blocks x 3 operands) — the
entries are small tuples, and a wholesale clear on overflow only costs
re-probing."""

FUSABLE_OPCODES = frozenset({
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOT,
    Opcode.COPY, Opcode.BUZ, Opcode.CMP,
})
"""Opcodes eligible for cross-instruction fusion.  ``search`` and
broadcast ``clmul`` replicate keys into shared per-partition key rows
(members would collide), and ``clmul`` stores its packed result through
the hierarchy mid-stream; all take the sequential path."""


@dataclass
class CCOccupancyTimeline:
    """The RMO overlap model for CC work (Section IV-G), shared by
    :class:`~repro.cpu.core_model.CoreModel` and the stream scheduler.

    The (single, per-core) CC controller is busy for each instruction's
    *occupancy* (decode + command-bus issue + serial near-place time);
    later instructions queue behind that, while sub-array execution
    completes in the background and overlaps freely.
    """

    busy_until: float = 0.0
    last_completion: float = 0.0

    def issue(self, now: float, occupancy_cycles: float,
              total_cycles: float) -> float:
        """Issue one CC instruction at ``now``; returns its start cycle."""
        start = max(now, self.busy_until)
        self.busy_until = start + max(occupancy_cycles, 1.0)
        self.last_completion = max(self.last_completion, start + total_cycles)
        return start

    @property
    def drain_target(self) -> float:
        """Cycle by which all issued CC work has completed."""
        return max(self.busy_until, self.last_completion)


@dataclass
class StreamResult:
    """Outcome of one :meth:`CCInstructionStream.execute` call."""

    results: list[CCResult] = field(default_factory=list)
    """Per-instruction results, bit-identical to sequential execution."""
    fused_instructions: int = 0
    fused_groups: int = 0
    kernel_calls: int = 0
    """Merged sub-array kernel invocations issued for fused groups."""
    serial_cycles: float = 0.0
    """Sum of per-instruction latencies (the pre-stream serial model)."""
    overlapped_cycles: float = 0.0
    """RMO-overlap makespan: occupancy serializes, sub-array work
    overlaps (see :class:`CCOccupancyTimeline`)."""

    @property
    def instructions(self) -> int:
        return len(self.results)

    @property
    def fused_fraction(self) -> float:
        return self.fused_instructions / len(self.results) if self.results else 0.0

    @property
    def overlap_speedup(self) -> float:
        """Serial-model cycles per overlapped-model cycle (>= 1)."""
        return (self.serial_cycles / self.overlapped_cycles
                if self.overlapped_cycles else 0.0)

    @property
    def simulated_bytes(self) -> int:
        return sum(r.instr.size for r in self.results)


@dataclass
class _Plan:
    """Memoized pure decode of one (instruction, level) pair."""

    operand_specs: list[list[tuple[int, bool]]]
    """Per block op: ``(block address, is_dest)`` for each operand."""
    caches: list  # CacheLevel per block op
    partitions: list[int]
    block_flags: dict[int, bool]
    """Every operand block address -> written-to (dest) flag."""
    blocks: frozenset[int]
    local: bool
    """All block ops satisfy operand locality (same partition/slice)."""


@dataclass
class _Member:
    instr: CCInstruction
    level: str
    plan: _Plan


class CCInstructionStream:
    """Schedules a stream of CC instructions through one controller,
    fusing independent runs into shared per-sub-array kernel calls."""

    def __init__(self, controller: ComputeCacheController,
                 window: int = DEFAULT_WINDOW) -> None:
        self.controller = controller
        self.window = max(1, min(window, controller.instruction_table.capacity))
        self._plan_memo: dict[tuple[CCInstruction, str], tuple[int, _Plan]] = {}
        self._locate_memo: dict[tuple[int, int], tuple[int, tuple]] = {}
        self._preflight_memo: dict[CCInstruction, tuple[int, bool]] = {}

    # -- public API -----------------------------------------------------------------

    def execute(self, instrs, force_level: str | None = None,
                force_nearplace: bool = False) -> StreamResult:
        """Run a sequence of CC instructions; returns per-instruction
        results plus stream-level fusion and overlap accounting."""
        instrs = list(instrs)
        out = StreamResult()
        ctrl = self.controller
        fusing = (self.window >= 2 and not force_nearplace
                  and ctrl.contention_hook is None
                  and ctrl.fetch_fault_hook is None
                  and ctrl.reuse_policy is None)
        i = 0
        while i < len(instrs):
            group = self._collect_group(instrs, i, force_level) if fusing else None
            if group is not None and len(group) >= 2:
                out.results.extend(self._execute_fused(group, out))
                out.fused_instructions += len(group)
                out.fused_groups += 1
                i += len(group)
            else:
                out.results.append(ctrl.execute(
                    instrs[i], force_level=force_level,
                    force_nearplace=force_nearplace))
                i += 1
        out.serial_cycles = sum(r.cycles for r in out.results)
        timeline = CCOccupancyTimeline()
        for res in out.results:
            timeline.issue(0.0, res.occupancy_cycles, res.cycles)
        out.overlapped_cycles = timeline.drain_target
        return out

    # -- group selection ---------------------------------------------------------------

    def _collect_group(self, instrs, start: int,
                       force_level: str | None) -> list[_Member] | None:
        first = self._fusable_member(instrs[start], force_level)
        if first is None:
            return None
        members = [first]
        blocks = set(first.plan.blocks)
        for j in range(start + 1, min(start + self.window, len(instrs))):
            cand = self._fusable_member(instrs[j], force_level)
            if cand is None:
                break
            if (cand.level != first.level
                    or cand.instr.opcode is not first.instr.opcode
                    or cand.instr.lane_bits != first.instr.lane_bits):
                break
            # Full block-set disjointness: rules out every cross-member
            # data hazard and pin conflict at once.
            if not blocks.isdisjoint(cand.plan.blocks):
                break
            members.append(cand)
            blocks.update(cand.plan.blocks)
        return members

    def _fusable_member(self, instr: CCInstruction,
                        force_level: str | None) -> _Member | None:
        if instr.opcode not in FUSABLE_OPCODES or instr.key_is_fixed_block:
            return None
        if instr.spans_page_boundary():
            return None
        ctrl = self.controller
        level = ctrl._select_level(instr, force_level)
        if ctrl._batch_hazard(instr, level) is not None:
            return None
        plan = self._plan(instr, level)
        if not plan.local:
            return None
        if level == L3:
            # The L3 verdict depends only on residency (every fill and
            # invalidate anywhere bumps the residency epoch) and directory
            # sharers.  A sharer can only *appear* through a private fill,
            # which bumps the epoch, so a memoized True cannot go stale; a
            # stale False merely falls back to the always-correct
            # sequential path.  L1/L2 verdicts also depend on MESI
            # writability, which downgrades without an epoch bump, so
            # those are re-probed every time.
            epoch = ctrl.hierarchy.residency_epoch()
            hit = self._preflight_memo.get(instr)
            if hit is not None and hit[0] == epoch:
                ok = hit[1]
            else:
                ok = self._residency_preflight(plan, level)
                if len(self._preflight_memo) >= MEMO_CAPACITY:
                    self._preflight_memo.clear()
                self._preflight_memo[instr] = (epoch, ok)
        else:
            ok = self._residency_preflight(plan, level)
        if not ok:
            return None
        return _Member(instr, level, plan)

    def _plan(self, instr: CCInstruction, level: str) -> _Plan:
        """Pure decode of an instruction at a level (block operands,
        target caches/partitions, locality) — memoized; only an explicit
        page re-placement invalidates it."""
        ctrl = self.controller
        key = (instr, level)
        epoch = ctrl.hierarchy.page_map_epoch
        hit = self._plan_memo.get(key)
        if hit is not None and hit[0] == epoch:
            return hit[1]
        hierarchy = ctrl.hierarchy
        core = ctrl.core_id
        operand_specs: list[list[tuple[int, bool]]] = []
        caches = []
        partitions: list[int] = []
        block_flags: dict[int, bool] = {}
        local = True
        for idx in range(instr.num_blocks):
            operands = ctrl._block_operands(instr, idx)
            spec = [(o.addr, o.is_dest) for o in operands]
            operand_specs.append(spec)
            for addr, is_dest in spec:
                block_flags[addr] = block_flags.get(addr, False) or is_dest
            cache = hierarchy.level_cache(level, core, operands[0].addr)
            caches.append(cache)
            parts = {cache.geometry.partition_of(addr) for addr, _ in spec}
            if len(parts) != 1:
                local = False
            elif level == L3 and len({
                    hierarchy.home_slice(addr, core) for addr, _ in spec}) != 1:
                local = False
            partitions.append(parts.pop() if len(parts) == 1 else -1)
        plan = _Plan(
            operand_specs=operand_specs, caches=caches, partitions=partitions,
            block_flags=block_flags, blocks=frozenset(block_flags), local=local,
        )
        if len(self._plan_memo) >= MEMO_CAPACITY:
            self._plan_memo.clear()
        self._plan_memo[key] = (epoch, plan)
        return plan

    def _residency_preflight(self, plan: _Plan, level: str) -> bool:
        """True when staging is provably zero-cost: every block resident at
        the compute level, dests writable, nothing above to flush — the
        exact conditions of ``cc_prepare``'s no-op fast paths.  Probes are
        uncounted, so the check itself is invisible."""
        hierarchy = self.controller.hierarchy
        core = self.controller.core_id
        if level == L3:
            for addr in plan.blocks:
                slice_id = hierarchy.home_slice(addr, core)
                if not hierarchy.l3[slice_id].contains(addr):
                    return False
                entry = hierarchy.directory[slice_id].peek(addr)
                if entry is not None and entry.sharers:
                    return False
            return True
        target = hierarchy.l1[core] if level == L1 else hierarchy.l2[core]
        l1 = hierarchy.l1[core]
        for addr, is_dest in plan.block_flags.items():
            if not target.contains(addr):
                return False
            if is_dest and not target.state_of(addr).writable:
                return False
            if level == L2 and l1.contains(addr):
                return False
        return True

    # -- fused execution ---------------------------------------------------------------

    def _located(self, cache, addr: int) -> tuple:
        """Memoized ``(set_index, way, subarray, row)`` of a resident
        block; valid while the cache's fill/invalidate epoch is unchanged
        (residency moves only through fills and invalidates)."""
        key = (id(cache), addr)
        hit = self._locate_memo.get(key)
        if hit is not None and hit[0] == cache.epoch:
            return hit[1]
        parts = cache.geometry.decode(addr)
        way = cache.tags.probe(parts.set_index, parts.tag)
        if way is None:
            raise CoherenceError(
                f"{cache.name}: fused locate of absent block {addr:#x}")
        subarray, row = cache.geometry.locate(addr, way)
        loc = (parts.set_index, way, subarray, row)
        if len(self._locate_memo) >= LOCATE_MEMO_CAPACITY:
            self._locate_memo.clear()
        self._locate_memo[key] = (cache.epoch, loc)
        return loc

    @staticmethod
    def _rows_triple(subop: str, op: BlockOperation, locs: list[tuple]):
        """The located ``(row_a, row_b, row_dest)`` of one block op — the
        stream twin of the controller's ``_locate_rows`` (key-row cases
        excluded by :data:`FUSABLE_OPCODES`)."""
        sources = [loc[3] for o, loc in zip(op.operands, locs) if not o.is_dest]
        dest_row = next(
            (loc[3] for o, loc in zip(op.operands, locs) if o.is_dest), None
        )
        if subop in ("and", "or", "xor"):
            triple = (sources[0], sources[1], dest_row)
        elif subop in ("not", "copy"):
            triple = (sources[0], None, dest_row)
        elif subop == "buz":
            triple = (dest_row, None, dest_row)
        elif subop == "cmp":
            triple = (sources[0], sources[1], None)
        else:
            raise ReproError(f"no fused dispatch for {subop!r}")
        return triple

    def _execute_fused(self, members: list[_Member],
                       out: StreamResult) -> list[CCResult]:
        """Run a fused group: canonical per-instruction staging and
        accounting (identical charges/stats/events, in identical order, to
        the sequential path — staging is zero-cost by precondition), with
        all sub-array kernels deferred into merged per-sub-array calls.
        """
        ctrl = self.controller
        tracer = ctrl.tracer
        level = members[0].level
        core = ctrl.core_id
        inplace_latency = float(ctrl.inplace.inplace_latency)
        notify = ctrl.config.l1d.hit_latency
        merged: dict[tuple[int, int], tuple] = {}
        bundles = []

        for member in members:
            instr = member.instr
            entry = ctrl.instruction_table.allocate(
                instr, total_ops=instr.num_blocks)
            entry.level = level
            if tracer is not None:
                tracer.emit(
                    "cc.dispatch", core=core, level=level,
                    opcode=instr.opcode.value, instr_id=entry.instr_id,
                    outcome="batched", reason=None,
                )
            ops: list[BlockOperation] = []
            partition_load: dict[int, int] = {}
            instr_groups: dict[tuple[int, int], tuple] = {}
            subop = instr.opcode.subarray_op
            for idx, spec in enumerate(member.plan.operand_specs):
                op = BlockOperation(
                    instr_id=entry.instr_id,
                    op_index=entry.generate_next(),
                    subarray_op=subop,
                    operands=[BlockOperand(addr, is_dest=flag)
                              for addr, flag in spec],
                    lane_bits=instr.lane_bits,
                )
                ctrl.operation_table.allocate(op)
                ops.append(op)
                cache = member.plan.caches[idx]
                tags = cache.tags
                locs = [self._located(cache, operand.addr)
                        for operand in op.operands]
                # Zero-cost phase A: mark dests MODIFIED and pin each
                # operand (the pin MRU-promotes, exactly like the
                # sequential path); fetches are no-ops by precondition.
                for operand, (set_index, way, _sub, _row) in zip(op.operands, locs):
                    if operand.is_dest:
                        tags.entry(set_index, way).state = MESIState.MODIFIED
                    tags.pin(set_index, way, op.instr_id)
                    operand.pinned = True
                subarray = locs[0][2]
                rows = self._rows_triple(subop, op, locs)
                for operand, (set_index, way, _sub, _row) in zip(op.operands, locs):
                    tags.unpin(set_index, way)
                    operand.pinned = False
                partition = member.plan.partitions[idx]
                op.partition = partition
                partition_load[partition] = partition_load.get(partition, 0) + 1
                group_key = (id(cache), partition)
                merged.setdefault(group_key, (cache, subarray, partition, []))[3] \
                    .append((op, rows))
                instr_groups.setdefault(group_key, (cache, partition, []))[2] \
                    .append((op, rows))

            # Canonical per-instruction accounting, emitted *before* the
            # merged kernels run: every charged/emitted quantity is known
            # ahead of the kernel (result bits are not among them).
            for cache, partition, items in instr_groups.values():
                ctrl.inplace.account_batch(cache, partition, items)
            for op in ops:
                if tracer is not None:
                    tracer.emit(
                        "cc.block_op", core=core, level=level,
                        opcode=instr.opcode.value, partition=op.partition,
                        addr=op.operands[0].addr, instr_id=entry.instr_id,
                        span=inplace_latency, outcome="in-place", reason=None,
                    )
                op.status = OpStatus.DONE
                ctrl.operation_table.retire(entry.instr_id, op.op_index)
            compute_cycles = ctrl._compute_makespan(level, partition_load, 0.0)
            cycles = INSTRUCTION_OVERHEAD_CYCLES + compute_cycles + notify
            occupancy = (INSTRUCTION_OVERHEAD_CYCLES
                         + ctrl._issue_cycles(level, sum(partition_load.values())))
            ctrl.stats.block_ops_inplace += len(ops)
            ctrl.stats.compute_cycles += compute_cycles
            ctrl.stats.level_compute_cycles[level] = (
                ctrl.stats.level_compute_cycles.get(level, 0.0) + compute_cycles
            )
            ctrl.key_table.release(entry.instr_id)
            if tracer is not None:
                for phase, span in (
                    ("decode", float(INSTRUCTION_OVERHEAD_CYCLES)),
                    ("compute-inplace", float(compute_cycles)),
                    ("notify", float(notify)),
                ):
                    if span:
                        tracer.emit(
                            "cc.attr", core=core, level=level,
                            opcode=instr.opcode.value, instr_id=entry.instr_id,
                            phase=phase, span=span,
                        )
                tracer.emit(
                    "cc.instruction", core=core, level=level,
                    opcode=instr.opcode.value, instr_id=entry.instr_id,
                    span=float(cycles), outcome="in-place",
                )
            ctrl.stats.instructions += 1
            bundles.append((member, entry, ops, cycles, compute_cycles, occupancy))

        # The fused kernels: one op_batch per target sub-array, items in
        # instruction order (preserving per-sub-array accounting order).
        for cache, subarray, partition, items in merged.values():
            ctrl.inplace.kernel_batch(subarray, items)
            out.kernel_calls += 1

        results = []
        for member, entry, ops, cycles, compute_cycles, occupancy in bundles:
            for op in ops:
                entry.complete_op(op.result_bits, op.result_bit_count)
            result = entry.result_mask
            ctrl.instruction_table.retire(entry.instr_id)
            results.append(CCResult(
                instr=member.instr, result=result, cycles=cycles, level=level,
                inplace_ops=len(ops), nearplace_ops=0, risc_ops=0,
                fetch_cycles=0.0, compute_cycles=compute_cycles,
                occupancy_cycles=occupancy, result_bytes=b"", pieces=1,
            ))
        return results
