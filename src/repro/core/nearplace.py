"""Near-place Compute Caches (Section IV-J).

When operands lack locality (or the caller asks for it explicitly), the
operation runs "near" the cache: the controller's logic unit reads the
source blocks out of the sub-arrays *over the H-tree*, computes, and writes
any result back.  Compared to in-place execution this:

* pays conventional read/write energy (including the 60-80% H-tree share);
* serializes through the single per-controller logic unit (one 64-byte
  vector logic unit per cache controller in the paper's design); and
* takes 22 cycles per block operation instead of 14.

It still avoids moving data up to higher cache levels and into the core,
so it remains much better than the baseline.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..bitops import bytes_and, bytes_not, bytes_or, bytes_xor
from ..cache.cache import CacheLevel
from ..errors import ReproError
from ..kernels import arith_rows, clmul_mask, equality_mask, reduce_rows
from ..params import BLOCK_SIZE
from .operation_table import BlockOperation

CacheResolver = Callable[[int], CacheLevel]


@dataclass(frozen=True)
class NearPlaceOutcome:
    """Result of one near-place block operation."""

    result_bits: int
    result_bit_count: int
    latency: float
    result_data: bytes | None = None


class OperandRegisters:
    """The controller's operand register file (Section IV-J: "registers to
    temporarily store the operands").

    Near-place reads land in these 64-byte registers before the logic unit
    combines them.  The file is small; an operation needing more operands
    than fit re-reads from the sub-arrays (a spill, charged by the caller
    as an extra conventional read).
    """

    def __init__(self, capacity: int = 4) -> None:
        self.capacity = capacity
        self._tags: list[int] = []
        self.loads = 0
        self.hits = 0
        self.spills = 0

    def acquire(self, addr: int) -> bool:
        """Bring an operand into a register; True on a register hit
        (operand already resident, e.g. a key reused across ops)."""
        if addr in self._tags:
            self._tags.remove(addr)
            self._tags.append(addr)  # MRU
            self.hits += 1
            return True
        self.loads += 1
        if len(self._tags) >= self.capacity:
            self._tags.pop(0)
            self.spills += 1
        self._tags.append(addr)
        return False

    def invalidate(self, addr: int) -> None:
        """A write to a registered operand stales the register copy."""
        if addr in self._tags:
            self._tags.remove(addr)


class NearPlaceUnit:
    """The logic unit + operand registers at one cache controller."""

    def __init__(self, nearplace_latency: int = 22,
                 register_capacity: int = 4) -> None:
        self.nearplace_latency = nearplace_latency
        self.registers = OperandRegisters(register_capacity)
        self.ops_executed = 0

    def execute(self, level: CacheLevel | CacheResolver, op: BlockOperation,
                key_data: bytes | None = None) -> NearPlaceOutcome:
        """Run one block operation at the controller's logic unit.

        Sources are read conventionally (charging H-tree energy), the
        result is computed in the logic unit, and destinations are written
        back conventionally.  ``level`` may be a single cache or a
        per-address resolver - near-place is exactly what handles operands
        that do not share a partition, including ones homed on *different
        L3 NUCA slices*.
        """
        cache_for: CacheResolver = (
            level if callable(level) else (lambda _addr: level)
        )
        sources = []
        for operand in op.source_operands:
            # A register hit (e.g. a reused key block) skips the sub-array
            # read and its H-tree energy entirely.
            hit = self.registers.acquire(operand.addr)
            sources.append(
                cache_for(operand.addr).read_block(operand.addr, charge=not hit)
            )
        dest = op.dest_operand
        result_data: bytes | None = None
        bits, bit_count = 0, 0

        subop = op.subarray_op
        if subop == "copy":
            result_data = sources[0]
        elif subop == "buz":
            result_data = bytes(BLOCK_SIZE)
        elif subop == "not":
            result_data = bytes_not(sources[0])
        elif subop == "and":
            result_data = bytes_and(sources[0], sources[1])
        elif subop == "or":
            result_data = bytes_or(sources[0], sources[1])
        elif subop == "xor":
            result_data = bytes_xor(sources[0], sources[1])
        elif subop == "cmp":
            bits, bit_count = self._cmp_words(sources[0], sources[1])
        elif subop == "search":
            if key_data is None:
                raise ReproError("near-place search needs the key data")
            bits, bit_count = (1 if sources[0] == key_data else 0), 1
        elif subop == "clmul":
            if op.lane_bits is None:
                raise ReproError("clmul needs a lane width")
            other = sources[1] if len(sources) > 1 else key_data
            if other is None:
                raise ReproError("broadcast clmul needs the staged key block")
            bits, bit_count = self._clmul(sources[0], other, op.lane_bits)
        elif subop in ("add", "mul"):
            # The logic unit computes word-parallel on the conventionally
            # read (row-major) blocks - no bit-serial step penalty, but
            # also none of the in-place energy advantage.
            if op.elem_bits is None:
                raise ReproError(f"{subop} needs an element width")
            result_data = arith_rows(
                subop,
                np.frombuffer(sources[0], dtype=np.uint8),
                np.frombuffer(sources[1], dtype=np.uint8),
                op.elem_bits,
            )[0].tobytes()
        elif subop == "reduce":
            if op.elem_bits is None:
                raise ReproError("reduce needs an element width")
            bits = int(reduce_rows(
                np.frombuffer(sources[0], dtype=np.uint8), op.elem_bits
            )[0])
            bit_count = 0
        else:
            raise ReproError(f"no near-place handler for {subop!r}")

        if dest is not None:
            if result_data is None:
                raise ReproError(f"{subop} produced no data for its destination")
            cache_for(dest.addr).write_block(dest.addr, result_data, dirty=True)
            self.registers.invalidate(dest.addr)
        stats_home = op.operands[0].addr
        home = cache_for(stats_home)
        home.stats.cc_nearplace_ops += 1
        self.ops_executed += 1
        if home.tracer is not None:
            home.tracer.emit(
                "nearplace.op", level=home.name, unit=home.unit,
                opcode=subop, addr=stats_home, instr_id=op.instr_id,
                span=float(self.nearplace_latency),
            )
        return NearPlaceOutcome(bits, bit_count, self.nearplace_latency, result_data)

    @staticmethod
    def _cmp_words(a: bytes, b: bytes, word_bytes: int = 8) -> tuple[int, int]:
        """Per-word equality mask of two blocks (word 0 -> bit 0)."""
        words = len(a) // word_bytes
        if not words:
            return 0, 0
        mask = equality_mask(
            np.frombuffer(a, dtype=np.uint8),
            np.frombuffer(b, dtype=np.uint8),
            word_bytes,
        )
        return int(mask[0]), words

    @staticmethod
    def _clmul(a: bytes, b: bytes, lane_bits: int) -> tuple[int, int]:
        """Per-lane parity of ``a & b`` (lane 0 -> bit 0)."""
        lanes = (len(a) * 8) // lane_bits
        if not lanes:
            return 0, 0
        mask = clmul_mask(
            np.frombuffer(a, dtype=np.uint8),
            np.frombuffer(b, dtype=np.uint8),
            lane_bits,
        )
        return int(mask[0]), lanes
