"""The transpose unit: row-major <-> bit-serial layout conversion.

The bit-serial arithmetic tier (Neural Cache, arXiv 1805.03718) computes
over *transposed* operands: bit *k* of every element sits on one physical
row so the bit-line logic evaluates a whole bit plane per step.  Cache
blocks normally live row-major, so each controller owns a transpose unit
(one per sub-array cluster in the paper; modeled as one per controller)
that converts operand blocks on demand and remembers which blocks are
already bit-serial.

Modeling contract
-----------------

The conversion is *accounting-only*: functional storage stays row-major
(``peek``/``read`` and every non-arithmetic op see unchanged bytes) and
the layout set only drives cycles and energy, exactly like the rest of the
timing model.  The rules:

* Before an arithmetic instruction executes, every operand block not yet
  bit-serial is converted: ``transpose_latency`` cycles and one
  data-array read + write of energy per block
  (:func:`repro.energy.mcpat.charge_transpose`); converted blocks are
  remembered, so back-to-back arithmetic over the same operands pays
  nothing — the Neural Cache amortization story.
* Arithmetic destinations are produced bit-serial directly (no charge)
  and join the set.
* Any conventional write into a tracked block — ``machine.write``,
  ``machine.load``, or a non-arithmetic CC op's destination — evicts it
  from the set; the next arithmetic use pays the conversion again.

Conversions of distinct blocks are independent row operations in
different sub-arrays, so they overlap like operand fetches: the makespan
is ``transpose_latency * ceil(blocks / TRANSPOSE_MLP)``.
"""

from __future__ import annotations

from ..params import BLOCK_SIZE

TRANSPOSE_MLP = 8
"""Block conversions the transpose unit keeps in flight (it is replicated
per sub-array cluster; matches the controller's fetch MLP)."""


class TransposeUnit:
    """Tracks which blocks are in bit-serial layout and charges conversions."""

    def __init__(self, transpose_latency: int = 8) -> None:
        self.transpose_latency = transpose_latency
        self._bit_serial: set[int] = set()
        self.blocks_converted = 0
        self.conversion_cycles = 0.0

    def __len__(self) -> int:
        return len(self._bit_serial)

    def is_bit_serial(self, addr: int) -> bool:
        return (addr & ~(BLOCK_SIZE - 1)) in self._bit_serial

    @staticmethod
    def _blocks(addr: int, size: int) -> range:
        start = addr & ~(BLOCK_SIZE - 1)
        return range(start, addr + size, BLOCK_SIZE)

    def convert(self, ranges: list[tuple[int, int]]) -> tuple[int, float]:
        """Ensure every block of ``ranges`` (addr, size pairs) is
        bit-serial; returns ``(blocks_converted, makespan_cycles)``.

        Already-converted blocks are free.  The caller charges the energy
        (it knows the compute level) and folds the makespan into the
        instruction's timing.
        """
        missing = []
        for addr, size in ranges:
            for block in self._blocks(addr, size):
                if block not in self._bit_serial:
                    missing.append(block)
                    self._bit_serial.add(block)
        if not missing:
            return 0, 0.0
        count = len(missing)
        waves = -(-count // TRANSPOSE_MLP)
        cycles = float(self.transpose_latency * waves)
        self.blocks_converted += count
        self.conversion_cycles += cycles
        return count, cycles

    def mark_bit_serial(self, addr: int, size: int) -> None:
        """Blocks produced in bit-serial form (arithmetic destinations)."""
        self._bit_serial.update(self._blocks(addr, size))

    def invalidate(self, addr: int, size: int = BLOCK_SIZE) -> None:
        """A conventional write reverts the blocks to row-major layout."""
        for block in self._blocks(addr, size):
            self._bit_serial.discard(block)
