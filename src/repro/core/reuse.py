"""Cache-block reuse prediction for CC level selection (Section IV-E).

The paper's controller always computes at the highest level where all
operands are resident, else L3, and notes: "Cache allocation policy can be
improved in future by enhancing our CC controller with a cache block reuse
predictor [11]."  This module implements that extension.

:class:`ReusePredictor` tracks, per 4 KB region, how often CC operands were
re-touched soon after an operation.  The enhanced policy
(:class:`ReuseAwarePolicy`) keeps the baseline rule but overrides it in one
case: when operands are resident high (L1/L2) yet predicted *dead* (no
further reuse), it computes at L3 instead - the higher-level copies would
be written back/invalidated anyway, and leaving L1/L2 to the live working
set avoids pollution, exactly the motivation of Jalminger & Stenstrom's
reuse prediction the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..params import PAGE_SIZE


@dataclass
class RegionStats:
    """Two-bit-counter-style reuse bookkeeping for one 4 KB region."""

    counter: int = 2  # weakly reused
    touches: int = 0

    def touch(self) -> None:
        self.touches += 1
        self.counter = min(self.counter + 1, 3)

    def decay(self) -> None:
        self.counter = max(self.counter - 1, 0)

    @property
    def predicted_reused(self) -> bool:
        return self.counter >= 2


class ReusePredictor:
    """Region-granular reuse predictor (saturating counters).

    ``observe_use(addr)`` records a demand touch; ``observe_cc(addr)``
    records that a CC operation consumed the region *without* a subsequent
    demand touch (decays the counter).  ``predict(addr)`` returns whether
    the region is expected to be touched again.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._regions: dict[int, RegionStats] = {}
        self.predictions = 0
        self.hits_predicted = 0

    def _region(self, addr: int) -> RegionStats:
        key = addr // PAGE_SIZE
        stats = self._regions.get(key)
        if stats is None:
            if len(self._regions) >= self.capacity:
                # Evict the least-touched region (cheap clock-like policy).
                victim = min(self._regions, key=lambda k: self._regions[k].touches)
                del self._regions[victim]
            stats = RegionStats()
            self._regions[key] = stats
        return stats

    def observe_use(self, addr: int) -> None:
        self._region(addr).touch()

    def observe_cc(self, addr: int) -> None:
        self._region(addr).decay()

    def predict(self, addr: int) -> bool:
        self.predictions += 1
        region = self._regions.get(addr // PAGE_SIZE)
        predicted = region.predicted_reused if region else False
        if predicted:
            self.hits_predicted += 1
        return predicted


@dataclass
class ReuseAwarePolicy:
    """Level-selection policy combining residency with reuse prediction."""

    predictor: ReusePredictor = field(default_factory=ReusePredictor)
    demotions: int = 0

    def select(self, residency_level: str, operand_addrs: list[int]) -> str:
        """Adjust the residency-based choice (the paper's baseline policy).

        Operands resident in L1/L2 but predicted dead are demoted to L3:
        their higher-level copies are sacrificial, and computing low leaves
        the private caches to data that will actually be re-touched.
        """
        if residency_level == "L3":
            return "L3"
        live = any(self.predictor.predict(a) for a in operand_addrs)
        if not live:
            self.demotions += 1
            for addr in operand_addrs:
                self.predictor.observe_cc(addr)
            return "L3"
        return residency_level
