"""The Compute Cache instruction set (Table II).

=============  ====  ====  ====  ====  ========================================
Opcode         Src1  Src2  Dest  Size  Description
=============  ====  ====  ====  ====  ========================================
``cc_copy``    a     --    b     n     ``b[i] = a[i]``
``cc_buz``     a     --    --    n     ``a[i] = 0``
``cc_cmp``     a     b     r     n     ``r[i] = (a[i] == b[i])``
``cc_search``  a     k     r     n     ``r[i] = (a[i] == k)``
``cc_and``     a     b     c     n     ``c[i] = a[i] & b[i]``
``cc_or``      a     b     c     n     ``c[i] = a[i] | b[i]``
``cc_xor``     a     b     c     n     ``c[i] = a[i] ^ b[i]``
``cc_clmulX``  a     b     c     n     ``c_i = XOR_j(a[j] & b[j])``, X-bit lanes
``cc_not``     a     --    b     n     ``b[i] = ~a[i]``
``cc_addW``    a     b     c     n     ``c[i] = a[i] + b[i] mod 2^W`` (bit-serial)
``cc_mulW``    a     b     c     n     ``c[i] = a[i] * b[i] mod 2^W`` (bit-serial)
``cc_reduceW`` a     --    r     n     ``r = sum_i a[i] mod 2^64`` (bit-serial)
=============  ====  ====  ====  ====  ========================================

Operands are register-indirect addresses; sizes are immediates up to 16 KB.
``cc_cmp``/``cc_search`` are limited to 64 words (512 bytes) so the result
fits a 64-bit register; the search key is fixed at 64 bytes (smaller keys
are duplicated or padded by software, Section IV-A).

Instructions are classified CC-R (read-only: ``cc_cmp``, ``cc_search``,
``cc_reduce``) or CC-RW (the rest); the distinction drives memory-ordering
treatment in the vector LSQ (Section IV-H).

The arithmetic tier (``cc_add``/``cc_mul``/``cc_reduce``) follows the
Neural Cache successor design (arXiv 1805.03718): operands are treated as
dense vectors of ``W``-bit unsigned integers (``W`` in 8/16/32, selected by
``elem_bits``) laid out bit-serially (transposed) inside each sub-array, so
the bit-line logic computes one result bit-plane per step.  All arithmetic
wraps modulo ``2^W`` (numpy unsigned semantics); ``cc_reduce`` accumulates
the element sum modulo ``2^64`` into the 64-bit result register.  Layout
conversion between the row-major cache layout and the bit-serial layout is
charged by the controller's transpose unit (:mod:`repro.core.transpose`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import ISAError
from ..params import BLOCK_SIZE, PAGE_SIZE, WORD_SIZE


class Opcode(enum.Enum):
    """CC opcodes (Table II)."""

    COPY = "cc_copy"
    BUZ = "cc_buz"
    CMP = "cc_cmp"
    SEARCH = "cc_search"
    AND = "cc_and"
    OR = "cc_or"
    XOR = "cc_xor"
    CLMUL = "cc_clmul"
    NOT = "cc_not"
    ADD = "cc_add"
    MUL = "cc_mul"
    REDUCE = "cc_reduce"

    @property
    def reads_only(self) -> bool:
        """CC-R instructions only read memory (Section IV-H)."""
        return self in (Opcode.CMP, Opcode.SEARCH, Opcode.REDUCE)

    @property
    def is_rw(self) -> bool:
        """CC-RW instructions read and write memory; treated like stores."""
        return not self.reads_only

    @property
    def operand_count(self) -> int:
        """Number of memory operands (including any destination)."""
        if self in (Opcode.BUZ, Opcode.REDUCE):
            return 1
        if self in (Opcode.COPY, Opcode.NOT, Opcode.CMP, Opcode.SEARCH):
            return 2
        return 3

    @property
    def is_arith(self) -> bool:
        """Bit-serial arithmetic tier (Neural Cache): transposed operands."""
        return self in (Opcode.ADD, Opcode.MUL, Opcode.REDUCE)

    @property
    def subarray_op(self) -> str:
        """The sub-array operation implementing this opcode."""
        return {
            Opcode.COPY: "copy",
            Opcode.BUZ: "buz",
            Opcode.CMP: "cmp",
            Opcode.SEARCH: "search",
            Opcode.AND: "and",
            Opcode.OR: "or",
            Opcode.XOR: "xor",
            Opcode.CLMUL: "clmul",
            Opcode.NOT: "not",
            Opcode.ADD: "add",
            Opcode.MUL: "mul",
            Opcode.REDUCE: "reduce",
        }[self]


MAX_OPERAND_BYTES = 16 * 1024
CMP_MAX_BYTES = 64 * WORD_SIZE
"""cc_cmp compares at word granularity: 64 words (512 bytes) fill the
64-bit result register."""
SEARCH_KEY_BYTES = 64
SEARCH_MAX_BYTES = 64 * SEARCH_KEY_BYTES
"""cc_search matches at key granularity (64-byte keys): 64 keys (4 KB)
fill the 64-bit result register."""
CLMUL_LANES = (64, 128, 256)
ARITH_ELEM_BITS = (8, 16, 32)
"""Element widths the bit-serial arithmetic tier supports (``elem_bits``)."""


@dataclass(frozen=True)
class CCInstruction:
    """One decoded CC instruction.

    ``src1``/``src2``/``dest`` are byte addresses (register-indirect in
    hardware); ``size`` is the vector length in bytes; ``lane_bits`` selects
    the ``cc_clmul`` variant (64/128/256).
    """

    opcode: Opcode
    src1: int
    size: int
    src2: int | None = None
    dest: int | None = None
    lane_bits: int | None = None
    elem_bits: int | None = None
    """Element width (8/16/32) of the bit-serial arithmetic tier
    (``cc_add``/``cc_mul``/``cc_reduce``); ``None`` for all other opcodes."""
    broadcast_src2: bool = False
    """cc_clmul variant used by BMM: ``src2`` is a single 64-byte block
    replicated into each data partition through the search-key datapath,
    and every block of ``src1`` is multiplied against it.  (For cc_search
    this behaviour is implied; Table II's BMM usage needs the same
    broadcast, which we expose explicitly.)"""

    def __post_init__(self) -> None:
        self.validate()

    # -- validation (ISA rules of Section IV-A) -----------------------------------

    def validate(self) -> None:
        op = self.opcode
        if self.size <= 0:
            raise ISAError(f"{op.value}: size must be positive, got {self.size}")
        if self.size % BLOCK_SIZE:
            raise ISAError(
                f"{op.value}: operand size {self.size} must be a multiple of the "
                f"{BLOCK_SIZE}-byte cache block"
            )
        if self.size > MAX_OPERAND_BYTES:
            raise ISAError(
                f"{op.value}: operand size {self.size} exceeds the {MAX_OPERAND_BYTES}-byte "
                "ISA limit"
            )
        if op is Opcode.CMP and self.size > CMP_MAX_BYTES:
            raise ISAError(
                f"{op.value}: size {self.size} exceeds the 64-word ({CMP_MAX_BYTES}-byte)"
                " limit that lets the result fit a 64-bit register"
            )
        if op is Opcode.SEARCH and self.size > SEARCH_MAX_BYTES:
            raise ISAError(
                f"{op.value}: size {self.size} exceeds the 64-key ({SEARCH_MAX_BYTES}-byte)"
                " limit that lets the result fit a 64-bit register"
            )
        if op is Opcode.CLMUL:
            if self.lane_bits not in CLMUL_LANES:
                raise ISAError(
                    f"cc_clmul lane width must be one of {CLMUL_LANES}, got {self.lane_bits}"
                )
        elif self.lane_bits is not None:
            raise ISAError(f"{op.value} does not take a lane width")
        if op.is_arith:
            if self.elem_bits not in ARITH_ELEM_BITS:
                raise ISAError(
                    f"{op.value} element width must be one of {ARITH_ELEM_BITS}, "
                    f"got {self.elem_bits}"
                )
        elif self.elem_bits is not None:
            raise ISAError(f"{op.value} does not take an element width")
        if self.broadcast_src2 and op is not Opcode.CLMUL:
            raise ISAError(f"{op.value} does not support src2 broadcast")
        needed = op.operand_count
        have = 1 + (self.src2 is not None) + (self.dest is not None)
        if needed != have:
            raise ISAError(f"{op.value} takes {needed} memory operands, got {have}")
        for name, addr in self.operands().items():
            if addr < 0:
                raise ISAError(
                    f"{op.value}: operand {name}={addr} is negative"
                )
            if op is Opcode.CLMUL and name == "dest":
                # The clmul destination receives packed inner-product bits
                # (a normal store by the controller); word alignment suffices.
                if addr % WORD_SIZE:
                    raise ISAError(
                        f"{op.value}: dest={addr:#x} is not {WORD_SIZE}-byte aligned"
                    )
                continue
            if addr % BLOCK_SIZE:
                raise ISAError(
                    f"{op.value}: operand {name}={addr:#x} is not {BLOCK_SIZE}-byte aligned"
                )

    # -- structure ----------------------------------------------------------------

    def operands(self) -> dict[str, int]:
        """All memory operand base addresses, keyed by role."""
        ops = {"src1": self.src1}
        if self.src2 is not None:
            ops["src2"] = self.src2
        if self.dest is not None:
            ops["dest"] = self.dest
        return ops

    def source_addresses(self) -> list[int]:
        out = [self.src1]
        if self.src2 is not None:
            out.append(self.src2)
        return out

    @property
    def num_blocks(self) -> int:
        """Cache blocks covered by each full-size operand."""
        return self.size // BLOCK_SIZE

    @property
    def key_is_fixed_block(self) -> bool:
        """src2 is a single 64-byte broadcast block, not a full vector:
        always true for cc_search, opt-in for cc_clmul (BMM)."""
        return self.opcode is Opcode.SEARCH or self.broadcast_src2

    def operand_length(self, name: str) -> int:
        """Byte extent of one operand: full-size vectors except the fixed
        64-byte broadcast key and cc_clmul's packed-bits destination."""
        if name == "src2" and self.key_is_fixed_block:
            return SEARCH_KEY_BYTES
        if name == "dest" and self.opcode is Opcode.CLMUL:
            lanes_per_byte = 8 * (self.lane_bits or 64)
            return max(self.size * 8 // lanes_per_byte // 8, 1)
        return self.size

    def spans_page_boundary(self) -> bool:
        """True if any vector operand crosses a page (Section IV-D)."""
        for name, addr in self.operands().items():
            if name == "dest" and self.opcode is Opcode.CLMUL:
                continue  # a scalar result store, not a vector operand
            length = self.operand_length(name)
            if addr // PAGE_SIZE != (addr + length - 1) // PAGE_SIZE:
                return True
        return False

    def split_at(self, offset: int) -> tuple["CCInstruction", "CCInstruction"]:
        """Split into two instructions at a byte offset (exception handler)."""
        if offset <= 0 or offset >= self.size or offset % BLOCK_SIZE:
            raise ISAError(f"cannot split a {self.size}-byte operand at offset {offset}")
        if self.opcode is Opcode.CLMUL:
            new_dest = self.dest  # the packed result is written once, whole
        elif self.dest is None:
            new_dest = None
        else:
            new_dest = self.dest + offset
        first = replace(self, size=offset)
        second = replace(
            self,
            src1=self.src1 + offset,
            src2=(self.src2 if self.key_is_fixed_block or self.src2 is None
                  else self.src2 + offset),
            dest=new_dest,
            size=self.size - offset,
        )
        return first, second


# -- convenience constructors -----------------------------------------------------


def cc_copy(src: int, dest: int, size: int) -> CCInstruction:
    return CCInstruction(Opcode.COPY, src1=src, dest=dest, size=size)


def cc_buz(addr: int, size: int) -> CCInstruction:
    return CCInstruction(Opcode.BUZ, src1=addr, size=size)


def cc_cmp(a: int, b: int, size: int) -> CCInstruction:
    return CCInstruction(Opcode.CMP, src1=a, src2=b, size=size)


def cc_search(data: int, key: int, size: int) -> CCInstruction:
    return CCInstruction(Opcode.SEARCH, src1=data, src2=key, size=size)


def cc_and(a: int, b: int, dest: int, size: int) -> CCInstruction:
    return CCInstruction(Opcode.AND, src1=a, src2=b, dest=dest, size=size)


def cc_or(a: int, b: int, dest: int, size: int) -> CCInstruction:
    return CCInstruction(Opcode.OR, src1=a, src2=b, dest=dest, size=size)


def cc_xor(a: int, b: int, dest: int, size: int) -> CCInstruction:
    return CCInstruction(Opcode.XOR, src1=a, src2=b, dest=dest, size=size)


def cc_not(src: int, dest: int, size: int) -> CCInstruction:
    return CCInstruction(Opcode.NOT, src1=src, dest=dest, size=size)


def cc_clmul(a: int, b: int, dest: int, size: int, lane_bits: int = 64) -> CCInstruction:
    return CCInstruction(
        Opcode.CLMUL, src1=a, src2=b, dest=dest, size=size, lane_bits=lane_bits
    )


def cc_clmul_bcast(a: int, b_block: int, dest: int, size: int,
                   lane_bits: int = 256) -> CCInstruction:
    """BMM variant: multiply every block of ``a`` against one broadcast
    64-byte block (replicated per partition like a search key)."""
    return CCInstruction(
        Opcode.CLMUL, src1=a, src2=b_block, dest=dest, size=size,
        lane_bits=lane_bits, broadcast_src2=True,
    )


def cc_add(a: int, b: int, dest: int, size: int, elem_bits: int = 8) -> CCInstruction:
    """Element-wise bit-serial addition: ``dest[i] = a[i] + b[i] mod 2^W``."""
    return CCInstruction(
        Opcode.ADD, src1=a, src2=b, dest=dest, size=size, elem_bits=elem_bits
    )


def cc_mul(a: int, b: int, dest: int, size: int, elem_bits: int = 8) -> CCInstruction:
    """Element-wise bit-serial multiplication: ``dest[i] = a[i] * b[i] mod 2^W``."""
    return CCInstruction(
        Opcode.MUL, src1=a, src2=b, dest=dest, size=size, elem_bits=elem_bits
    )


def cc_reduce(src: int, size: int, elem_bits: int = 8) -> CCInstruction:
    """Sum-reduce a vector of ``W``-bit elements into the 64-bit result
    register: ``r = sum_i src[i] mod 2^64``."""
    return CCInstruction(Opcode.REDUCE, src1=src, size=size, elem_bits=elem_bits)
