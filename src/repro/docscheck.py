"""Documentation consistency checks (``repro docscheck``).

The documentation is kept honest by construction:

* **Generated ISA table** — ``docs/isa.md`` embeds a per-instruction
  reference table between ``BEGIN GENERATED: isa-table`` markers.  The
  table is *generated* here from the machine-readable sources (the
  :class:`~repro.core.isa.Opcode` enum, the ISA size caps, the sub-array
  delay/energy multipliers, and the assembler) and diffed against the
  committed text, so the spec cannot drift from the implementation
  silently.  ``repro docscheck --write-isa-table`` rewrites the region.
* **Executable examples** — every fenced ```````python`````` block and
  every ``repro ...`` command inside fenced ```````bash`````` /
  ```````console`````` blocks in ``docs/*.md`` is executed in smoke mode.
  A fence preceded by ``<!-- docs-check: skip -->`` is exempt (use for
  illustrative fragments or long-running sweeps); a fence preceded by one
  or more ``<!-- docs-check: expect SUBSTRING -->`` markers must produce
  each SUBSTRING on stdout — that is how worked examples pin their
  output.
* **Cross-links** — every relative markdown link and every backticked
  repository path in the doc set must resolve to an existing file.

Run locally with ``repro docscheck``; CI runs the same entry point, and
``tests/test_docs_consistency.py`` keeps it inside the tier-1 suite.
"""

from __future__ import annotations

import contextlib
import io
import re
from dataclasses import dataclass, field
from pathlib import Path

from .core.isa import (
    ARITH_ELEM_BITS,
    CLMUL_LANES,
    CMP_MAX_BYTES,
    MAX_OPERAND_BYTES,
    Opcode,
    cc_add,
    cc_and,
    cc_buz,
    cc_clmul,
    cc_cmp,
    cc_copy,
    cc_mul,
    cc_not,
    cc_or,
    cc_reduce,
    cc_search,
    cc_xor,
    SEARCH_MAX_BYTES,
)
from .errors import ReproError
from .sram.timing import DELAY_MULTIPLIER, ENERGY_MULTIPLIER, arith_steps

ISA_BEGIN = "<!-- BEGIN GENERATED: isa-table -->"
ISA_END = "<!-- END GENERATED: isa-table -->"

#: The documentation set the checker walks (relative to the repo root).
DOC_FILES = (
    "README.md",
    "docs/api.md",
    "docs/architecture.md",
    "docs/benchmarks.md",
    "docs/crypto.md",
    "docs/faults.md",
    "docs/isa.md",
    "docs/modeling.md",
    "docs/neural_cache.md",
    "docs/profiling.md",
    "docs/serving.md",
    "docs/topology.md",
    "benchmarks/README.md",
)


# -- generated ISA table ---------------------------------------------------------------

#: One canonical sample instruction per table row, in Table II order.
#: ``format_instruction`` on these yields the authoritative asm syntax, so
#: the Operands column is derived from the assembler, not hand-written.
_SAMPLES = (
    ("src, dest, n", cc_copy(0x1000, 0x2000, 4096)),
    ("addr, n", cc_buz(0x1000, 4096)),
    ("a, b, n", cc_cmp(0x1000, 0x2000, 512)),
    ("data, key, n", cc_search(0x1000, 0x8FC0, 4096)),
    ("a, b, dest, n", cc_and(0x1000, 0x2000, 0x3000, 4096)),
    ("a, b, dest, n", cc_or(0x1000, 0x2000, 0x3000, 4096)),
    ("a, b, dest, n", cc_xor(0x1000, 0x2000, 0x3000, 4096)),
    ("a, b, dest, n", cc_clmul(0x1000, 0x2000, 0x3000, 4096, lane_bits=256)),
    ("src, dest, n", cc_not(0x1000, 0x2000, 4096)),
    ("a, b, dest, n", cc_add(0x1000, 0x2000, 0x3000, 4096, elem_bits=16)),
    ("a, b, dest, n", cc_mul(0x1000, 0x2000, 0x3000, 4096, elem_bits=16)),
    ("src, n", cc_reduce(0x1000, 4096, elem_bits=16)),
)

_SEMANTICS = {
    Opcode.COPY: "`dest[i] = src[i]`",
    Opcode.BUZ: "`addr[i] = 0`",
    Opcode.CMP: "`r[i] = (a[i] == b[i])` per 8-byte word",
    Opcode.SEARCH: "`r[i] = (block[i] == key)` per 64-byte key",
    Opcode.AND: "`dest[i] = a[i] & b[i]`",
    Opcode.OR: "`dest[i] = a[i] \\| b[i]`",
    Opcode.XOR: "`dest[i] = a[i] ^ b[i]`",
    Opcode.CLMUL: "per X-bit lane: `dest_bit = XOR_j(a[j] & b[j])`",
    Opcode.NOT: "`dest[i] = ~src[i]`",
    Opcode.ADD: "`dest[i] = a[i] + b[i] mod 2^W`",
    Opcode.MUL: "`dest[i] = a[i] * b[i] mod 2^W`",
    Opcode.REDUCE: "`r = sum_i(src[i]) mod 2^64`",
}

#: Human-readable bit-serial step formulas, validated against
#: :func:`repro.sram.timing.arith_steps` at generation time.
_STEP_FORMULAS = {
    "add": ("W+1", lambda w, n: w + 1),
    "mul": ("W^2+5W-2", lambda w, n: w * w + 5 * w - 2),
    "reduce": ("sum_L(W+L+1)",
               lambda w, n: sum(w + level + 1
                                for level in range(1, max(1, (n - 1).bit_length()) + 1))),
}


def _limits(op: Opcode) -> str:
    if op is Opcode.CMP:
        return f"n <= {CMP_MAX_BYTES} B"
    if op is Opcode.SEARCH:
        return f"n <= {SEARCH_MAX_BYTES // 1024} KB, 64 B key"
    if op is Opcode.CLMUL:
        lanes = "/".join(str(x) for x in CLMUL_LANES)
        return f"X in {lanes}; dest 8 B-aligned"
    if op.is_arith:
        widths = "/".join(str(w) for w in ARITH_ELEM_BITS)
        return f"W in {widths}"
    return f"n <= {MAX_OPERAND_BYTES // 1024} KB"


def _cost_cells(op: Opcode) -> tuple[str, str]:
    sub = op.subarray_op
    delay, energy = DELAY_MULTIPLIER[sub], ENERGY_MULTIPLIER[sub]
    if not op.is_arith:
        return f"{delay:g}x access", f"{energy:g}x access"
    formula, fn = _STEP_FORMULAS[sub]
    # Self-check: the documented formula must reproduce the timing model
    # for every supported width (drift protection for the table text).
    for w in ARITH_ELEM_BITS:
        n_elems = (64 * 8) // w
        if arith_steps(sub, w, n_elems) != fn(w, n_elems):
            raise ReproError(
                f"ISA-table step formula for {sub!r} drifted from "
                f"sram.timing.arith_steps at W={w}")
    return (f"{delay:g}x access x ({formula}) steps",
            f"{energy:g}x access x ({formula}) steps")


def _events(op: Opcode) -> str:
    events = "`cc.instruction`, `cc.attr`, `cc.block_op`"
    if op.is_arith:
        events += ", `cc.transpose`"
    if op is Opcode.SEARCH or op is Opcode.CLMUL:
        events += ", `cc.key_replicate`"
    return events


def generate_isa_table() -> str:
    """The authoritative per-instruction reference table (markdown)."""
    from .asm import format_instruction, parse

    lines = [
        "| Mnemonic | Operands | Class | Semantics | Limits | Delay / block op | Energy / block op | Tracer events |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for operands, sample in _SAMPLES:
        op = sample.opcode
        if parse(format_instruction(sample)) != sample:
            raise ReproError(
                f"assembler round-trip failed for {op.value}; "
                "ISA table would document unparseable syntax")
        mnemonic = format_instruction(sample).split()[0]
        # Generalize the width/lane suffix of the sample into the
        # family mnemonic documented in the table.
        if op is Opcode.CLMUL:
            mnemonic = "cc_clmulX[.bcast]"
        elif op.is_arith:
            mnemonic = f"{op.value}W"
        klass = "CC-R" if op.reads_only else "CC-RW"
        delay, energy = _cost_cells(op)
        lines.append(
            f"| `{mnemonic}` | {operands} | {klass} | {_SEMANTICS[op]} "
            f"| {_limits(op)} | {delay} | {energy} | {_events(op)} |")
    return "\n".join(lines)


def check_isa_table(repo_root: Path) -> list[str]:
    """Diff the generated table against the region embedded in docs/isa.md."""
    path = repo_root / "docs" / "isa.md"
    if not path.exists():
        return ["docs/isa.md is missing"]
    text = path.read_text(encoding="utf-8")
    if ISA_BEGIN not in text or ISA_END not in text:
        return ["docs/isa.md lacks the generated isa-table markers"]
    embedded = text.split(ISA_BEGIN, 1)[1].split(ISA_END, 1)[0].strip()
    expected = generate_isa_table()
    if embedded != expected:
        import difflib

        diff = "\n".join(difflib.unified_diff(
            embedded.splitlines(), expected.splitlines(),
            "docs/isa.md (committed)", "generated", lineterm=""))
        return ["docs/isa.md ISA table drifted from the implementation; "
                "run `repro docscheck --write-isa-table`:\n" + diff]
    return []


def write_isa_table(repo_root: Path) -> None:
    """Rewrite the generated region of docs/isa.md in place."""
    path = repo_root / "docs" / "isa.md"
    text = path.read_text(encoding="utf-8")
    head, rest = text.split(ISA_BEGIN, 1)
    _, tail = rest.split(ISA_END, 1)
    path.write_text(
        f"{head}{ISA_BEGIN}\n{generate_isa_table()}\n{ISA_END}{tail}",
        encoding="utf-8")


# -- fenced examples -------------------------------------------------------------------


@dataclass
class Example:
    """One runnable fenced code block from a markdown file."""

    path: Path
    lineno: int
    lang: str
    code: str
    skip: bool = False
    expects: list[str] = field(default_factory=list)

    @property
    def label(self) -> str:
        return f"{self.path.name}:{self.lineno}"


_FENCE_RE = re.compile(r"^```(\w*)\s*$")
_MARKER_RE = re.compile(r"<!--\s*docs-check:\s*(skip|expect\s+(.+?))\s*-->")


def extract_examples(path: Path) -> list[Example]:
    """Fenced blocks with their preceding ``docs-check`` markers."""
    examples: list[Example] = []
    skip, expects = False, []
    lang, start, buf = None, 0, []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(),
                                  start=1):
        if lang is None:
            m = _MARKER_RE.search(line)
            if m:
                if m.group(1) == "skip":
                    skip = True
                else:
                    expects.append(m.group(2).strip())
                continue
            m = _FENCE_RE.match(line.strip())
            if m:
                lang, start, buf = m.group(1).lower(), lineno, []
                continue
            if line.strip():  # prose resets pending markers
                skip, expects = False, []
        else:
            if line.strip() == "```":
                examples.append(Example(path, start, lang, "\n".join(buf),
                                        skip=skip, expects=list(expects)))
                lang, skip, expects = None, False, []
            else:
                buf.append(line)
    return examples


def _runnable(example: Example) -> bool:
    if example.lang == "python":
        return True
    if example.lang in ("bash", "sh", "console", "shell", ""):
        return any(_repro_commands(example.code))
    return False


def _repro_commands(code: str):
    """The ``repro ...`` invocations inside a shell block."""
    for line in code.splitlines():
        line = line.strip().lstrip("$ ").split("#", 1)[0].strip()
        if line.startswith("repro "):
            yield line[len("repro "):].split()
        elif line.startswith("python -m repro "):
            yield line[len("python -m repro "):].split()


def run_example(example: Example) -> str:
    """Execute one example, returning its captured stdout."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        if example.lang == "python":
            import textwrap

            code = textwrap.dedent(example.code)  # list-indented fences
            exec(compile(code, example.label, "exec"),  # noqa: S102
                 {"__name__": "__docscheck__"})
        else:
            from .cli import main

            for argv in _repro_commands(example.code):
                status = main(argv)
                if status:
                    raise ReproError(f"exit status {status}")
    return out.getvalue()


def check_examples(repo_root: Path, verbose: bool = False) -> list[str]:
    """Run every runnable fenced example in the doc set."""
    errors = []
    for name in DOC_FILES:
        path = repo_root / name
        if not path.exists():
            continue
        for example in extract_examples(path):
            if example.skip or not _runnable(example):
                continue
            if verbose:
                print(f"docscheck: running {example.label} ({example.lang})")
            try:
                output = run_example(example)
            except SystemExit as exc:  # argparse errors in repro commands
                errors.append(f"{example.label}: exited with {exc.code}")
                continue
            except Exception as exc:
                errors.append(f"{example.label}: {type(exc).__name__}: {exc}")
                continue
            for expected in example.expects:
                if expected not in output:
                    errors.append(
                        f"{example.label}: expected {expected!r} in output")
    return errors


# -- cross-links -----------------------------------------------------------------------

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
_PATH_RE = re.compile(
    r"`((?:src/repro|benchmarks|tests|examples|docs)/[\w/\.-]+?\.(?:py|md|json|trace))`"
)


def check_crosslinks(repo_root: Path) -> list[str]:
    """Relative markdown links and backticked repo paths must resolve."""
    errors = []
    for name in DOC_FILES:
        path = repo_root / name
        if not path.exists():
            errors.append(f"{name}: listed in DOC_FILES but missing")
            continue
        text = path.read_text(encoding="utf-8")
        for target in _LINK_RE.findall(text):
            target = target.split("#", 1)[0].strip()
            if not target or "://" in target or target.startswith("mailto:"):
                continue
            if not (path.parent / target).exists() and \
                    not (repo_root / target).exists():
                errors.append(f"{name}: broken link -> {target}")
        for ref in _PATH_RE.findall(text):
            if not (repo_root / ref).exists():
                errors.append(f"{name}: referenced path does not exist -> {ref}")
    return errors


# -- entry point -----------------------------------------------------------------------


def run_docscheck(repo_root: Path | str | None = None,
                  examples: bool = True, verbose: bool = False) -> list[str]:
    """All documentation checks; returns the list of failures (empty = OK)."""
    root = Path(repo_root) if repo_root is not None else _find_repo_root()
    errors = check_isa_table(root) + check_crosslinks(root)
    if examples:
        errors += check_examples(root, verbose=verbose)
    return errors


def _find_repo_root() -> Path:
    """The checked-out tree this package was imported from."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "docs" / "isa.md").exists():
            return parent
    raise ReproError("cannot locate the repository root (docs/isa.md)")


from ._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "run_docscheck", "generate_isa_table", "check_isa_table",
    "check_crosslinks", "check_examples", "extract_examples",
    "write_isa_table",
))
