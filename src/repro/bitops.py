"""Bit-level helpers shared by the SRAM, cache, and application layers.

The functional simulator stores data as numpy ``uint8`` byte arrays and the
SRAM layer stores bits as numpy ``bool`` arrays (one element per bit-cell).
These helpers convert between the two representations and implement the
word-granularity reductions the compute-cache circuits perform (wired-NOR
equality, XOR-reduction for carry-less multiply).

Bit order convention: ``bytes_to_bits`` uses big-endian bit order within a
byte (``numpy.unpackbits`` default), which matches a left-to-right layout of
bit-lines in a sub-array row.  All round-trips are exact; the specific order
only matters for lane extraction, which consistently uses the same order.
Reduction masks use the opposite, little-endian convention: word/lane 0 (the
lowest-addressed) occupies bit 0 of the mask.

Zero-length inputs are uniformly valid: every helper treats an empty byte
string (or empty bit vector) as the identity and returns an empty result
(or a zero mask) instead of raising.  :class:`AddressError` is reserved for
genuinely malformed inputs - mismatched operand lengths, partial bytes, or
ranges that do not divide into words/lanes.
"""

from __future__ import annotations

import numpy as np

from .errors import AddressError
from .kernels import pack_flags


def bytes_to_bits(data: bytes | bytearray | np.ndarray) -> np.ndarray:
    """Expand bytes into a bool array of bits (8 per byte, MSB first)."""
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr).astype(bool)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a bool array of bits (length divisible by 8) back into bytes."""
    if bits.size % 8:
        raise AddressError(f"bit vector length {bits.size} is not a whole number of bytes")
    return np.packbits(bits.astype(np.uint8)).tobytes()


def word_equality_mask(xor_bits: np.ndarray, word_bits: int = 64) -> int:
    """Wired-NOR the per-bit XOR results into a per-word equality mask.

    The circuit combines the bit-wise XOR outputs of one word with a
    wired-NOR (Section IV-B): the word compares equal iff every XOR bit is
    zero.  Returns an integer with bit ``i`` set iff word ``i`` matched;
    word 0 is the lowest-addressed word and occupies bit 0.
    """
    if xor_bits.size % word_bits:
        raise AddressError(
            f"xor vector of {xor_bits.size} bits is not divisible by word size {word_bits}"
        )
    if xor_bits.size == 0:
        return 0
    words = xor_bits.reshape(-1, word_bits)
    equal = ~words.any(axis=1)
    return int(pack_flags(equal)[0])


def xor_reduce_lanes(and_bits: np.ndarray, lane_bits: int) -> np.ndarray:
    """XOR-reduce each ``lane_bits``-wide lane of an AND result to one bit.

    Implements the XOR-reduction tree added to each sub-array for the
    ``cc_clmul`` operation (Section IV-B): for every lane,
    ``c_i = XOR over j of (a[j] & b[j])``.
    """
    if and_bits.size % lane_bits:
        raise AddressError(
            f"AND vector of {and_bits.size} bits is not divisible by lane size {lane_bits}"
        )
    lanes = and_bits.reshape(-1, lane_bits)
    return np.bitwise_xor.reduce(lanes.astype(np.uint8), axis=1).astype(bool)


def parity(value: int) -> int:
    """Parity (XOR-reduction) of an arbitrary-precision integer."""
    return bin(value).count("1") & 1


def popcount_mask(mask: int) -> int:
    """Number of set bits in an integer mask."""
    return bin(mask).count("1")


def bytes_xor(a: bytes, b: bytes) -> bytes:
    """Byte-wise XOR of two equal-length byte strings (``b"" ^ b"" == b""``)."""
    if len(a) != len(b):
        raise AddressError("XOR operands differ in length")
    if not a:
        return b""
    return (
        np.frombuffer(a, dtype=np.uint8) ^ np.frombuffer(b, dtype=np.uint8)
    ).tobytes()


def bytes_and(a: bytes, b: bytes) -> bytes:
    """Byte-wise AND of two equal-length byte strings (empty in, empty out)."""
    if len(a) != len(b):
        raise AddressError("AND operands differ in length")
    if not a:
        return b""
    return (
        np.frombuffer(a, dtype=np.uint8) & np.frombuffer(b, dtype=np.uint8)
    ).tobytes()


def bytes_or(a: bytes, b: bytes) -> bytes:
    """Byte-wise OR of two equal-length byte strings (empty in, empty out)."""
    if len(a) != len(b):
        raise AddressError("OR operands differ in length")
    if not a:
        return b""
    return (
        np.frombuffer(a, dtype=np.uint8) | np.frombuffer(b, dtype=np.uint8)
    ).tobytes()


def bytes_not(a: bytes) -> bytes:
    """Byte-wise complement of a byte string (empty in, empty out)."""
    if not a:
        return b""
    return (~np.frombuffer(a, dtype=np.uint8)).astype(np.uint8).tobytes()


def chunk_range(start: int, size: int, chunk: int):
    """Yield ``(addr, length)`` pieces of ``[start, start+size)`` split on
    ``chunk``-aligned boundaries.

    Used to split CC operands on cache-block and page boundaries.
    """
    if size < 0:
        raise AddressError("negative range size")
    addr = start
    end = start + size
    while addr < end:
        boundary = (addr // chunk + 1) * chunk
        piece = min(end, boundary) - addr
        yield addr, piece
        addr += piece
