"""Minimal asyncio HTTP/1.1 front end for the job service.

Pure standard library (``asyncio`` streams — the container images this
runs in carry no HTTP framework), supporting exactly what the service
and its load generator need: keep-alive connections, JSON request
bodies, JSON responses with ``Content-Length``, and one close-delimited
NDJSON streaming endpoint.

Endpoints (see ``docs/serving.md`` for the full schema):

=====================  ==============================================
``GET  /healthz``       liveness + draining flag
``GET  /stats``         service/runner counters + provenance header
``POST /jobs``          submit a job; ``?wait=1`` long-polls until the
                        job is terminal and returns the full document
``GET  /jobs/<id>``     job document (result included when terminal)
``GET  /jobs/<id>/events``  NDJSON progress stream until terminal
``POST /admin/drain``   graceful drain; responds immediately and stops
                        the server once the queue is empty
=====================  ==============================================

Error mapping: invalid submissions are 400, unknown jobs 404, a full
queue 429 (with ``Retry-After``), a draining service 503.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, urlsplit

from ..errors import QueueFullError, ServeError
from .service import JobService

_MAX_BODY = 8 << 20  # 8 MiB: far above any job document, bounds memory


@dataclass
class Request:
    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""

    def json(self) -> Any:
        if not self.body:
            return {}
        return json.loads(self.body.decode("utf-8"))

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


def json_response(doc: Any, status: int = 200, **headers: str) -> Response:
    body = json.dumps(doc, sort_keys=True).encode("utf-8")
    return Response(status=status, body=body, headers=dict(headers))


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError, ValueError):
        return None
    if not line or not line.strip():
        return None
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        return None
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > _MAX_BODY:
        return None
    body = await reader.readexactly(length) if length else b""
    parts = urlsplit(target)
    return Request(method=method.upper(), path=parts.path,
                   query=dict(parse_qsl(parts.query)), headers=headers,
                   body=body)


def write_response(writer: asyncio.StreamWriter, response: Response,
                   keep_alive: bool = True) -> None:
    reason = _REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    head.extend(f"{k}: {v}" for k, v in response.headers.items())
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(response.body)


class ReproServer:
    """``asyncio.start_server`` wrapper routing requests to a
    :class:`JobService`.  ``port=0`` binds an ephemeral port (the bound
    port is available as :attr:`port` after :meth:`start`)."""

    def __init__(self, service: JobService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._closed = asyncio.Event()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host,
                                                  self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`stop` (or a drained ``/admin/drain``)."""
        await self._closed.wait()

    async def stop(self, drain: bool = True) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop(drain=drain)
        self._closed.set()

    # -- connection handling ----------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await read_request(reader)
                if request is None:
                    break
                if request.method == "GET" and request.path.endswith("/events") \
                        and request.path.startswith("/jobs/"):
                    await self._stream_events(request, writer)
                    break  # close-delimited stream ends the connection
                try:
                    response = await self._route(request)
                except QueueFullError as exc:
                    response = json_response({"error": str(exc)}, status=429,
                                             **{"Retry-After": "1"})
                except ServeError as exc:
                    status = 503 if self.service.draining else 400
                    response = json_response({"error": str(exc)}, status=status)
                except (ValueError, KeyError) as exc:
                    response = json_response({"error": f"bad request: {exc}"},
                                             status=400)
                keep = request.keep_alive
                write_response(writer, response, keep_alive=keep)
                await writer.drain()
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, request: Request) -> Response:
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return json_response({"ok": True,
                                  "draining": self.service.draining})
        if path == "/stats" and method == "GET":
            return json_response(self.service.to_dict())
        if path == "/jobs" and method == "POST":
            return await self._submit(request)
        if path.startswith("/jobs/") and method == "GET":
            job_id = path[len("/jobs/"):]
            job = self.service.jobs.get(job_id)
            if job is None:
                return json_response({"error": f"unknown job {job_id!r}"},
                                     status=404)
            return json_response(job.to_dict(with_result=job.done))
        if path == "/admin/drain" and method == "POST":
            asyncio.get_running_loop().create_task(self.stop(drain=True))
            return json_response({"ok": True, "draining": True})
        return json_response({"error": f"no route {method} {path}"},
                             status=404 if method == "GET" else 405)

    async def _submit(self, request: Request) -> Response:
        doc = request.json()
        if not isinstance(doc, dict) or "fn" not in doc:
            return json_response(
                {"error": "body must be a JSON object with at least 'fn'"},
                status=400)
        job = await self.service.submit(
            fn=doc["fn"], kwargs=doc.get("kwargs") or {},
            priority=int(doc.get("priority", 0)),
            timeout_s=doc.get("timeout_s"), retries=doc.get("retries"))
        wait = request.query.get("wait", "") not in ("", "0") \
            or bool(doc.get("wait"))
        if wait:
            timeout = doc.get("wait_timeout_s")
            job = await self.service.wait(
                job.id, timeout=float(timeout) if timeout else None)
            return json_response(job.to_dict())
        return json_response(job.to_dict(with_result=job.done), status=202)

    async def _stream_events(self, request: Request,
                             writer: asyncio.StreamWriter) -> None:
        job_id = request.path[len("/jobs/"):-len("/events")]
        if job_id not in self.service.jobs:
            write_response(writer,
                           json_response({"error": f"unknown job {job_id!r}"},
                                         status=404),
                           keep_alive=False)
            await writer.drain()
            return
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1"))
        await writer.drain()
        async for record in self.service.stream_progress(job_id):
            writer.write((json.dumps(record, sort_keys=True) + "\n").encode())
            await writer.drain()


class BackgroundServer:
    """A :class:`ReproServer` running on its own thread + event loop.

    The synchronous harness tests and anything else outside an event
    loop use this: ``with BackgroundServer(workers=2) as url: ...``.
    """

    def __init__(self, **service_kwargs: Any) -> None:
        self._service_kwargs = service_kwargs
        self._thread = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self.url: str | None = None
        self.service: JobService | None = None

    def start(self, timeout: float = 10.0) -> str:
        import threading

        ready = threading.Event()

        def run() -> None:
            asyncio.run(self._main(ready))

        self._thread = threading.Thread(target=run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        if not ready.wait(timeout):
            raise ServeError("background server failed to start")
        assert self.url is not None
        return self.url

    async def _main(self, ready) -> None:
        self.service = JobService(**self._service_kwargs)
        server = ReproServer(self.service)
        await server.start()
        self.url = server.url
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        ready.set()
        await self._stop_event.wait()
        await server.stop(drain=True)

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
