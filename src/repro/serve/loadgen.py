"""Load generator for ``repro serve`` — the ``repro loadgen`` subcommand.

Replays many concurrent job submissions against a service over a
configurable **config-popularity distribution** (Zipf by default: a few
popular machine/workload configurations dominate, exactly the traffic
shape that makes the content-addressed cache pay for itself) and writes
``BENCH_serve.json`` — the first entry of the repo's ``BENCH_*`` perf
trajectory — containing p50/p99 job latency, throughput, the service's
cache hit-rates, and a lost/duplicated-result audit.

Every request is a ``POST /jobs?wait=1`` long-poll over a persistent
keep-alive connection (one per concurrency slot), so the measured
latency is the full submit-to-result path the service promises in its
latency contract (``docs/serving.md``).  Correctness is audited
client-side: every request must come back terminal-``done`` with a
result, job ids must be unique (no response mixing), and all responses
for the same catalog entry must be bit-identical.

With no ``--url`` the generator spawns an in-process server on an
ephemeral port (same event loop), which is what the CI smoke job uses.
"""

from __future__ import annotations

import asyncio
import json
import math
import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Any

from ..config_io import canonical_json
from ..errors import ServeError

BENCH_SCHEMA = "repro.bench-serve/1"


@dataclass
class LoadgenConfig:
    """One load-generation run (CLI flags map 1:1 onto these fields)."""

    url: str | None = None          # None -> spawn an in-process server
    requests: int = 1000
    concurrency: int = 32
    distinct: int = 50              # catalog size (distinct configurations)
    distribution: str = "zipf"      # zipf | uniform
    zipf_s: float = 1.1
    seed: int = 0
    point: str = "selftest"         # selftest | sleep | kernel
    sleep_ms: float = 0.0           # per-job simulated work (point=sleep)
    contract_p99_ms: float | None = None
    wait_timeout_s: float = 300.0
    # spawned-server knobs (ignored with --url):
    workers: int = 4
    cache_dir: str = ".repro-cache"
    use_cache: bool = True
    backend: str | None = None
    max_queue: int = 4096


def build_catalog(cfg: LoadgenConfig) -> list[dict[str, Any]]:
    """The distinct job templates requests are sampled from."""
    if cfg.point == "selftest":
        return [{"fn": "selftest", "kwargs": {"value": i}}
                for i in range(cfg.distinct)]
    if cfg.point == "sleep":
        return [{"fn": "sleep",
                 "kwargs": {"seconds": cfg.sleep_ms / 1000.0, "value": i}}
                for i in range(cfg.distinct)]
    if cfg.point == "kernel":
        from ..config_io import config_to_dict
        from ..params import small_test_machine

        machine = config_to_dict(small_test_machine())
        kernels = ("copy", "logical", "cmp", "search")
        sizes = (512, 1024, 2048, 4096)
        catalog = [
            {"fn": "kernel",
             "kwargs": {"kernel": kernel, "config": "cc", "size": size,
                        "machine": machine}}
            for size in sizes for kernel in kernels
        ]
        return catalog[:cfg.distinct]
    raise ServeError(f"unknown loadgen point kind {cfg.point!r}")


def sample_indices(cfg: LoadgenConfig) -> list[int]:
    """Deterministic per-request catalog indices under the popularity
    distribution (rank r gets weight 1/r^s for Zipf)."""
    rng = random.Random(cfg.seed)
    n = max(1, min(cfg.distinct, cfg.requests))
    if cfg.distribution == "uniform":
        weights = [1.0] * n
    elif cfg.distribution == "zipf":
        weights = [1.0 / (rank ** cfg.zipf_s) for rank in range(1, n + 1)]
    else:
        raise ServeError(f"unknown distribution {cfg.distribution!r}")
    return rng.choices(range(n), weights=weights, k=cfg.requests)


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over an ascending-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


class _Client:
    """One persistent keep-alive HTTP/1.1 connection."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(self, method: str, path: str,
                      doc: Any = None) -> tuple[int, Any]:
        """One request/response on the persistent connection, with one
        transparent reconnect if the server closed it."""
        for attempt in (0, 1):
            if self._writer is None:
                await self._connect()
            try:
                return await self._roundtrip(method, path, doc)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    async def _roundtrip(self, method: str, path: str,
                         doc: Any) -> tuple[int, Any]:
        assert self._reader is not None and self._writer is not None
        body = b"" if doc is None else json.dumps(doc).encode("utf-8")
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: keep-alive\r\n\r\n")
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        headers: dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        payload = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, (json.loads(payload) if payload else None)


@dataclass
class _Outcome:
    req_no: int
    """Position in the sampled request sequence — carried through so the
    audit can attribute lost/duplicated responses to specific requests."""
    index: int
    latency_s: float
    status: int
    job: dict[str, Any] | None
    error: str | None = None


async def run_loadgen(cfg: LoadgenConfig) -> dict[str, Any]:
    """Run the workload and return the ``BENCH_serve.json`` document."""
    spawned = None
    if cfg.url is None:
        from .service import JobService
        from .web import ReproServer

        service = JobService(workers=cfg.workers, cache_dir=cfg.cache_dir,
                             use_cache=cfg.use_cache, backend=cfg.backend,
                             max_queue=cfg.max_queue)
        spawned = ReproServer(service)
        await spawned.start()
        host, port = spawned.host, spawned.port
        url = spawned.url
    else:
        url = cfg.url.rstrip("/")
        netloc = url.split("://", 1)[-1]
        host, _, port_s = netloc.partition(":")
        port = int(port_s or 80)

    catalog = build_catalog(cfg)
    indices = sample_indices(cfg)
    # FIFO issue order: the sampled sequence IS the workload (Zipf rank
    # popularity over time); draining it LIFO would replay it reversed
    # and detach request numbers from what the audit reports.
    pending = deque(enumerate(indices))  # (request number, catalog index)
    outcomes: list[_Outcome] = []

    async def slot() -> None:
        client = _Client(host, port)
        try:
            while pending:
                req_no, index = pending.popleft()
                template = catalog[index]
                t0 = time.perf_counter()
                try:
                    status, doc = await client.request(
                        "POST", "/jobs?wait=1",
                        {**template, "wait_timeout_s": cfg.wait_timeout_s})
                    outcomes.append(_Outcome(
                        req_no=req_no, index=index,
                        latency_s=time.perf_counter() - t0,
                        status=status,
                        job=doc if isinstance(doc, dict) else None))
                except Exception as exc:
                    outcomes.append(_Outcome(
                        req_no=req_no, index=index,
                        latency_s=time.perf_counter() - t0,
                        status=0, job=None, error=str(exc)))
        finally:
            await client.close()

    wall_start = time.perf_counter()
    await asyncio.gather(*(slot() for _ in range(max(1, cfg.concurrency))))
    wall_s = time.perf_counter() - wall_start

    stats_client = _Client(host, port)
    try:
        _, server_stats = await stats_client.request("GET", "/stats")
    finally:
        await stats_client.close()

    if spawned is not None:
        await spawned.stop(drain=True)

    return _build_doc(cfg, url, outcomes, wall_s, server_stats)


def _build_doc(cfg: LoadgenConfig, url: str, outcomes: list[_Outcome],
               wall_s: float, server_stats: dict[str, Any] | None
               ) -> dict[str, Any]:
    from ..bench.report import bench_document

    ok = [o for o in outcomes
          if o.status == 200 and o.job is not None
          and o.job.get("state") == "done" and "result" in o.job]
    lost = cfg.requests - len(ok)
    ok_req_nos = {o.req_no for o in ok}
    lost_req_nos = sorted(set(range(cfg.requests)) - ok_req_nos)
    by_id: dict[str, list[int]] = {}
    for o in ok:
        by_id.setdefault(o.job["id"], []).append(o.req_no)
    duplicated = sum(len(req_nos) - 1 for req_nos in by_id.values())
    duplicated_req_nos = sorted(
        req_no
        for req_nos in by_id.values() if len(req_nos) > 1
        for req_no in sorted(req_nos)[1:]
    )
    by_index: dict[int, set[str]] = {}
    for o in ok:
        by_index.setdefault(o.index, set()).add(
            canonical_json(o.job["result"]))
    inconsistent = sum(1 for digests in by_index.values() if len(digests) > 1)
    sources: dict[str, int] = {}
    for o in ok:
        source = o.job.get("source") or "?"
        sources[source] = sources.get(source, 0) + 1

    latencies = sorted(o.latency_s for o in ok)
    p50_ms = percentile(latencies, 50) * 1000.0
    p99_ms = percentile(latencies, 99) * 1000.0
    contract_ok = (cfg.contract_p99_ms is None or
                   (lost == 0 and duplicated == 0 and inconsistent == 0
                    and p99_ms <= cfg.contract_p99_ms))

    service_stats = (server_stats or {}).get("stats", {})
    return bench_document(
        BENCH_SCHEMA,
        {
            "url": url,
            "requests": cfg.requests,
            "concurrency": cfg.concurrency,
            "distinct": len(build_catalog(cfg)),
            "distribution": cfg.distribution,
            "zipf_s": cfg.zipf_s,
            "seed": cfg.seed,
            "point": cfg.point,
            "sleep_ms": cfg.sleep_ms,
            "workers": cfg.workers if cfg.url is None else None,
        },
        metrics={
            "completed": len(ok),
            "lost": lost,
            "duplicated": duplicated,
            "inconsistent": inconsistent,
            "wall_s": wall_s,
            "throughput_jobs_per_s": len(ok) / wall_s if wall_s else 0.0,
            "latency_ms": {
                "p50": p50_ms,
                "p90": percentile(latencies, 90) * 1000.0,
                "p99": p99_ms,
                "max": (latencies[-1] * 1000.0) if latencies else 0.0,
                "mean": (sum(latencies) / len(latencies) * 1000.0)
                if latencies else 0.0,
            },
            "sources": sources,
            "server_hit_rate": service_stats.get("hit_rate"),
            "server_tail_hit_rate": service_stats.get(
                "duplicate_tail_hit_rate"),
        },
        audit={
            # Request numbers (positions in the sampled FIFO sequence)
            # behind the lost/duplicated counters, capped for readability.
            "lost_req_nos": lost_req_nos[:100],
            "duplicated_req_nos": duplicated_req_nos[:100],
        },
        server_stats=server_stats,
        contract={
            "p99_ms_limit": cfg.contract_p99_ms,
            "passed": contract_ok,
        },
    )


def summarize(doc: dict[str, Any]) -> str:
    """The grep-friendly ``loadgen:`` summary line."""
    m = doc["metrics"]
    lat = m["latency_ms"]
    line = (
        f"loadgen: requests={doc['config']['requests']} "
        f"completed={m['completed']} lost={m['lost']} "
        f"duplicated={m['duplicated']} inconsistent={m['inconsistent']} "
        f"p50_ms={lat['p50']:.2f} p99_ms={lat['p99']:.2f} "
        f"throughput={m['throughput_jobs_per_s']:.1f}/s"
    )
    hit = m.get("server_hit_rate")
    tail = m.get("server_tail_hit_rate")
    if hit is not None:
        line += f" hit_rate={100.0 * hit:.1f}%"
    if tail is not None:
        line += f" tail_hit_rate={100.0 * tail:.1f}%"
    return line
