"""Simulation-as-a-service: the job layer behind ``repro serve``.

Lifts the sweep runner (:mod:`repro.bench.runner`) into a long-lived
asyncio service: an HTTP/JSON front end accepting simulation jobs, a
persistent priority queue with content-hash dedup against the shared
``.repro-cache/``, per-job timeout/retry and backpressure, streaming
progress through the event tracer, and graceful drain.  The matching
load generator (``repro loadgen``) measures the service's latency
contract and writes ``BENCH_serve.json``.

Layout:

* :mod:`repro.serve.jobs`     — job model, scheduling order, queue, journal;
* :mod:`repro.serve.service`  — the asyncio :class:`JobService`;
* :mod:`repro.serve.web`      — stdlib HTTP/1.1 front end + background server;
* :mod:`repro.serve.loadgen`  — the load generator and its bench document.

Import the public names from :mod:`repro.api`; the deep paths here are
Tier 2 (deprecated) like every other subsystem module.
"""

from __future__ import annotations

from .jobs import Job, JobJournal, JobQueue, can_coalesce, schedule_key
from .loadgen import LoadgenConfig, run_loadgen
from .service import JobService, ServiceStats
from .web import BackgroundServer, ReproServer

__all__ = [
    "Job",
    "JobJournal",
    "JobQueue",
    "JobService",
    "ServiceStats",
    "ReproServer",
    "BackgroundServer",
    "LoadgenConfig",
    "run_loadgen",
    "can_coalesce",
    "schedule_key",
]

from .._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "Job", "JobQueue", "JobService", "ReproServer", "BackgroundServer",
    "LoadgenConfig", "run_loadgen",
))
