"""The asyncio job service behind ``repro serve``.

:class:`JobService` lifts the PR 3 :class:`~repro.bench.runner.PointRunner`
into a long-lived simulation-as-a-service layer:

* **Submission** validates the point function and kwargs, applies
  **backpressure** (a full queue raises
  :class:`~repro.errors.QueueFullError` — HTTP 429 at the front end), and
  resolves three tiers of **dedup** before any compute happens:

  1. a content-hash hit in the shared ``.repro-cache/`` (verified against
     the requesting job's fn/backend/code-fingerprint provenance — the
     same cache-validity contract the sweep runner uses) completes the
     job instantly (``source="cache"``);
  2. an identical job already queued or running becomes this job's
     *owner* and the new job a *follower* (``source="coalesced"``) —
     but only when :func:`~repro.serve.jobs.can_coalesce` says key *and*
     provenance header match;
  3. otherwise the job enters the priority-then-FIFO
     :class:`~repro.serve.jobs.JobQueue`.

* **Execution**: ``workers`` asyncio worker tasks pop jobs in scheduling
  order and run each point on a thread through a per-worker
  ``PointRunner`` (which canonicalizes the result and stores it into the
  shared cache).  A per-job wall-clock **timeout** bounds each attempt;
  timed-out jobs are retried up to ``retries`` times and then failed.
  :class:`~repro.faults.RunnerChaos` installs into the per-worker
  runners through the same ``_make_pool`` seam the fault campaigns use,
  so worker crashes/timeouts inside the service degrade to the runner's
  serial fallback instead of losing jobs.

* **Progress** is streamed two ways: every transition appends a record
  to ``job.progress`` (the NDJSON stream of ``GET /jobs/<id>/events``)
  and emits a ``serve.job`` event into the PR 2
  :class:`~repro.events.EventTracer`, so service behaviour shows up in
  the same observability pipeline as simulated cycles.

* **Shutdown**: :meth:`JobService.stop` with ``drain=True`` stops
  accepting work, lets the workers empty the queue, and returns;
  ``drain=False`` cancels the workers and fails whatever was in flight.
  With a journal configured, accepted-but-unfinished jobs are requeued
  on the next :meth:`start`.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, AsyncIterator

from ..bench.points import POINT_FUNCTIONS, WORKLOAD_SEEDS
from ..bench.runner import (
    PointRunner,
    Point,
    ResultCache,
    code_fingerprint,
    default_backend,
    point_key,
)
from ..config_io import canonical_json
from ..errors import QueueFullError, ServeError
from ..events import EventTracer
from .jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobJournal,
    JobQueue,
    can_coalesce,
    new_job_id,
)


@dataclass
class ServiceStats:
    """Service-level counters (the ``/stats`` document and the
    ``serve-stats:`` summary line CI greps)."""

    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    computed: int = 0
    timeouts: int = 0
    retries: int = 0

    def hits(self) -> int:
        """Jobs served without a fresh computation."""
        return self.cache_hits + self.coalesced

    def hit_rate(self) -> float:
        """Hits over all accepted jobs."""
        return self.hits() / self.submitted if self.submitted else 0.0

    def duplicate_tail_hit_rate(self) -> float:
        """Hits over the *duplicate tail* — accepted jobs beyond the
        first occurrence of each distinct configuration.  This is the
        rate the CI loadgen smoke pins at >= 90%: first-ever requests
        must compute, repeats must not."""
        tail = self.submitted - self.computed - self.failed
        return self.hits() / tail if tail > 0 else 1.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "computed": self.computed,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "hit_rate": self.hit_rate(),
            "duplicate_tail_hit_rate": self.duplicate_tail_hit_rate(),
        }

    def line(self) -> str:
        return (
            f"serve-stats: submitted={self.submitted} "
            f"completed={self.completed} failed={self.failed} "
            f"rejected={self.rejected} cache_hits={self.cache_hits} "
            f"coalesced={self.coalesced} computed={self.computed} "
            f"timeouts={self.timeouts} retries={self.retries} "
            f"hit_rate={100.0 * self.hit_rate():.1f}% "
            f"tail_hit_rate={100.0 * self.duplicate_tail_hit_rate():.1f}%"
        )


class JobService:
    """Long-lived simulation job service (see the module docstring).

    Parameters
    ----------
    workers:
        Concurrent asyncio worker tasks, each with its own serial
        :class:`PointRunner` (points execute on threads; the runners
        share the on-disk cache, whose atomic tmp-file + rename stores
        make concurrent writers safe).
    cache_dir / use_cache:
        The shared content-addressed result cache — the dedup substrate.
    backend:
        Execution backend folded into every job's cache key and
        provenance header (default: the machine-config default).
    max_queue:
        Backpressure limit: submissions beyond this many *queued* jobs
        raise :class:`QueueFullError`.
    timeout_s / retries:
        Default per-job wall-clock timeout and retry budget (submissions
        may override per job).
    tracer:
        ``serve.job`` events sink (a private one is created if absent).
    journal_path:
        Enables the persistent queue journal (see
        :class:`~repro.serve.jobs.JobJournal`).
    chaos / pool_jobs:
        ``RunnerChaos`` to install on every worker runner (fault
        campaigns against the service).  Chaos engages the runner's pool
        seam, so it forces ``pool_jobs`` (per-worker runner processes) to
        at least 2; without chaos the default 1 executes points serially
        on the worker's thread.
    """

    def __init__(self, workers: int = 4, cache_dir: str = ".repro-cache",
                 use_cache: bool = True, backend: str | None = None,
                 max_queue: int = 1024, timeout_s: float | None = 60.0,
                 retries: int = 1, tracer: EventTracer | None = None,
                 journal_path: str | None = None, chaos=None,
                 pool_jobs: int = 1) -> None:
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ServeError(f"max_queue must be >= 1, got {max_queue}")
        self.backend = backend
        self.max_queue = max_queue
        self.timeout_s = timeout_s
        self.retries = retries
        self.use_cache = use_cache
        self.cache = ResultCache(cache_dir)
        self.tracer = tracer if tracer is not None else EventTracer(capacity=1 << 16)
        self.stats = ServiceStats()
        self.queue = JobQueue()
        self.jobs: dict[str, Job] = {}
        self.journal = JobJournal(journal_path) if journal_path else None
        if chaos is not None:
            pool_jobs = max(2, pool_jobs)
        self.runners = [
            PointRunner(jobs=pool_jobs, cache_dir=cache_dir,
                        use_cache=use_cache, timeout_s=timeout_s,
                        retries=retries, backend=backend,
                        tracer=self.tracer)
            for _ in range(workers)
        ]
        if chaos is not None:
            for runner in self.runners:
                chaos.install(runner)
        self._seq = itertools.count()
        self._inflight: dict[str, Job] = {}          # key -> owner job
        self._followers: dict[str, list[Job]] = {}   # owner id -> followers
        self._queue_cond = asyncio.Condition()
        self._progress_cond = asyncio.Condition()
        self._worker_tasks: list[asyncio.Task] = []
        self._draining = False
        self._stopped = False

    # -- provenance -------------------------------------------------------------------

    def provenance(self) -> dict[str, Any]:
        """The provenance header stamped on every accepted job — the
        same fields :func:`repro.bench.export.provenance` pins on
        results JSON (minus the git commit, which can differ between
        equivalent trees)."""
        return {
            "backend": self.backend or default_backend(),
            "code_version": code_fingerprint(),
            "workload_seeds": dict(WORKLOAD_SEEDS),
        }

    # -- submission -------------------------------------------------------------------

    async def submit(self, fn: str, kwargs: dict[str, Any] | None = None,
                     priority: int = 0, timeout_s: float | None = None,
                     retries: int | None = None) -> Job:
        """Accept one job; returns it already-completed on a cache hit,
        queued (or coalesced onto an in-flight owner) otherwise."""
        if self._draining or self._stopped:
            raise ServeError("service is draining; not accepting jobs")
        kwargs = dict(kwargs or {})
        if fn not in POINT_FUNCTIONS:
            raise ServeError(
                f"unknown point function {fn!r} "
                f"(known: {', '.join(sorted(POINT_FUNCTIONS))})")
        try:
            canonical_json(kwargs)
        except (TypeError, ValueError) as exc:
            raise ServeError(f"job kwargs are not JSON-serializable: {exc}") \
                from exc
        if len(self.queue) >= self.max_queue:
            self.stats.rejected += 1
            raise QueueFullError(
                f"job queue is at its backpressure limit ({self.max_queue})")
        backend = self.backend or default_backend()
        job = Job(
            id=new_job_id(), fn=fn, kwargs=kwargs,
            key=point_key(fn, kwargs, backend, code_fingerprint()),
            provenance=self.provenance(), priority=priority,
            seq=next(self._seq),
            timeout_s=self.timeout_s if timeout_s is None else timeout_s,
            retries=self.retries if retries is None else retries,
        )
        self.jobs[job.id] = job
        self.stats.submitted += 1
        if self.journal:
            self.journal.record_submit(job)

        if self.use_cache:
            cached = self.cache.load(job.key, fn=fn, backend=backend,
                                     code_version=code_fingerprint())
            if cached is not None:
                self.stats.cache_hits += 1
                await self._complete(job, cached, source="cache")
                return job

        owner = self._inflight.get(job.key)
        if owner is not None and not owner.done and can_coalesce(owner, job):
            job.dedup_of = owner.id
            job.source = "coalesced"
            self._followers.setdefault(owner.id, []).append(job)
            self.stats.coalesced += 1
            await self._note(job, "coalesced", outcome=owner.id)
            return job

        self._inflight[job.key] = job
        async with self._queue_cond:
            self.queue.push(job)
            self._queue_cond.notify()
        await self._note(job, "queued")
        return job

    # -- lifecycle --------------------------------------------------------------------

    async def start(self) -> None:
        """Replay the journal (if any) and spawn the worker tasks."""
        if self._worker_tasks:
            raise ServeError("service already started")
        self._draining = False
        self._stopped = False
        if self.journal:
            for record in self.journal.pending():
                job = Job(
                    id=record["id"], fn=record["fn"],
                    kwargs=record.get("kwargs", {}), key=record["key"],
                    provenance=record.get("provenance", self.provenance()),
                    priority=record.get("priority", 0), seq=next(self._seq),
                    timeout_s=record.get("timeout_s", self.timeout_s),
                    retries=record.get("retries", self.retries),
                )
                # Stale provenance (e.g. the code changed between runs)
                # means the journalled key no longer matches this tree;
                # re-key so the job recomputes under the current code.
                if job.provenance != self.provenance():
                    job.provenance = self.provenance()
                    job.key = point_key(job.fn, job.kwargs,
                                        self.backend or default_backend(),
                                        code_fingerprint())
                self.jobs[job.id] = job
                self.stats.submitted += 1
                if job.key not in self._inflight:
                    self._inflight[job.key] = job
                    self.queue.push(job)
                    await self._note(job, "requeued")
                else:
                    owner = self._inflight[job.key]
                    job.dedup_of = owner.id
                    job.source = "coalesced"
                    self._followers.setdefault(owner.id, []).append(job)
                    self.stats.coalesced += 1
        self._worker_tasks = [
            asyncio.create_task(self._worker(runner), name=f"serve-worker-{i}")
            for i, runner in enumerate(self.runners)
        ]

    async def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service: drain (default) or cancel-and-fail."""
        self._draining = True
        async with self._queue_cond:
            self._queue_cond.notify_all()
        if drain:
            if self._worker_tasks:
                await asyncio.wait_for(
                    asyncio.gather(*self._worker_tasks, return_exceptions=True),
                    timeout)
        else:
            for task in self._worker_tasks:
                task.cancel()
            if self._worker_tasks:
                await asyncio.gather(*self._worker_tasks, return_exceptions=True)
            for job in self.queue.drain():
                await self._fail(job, "shutdown", "service stopped before "
                                                  "the job ran")
            for job in list(self.jobs.values()):
                if not job.done and job.state == RUNNING:
                    await self._fail(job, "shutdown", "service stopped while "
                                                      "the job was running")
        self._worker_tasks = []
        self._stopped = True

    @property
    def draining(self) -> bool:
        return self._draining

    # -- waiting / streaming ----------------------------------------------------------

    async def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state."""
        job = self.jobs[job_id]
        async with self._progress_cond:
            await asyncio.wait_for(
                self._progress_cond.wait_for(lambda: job.done), timeout)
        return job

    async def stream_progress(self, job_id: str) -> AsyncIterator[dict[str, Any]]:
        """Yield the job's progress records as they happen, ending once
        the job is terminal and every record has been delivered."""
        job = self.jobs[job_id]
        delivered = 0
        while True:
            async with self._progress_cond:
                await self._progress_cond.wait_for(
                    lambda: len(job.progress) > delivered or job.done)
            while delivered < len(job.progress):
                yield job.progress[delivered]
                delivered += 1
            if job.done:
                return

    # -- internals --------------------------------------------------------------------

    async def _note(self, job: Job, phase: str, span: float = 0.0,
                    outcome: str | None = None) -> None:
        """Record one progress transition: job-local NDJSON record plus a
        ``serve.job`` event in the shared tracer; wakes waiters."""
        job.progress.append({
            "t": time.time(), "job": job.id, "phase": phase,
            "state": job.state, "span": span, "outcome": outcome,
        })
        self.tracer.emit("serve.job", phase=phase, span=span,
                         opcode=job.fn, reason=job.id, outcome=outcome)
        async with self._progress_cond:
            self._progress_cond.notify_all()

    async def _complete(self, job: Job, result: Any,
                        source: str) -> None:
        job.result = result
        job.state = DONE
        job.source = source
        job.finished_t = time.time()
        self.stats.completed += 1
        if self.journal:
            self.journal.record_done(job)
        await self._note(job, "done", span=job.latency_s() or 0.0,
                         outcome=source)
        await self._resolve_followers(job)

    async def _fail(self, job: Job, phase: str, error: str) -> None:
        job.state = FAILED
        job.error = error
        job.finished_t = time.time()
        self.stats.failed += 1
        if self.journal:
            self.journal.record_done(job)
        await self._note(job, phase, span=job.latency_s() or 0.0,
                         outcome="failed")
        await self._resolve_followers(job)

    async def _resolve_followers(self, owner: Job) -> None:
        if self._inflight.get(owner.key) is owner:
            del self._inflight[owner.key]
        for follower in self._followers.pop(owner.id, []):
            if owner.state == DONE:
                follower.result = owner.result
                follower.state = DONE
                follower.finished_t = time.time()
                self.stats.completed += 1
                if self.journal:
                    self.journal.record_done(follower)
                await self._note(follower, "done",
                                 span=follower.latency_s() or 0.0,
                                 outcome="coalesced")
            else:
                await self._fail(follower, "failed",
                                 f"coalesced owner {owner.id} failed: "
                                 f"{owner.error}")

    async def _worker(self, runner: PointRunner) -> None:
        while True:
            async with self._queue_cond:
                await self._queue_cond.wait_for(
                    lambda: len(self.queue) > 0 or self._draining)
                job = self.queue.pop()
            if job is None:
                if self._draining:
                    return
                continue
            await self._run_job(job, runner)

    async def _run_job(self, job: Job, runner: PointRunner) -> None:
        job.state = RUNNING
        job.started_t = time.time()
        await self._note(job, "start")
        point = Point(fn=job.fn, kwargs=job.kwargs, label=job.id)
        while True:
            job.attempts += 1
            start = time.perf_counter()
            try:
                result = await asyncio.wait_for(
                    asyncio.to_thread(lambda: runner.run([point])[0]),
                    timeout=job.timeout_s)
            except asyncio.TimeoutError:
                self.stats.timeouts += 1
                await self._note(job, "timeout",
                                 span=time.perf_counter() - start)
                if job.attempts <= job.retries:
                    self.stats.retries += 1
                    await self._note(job, "retry")
                    continue
                await self._fail(
                    job, "timeout",
                    f"timed out after {job.attempts} attempt(s) of "
                    f"{job.timeout_s}s")
                return
            except asyncio.CancelledError:
                await self._fail(job, "shutdown",
                                 "service stopped while the job was running")
                raise
            except Exception as exc:
                await self._fail(job, "failed", str(exc))
                return
            self.stats.computed += 1
            await self._complete(job, result, source="computed")
            return

    # -- reporting --------------------------------------------------------------------

    def runner_stats(self) -> dict[str, int]:
        """Aggregated per-worker runner counters (cache traffic on the
        compute path, chaos-driven fallbacks)."""
        totals: dict[str, int] = {
            "points": 0, "cache_hits": 0, "computed": 0, "timeouts": 0,
            "retries": 0, "serial_fallbacks": 0, "failures": 0,
        }
        for runner in self.runners:
            for key in totals:
                totals[key] += getattr(runner.stats, key)
        return totals

    def to_dict(self) -> dict[str, Any]:
        """The ``/stats`` document."""
        return {
            "schema": "repro.serve-stats/1",
            "provenance": self.provenance(),
            "workers": len(self.runners),
            "queue_depth": len(self.queue),
            "draining": self._draining,
            "jobs_tracked": len(self.jobs),
            "stats": self.stats.to_dict(),
            "runner": self.runner_stats(),
        }
