"""Job model, scheduling order, and the persistent queue of ``repro serve``.

A *job* is one simulation point (:mod:`repro.bench.points`) submitted to
the long-lived service, carrying the same identity the sweep runner uses
for its on-disk result cache: the content-hash :func:`~repro.bench.runner.point_key`
over ``(fn, kwargs, backend, code fingerprint)`` plus the results-JSON
**provenance header** (backend / code fingerprint / workload seeds).
Key *and* provenance together are the cache-validity contract — two jobs
may be deduplicated (served one computation) only when both match, which
:func:`can_coalesce` enforces and ``tests/test_serve_property.py`` pins.

Scheduling is a **total order**: higher ``priority`` first, FIFO
(submission sequence) within a priority level — :func:`schedule_key` is
the single definition, used by the heap-backed :class:`JobQueue` and by
the property test that replays random submission interleavings.

Persistence is an append-only JSONL journal (:class:`JobJournal`): every
accepted job appends a ``submit`` record, every terminal transition a
``done`` record, and a restarted service requeues the submit records
that never reached ``done`` — jobs survive a crash or restart of the
server process.  Corrupt journal lines (torn writes) are skipped, in the
same miss-don't-crash spirit as the result cache.
"""

from __future__ import annotations

import heapq
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

JOURNAL_SCHEMA = "repro.serve-journal/1"

#: Job lifecycle states.  ``queued -> running -> done`` is the normal
#: path; ``failed`` is terminal for errors, exhausted timeouts, and
#: non-drain shutdowns.  Coalesced followers go ``queued -> done/failed``
#: when their owner finishes.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TERMINAL_STATES = frozenset({DONE, FAILED})


def new_job_id() -> str:
    """Random 16-hex job id (unique across service restarts, so journal
    replays never collide with fresh submissions)."""
    return uuid.uuid4().hex[:16]


@dataclass
class Job:
    """One service job: a simulation point plus its scheduling and
    provenance metadata.

    ``key`` is the sweep runner's content-hash cache key;  ``provenance``
    is the results-JSON provenance header active when the job was
    accepted.  ``source`` records how the result was obtained:
    ``computed`` (a worker ran the point), ``cache`` (served from
    ``.repro-cache/``), or ``coalesced`` (deduplicated onto an identical
    in-flight job).
    """

    id: str
    fn: str
    kwargs: dict[str, Any]
    key: str
    provenance: dict[str, Any]
    priority: int = 0
    seq: int = 0
    timeout_s: float | None = None
    retries: int = 0
    state: str = QUEUED
    attempts: int = 0
    source: str | None = None
    result: Any = None
    error: str | None = None
    submitted_t: float = field(default_factory=time.time)
    started_t: float | None = None
    finished_t: float | None = None
    dedup_of: str | None = None
    progress: list[dict[str, Any]] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def latency_s(self) -> float | None:
        """Submit-to-terminal latency, ``None`` while in flight."""
        if self.finished_t is None:
            return None
        return self.finished_t - self.submitted_t

    def to_dict(self, with_result: bool = True) -> dict[str, Any]:
        """The job document the HTTP front end returns."""
        doc: dict[str, Any] = {
            "id": self.id,
            "fn": self.fn,
            "kwargs": self.kwargs,
            "key": self.key,
            "provenance": self.provenance,
            "priority": self.priority,
            "state": self.state,
            "attempts": self.attempts,
            "source": self.source,
            "error": self.error,
            "dedup_of": self.dedup_of,
            "submitted_t": self.submitted_t,
            "finished_t": self.finished_t,
            "latency_s": self.latency_s(),
        }
        if with_result:
            doc["result"] = self.result
        return doc


def schedule_key(job: Job) -> tuple[int, int]:
    """The total scheduling order: higher ``priority`` first, then FIFO
    by submission sequence.  ``seq`` is unique per service, so this is a
    strict total order — no two jobs ever compare equal."""
    return (-job.priority, job.seq)


def can_coalesce(owner: Job, candidate: Job) -> bool:
    """Whether ``candidate`` may be deduplicated onto in-flight ``owner``.

    Requires the full cache-validity contract: identical content-hash
    *key* (which already folds in fn, kwargs — seeds included —, backend,
    and code fingerprint) **and** an identical provenance header.  Jobs
    whose provenance differs in any component are never coalesced, even
    if their keys collided.
    """
    return owner.key == candidate.key and owner.provenance == candidate.provenance


class JobQueue:
    """Heap-backed priority-then-FIFO job queue (see :func:`schedule_key`)."""

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[int, int], Job]] = []

    def push(self, job: Job) -> None:
        heapq.heappush(self._heap, (schedule_key(job), job))

    def pop(self) -> Job | None:
        """The scheduled-next job, or ``None`` when empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[1]

    def __len__(self) -> int:
        return len(self._heap)

    def drain(self) -> list[Job]:
        """Remove and return every queued job in scheduling order."""
        jobs = []
        while self._heap:
            jobs.append(heapq.heappop(self._heap)[1])
        return jobs


class JobJournal:
    """Append-only JSONL journal that makes the queue persistent.

    ``record_submit`` / ``record_done`` append one line each (flushed +
    fsync'd so an accepted job survives a crash of the server process);
    :meth:`pending` replays the file and returns the submit records that
    never reached a terminal state, in original submission order.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    def _append(self, record: dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def record_submit(self, job: Job) -> None:
        self._append({
            "schema": JOURNAL_SCHEMA,
            "event": "submit",
            "id": job.id,
            "fn": job.fn,
            "kwargs": job.kwargs,
            "key": job.key,
            "provenance": job.provenance,
            "priority": job.priority,
            "timeout_s": job.timeout_s,
            "retries": job.retries,
            "dedup_of": job.dedup_of,
        })

    def record_done(self, job: Job) -> None:
        self._append({
            "schema": JOURNAL_SCHEMA,
            "event": "done",
            "id": job.id,
            "state": job.state,
        })

    def pending(self) -> list[dict[str, Any]]:
        """Submit records with no matching ``done``, submission-ordered."""
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return []
        submits: dict[str, dict[str, Any]] = {}
        for line in lines:
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn write at a crash point
            if not isinstance(record, dict) or \
                    record.get("schema") != JOURNAL_SCHEMA:
                continue
            if record.get("event") == "submit" and "id" in record:
                submits.setdefault(record["id"], record)
            elif record.get("event") == "done":
                submits.pop(record.get("id"), None)
        # Coalesced followers are resolved by their owner; a follower
        # whose owner completed before the crash was journalled done,
        # so whatever is left here re-runs independently.
        return list(submits.values())
