"""Miss Status Holding Registers.

The timing model uses MSHR occupancy to bound memory-level parallelism:
the number of outstanding misses a level can sustain caps how much miss
latency overlaps.  The functional protocol in this library is atomic, so
MSHRs here are an accounting structure (allocate/retire around each miss)
rather than a transient-state tracker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError


@dataclass
class MSHRFile:
    """A fixed pool of miss-tracking entries."""

    capacity: int = 16
    outstanding: dict[int, str] = field(default_factory=dict)
    peak: int = 0
    allocations: int = 0
    stalls: int = 0

    def allocate(self, block_addr: int, kind: str = "read") -> bool:
        """Reserve an entry for a missing block.

        Returns False (and counts a stall) when the file is full - callers
        model this as lost memory-level parallelism.  A second miss to the
        same block coalesces onto the existing entry.
        """
        if block_addr in self.outstanding:
            return True
        if len(self.outstanding) >= self.capacity:
            self.stalls += 1
            return False
        self.outstanding[block_addr] = kind
        self.allocations += 1
        self.peak = max(self.peak, len(self.outstanding))
        return True

    def retire(self, block_addr: int) -> None:
        if block_addr not in self.outstanding:
            raise ReproError(f"retiring MSHR for {block_addr:#x} that was never allocated")
        del self.outstanding[block_addr]

    @property
    def occupancy(self) -> int:
        return len(self.outstanding)
