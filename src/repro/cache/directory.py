"""Coherence directory for one L3 NUCA slice (Table IV: directory MESI).

Each L3 slice is the home node for the blocks that map to it and tracks,
per block, which cores' private hierarchies hold a copy (``sharers``) and
which single core, if any, holds it exclusively/modified (``owner``).

Invariant: ``owner is not None`` implies ``sharers == {owner}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CoherenceError


@dataclass
class DirectoryEntry:
    sharers: set[int] = field(default_factory=set)
    owner: int | None = None

    def check(self) -> None:
        if self.owner is not None and self.sharers != {self.owner}:
            raise CoherenceError(
                f"directory invariant broken: owner={self.owner} sharers={self.sharers}"
            )


class Directory:
    """Sharer/owner tracking for the blocks homed at one slice."""

    def __init__(self, slice_id: int = 0, tracer=None) -> None:
        self._entries: dict[int, DirectoryEntry] = {}
        self.slice_id = slice_id
        self.tracer = tracer
        self.redundant_revokes = 0
        """Revocations of a copy the core no longer held.  Duplicated
        forwarded requests (:mod:`repro.faults` directory faults) land
        here; the protocol treats them as idempotent no-ops."""

    def entry(self, block_addr: int) -> DirectoryEntry:
        return self._entries.setdefault(block_addr, DirectoryEntry())

    def peek(self, block_addr: int) -> DirectoryEntry | None:
        return self._entries.get(block_addr)

    def add_sharer(self, block_addr: int, core: int) -> None:
        e = self.entry(block_addr)
        e.sharers.add(core)
        if e.owner is not None and e.owner != core:
            raise CoherenceError(
                f"block {block_addr:#x}: adding sharer {core} while owned by {e.owner}"
            )
        if self.tracer is not None:
            self.tracer.emit("dir.grant", core=core, unit=self.slice_id,
                             addr=block_addr, outcome="sharer")

    def set_owner(self, block_addr: int, core: int) -> None:
        e = self.entry(block_addr)
        e.sharers = {core}
        e.owner = core
        if self.tracer is not None:
            self.tracer.emit("dir.grant", core=core, unit=self.slice_id,
                             addr=block_addr, outcome="owner")

    def clear_owner(self, block_addr: int) -> None:
        e = self.entry(block_addr)
        e.owner = None

    def remove_sharer(self, block_addr: int, core: int) -> bool:
        """Revoke ``core``'s copy; returns False for an idempotent no-op
        (the core held no copy — e.g. a duplicated forwarded request)."""
        e = self._entries.get(block_addr)
        if e is None or core not in e.sharers:
            self.redundant_revokes += 1
            if self.tracer is not None:
                self.tracer.emit("dir.revoke", core=core, unit=self.slice_id,
                                 addr=block_addr, reason="redundant")
            return False
        e.sharers.discard(core)
        if e.owner == core:
            e.owner = None
        if self.tracer is not None:
            self.tracer.emit("dir.revoke", core=core, unit=self.slice_id,
                             addr=block_addr)
        if not e.sharers:
            del self._entries[block_addr]
        return True

    def drop(self, block_addr: int) -> None:
        if self._entries.pop(block_addr, None) is not None \
                and self.tracer is not None:
            self.tracer.emit("dir.drop", unit=self.slice_id, addr=block_addr)

    def blocks(self) -> list[int]:
        return list(self._entries)

    def check_all(self) -> None:
        for entry in self._entries.values():
            entry.check()
