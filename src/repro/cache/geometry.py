"""Operand-locality-aware cache geometry (Section IV-C, Figure 5).

The geometry maps an address to (set, bank, block partition) and a
(set, way) pair to a physical sub-array row:

* the block offset is the low ``offset_bits`` of the address;
* the *low* set-index bits select the bank, the next bits select the block
  partition within the bank (Figure 5(b));
* the remaining set-index bits select the row group inside the partition;
* **all ways of a set map to the same block partition** (Figure 5(a)), so
  operand locality never depends on run-time way choice.

Consequently two addresses map to the same block partition iff their low
``offset_bits + bank_bits + bp_bits`` address bits agree - the Table III
"minimum address bits match" rule that lets software guarantee operand
locality with page alignment alone.

Each block partition is realized by one :class:`~repro.sram.ComputeSubarray`
whose rows each hold one cache block; any two blocks of a partition can be
computed on in place.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AddressError
from ..params import CacheLevelConfig
from ..sram import ComputeSubarray, SubarrayTiming


@dataclass(frozen=True)
class AddressParts:
    """Decoded address fields for one cache level."""

    addr: int
    tag: int
    set_index: int
    offset: int
    bank: int
    bp: int
    row_group: int

    @property
    def partition(self) -> int:
        """Flat block-partition id: bank-major ordering."""
        return self.bank * self._bps_per_bank + self.bp

    # populated by CacheGeometry.decode via object.__setattr__-free trick:
    # store bps_per_bank alongside to keep the dataclass frozen and simple.
    _bps_per_bank: int = 1


class CacheGeometry:
    """Address decoding plus the physical sub-array grid of one cache level."""

    def __init__(
        self,
        config: CacheLevelConfig,
        timing: SubarrayTiming | None = None,
        max_activated: int = 64,
        wordline_underdrive: bool = True,
        backend: str = "bitexact",
    ) -> None:
        self.config = config
        self.timing = timing or SubarrayTiming()
        self.backend = backend
        # Decode is on the critical path of every cache access and every CC
        # block operation; precompute the field masks/shifts once and
        # memoize decoded addresses (the config is frozen, so decode is
        # pure and the cache can never go stale).
        self._offset_mask = config.block_size - 1
        self._offset_bits = config.offset_bits
        self._set_mask = config.sets - 1
        self._tag_shift = config.offset_bits + config.set_index_bits
        self._bank_mask = config.banks - 1
        self._bp_shift = config.bank_bits
        self._bp_mask = config.bps_per_bank - 1
        self._rg_shift = config.bank_bits + config.bp_bits
        self._ways = config.ways
        self._bps_per_bank = config.bps_per_bank
        self._decode_cache: dict[int, AddressParts] = {}
        # One extra row per sub-array is reserved for cc_search key
        # replication: the key must share bit-lines with the data it is
        # compared against, so each block partition holds its own copy.
        self.key_row = config.blocks_per_partition
        self.subarrays = [
            ComputeSubarray(
                rows=config.blocks_per_partition + 1,
                cols=config.block_size * 8,
                timing=self.timing,
                max_activated=max_activated,
                wordline_underdrive=wordline_underdrive,
                backend=backend,
            )
            for _ in range(config.num_partitions)
        ]

    # -- address decode -------------------------------------------------------

    def decode(self, addr: int) -> AddressParts:
        """Split an address into tag/set/offset/bank/partition fields."""
        parts = self._decode_cache.get(addr)
        if parts is not None:
            return parts
        if addr < 0:
            raise AddressError(f"negative address {addr:#x}")
        set_index = (addr >> self._offset_bits) & self._set_mask
        parts = AddressParts(
            addr=addr,
            tag=addr >> self._tag_shift,
            set_index=set_index,
            offset=addr & self._offset_mask,
            bank=set_index & self._bank_mask,
            bp=(set_index >> self._bp_shift) & self._bp_mask,
            row_group=set_index >> self._rg_shift,
            _bps_per_bank=self._bps_per_bank,
        )
        self._decode_cache[addr] = parts
        return parts

    def partition_of(self, addr: int) -> int:
        """Flat block-partition id an address maps to."""
        return self.decode(addr).partition

    def row_of(self, set_index: int, way: int) -> int:
        """Physical sub-array row of (set, way).

        All ways of a set sit in consecutive rows of the set's partition,
        implementing the way->partition mapping of Figure 5(a).
        """
        if not 0 <= way < self._ways:
            raise AddressError(f"way {way} outside 0..{self._ways - 1}")
        return (set_index >> self._rg_shift) * self._ways + way

    def subarray_for(self, addr: int) -> ComputeSubarray:
        """The sub-array (block partition) holding an address."""
        return self.subarrays[self.partition_of(addr)]

    # -- physical data plane ----------------------------------------------------

    def read_data(self, addr: int, way: int) -> bytes:
        """Read the 64-byte block at (addr's set, way) from its sub-array."""
        parts = self.decode(addr)
        row = self.row_of(parts.set_index, way)
        return self.subarrays[parts.partition].read_block(row)

    def write_data(self, addr: int, way: int, data: bytes) -> None:
        """Write a 64-byte block into (addr's set, way)'s sub-array row."""
        parts = self.decode(addr)
        row = self.row_of(parts.set_index, way)
        self.subarrays[parts.partition].write_block(row, data)

    def locate(self, addr: int, way: int) -> tuple[ComputeSubarray, int]:
        """``(sub-array, row)`` of a resident block - the handle the CC
        controller uses to issue in-place operations."""
        parts = self.decode(addr)
        row = self.row_of(parts.set_index, way)
        return self.subarrays[parts.partition], row

    def write_key(self, partition: int, key: bytes) -> int:
        """Replicate a search key into a partition's reserved key row.

        Returns the key row index so the caller can issue the in-place
        search against it.
        """
        self.subarrays[partition].write_block(self.key_row, key)
        return self.key_row

    # -- reconstruction (for tests/debug) ---------------------------------------

    def rebuild_address(self, tag: int, set_index: int, offset: int = 0) -> int:
        """Inverse of :meth:`decode` (round-trip tested)."""
        cfg = self.config
        return (
            (tag << (cfg.offset_bits + cfg.set_index_bits))
            | (set_index << cfg.offset_bits)
            | offset
        )
