"""Cache hierarchy substrate: geometry, coherence, and interconnects.

This package builds the conventional three-level hierarchy of Table IV -
private L1/L2, shared NUCA L3 slices on a ring, directory MESI coherence,
and a flat DRAM backing store - with the operand-locality-aware geometry of
Section IV-C: all ways of a set map to one block partition, and bank/
partition-select bits come from the low set-index bits, so page-aligned
operands always share bit-lines.

Data is physically stored in :class:`~repro.sram.ComputeSubarray` instances
(one per block partition), which is what lets the CC controller compute on
cached data in place.
"""

from .block import MESIState, TagEntry
from .cache import CacheLevel
from .geometry import AddressParts, CacheGeometry
from .hierarchy import CacheHierarchy
from .locality import check_operand_locality, partitions_match
from .memory import MainMemory
from .prefetch import StridePrefetcher
from .ring import RingInterconnect

__all__ = [
    "MESIState",
    "TagEntry",
    "CacheLevel",
    "AddressParts",
    "CacheGeometry",
    "CacheHierarchy",
    "check_operand_locality",
    "partitions_match",
    "MainMemory",
    "StridePrefetcher",
    "RingInterconnect",
]
