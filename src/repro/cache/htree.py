"""H-tree in-cache interconnect model.

Within a cache, data moves between the sub-arrays and the cache controller
over an H-tree.  For large caches this wire transfer dominates read energy
(Table I: ~80% of a 2 MB L3-slice read).  In-place CC operations skip the
H-tree entirely; near-place operations and all conventional accesses pay it.

The address/command bus of the H-tree is *not* replicated (Section IV-D),
which serializes CC block-command delivery - the model exposes this as a
per-cycle command issue budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..energy.tables import CACHE_ACCESS_ENERGY_PJ, CACHE_IC_ENERGY_PJ


@dataclass
class HTree:
    """Energy/latency bookkeeping for one cache level's internal interconnect."""

    level_name: str
    commands_per_cycle: int = 1
    data_transfers: int = 0
    commands_issued: int = 0
    tracer: object = field(default=None, repr=False, compare=False)
    unit: int = field(default=0, repr=False, compare=False)

    def _table_level(self) -> str:
        return "L1-D" if self.level_name.startswith("L1") else self.level_name

    def transfer_energy_pj(self) -> float:
        """Energy of moving one 64-byte block over the H-tree (Table I)."""
        return CACHE_IC_ENERGY_PJ[self._table_level()]

    def record_transfer(self) -> float:
        """Account one block transfer; returns its energy in pJ."""
        self.data_transfers += 1
        if self.tracer is not None:
            self.tracer.emit("htree.transfer", level=self.level_name,
                             unit=self.unit)
        return self.transfer_energy_pj()

    def record_command(self) -> None:
        """Account one CC block-command broadcast over the address bus."""
        self.commands_issued += 1
        if self.tracer is not None:
            self.tracer.emit("htree.command", level=self.level_name,
                             unit=self.unit)

    def command_issue_cycles(self, n_commands: int) -> int:
        """Cycles to stream ``n_commands`` block-ops down the shared bus."""
        return (n_commands + self.commands_per_cycle - 1) // self.commands_per_cycle

    def htree_fraction(self) -> float:
        """Fraction of read energy spent on wires for this level."""
        level = self._table_level()
        ic = CACHE_IC_ENERGY_PJ[level]
        return ic / (ic + CACHE_ACCESS_ENERGY_PJ[level])
