"""The coherent three-level cache hierarchy (Table IV).

Private per-core L1-D and L2 (both inclusive), a shared L3 distributed into
NUCA slices on a ring, a directory per slice, and DRAM behind it all.
Transactions are atomic (each access completes before the next begins),
which is sufficient for the paper's analysis: the CC controller interacts
with coherence only through writebacks, invalidations, and pin releases.

Pages map to the NUCA slice of the first core that touches them
(Section IV-C: "pages are mapped to a NUCA slice closest to the core
actively accessing them").

The hierarchy exposes, besides byte-granularity ``read``/``write`` used by
the core model, the block-granularity hooks the CC controller needs:

* :meth:`probe_residency` - which levels hold all blocks of an operand;
* :meth:`cc_prepare` - fetch/flush/pin an operand block at a compute level,
  returning the latency incurred;
* :meth:`cc_release` - unpin after the operation completes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.accounting import Component, EnergyLedger
from ..errors import AddressError, CoherenceError
from ..events.tracer import EventTracer
from ..params import BLOCK_SIZE, PAGE_SIZE, MachineConfig
from .block import MESIState
from .cache import CacheLevel, Eviction
from .directory import Directory
from .memory import MainMemory
from .ring import RingInterconnect
from .topology import ClusterInterconnect

L1 = "L1"
L2 = "L2"
L3 = "L3"
LEVELS = (L1, L2, L3)


@dataclass
class AccessResult:
    """Outcome of one block access through the hierarchy."""

    data: bytes
    latency: int
    hit_level: str


def block_of(addr: int) -> int:
    return addr & ~(BLOCK_SIZE - 1)


class CacheHierarchy:
    """Cores' private caches + shared L3 slices + directory + memory."""

    def __init__(self, config: MachineConfig, ledger: EnergyLedger | None = None,
                 wordline_underdrive: bool = True) -> None:
        self.config = config
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self.tracer = (
            EventTracer(capacity=config.event_buffer_capacity)
            if config.trace_events else None
        )
        cpc = config.cc.commands_per_cycle
        backend = config.backend
        self.l1 = [
            CacheLevel(config.l1d, self.ledger, commands_per_cycle=cpc,
                       wordline_underdrive=wordline_underdrive, backend=backend,
                       tracer=self.tracer, unit=core)
            for core in range(config.cores)
        ]
        self.l2 = [
            CacheLevel(config.l2, self.ledger, commands_per_cycle=cpc,
                       wordline_underdrive=wordline_underdrive, backend=backend,
                       tracer=self.tracer, unit=core)
            for core in range(config.cores)
        ]
        self.l3 = [
            CacheLevel(config.l3_slice, self.ledger, commands_per_cycle=cpc,
                       wordline_underdrive=wordline_underdrive, backend=backend,
                       tracer=self.tracer, unit=slice_id)
            for slice_id in range(config.l3_slices)
        ]
        self.directory = [Directory(slice_id=s, tracer=self.tracer)
                          for s in range(config.l3_slices)]
        self.ring = ClusterInterconnect(config.ring, config.topology,
                                        self.ledger, tracer=self.tracer)
        self.memory = MainMemory(
            config.memory_size,
            latency=config.memory.latency,
            energy_per_block_pj=config.memory.energy_per_block,
        )
        self._page_to_slice: dict[int, int] = {}
        self.page_map_epoch = 0
        """Bumped by :meth:`place_page` (explicit OS re-homing).  First-touch
        homing is sticky and deterministic, so pure per-address decode caches
        only go stale on an explicit re-placement."""
        self.forced_unpins: list[tuple[str, int, int]] = []
        self.coherence_fault_hook = None
        """Fault-injection hook (:mod:`repro.faults`): called as
        ``hook(addr, holder_core)`` after each forwarded coherence request
        is processed.  Returning ``("duplicate", 0)`` re-delivers the
        request (which must be an idempotent no-op); ``("delay", cycles)``
        charges extra delivery latency; ``None`` injects nothing."""

    # -- NUCA home mapping ---------------------------------------------------------

    def home_slice(self, addr: int, core: int = 0) -> int:
        """Slice homing ``addr``.

        Policy comes from :class:`~repro.params.TopologyConfig`:
        ``first-touch`` homes a page at the first toucher's ring stop
        (Section IV-C); ``page`` interleaves pages statically across the
        slices (``page % l3_slices`` - a gap- and overlap-free partition of
        the address space).  An explicit :meth:`place_page` always wins.
        """
        page = addr // PAGE_SIZE
        slice_id = self._page_to_slice.get(page)
        if slice_id is None:
            if self.config.topology.slice_interleave == "page":
                slice_id = page % self.config.l3_slices
            else:
                slice_id = RingInterconnect.core_stop(core, self.config.l3_slices)
            self._page_to_slice[page] = slice_id
        return slice_id

    def place_page(self, addr: int, slice_id: int) -> None:
        """Explicitly place a page on a slice (OS page-coloring hook)."""
        if not 0 <= slice_id < self.config.l3_slices:
            raise AddressError(f"slice {slice_id} outside 0..{self.config.l3_slices - 1}")
        self._page_to_slice[addr // PAGE_SIZE] = slice_id
        self.page_map_epoch += 1

    # -- private-hierarchy helpers ----------------------------------------------------

    def _freshest_private(self, core: int, addr: int) -> tuple[bytes, bool] | None:
        """Newest (data, dirty) copy in a core's private hierarchy, if any."""
        l1_state = self.l1[core].state_of(addr)
        if l1_state.dirty:
            return self.l1[core].read_block(addr, charge=False), True
        l2_state = self.l2[core].state_of(addr)
        if l2_state.dirty:
            return self.l2[core].read_block(addr, charge=False), True
        if l1_state.readable:
            return self.l1[core].read_block(addr, charge=False), False
        if l2_state.readable:
            return self.l2[core].read_block(addr, charge=False), False
        return None

    def _invalidate_private(self, core: int, addr: int) -> tuple[bytes | None, bool]:
        """Invalidate a core's L1+L2 copies; returns freshest (data, dirty)."""
        for level in (self.l1[core], self.l2[core]):
            if level.is_pinned(addr):
                self.forced_unpins.append((level.name, core, addr))
                if self.tracer is not None:
                    self.tracer.emit("cc.pin_loss", core=core, level=level.name,
                                     addr=addr, reason="coherence-invalidation")
                level.unpin(addr)
        l1_res = self.l1[core].invalidate(addr)
        l2_res = self.l2[core].invalidate(addr)
        if l1_res and l1_res[1]:
            return l1_res[0], True
        if l2_res and l2_res[1]:
            return l2_res[0], True
        if l2_res:
            return l2_res[0], False
        if l1_res:
            return l1_res[0], False
        return None, False

    def _downgrade_private(self, core: int, addr: int) -> bytes | None:
        """Downgrade a core's copies to SHARED; returns dirty data if any."""
        dirty_data = None
        for level in (self.l1[core], self.l2[core]):
            state = level.state_of(addr)
            if state is MESIState.INVALID:
                continue
            if state.dirty and dirty_data is None:
                dirty_data = level.read_block(addr, charge=False)
            level.set_state(addr, MESIState.SHARED)
        return dirty_data

    def _coherence_fault_latency(self, addr: int, holder: int, slice_id: int,
                                 directory, invalidate: bool) -> int:
        """Consult the fault hook after a forwarded request; returns extra
        latency.  A ``duplicate`` action re-delivers the message — the
        invalidate/downgrade and the directory revocation must absorb it
        as idempotent no-ops; a ``delay`` action charges the injected
        delivery latency."""
        if self.coherence_fault_hook is None:
            return 0
        action = self.coherence_fault_hook(addr, holder)
        if action is None:
            return 0
        kind, cycles = action
        extra = 0
        if kind == "duplicate":
            if invalidate:
                self._invalidate_private(holder, addr)
                directory.remove_sharer(addr, holder)
            else:
                self._downgrade_private(holder, addr)
                directory.clear_owner(addr)
            holder_stop = RingInterconnect.core_stop(holder, self.config.l3_slices)
            extra = self.ring.send_control(slice_id, holder_stop)
        elif kind == "delay":
            extra = int(cycles)
        if self.tracer is not None:
            self.tracer.emit("fault.recover", core=holder, level="L3",
                             addr=addr, outcome="absorbed",
                             reason=f"directory-{kind}", span=float(extra))
        return extra

    # -- eviction handling --------------------------------------------------------------

    def _handle_l1_eviction(self, core: int, ev: Eviction) -> None:
        if not ev.dirty:
            return
        if not self.l2[core].contains(ev.addr):
            raise CoherenceError(
                f"inclusion violated: L1 victim {ev.addr:#x} absent from L2 of core {core}"
            )
        self.l2[core].write_block(ev.addr, ev.data, dirty=True)

    def _handle_l2_eviction(self, core: int, ev: Eviction) -> None:
        data, dirty = ev.data, ev.dirty
        l1_res = self.l1[core].invalidate(ev.addr)
        if l1_res and l1_res[1]:
            data, dirty = l1_res[0], True
        slice_id = self.home_slice(ev.addr, core)
        if dirty:
            self.ring.send_block(RingInterconnect.core_stop(core, self.config.l3_slices),
                                 slice_id)
            if not self.l3[slice_id].contains(ev.addr):
                raise CoherenceError(
                    f"inclusion violated: L2 victim {ev.addr:#x} absent from L3 slice {slice_id}"
                )
            self.l3[slice_id].write_block(ev.addr, data, dirty=True)
        self.directory[slice_id].remove_sharer(ev.addr, core)

    def _handle_l3_eviction(self, slice_id: int, ev: Eviction) -> None:
        data, dirty = ev.data, ev.dirty
        entry = self.directory[slice_id].peek(ev.addr)
        if entry:
            for core in sorted(entry.sharers):
                inv_data, inv_dirty = self._invalidate_private(core, ev.addr)
                if inv_dirty and inv_data is not None:
                    data, dirty = inv_data, True
        self.directory[slice_id].drop(ev.addr)
        if dirty:
            self.memory.write_block(ev.addr, data)
            self.ledger.add(Component.MEMORY, self.memory.energy_per_block_pj)

    # -- L3/directory transaction -----------------------------------------------------------

    def _l3_get(self, core: int, addr: int, for_write: bool) -> tuple[bytes, int]:
        """Home-node transaction: returns (data, latency at/beyond L3)."""
        slice_id = self.home_slice(addr, core)
        l3 = self.l3[slice_id]
        directory = self.directory[slice_id]
        core_stop = RingInterconnect.core_stop(core, self.config.l3_slices)
        latency = self.ring.send_control(core_stop, slice_id)

        entry = directory.entry(addr)
        # Recall / invalidate remote copies.
        if entry.owner is not None and entry.owner != core:
            owner = entry.owner
            if for_write:
                data, dirty = self._invalidate_private(owner, addr)
            else:
                data = self._downgrade_private(owner, addr)
                dirty = data is not None
            if dirty and data is not None:
                owner_stop = RingInterconnect.core_stop(owner, self.config.l3_slices)
                latency += self.ring.send_block(owner_stop, slice_id)
                if not l3.contains(addr):
                    raise CoherenceError(
                        f"owner recall for {addr:#x} found no L3 copy (inclusion)"
                    )
                l3.write_block(addr, data, dirty=True)
            if for_write:
                directory.remove_sharer(addr, owner)
            else:
                directory.clear_owner(addr)
            latency += self._coherence_fault_latency(
                addr, owner, slice_id, directory, invalidate=for_write)
        elif for_write:
            for sharer in sorted(entry.sharers - {core}):
                self._invalidate_private(sharer, addr)
                directory.remove_sharer(addr, sharer)
                latency += self._coherence_fault_latency(
                    addr, sharer, slice_id, directory, invalidate=True)

        # Supply the data from L3, fetching from memory on an L3 miss.
        if l3.contains(addr):
            latency += l3.config.hit_latency
            data = l3.read_block(addr)
        else:
            latency += l3.config.hit_latency + self.memory.latency
            data = self.memory.read_block(addr)
            self.ledger.add(Component.MEMORY, self.memory.energy_per_block_pj)
            ev = l3.fill(addr, data, MESIState.EXCLUSIVE)
            if ev:
                self._handle_l3_eviction(slice_id, ev)

        # Grant.
        if for_write:
            directory.set_owner(addr, core)
        else:
            entry = directory.entry(addr)
            entry.sharers.add(core)
            entry.owner = core if entry.sharers == {core} else None
        latency += self.ring.send_block(slice_id, core_stop)
        return data, latency

    # -- the core-facing access path ------------------------------------------------------

    def access_block(self, core: int, addr: int, for_write: bool) -> AccessResult:
        """Bring a block to the core's L1 with read or write permission."""
        addr = block_of(addr)
        l1, l2 = self.l1[core], self.l2[core]
        l1_lat = l1.config.hit_latency

        l1_way = l1.lookup(addr)
        if l1_way is not None:
            state = l1.state_of(addr)
            if not for_write or state.writable:
                data = l1.read_block(addr)
                if for_write:
                    l1.set_state(addr, MESIState.MODIFIED)
                return AccessResult(data, l1_lat, L1)
            # S -> M upgrade through the directory.
            data = l1.read_block(addr)
            _, up_lat = self._l3_get(core, addr, for_write=True)
            l1.set_state(addr, MESIState.MODIFIED)
            if l2.contains(addr):
                l2.set_state(addr, MESIState.EXCLUSIVE)
            return AccessResult(data, l1_lat + up_lat, L3)

        l2_lat = l2.config.hit_latency
        l2_way = l2.lookup(addr)
        if l2_way is not None and (not for_write or l2.state_of(addr).writable):
            data = l2.read_block(addr)
            state = MESIState.MODIFIED if for_write else l2.state_of(addr)
            ev = l1.fill(addr, data, state)
            if ev:
                self._handle_l1_eviction(core, ev)
            return AccessResult(data, l1_lat + l2_lat, L2)

        # Miss (or upgrade-miss) to the home L3 slice.
        if l2_way is not None:
            data = l2.read_block(addr)
            _, l3_lat = self._l3_get(core, addr, for_write=True)
            l2.set_state(addr, MESIState.EXCLUSIVE)
            ev = l1.fill(addr, data, MESIState.MODIFIED)
            if ev:
                self._handle_l1_eviction(core, ev)
            return AccessResult(data, l1_lat + l2_lat + l3_lat, L3)

        data, l3_lat = self._l3_get(core, addr, for_write)
        entry = self.directory[self.home_slice(addr, core)].entry(addr)
        if for_write:
            l2_state, l1_state = MESIState.EXCLUSIVE, MESIState.MODIFIED
        elif entry.owner == core:
            l2_state = l1_state = MESIState.EXCLUSIVE
        else:
            l2_state = l1_state = MESIState.SHARED
        ev = l2.fill(addr, data, l2_state)
        if ev:
            self._handle_l2_eviction(core, ev)
        ev = l1.fill(addr, data, l1_state)
        if ev:
            self._handle_l1_eviction(core, ev)
        return AccessResult(data, l1_lat + l2_lat + l3_lat, L3)

    # -- byte-granularity interface used by the core model ---------------------------------

    def read(self, core: int, addr: int, size: int) -> tuple[bytes, int]:
        """Read ``size`` bytes; returns (data, total latency)."""
        if size == 0:
            return b"", 0
        out = bytearray()
        latency = 0
        for block in range(block_of(addr), block_of(addr + size - 1) + 1, BLOCK_SIZE):
            res = self.access_block(core, block, for_write=False)
            latency += res.latency
            lo = max(addr, block) - block
            hi = min(addr + size, block + BLOCK_SIZE) - block
            out += res.data[lo:hi]
        return bytes(out), latency

    def write(self, core: int, addr: int, data: bytes) -> int:
        """Write bytes (read-modify-write at block granularity); returns latency."""
        if not data:
            return 0
        latency = 0
        offset = 0
        size = len(data)
        for block in range(block_of(addr), block_of(addr + size - 1) + 1, BLOCK_SIZE):
            res = self.access_block(core, block, for_write=True)
            latency += res.latency
            lo = max(addr, block) - block
            hi = min(addr + size, block + BLOCK_SIZE) - block
            merged = bytearray(res.data)
            merged[lo:hi] = data[offset : offset + (hi - lo)]
            self.l1[core].write_block(block, bytes(merged), dirty=True, charge=False)
            offset += hi - lo
        return latency

    def coherent_peek(self, addr: int, size: int) -> bytes:
        """The architecturally-current value of a byte range, free of charge.

        Finds the freshest copy (a dirty private copy, else L3, else
        memory) without perturbing stats - used for verification and to
        model register contents.
        """
        out = bytearray()
        end = addr + size
        block = block_of(addr)
        while block < end:
            data = self._peek_block(block)
            lo = max(addr, block) - block
            hi = min(end, block + BLOCK_SIZE) - block
            out += data[lo:hi]
            block += BLOCK_SIZE
        return bytes(out)

    def _peek_block(self, addr: int) -> bytes:
        for core in range(self.config.cores):
            for level in (self.l1[core], self.l2[core]):
                if level.state_of(addr).dirty:
                    return level.peek_block(addr)
        slice_id = self._page_to_slice.get(addr // PAGE_SIZE)
        if slice_id is not None and self.l3[slice_id].contains(addr):
            return self.l3[slice_id].peek_block(addr)
        return self.memory.peek(addr, BLOCK_SIZE)

    # -- CC controller hooks (Section IV-E) --------------------------------------------------

    def level_cache(self, level: str, core: int, addr: int) -> CacheLevel:
        """The concrete cache a (level, core, addr) triple refers to."""
        if level == L1:
            return self.l1[core]
        if level == L2:
            return self.l2[core]
        if level == L3:
            return self.l3[self.home_slice(addr, core)]
        raise AddressError(f"unknown cache level {level!r}")

    def residency_epoch(self) -> int:
        """Monotone counter covering every fill/invalidate in the machine.

        The CC controller memoizes level selection per instruction; a memo
        entry is valid only while this epoch is unchanged (any fill or
        invalidate anywhere could alter which levels hold an operand).
        """
        return (sum(c.epoch for c in self.l1)
                + sum(c.epoch for c in self.l2)
                + sum(c.epoch for c in self.l3))

    def probe_residency(self, core: int, block_addrs: list[int]) -> dict[str, bool]:
        """For each level, are *all* the given blocks resident there?

        Used by the controller's level-selection policy: compute at the
        highest level where every operand is present, else at L3.
        """
        res = {}
        res[L1] = all(self.l1[core].contains(a) for a in block_addrs)
        res[L2] = all(self.l2[core].contains(a) for a in block_addrs)
        res[L3] = all(
            self.l3[self.home_slice(a, core)].contains(a) for a in block_addrs
        )
        return res

    def cc_prepare(self, core: int, level: str, addr: int, is_dest: bool,
                   skip_fetch: bool = False) -> int:
        """Make one operand block computable at ``level``; returns latency.

        Dirty copies in skipped (higher) levels are written back using the
        existing writeback machinery (Section IV-F); destination operands
        additionally have stale higher-level copies invalidated.  Missing
        blocks are fetched (from memory for L3, through the normal access
        path for L1/L2); fully-overwritten destinations skip the fetch
        (Section IV-E's optimization).
        """
        addr = block_of(addr)
        if level == L3:
            return self._cc_prepare_l3(core, addr, is_dest, skip_fetch)
        target = self.level_cache(level, core, addr)
        latency = 0  # a resident, ready operand costs only the tag probe,
        # which is folded into the controller's command-issue time
        if not target.contains(addr):
            res = self.access_block(core, addr, for_write=is_dest)
            latency += res.latency
        elif is_dest:
            state = target.state_of(addr)
            if not state.writable:
                res = self.access_block(core, addr, for_write=True)
                latency += res.latency
        # Flush/invalidate the levels above the compute level.
        if level == L2:
            l1 = self.l1[core]
            if l1.contains(addr):
                state = l1.state_of(addr)
                if state.dirty:
                    data = l1.read_block(addr, charge=False)
                    self.l2[core].write_block(addr, data, dirty=True)
                    latency += self.l2[core].config.hit_latency
                l1.invalidate(addr)
        if is_dest:
            target.set_state(addr, MESIState.MODIFIED)
        return latency

    def _cc_prepare_l3(self, core: int, addr: int, is_dest: bool, skip_fetch: bool) -> int:
        slice_id = self.home_slice(addr, core)
        l3 = self.l3[slice_id]
        directory = self.directory[slice_id]
        # Fast path: the block is resident, clean of private copies, and
        # already writable if needed - only the tag probe remains, which is
        # folded into the controller's command-issue serialization.
        entry = directory.peek(addr)
        if l3.contains(addr) and not (entry and entry.sharers):
            if is_dest:
                l3.set_state(addr, MESIState.MODIFIED)
            return 0
        latency = self.ring.send_control(
            RingInterconnect.core_stop(core, self.config.l3_slices), slice_id
        )
        if entry:
            for holder in sorted(entry.sharers):
                if is_dest:
                    data, dirty = self._invalidate_private(holder, addr)
                    directory.remove_sharer(addr, holder)
                else:
                    data = self._downgrade_private(holder, addr)
                    dirty = data is not None
                    directory.clear_owner(addr)
                if dirty and data is not None:
                    if not l3.contains(addr):
                        raise CoherenceError(
                            f"CC writeback for {addr:#x} found no L3 copy (inclusion)"
                        )
                    holder_stop = RingInterconnect.core_stop(holder, self.config.l3_slices)
                    latency += self.ring.send_block(holder_stop, slice_id)
                    l3.write_block(addr, data, dirty=True)
                latency += self._coherence_fault_latency(
                    addr, holder, slice_id, directory, invalidate=is_dest)
        if not l3.contains(addr):
            if skip_fetch and is_dest:
                ev = l3.fill(addr, bytes(BLOCK_SIZE), MESIState.MODIFIED)
            else:
                latency += self.memory.latency
                data = self.memory.read_block(addr)
                self.ledger.add(Component.MEMORY, self.memory.energy_per_block_pj)
                state = MESIState.MODIFIED if is_dest else MESIState.EXCLUSIVE
                ev = l3.fill(addr, data, state)
            if ev:
                self._handle_l3_eviction(slice_id, ev)
        elif is_dest:
            l3.set_state(addr, MESIState.MODIFIED)
        latency += l3.config.hit_latency
        return latency

    def cc_release(self, core: int, level: str, addr: int) -> None:
        """Unpin an operand block after its CC operation completes."""
        self.level_cache(level, core, block_of(addr)).unpin(block_of(addr))

    # -- invariant audits (used by property tests) ---------------------------------------------

    def check_inclusion(self) -> None:
        """Assert L1 subset-of L2 subset-of L3 and directory consistency."""
        for core in range(self.config.cores):
            for addr in self.l1[core].resident_addresses():
                if not self.l2[core].contains(addr):
                    raise CoherenceError(
                        f"L1 block {addr:#x} of core {core} missing from its L2"
                    )
            for addr in self.l2[core].resident_addresses():
                slice_id = self.home_slice(addr, core)
                if not self.l3[slice_id].contains(addr):
                    raise CoherenceError(
                        f"L2 block {addr:#x} of core {core} missing from L3 slice {slice_id}"
                    )
                entry = self.directory[slice_id].peek(addr)
                if entry is None or core not in entry.sharers:
                    raise CoherenceError(
                        f"L2 block {addr:#x} of core {core} not in directory"
                    )
        for directory in self.directory:
            directory.check_all()

    def check_single_writer(self) -> None:
        """Assert the SWMR invariant: a dirty private copy is exclusive."""
        blocks: dict[int, list[tuple[int, MESIState]]] = {}
        for core in range(self.config.cores):
            for level in (self.l1[core], self.l2[core]):
                for addr in level.resident_addresses():
                    state = level.state_of(addr)
                    blocks.setdefault(addr, []).append((core, state))
        for addr, holders in blocks.items():
            writers = {c for c, s in holders if s.writable}
            readers = {c for c, s in holders}
            if len(writers) > 1:
                raise CoherenceError(f"block {addr:#x} writable in cores {writers}")
            if writers and readers - writers:
                raise CoherenceError(
                    f"block {addr:#x} writable in {writers} but shared in {readers - writers}"
                )
