"""One cache level: tag array + compute sub-arrays + H-tree + accounting.

:class:`CacheLevel` is the mechanical container the coherence protocol and
the CC controllers manipulate.  It stores block data physically in compute
sub-arrays (one per block partition), charges Table-V energies to the
machine's :class:`~repro.energy.EnergyLedger`, and exposes the
``(sub-array, row)`` handles in-place computation needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.accounting import EnergyLedger
from ..energy.mcpat import charge_cache_read, charge_cache_write
from ..errors import AddressError, CoherenceError
from ..params import CacheLevelConfig
from ..sram import ComputeSubarray
from .block import MESIState
from .geometry import CacheGeometry
from .htree import HTree
from .mshr import MSHRFile
from .set_assoc import SetAssociativeArray


@dataclass
class Eviction:
    """A victim block pushed out by a fill."""

    addr: int
    data: bytes
    dirty: bool


@dataclass
class CacheLevelStats:
    reads: int = 0
    writes: int = 0
    fills: int = 0
    writebacks_out: int = 0
    cc_inplace_ops: int = 0
    cc_nearplace_ops: int = 0


class CacheLevel:
    """A single cache (an L1, an L2, or one L3 NUCA slice)."""

    def __init__(
        self,
        config: CacheLevelConfig,
        ledger: EnergyLedger,
        commands_per_cycle: int = 1,
        mshr_capacity: int = 16,
        wordline_underdrive: bool = True,
        backend: str = "bitexact",
        tracer=None,
        unit: int = 0,
    ) -> None:
        self.config = config
        self.name = config.name
        self.ledger = ledger
        self.tracer = tracer
        self.unit = unit
        self.tags = SetAssociativeArray(config)
        self.geometry = CacheGeometry(
            config, wordline_underdrive=wordline_underdrive, backend=backend
        )
        self.htree = HTree(config.name, commands_per_cycle=commands_per_cycle,
                           tracer=tracer, unit=unit)
        self.mshrs = MSHRFile(capacity=mshr_capacity)
        self.stats = CacheLevelStats()
        self.epoch = 0
        """Residency epoch: bumped on every fill and invalidate.  The CC
        controller's memoized level-selection (and the stream scheduler's
        residency preflight caches) are valid only while the epochs of all
        caches are unchanged — any counter that could stale them moves this
        number.  State-only transitions (MESI up/downgrades) do not bump it;
        consumers that depend on writability must re-probe."""

    # -- presence -----------------------------------------------------------------

    def _parts(self, addr: int):
        if addr % self.config.block_size:
            raise AddressError(f"{self.name}: unaligned block address {addr:#x}")
        return self.geometry.decode(addr)

    def lookup(self, addr: int) -> int | None:
        """Tag lookup (counted); returns the way or None."""
        parts = self._parts(addr)
        way = self.tags.lookup(parts.set_index, parts.tag)
        if self.tracer is not None:
            self.tracer.emit("cache.lookup", level=self.name, unit=self.unit,
                             addr=addr, outcome="hit" if way is not None else "miss")
        return way

    def probe(self, addr: int) -> int | None:
        """Uncounted presence check (coherence probes, CC level selection)."""
        parts = self._parts(addr)
        return self.tags.probe(parts.set_index, parts.tag)

    def contains(self, addr: int) -> bool:
        return self.probe(addr) is not None

    def state_of(self, addr: int) -> MESIState:
        parts = self._parts(addr)
        way = self.tags.probe(parts.set_index, parts.tag)
        if way is None:
            return MESIState.INVALID
        return self.tags.entry(parts.set_index, way).state

    def set_state(self, addr: int, state: MESIState) -> None:
        parts = self._parts(addr)
        way = self.tags.probe(parts.set_index, parts.tag)
        if way is None:
            raise CoherenceError(f"{self.name}: state change on absent block {addr:#x}")
        self.tags.entry(parts.set_index, way).state = state

    # -- data plane ----------------------------------------------------------------

    def read_block(self, addr: int, charge: bool = True) -> bytes:
        """Read a resident block (conventional access: array + H-tree)."""
        parts = self._parts(addr)
        way = self.tags.probe(parts.set_index, parts.tag)
        if way is None:
            raise CoherenceError(f"{self.name}: read of absent block {addr:#x}")
        self.tags.touch(parts.set_index, way)
        self.stats.reads += 1
        self.htree.record_transfer()
        if self.tracer is not None:
            self.tracer.emit("cache.read", level=self.name, unit=self.unit,
                             addr=addr)
        if charge:
            charge_cache_read(self.ledger, self.name)
        return self.geometry.read_data(addr, way)

    def write_block(self, addr: int, data: bytes, dirty: bool = True, charge: bool = True) -> None:
        """Write a resident block; marks it MODIFIED unless ``dirty=False``."""
        parts = self._parts(addr)
        way = self.tags.probe(parts.set_index, parts.tag)
        if way is None:
            raise CoherenceError(f"{self.name}: write to absent block {addr:#x}")
        entry = self.tags.entry(parts.set_index, way)
        if dirty:
            entry.state = MESIState.MODIFIED
        self.tags.touch(parts.set_index, way)
        self.stats.writes += 1
        self.htree.record_transfer()
        if self.tracer is not None:
            self.tracer.emit("cache.write", level=self.name, unit=self.unit,
                             addr=addr)
        if charge:
            charge_cache_write(self.ledger, self.name)
        self.geometry.write_data(addr, way, data)

    def fill(self, addr: int, data: bytes, state: MESIState) -> Eviction | None:
        """Allocate a block, evicting the LRU victim if needed.

        Returns the eviction (with its data and dirtiness) so the caller -
        the coherence engine - can write it back or drop it.
        """
        parts = self._parts(addr)
        existing = self.tags.probe(parts.set_index, parts.tag)
        if existing is not None:
            raise CoherenceError(f"{self.name}: double fill of block {addr:#x}")
        way = self.tags.victim_way(parts.set_index)
        victim_entry = self.tags.entry(parts.set_index, way)
        eviction = None
        if victim_entry.valid:
            victim_addr = self.geometry.rebuild_address(victim_entry.tag, parts.set_index)
            victim_data = self.geometry.read_data(victim_addr, way)
            eviction = Eviction(
                addr=victim_addr, data=victim_data, dirty=victim_entry.state.dirty
            )
            if eviction.dirty:
                self.stats.writebacks_out += 1
                if self.tracer is not None:
                    self.tracer.emit("cache.writeback", level=self.name,
                                     unit=self.unit, addr=victim_addr)
        self.tags.install(parts.set_index, way, parts.tag, state)
        self.geometry.write_data(addr, way, data)
        self.stats.fills += 1
        self.epoch += 1
        if self.tracer is not None:
            self.tracer.emit("cache.fill", level=self.name, unit=self.unit,
                             addr=addr)
        charge_cache_write(self.ledger, self.name)
        return eviction

    def invalidate(self, addr: int) -> tuple[bytes, bool] | None:
        """Remove a block; returns ``(data, dirty)`` if it was present."""
        parts = self._parts(addr)
        way = self.tags.probe(parts.set_index, parts.tag)
        if way is None:
            return None
        entry = self.tags.entry(parts.set_index, way)
        data = self.geometry.read_data(addr, way)
        dirty = entry.state.dirty
        entry.invalidate()
        self.epoch += 1
        return data, dirty

    def peek_block(self, addr: int) -> bytes:
        """Read a resident block without touching LRU, stats, or energy
        (verification backdoor)."""
        from ..bitops import bits_to_bytes

        parts = self._parts(addr)
        way = self.tags.probe(parts.set_index, parts.tag)
        if way is None:
            raise CoherenceError(f"{self.name}: peek of absent block {addr:#x}")
        sub, row = self.geometry.locate(addr, way)
        if sub.is_packed:
            return sub.cells.read_row_bytes(row)
        return bits_to_bytes(sub.cells.read_row(row))

    # -- CC support -------------------------------------------------------------

    def locate(self, addr: int) -> tuple[ComputeSubarray, int]:
        """``(sub-array, row)`` of a resident block for in-place compute."""
        parts = self._parts(addr)
        way = self.tags.probe(parts.set_index, parts.tag)
        if way is None:
            raise CoherenceError(f"{self.name}: locate of absent block {addr:#x}")
        return self.geometry.locate(addr, way)

    def pin(self, addr: int, owner: int) -> None:
        parts = self._parts(addr)
        way = self.tags.probe(parts.set_index, parts.tag)
        if way is None:
            raise CoherenceError(f"{self.name}: pin of absent block {addr:#x}")
        self.tags.pin(parts.set_index, way, owner)

    def unpin(self, addr: int) -> None:
        parts = self._parts(addr)
        way = self.tags.probe(parts.set_index, parts.tag)
        if way is not None:
            self.tags.unpin(parts.set_index, way)

    def is_pinned(self, addr: int) -> bool:
        parts = self._parts(addr)
        way = self.tags.probe(parts.set_index, parts.tag)
        if way is None:
            return False
        return self.tags.entry(parts.set_index, way).pinned

    # -- debugging / inclusion audits ----------------------------------------------

    def resident_addresses(self) -> list[int]:
        """Addresses of all valid blocks (inclusion-invariant checks)."""
        return [
            self.geometry.rebuild_address(entry.tag, set_index)
            for set_index, _way, entry in self.tags.valid_entries()
        ]
