"""Clustered (NUMA) interconnect: per-cluster rings bridged by a cluster ring.

The machine's ring stops are partitioned block-wise into equal clusters
(:class:`~repro.params.TopologyConfig`).  Stop ``s`` belongs to cluster
``s // stops_per_cluster``; stop ``cluster * stops_per_cluster`` is that
cluster's *gateway*.  A message between stops of the same cluster travels
the cluster's local bidirectional ring at the flat-ring costs
(:class:`~repro.params.RingConfig`).  A message between clusters goes

    src stop --local ring--> src gateway --cluster ring--> dst gateway
    --local ring--> dst stop

where cluster-ring hops cost ``inter_hop_latency`` cycles and
``inter_energy_per_hop_per_flit`` pJ per flit - an order of magnitude more
than an on-die hop, which is what makes remote L3 slices *NUMA*.

Two properties the test battery pins:

* **Flat-ring reduction.**  With ``clusters == 1`` every route has zero
  inter-cluster hops, and latency, energy, and statistics are bit-identical
  to :class:`~repro.cache.ring.RingInterconnect` - machines built before
  this module existed replay cycle-exact.
* **Metric sanity.**  The hop-cost function is symmetric and satisfies the
  triangle inequality for every topology (each of the three route
  components - intra hops at the endpoints and cluster-ring hops - is
  itself a ring metric, and gateway routing composes them additively).

When a tracer is attached, every message that crosses a cluster boundary
emits a ``topo.hop`` event so the cycle-attribution profiler can tile NUMA
traffic per cluster pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.accounting import EnergyLedger
from ..errors import ConfigError
from ..events.tracer import EventTracer
from ..params import RingConfig, TopologyConfig
from .ring import RingInterconnect


def ring_distance(a: int, b: int, stops: int) -> int:
    """Shortest hop count between two stops of a bidirectional ring."""
    d = abs(a - b) % stops
    return min(d, stops - d)


@dataclass
class TopologyStats:
    """Inter-cluster traffic counters (local-ring traffic stays in
    :class:`~repro.cache.ring.RingStats`)."""

    inter_messages: int = 0
    inter_flit_hops: int = 0
    inter_energy_pj: float = 0.0


class ClusterInterconnect(RingInterconnect):
    """Gateway-routed hierarchy of rings; degenerates to the flat ring.

    Drop-in replacement for :class:`RingInterconnect`: the hierarchy and
    the CC controller only call :meth:`hops`, :meth:`latency`,
    :meth:`send_control`, :meth:`send_block`, and
    :meth:`block_transfer_energy`, all of which are overridden here to
    route through cluster gateways.
    """

    def __init__(self, config: RingConfig, topology: TopologyConfig | None = None,
                 ledger: EnergyLedger | None = None,
                 tracer: EventTracer | None = None) -> None:
        super().__init__(config, ledger)
        self.topology = topology if topology is not None else TopologyConfig()
        if config.stops % self.topology.clusters:
            raise ConfigError(
                f"{config.stops} ring stops do not divide into "
                f"{self.topology.clusters} equal clusters"
            )
        self.tracer = tracer
        self.stops_per_cluster = config.stops // self.topology.clusters
        self.topo_stats = TopologyStats()

    # -- routing ---------------------------------------------------------------------

    def cluster_of(self, stop: int) -> int:
        """Cluster a ring stop belongs to."""
        return (stop % self.config.stops) // self.stops_per_cluster

    def route(self, src_stop: int, dst_stop: int) -> tuple[int, int]:
        """Shortest gateway route as ``(intra_hops, inter_hops)``."""
        n = self.config.stops
        src, dst = src_stop % n, dst_stop % n
        spc = self.stops_per_cluster
        src_cluster, dst_cluster = src // spc, dst // spc
        if src_cluster == dst_cluster:
            return ring_distance(src % spc, dst % spc, spc), 0
        intra = (ring_distance(src % spc, 0, spc)
                 + ring_distance(dst % spc, 0, spc))
        inter = ring_distance(src_cluster, dst_cluster, self.topology.clusters)
        return intra, inter

    def hops(self, src_stop: int, dst_stop: int) -> int:
        """Total hop count (local + cluster-ring) of the shortest route."""
        intra, inter = self.route(src_stop, dst_stop)
        return intra + inter

    def latency(self, src_stop: int, dst_stop: int, data: bool) -> int:
        intra, inter = self.route(src_stop, dst_stop)
        cycles = (intra * self.config.hop_latency
                  + inter * self.topology.inter_hop_latency)
        if data:
            cycles += self.config.flits_per_block - 1
            if inter:
                cycles += self.topology.inter_flits_per_block - 1
        return cycles

    # -- accounting ------------------------------------------------------------------

    def _account(self, src_stop: int, dst_stop: int, data: bool) -> int:
        intra, inter = self.route(src_stop, dst_stop)
        ring_flits = self.config.flits_per_block if data else 1
        intra_pj = intra * ring_flits * self.config.energy_per_hop_per_flit
        self.stats.flit_hops += intra * ring_flits
        if data:
            self.stats.data_messages += 1
        else:
            self.stats.control_messages += 1
        self._charge(intra_pj)
        if inter:
            inter_flits = self.topology.inter_flits_per_block if data else 1
            inter_pj = (inter * inter_flits
                        * self.topology.inter_energy_per_hop_per_flit)
            self.topo_stats.inter_messages += 1
            self.topo_stats.inter_flit_hops += inter * inter_flits
            self.topo_stats.inter_energy_pj += inter_pj
            self._charge(inter_pj)
            if self.tracer is not None:
                self.tracer.emit(
                    "topo.hop",
                    unit=self.cluster_of(src_stop),
                    blocks=self.cluster_of(dst_stop),
                    span=float(inter),
                    outcome="data" if data else "control",
                    reason=f"c{self.cluster_of(src_stop)}->"
                           f"c{self.cluster_of(dst_stop)}",
                )
        return self.latency(src_stop, dst_stop, data)

    def send_control(self, src_stop: int, dst_stop: int) -> int:
        return self._account(src_stop, dst_stop, data=False)

    def send_block(self, src_stop: int, dst_stop: int) -> int:
        return self._account(src_stop, dst_stop, data=True)

    def block_transfer_energy(self, src_stop: int, dst_stop: int) -> float:
        intra, inter = self.route(src_stop, dst_stop)
        return (intra * self.config.flits_per_block
                * self.config.energy_per_hop_per_flit
                + inter * self.topology.inter_flits_per_block
                * self.topology.inter_energy_per_hop_per_flit)
