"""Stride prefetcher: the hardware behind the core model's ``streaming``
annotation.

The timing model marks sequential file-scan loads ``streaming`` (no stall
charged) on the argument that any modern stride prefetcher covers them.
This module implements that prefetcher so the claim is mechanical rather
than asserted: a per-core reference-prediction table detects constant
block strides in the demand-miss stream and issues prefetch fills ahead of
it; tests verify that a sequential scan's misses become prefetch hits
after the training period.

The prefetcher is deliberately *not* wired into the default timing path
(the annotation already models its effect); it exists to validate the
annotation and for prefetch-policy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import BLOCK_SIZE
from .hierarchy import CacheHierarchy


@dataclass
class StreamEntry:
    """One tracked reference stream."""

    last_block: int
    stride: int = 0
    confidence: int = 0

    def observe(self, block: int) -> bool:
        """Update with a new block address; True when confident."""
        stride = block - self.last_block
        if stride == self.stride and stride != 0:
            self.confidence = min(self.confidence + 1, 3)
        else:
            self.stride = stride
            self.confidence = 1 if stride else 0
        self.last_block = block
        return self.confidence >= 2


@dataclass
class PrefetcherStats:
    trainings: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0
    demand_misses: int = 0


class StridePrefetcher:
    """Reference-prediction-table stride prefetcher for one core.

    Call :meth:`access` on every demand access; the prefetcher trains on
    the block stream and, once a stream is confident, prefetches
    ``degree`` blocks ahead into the core's private hierarchy.
    """

    def __init__(self, hierarchy: CacheHierarchy, core: int,
                 table_size: int = 16, degree: int = 2) -> None:
        self.hierarchy = hierarchy
        self.core = core
        self.table_size = table_size
        self.degree = degree
        self._streams: dict[int, StreamEntry] = {}
        self._prefetched: set[int] = set()
        self.stats = PrefetcherStats()

    def _stream_key(self, block: int) -> int:
        """Streams are tracked per 16 KB region (a PC proxy)."""
        return block >> 14

    def access(self, addr: int) -> list[int]:
        """Record a demand access; returns the blocks prefetched (if any)."""
        block = addr & ~(BLOCK_SIZE - 1)
        was_prefetched = block in self._prefetched
        if was_prefetched:
            self.stats.prefetch_hits += 1
            self._prefetched.discard(block)
        elif not self.hierarchy.l1[self.core].contains(block):
            self.stats.demand_misses += 1

        key = self._stream_key(block)
        entry = self._streams.get(key)
        if entry is None:
            if len(self._streams) >= self.table_size:
                self._streams.pop(next(iter(self._streams)))
            self._streams[key] = StreamEntry(last_block=block)
            return []
        confident = entry.observe(block)
        if not confident:
            return []
        self.stats.trainings += 1
        issued = []
        for i in range(1, self.degree + 1):
            target = block + i * entry.stride
            if target < 0 or target + BLOCK_SIZE > self.hierarchy.config.memory_size:
                continue
            if target in self._prefetched or \
                    self.hierarchy.l1[self.core].contains(target):
                continue
            # The prefetch fill is a normal (off-critical-path) access.
            self.hierarchy.access_block(self.core, target, for_write=False)
            self._prefetched.add(target)
            issued.append(target)
            self.stats.prefetches_issued += 1
        return issued

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that were later demanded."""
        if not self.stats.prefetches_issued:
            return 0.0
        return self.stats.prefetch_hits / self.stats.prefetches_issued


def validate_streaming_annotation(hierarchy: CacheHierarchy, core: int,
                                  base: int, blocks: int) -> dict[str, float]:
    """Drive a sequential scan through a prefetcher; report coverage.

    Coverage ~1.0 after training justifies charging sequential loads zero
    stall cycles in the core model.
    """
    prefetcher = StridePrefetcher(hierarchy, core, degree=4)
    covered = 0
    for i in range(blocks):
        addr = base + i * BLOCK_SIZE
        in_l1_before = hierarchy.l1[core].contains(addr)
        prefetcher.access(addr)
        if in_l1_before:
            covered += 1
        hierarchy.access_block(core, addr, for_write=False)
    trained_region = max(blocks - 3, 1)  # training takes ~3 accesses
    return {
        "coverage": covered / blocks,
        "coverage_after_training": min(covered / trained_region, 1.0),
        "accuracy": prefetcher.accuracy,
        "prefetches": float(prefetcher.stats.prefetches_issued),
    }
