"""Shared ring interconnect (Table IV: 3-cycle hops, 256-bit links).

Cores and L3 slices sit at ring stops.  A 64-byte block is two 256-bit
flits.  The model accounts latency (hop count x hop latency + serialization)
and energy (per flit-hop) for block transfers and control messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.accounting import Component, EnergyLedger
from ..errors import ConfigError
from ..params import RingConfig


@dataclass
class RingStats:
    control_messages: int = 0
    data_messages: int = 0
    flit_hops: int = 0
    energy_pj: float = 0.0


class RingInterconnect:
    """Bidirectional ring with shortest-path routing.

    When constructed with an :class:`EnergyLedger`, every message charges
    its flit-hop energy to the ``noc`` component (Figure 7(b)'s NoC bar).
    """

    def __init__(self, config: RingConfig, ledger: EnergyLedger | None = None) -> None:
        if config.stops < 1:
            raise ConfigError("ring needs at least one stop")
        self.config = config
        self.ledger = ledger
        self.stats = RingStats()

    def _charge(self, pj: float) -> None:
        self.stats.energy_pj += pj
        if self.ledger is not None:
            self.ledger.add(Component.NOC, pj)

    def hops(self, src_stop: int, dst_stop: int) -> int:
        """Shortest hop count between two stops on the bidirectional ring."""
        n = self.config.stops
        d = abs(src_stop - dst_stop) % n
        return min(d, n - d)

    def latency(self, src_stop: int, dst_stop: int, data: bool) -> int:
        """Cycles for one message; data messages add flit serialization."""
        h = self.hops(src_stop, dst_stop)
        cycles = h * self.config.hop_latency
        if data:
            cycles += self.config.flits_per_block - 1
        return cycles

    def send_control(self, src_stop: int, dst_stop: int) -> int:
        """Account a one-flit control message; returns its latency."""
        h = self.hops(src_stop, dst_stop)
        self.stats.control_messages += 1
        self.stats.flit_hops += h
        self._charge(h * self.config.energy_per_hop_per_flit)
        return self.latency(src_stop, dst_stop, data=False)

    def send_block(self, src_stop: int, dst_stop: int) -> int:
        """Account a 64-byte data message; returns its latency."""
        h = self.hops(src_stop, dst_stop)
        flits = self.config.flits_per_block
        self.stats.data_messages += 1
        self.stats.flit_hops += h * flits
        self._charge(h * flits * self.config.energy_per_hop_per_flit)
        return self.latency(src_stop, dst_stop, data=True)

    def block_transfer_energy(self, src_stop: int, dst_stop: int) -> float:
        """Energy (pJ) of a block transfer without accounting it."""
        return (
            self.hops(src_stop, dst_stop)
            * self.config.flits_per_block
            * self.config.energy_per_hop_per_flit
        )

    @staticmethod
    def core_stop(core_id: int, stops: int) -> int:
        """Ring stop a core attaches to (one core + one L3 slice per stop)."""
        return core_id % stops

    def avg_block_energy(self) -> float:
        """Mean block-transfer energy over uniformly random stop pairs."""
        return (
            self.config.avg_hops()
            * self.config.flits_per_block
            * self.config.energy_per_hop_per_flit
        )
