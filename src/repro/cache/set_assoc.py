"""Set-associative tag array with LRU replacement and CC pinning.

The tag array is pure metadata: the data plane lives in the sub-arrays
managed by :class:`~repro.cache.geometry.CacheGeometry`.  Replacement is
true LRU.  Lines pinned by the CC controller are excluded from victim
selection and promoted to MRU while their operation waits for missing
operands (Section IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AddressError, PinnedLineError
from ..params import CacheLevelConfig
from .block import MESIState, TagEntry


@dataclass
class SetAssocStats:
    lookups: int = 0
    hits: int = 0
    evictions: int = 0
    pinned_evictions_avoided: int = 0

    @property
    def misses(self) -> int:
        return self.lookups - self.hits


class SetAssociativeArray:
    """Tags, states, LRU and pins for one cache level."""

    def __init__(self, config: CacheLevelConfig) -> None:
        self.config = config
        self._sets: list[list[TagEntry]] = [
            [TagEntry() for _ in range(config.ways)] for _ in range(config.sets)
        ]
        self._clock = 0
        self.stats = SetAssocStats()

    # -- lookup -----------------------------------------------------------------

    def _entries(self, set_index: int) -> list[TagEntry]:
        if not 0 <= set_index < self.config.sets:
            raise AddressError(f"set {set_index} outside 0..{self.config.sets - 1}")
        return self._sets[set_index]

    def lookup(self, set_index: int, tag: int) -> int | None:
        """Return the way holding (set, tag), or None on miss."""
        self.stats.lookups += 1
        for way, entry in enumerate(self._entries(set_index)):
            if entry.valid and entry.tag == tag:
                self.stats.hits += 1
                return way
        return None

    def probe(self, set_index: int, tag: int) -> int | None:
        """Like :meth:`lookup` but without touching statistics (used by
        coherence probes and CC level-selection)."""
        for way, entry in enumerate(self._entries(set_index)):
            if entry.valid and entry.tag == tag:
                return way
        return None

    def entry(self, set_index: int, way: int) -> TagEntry:
        entries = self._entries(set_index)
        if not 0 <= way < self.config.ways:
            raise AddressError(f"way {way} outside 0..{self.config.ways - 1}")
        return entries[way]

    # -- replacement --------------------------------------------------------------

    def touch(self, set_index: int, way: int) -> None:
        """Promote (set, way) to MRU."""
        self._clock += 1
        self.entry(set_index, way).lru = self._clock

    def victim_way(self, set_index: int) -> int:
        """LRU victim among unpinned ways; invalid ways win immediately."""
        entries = self._entries(set_index)
        for way, entry in enumerate(entries):
            if not entry.valid:
                return way
        candidates = [(e.lru, w) for w, e in enumerate(entries) if not e.pinned]
        if not candidates:
            raise PinnedLineError(
                f"all {self.config.ways} ways of set {set_index} are pinned by CC operations"
            )
        skipped = self.config.ways - len(candidates)
        if skipped:
            self.stats.pinned_evictions_avoided += skipped
        return min(candidates)[1]

    def install(self, set_index: int, way: int, tag: int, state: MESIState) -> None:
        """Fill (set, way) with a new tag in the given state, MRU position."""
        entry = self.entry(set_index, way)
        if entry.valid:
            self.stats.evictions += 1
        entry.tag = tag
        entry.state = state
        entry.pinned = False
        entry.pin_owner = None
        self.touch(set_index, way)

    # -- pinning (Section IV-E) -----------------------------------------------------

    def pin(self, set_index: int, way: int, owner: int) -> None:
        """Pin a line for an in-flight CC operation and promote it to MRU."""
        entry = self.entry(set_index, way)
        if entry.pinned and entry.pin_owner != owner:
            raise PinnedLineError(
                f"set {set_index} way {way} already pinned by CC instruction "
                f"{entry.pin_owner}"
            )
        entry.pinned = True
        entry.pin_owner = owner
        self.touch(set_index, way)

    def unpin(self, set_index: int, way: int) -> None:
        entry = self.entry(set_index, way)
        entry.pinned = False
        entry.pin_owner = None

    def pinned_ways(self, set_index: int) -> list[int]:
        return [w for w, e in enumerate(self._entries(set_index)) if e.pinned]

    # -- iteration (scrubbing, inclusion checks) -------------------------------------

    def valid_entries(self):
        """Yield ``(set_index, way, entry)`` for every valid line."""
        for set_index, entries in enumerate(self._sets):
            for way, entry in enumerate(entries):
                if entry.valid:
                    yield set_index, way, entry
