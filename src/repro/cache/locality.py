"""Operand-locality predicates (Section IV-C, Table III).

In-place computation requires all operands of a block-level operation to be
stored in the same block partition (rows sharing bit-lines).  With the
geometry of :mod:`repro.cache.geometry`, that reduces to a pure address
check: the low ``min_locality_bits`` bits (offset + bank-select +
partition-select) of every operand address must agree.

``min_locality_bits`` is 8 / 10 / 12 for the paper's L1-D / L2 / L3-slice,
so 4 KB page alignment (12 matching low bits) satisfies all levels at once -
this is the property the compiler/allocator relies on, and a binary compiled
for N matching bits stays correct on any cache requiring <= N.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import OperandLocalityError
from ..params import PAGE_SIZE, CacheLevelConfig, log2i


def partitions_match(addr_a: int, addr_b: int, config: CacheLevelConfig) -> bool:
    """True iff two block addresses map to the same block partition."""
    mask = (1 << config.min_locality_bits) - 1
    return (addr_a & mask) == (addr_b & mask)


def check_operand_locality(
    addrs: Sequence[int], config: CacheLevelConfig, strict: bool = False
) -> bool:
    """Check that every address shares a block partition with the first.

    With ``strict`` a failure raises :class:`OperandLocalityError` naming
    the offending operand; otherwise the predicate simply returns False and
    the controller falls back to near-place execution.
    """
    if not addrs:
        return True
    base = addrs[0]
    for addr in addrs[1:]:
        if not partitions_match(base, addr, config):
            if strict:
                mask = (1 << config.min_locality_bits) - 1
                raise OperandLocalityError(
                    f"operand {addr:#x} (low bits {addr & mask:#x}) does not share a "
                    f"block partition with {base:#x} (low bits {base & mask:#x}) in "
                    f"{config.name}: {config.min_locality_bits} low address bits must match"
                )
            return False
    return True


def page_aligned_pair(addr_a: int, addr_b: int, page_size: int = PAGE_SIZE) -> bool:
    """True iff the two addresses have the same page offset (Section IV-C's
    software-visible sufficient condition for operand locality)."""
    return (addr_a % page_size) == (addr_b % page_size)


def required_alignment_bits(configs: Sequence[CacheLevelConfig]) -> int:
    """The alignment a compiler must target: the max over all cache levels.

    For the Table III machine this is 12 bits, i.e. 4 KB - exactly one page.
    """
    return max(cfg.min_locality_bits for cfg in configs)


def alignment_satisfies(compiled_bits: int, config: CacheLevelConfig) -> bool:
    """Portability rule of Section IV-C: a binary compiled with
    ``compiled_bits`` of alignment runs on any cache needing <= that."""
    return config.min_locality_bits <= compiled_bits


def page_offset_bits(page_size: int = PAGE_SIZE) -> int:
    """Number of address bits fixed by page alignment."""
    return log2i(page_size)
