"""Flat main-memory model (Table IV: 120-cycle latency).

Backs the cache hierarchy with a numpy byte array.  Reads and writes happen
at cache-block granularity from the hierarchy's point of view, but byte-
granularity helpers exist for loading application data and for verification
against the caches.
"""

from __future__ import annotations

import numpy as np

from ..errors import AddressError
from ..params import BLOCK_SIZE


class MainMemory:
    """DRAM backing store."""

    def __init__(self, size: int, latency: int = 120, energy_per_block_pj: float = 15000.0):
        if size % BLOCK_SIZE:
            raise AddressError("memory size must be a multiple of the block size")
        self.size = size
        self.latency = latency
        self.energy_per_block_pj = energy_per_block_pj
        self._data = np.zeros(size, dtype=np.uint8)
        self.block_reads = 0
        self.block_writes = 0

    def _check(self, addr: int, length: int) -> None:
        if addr < 0 or addr + length > self.size:
            raise AddressError(
                f"access [{addr:#x}, {addr + length:#x}) outside memory of {self.size:#x} bytes"
            )

    def read_block(self, addr: int) -> bytes:
        """Read one aligned 64-byte block."""
        if addr % BLOCK_SIZE:
            raise AddressError(f"unaligned block read at {addr:#x}")
        self._check(addr, BLOCK_SIZE)
        self.block_reads += 1
        return self._data[addr : addr + BLOCK_SIZE].tobytes()

    def write_block(self, addr: int, data: bytes) -> None:
        """Write one aligned 64-byte block."""
        if addr % BLOCK_SIZE:
            raise AddressError(f"unaligned block write at {addr:#x}")
        if len(data) != BLOCK_SIZE:
            raise AddressError(f"block write of {len(data)} bytes")
        self._check(addr, BLOCK_SIZE)
        self.block_writes += 1
        self._data[addr : addr + BLOCK_SIZE] = np.frombuffer(data, dtype=np.uint8)

    # -- byte-granularity backdoor (loading programs/data, verification) ---------

    def load(self, addr: int, data: bytes) -> None:
        """Backdoor write that bypasses access counters (initialization)."""
        self._check(addr, len(data))
        self._data[addr : addr + len(data)] = np.frombuffer(bytes(data), dtype=np.uint8)

    def peek(self, addr: int, length: int) -> bytes:
        """Backdoor read that bypasses access counters (verification)."""
        self._check(addr, length)
        return self._data[addr : addr + length].tobytes()
