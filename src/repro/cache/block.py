"""Cache-block metadata: MESI states and tag entries."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MESIState(enum.Enum):
    """Block states of the directory-based MESI protocol (Table IV)."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def readable(self) -> bool:
        return self is not MESIState.INVALID

    @property
    def writable(self) -> bool:
        return self in (MESIState.MODIFIED, MESIState.EXCLUSIVE)

    @property
    def dirty(self) -> bool:
        return self is MESIState.MODIFIED


@dataclass
class TagEntry:
    """One way of one set: tag, coherence state, replacement + pin metadata.

    ``pinned`` marks lines locked by an in-flight CC operation
    (Section IV-E); pinned lines are skipped by victim selection, and the
    controller both promotes them to MRU and releases them on forwarded
    coherence requests to avoid deadlock.
    """

    tag: int = 0
    state: MESIState = MESIState.INVALID
    lru: int = 0
    pinned: bool = False
    pin_owner: int | None = field(default=None)

    @property
    def valid(self) -> bool:
        return self.state is not MESIState.INVALID

    def invalidate(self) -> None:
        self.state = MESIState.INVALID
        self.pinned = False
        self.pin_owner = None
