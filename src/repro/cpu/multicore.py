"""Multi-core workload execution: interleaved programs over shared caches.

The paper's machine is an 8-core CMP; its applications are data-parallel
(Phoenix MapReduce workloads, SPLASH-2).  :class:`MulticoreRunner` executes
one program per core with interleaved progress, so programs contend for the
shared L3, exercise the coherence protocol, and finish on their own clocks;
the *makespan* is the slowest core, as in any parallel section.

Interleaving granularity is a parameter: a chunk of instructions from each
core in round-robin order.  The model is conservative about interference -
shared-resource contention appears through real cache/dir/ring state, not
through added queuing terms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.core_model import RunResult
from ..cpu.program import Program
from ..errors import ReproError
from ..machine import ComputeCacheMachine


@dataclass
class MulticoreResult:
    """Per-core results plus parallel-section aggregates."""

    per_core: dict[int, RunResult]

    @property
    def makespan(self) -> float:
        """Parallel-section completion time (slowest core).

        An empty parallel section (no programs) and all-empty programs
        both complete in zero cycles - the aggregates below are guarded so
        neither degenerate case divides by zero.
        """
        return max((r.cycles for r in self.per_core.values()), default=0.0)

    @property
    def total_instructions(self) -> int:
        return sum(r.instructions for r in self.per_core.values())

    @property
    def aggregate_ipc(self) -> float:
        return self.total_instructions / self.makespan if self.makespan else 0.0

    def speedup_over(self, serial_cycles: float) -> float:
        return serial_cycles / self.makespan if self.makespan else 0.0

    def cluster_makespans(self, clusters: int, cores_per_cluster: int) -> dict[int, float]:
        """Slowest core per cluster (``core // cores_per_cluster``).

        The per-cluster view of the parallel section on a multi-cluster
        topology (:class:`~repro.params.TopologyConfig`); clusters that ran
        no program report 0.0.
        """
        spans = {cluster: 0.0 for cluster in range(clusters)}
        for core, result in self.per_core.items():
            cluster = core // cores_per_cluster
            spans[cluster] = max(spans[cluster], result.cycles)
        return spans


@dataclass
class _CoreState:
    program: Program
    cursor: int = 0
    result: RunResult | None = None

    @property
    def done(self) -> bool:
        return self.cursor >= len(self.program.instructions)


class MulticoreRunner:
    """Round-robin interleaved execution of per-core programs."""

    def __init__(self, machine: ComputeCacheMachine, chunk: int = 64) -> None:
        if chunk < 1:
            raise ReproError("interleave chunk must be positive")
        self.machine = machine
        self.chunk = chunk

    def run(self, programs: dict[int, Program]) -> MulticoreResult:
        """Execute ``{core_id: program}`` with interleaved progress."""
        for core in programs:
            if not 0 <= core < self.machine.config.cores:
                raise ReproError(f"core {core} outside this machine")
        states = {core: _CoreState(program) for core, program in programs.items()}
        partials: dict[int, list[RunResult]] = {core: [] for core in programs}

        while any(not s.done for s in states.values()):
            for core, state in states.items():
                if state.done:
                    continue
                chunk = state.program.instructions[
                    state.cursor : state.cursor + self.chunk
                ]
                state.cursor += len(chunk)
                piece = Program(f"{state.program.name}@{core}", list(chunk))
                partials[core].append(self.machine.run(piece, core=core))

        per_core = {
            core: _merge(state.program.name, partials[core])
            for core, state in states.items()
        }
        return MulticoreResult(per_core=per_core)


def _merge(name: str, pieces: list[RunResult]) -> RunResult:
    merged = RunResult(name=name)
    for piece in pieces:
        merged.cycles += piece.cycles
        merged.instructions += piece.instructions
        merged.loads += piece.loads
        merged.stores += piece.stores
        merged.simd_ops += piece.simd_ops
        merged.scalar_ops += piece.scalar_ops
        merged.cc_instructions += piece.cc_instructions
        merged.stall_cycles += piece.stall_cycles
        merged.cc_cycles += piece.cc_cycles
        merged.fences += piece.fences
        merged.cc_results.extend(piece.cc_results)
    return merged

