"""Processor-core models: the scalar and 32-byte-SIMD baselines.

The paper compares Compute Caches against ``Base_32``, a conventional
out-of-order core with 32-byte SIMD loads/stores and vector ops (Table IV).
:class:`~repro.cpu.core_model.CoreModel` executes abstract instruction
streams (:mod:`repro.cpu.program`) against the shared cache hierarchy,
accounting cycles (issue + non-overlapped miss stalls bounded by a
memory-level-parallelism factor) and per-instruction core energy;
:mod:`repro.cpu.simd` provides the baseline kernel generators used by the
micro-benchmarks (copy / compare / search / logical-OR) in scalar and
SIMD flavours.
"""

from .core_model import CoreModel, RunResult
from .program import Instr, InstrKind, Program

__all__ = ["CoreModel", "RunResult", "Instr", "InstrKind", "Program"]
