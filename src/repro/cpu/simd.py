"""Baseline kernel generators: scalar and Base_32 (32-byte SIMD).

These synthesize the instruction streams a compiler would emit for the
paper's four micro-benchmark kernels - copy, compare, search, logical OR -
in two flavours:

* **scalar** - word-at-a-time (Figure 3's scalar core);
* **Base_32** - 32-byte SIMD loads/stores and vector ops, the paper's
  baseline comparator (Section VI-D).

Each generator returns a :class:`~repro.cpu.program.Program` whose loads
and stores reference real addresses, so running it against the hierarchy
both produces correct data movement and yields the kernel's result.
"""

from __future__ import annotations

from ..errors import AddressError
from ..params import WORD_SIZE
from .program import Instr, InstrKind, Program

SIMD_WIDTH = 32
LOOP_OVERHEAD_INSTRS = 2
"""Per-iteration bookkeeping (index update + branch)."""


def _check(size: int, granule: int) -> None:
    if size <= 0 or size % granule:
        raise AddressError(f"kernel size {size} is not a positive multiple of {granule}")


def _loop_overhead(program: Program) -> None:
    program.append(Instr.scalar())
    program.append(Instr.branch())


# -- scalar kernels (word at a time) ------------------------------------------------


def scalar_copy(src: int, dest: int, size: int) -> Program:
    """``memcpy`` with 8-byte loads/stores."""
    _check(size, WORD_SIZE)
    program = Program(f"scalar-copy-{size}")
    for off in range(0, size, WORD_SIZE):
        program.append(Instr.load(src + off, WORD_SIZE))
        program.append(Instr.store_copy(dest + off, src + off, WORD_SIZE))
        _loop_overhead(program)
    return program


def scalar_compare(a: int, b: int, size: int) -> Program:
    """``memcmp``-style equality with 8-byte loads."""
    _check(size, WORD_SIZE)
    program = Program(f"scalar-compare-{size}")
    for off in range(0, size, WORD_SIZE):
        program.append(Instr.load(a + off, WORD_SIZE))
        program.append(Instr.load(b + off, WORD_SIZE))
        program.append(Instr.scalar())  # cmp
        _loop_overhead(program)
    return program


def scalar_search(data: int, key: int, size: int, key_bytes: int = 64) -> Program:
    """Scan ``data`` for a 64-byte key, word at a time."""
    _check(size, key_bytes)
    program = Program(f"scalar-search-{size}")
    for off in range(0, key_bytes, WORD_SIZE):
        program.append(Instr.load(key + off, WORD_SIZE))  # key into registers
    for off in range(0, size, WORD_SIZE):
        program.append(Instr.load(data + off, WORD_SIZE))
        program.append(Instr.scalar())  # cmp with key word
        _loop_overhead(program)
    return program


def scalar_or(a: int, b: int, dest: int, size: int) -> Program:
    """Word-at-a-time bitwise OR."""
    _check(size, WORD_SIZE)
    program = Program(f"scalar-or-{size}")
    for off in range(0, size, WORD_SIZE):
        program.append(Instr.load(a + off, WORD_SIZE))
        program.append(Instr.load(b + off, WORD_SIZE))
        program.append(Instr.scalar())  # or
        program.append(Instr(InstrKind.STORE, addr=dest + off, size=WORD_SIZE,
                             src_addr=a + off, src2_addr=b + off, alu="or"))
        _loop_overhead(program)
    return program


# -- Base_32 kernels ------------------------------------------------------------------


def simd_copy(src: int, dest: int, size: int) -> Program:
    """32-byte SIMD ``memcpy`` (the Base_32 copy kernel)."""
    _check(size, SIMD_WIDTH)
    program = Program(f"simd-copy-{size}")
    for off in range(0, size, SIMD_WIDTH):
        program.append(Instr.simd_load(src + off, SIMD_WIDTH))
        program.append(Instr.simd_store_copy(dest + off, src + off, SIMD_WIDTH))
        _loop_overhead(program)
    return program


def simd_compare(a: int, b: int, size: int) -> Program:
    """32-byte SIMD equality compare (PCMPEQ-style) of two buffers."""
    _check(size, SIMD_WIDTH)
    program = Program(f"simd-compare-{size}")
    for off in range(0, size, SIMD_WIDTH):
        program.append(Instr.simd_load(a + off, SIMD_WIDTH))
        program.append(Instr.simd_load(b + off, SIMD_WIDTH))
        program.append(Instr.simd_op())  # pcmpeq
        program.append(Instr.scalar())  # movemask / accumulate
        _loop_overhead(program)
    return program


def simd_search(data: int, key: int, size: int, key_bytes: int = 64) -> Program:
    """Search for a 64-byte key: the key lives in two SIMD registers, so
    the steady state is one load + two compares per 32 bytes of data."""
    _check(size, SIMD_WIDTH)
    program = Program(f"simd-search-{size}")
    for off in range(0, key_bytes, SIMD_WIDTH):
        program.append(Instr.simd_load(key + off, SIMD_WIDTH))
    for off in range(0, size, SIMD_WIDTH):
        program.append(Instr.simd_load(data + off, SIMD_WIDTH))
        program.append(Instr.simd_op())  # pcmpeq with key half
        program.append(Instr.scalar())  # movemask / merge
        _loop_overhead(program)
    return program


def simd_or(a: int, b: int, dest: int, size: int) -> Program:
    """32-byte SIMD bitwise OR of two buffers into a third."""
    _check(size, SIMD_WIDTH)
    program = Program(f"simd-or-{size}")
    for off in range(0, size, SIMD_WIDTH):
        program.append(Instr.simd_load(a + off, SIMD_WIDTH))
        program.append(Instr.simd_load(b + off, SIMD_WIDTH))
        program.append(Instr.simd_op())  # por
        program.append(Instr.simd_store_op(dest + off, a + off, b + off, "or", SIMD_WIDTH))
        _loop_overhead(program)
    return program


def simd_clmul(a: int, b: int, dest: int, size: int) -> Program:
    """Blocked x86 CLMUL baseline inner loop: per 16 bytes, two loads, a
    carry-less multiply, and an accumulate (the BMM baseline)."""
    _check(size, 16)
    program = Program(f"simd-clmul-{size}")
    for off in range(0, size, 16):
        program.append(Instr.simd_load(a + off, 16))
        program.append(Instr.simd_load(b + off, 16))
        program.append(Instr.simd_op())  # pclmulqdq
        program.append(Instr.scalar())  # xor-accumulate
        _loop_overhead(program)
    program.append(Instr.store(dest, b"\0" * 8))
    return program
