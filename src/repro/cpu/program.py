"""Abstract instruction streams for the core timing model.

A :class:`Program` is a sequence of :class:`Instr`.  The stream carries only
what the timing/energy model needs: the kind of each instruction and, for
memory operations, its address/size.  Data movement happens for real (the
core model routes loads/stores through the cache hierarchy), so programs
compute real results while being cheap to synthesize in benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..core.isa import CCInstruction


class InstrKind(enum.Enum):
    SCALAR_OP = "scalar-op"
    LOAD = "load"
    STORE = "store"
    SIMD_LOAD = "simd-load"
    SIMD_STORE = "simd-store"
    SIMD_OP = "simd-op"
    BRANCH = "branch"
    CC = "cc"
    FENCE = "fence"

    @property
    def is_memory(self) -> bool:
        return self in (InstrKind.LOAD, InstrKind.STORE,
                        InstrKind.SIMD_LOAD, InstrKind.SIMD_STORE)

    @property
    def is_simd(self) -> bool:
        return self in (InstrKind.SIMD_LOAD, InstrKind.SIMD_STORE, InstrKind.SIMD_OP)


@dataclass(frozen=True)
class Instr:
    """One abstract instruction.

    A store may carry literal ``data``, or a ``src_addr`` meaning "store the
    value previously loaded from there" (register contents in hardware) -
    which is how copy kernels stay functionally exact without the generator
    knowing memory contents.
    """

    kind: InstrKind
    addr: int = 0
    size: int = 0
    data: bytes | None = None
    src_addr: int | None = None
    src2_addr: int | None = None
    alu: str | None = None
    cc: CCInstruction | None = None
    dependent: bool = False
    """Loads on a serial dependence chain (e.g. binary-search probes or
    pointer chasing) expose their full miss latency - no memory-level
    parallelism hides it."""
    streaming: bool = False
    """Sequential loads a stride prefetcher covers: no stall is charged
    (the data arrives ahead of use), but the cache traffic and energy are
    still real."""

    @staticmethod
    def scalar() -> "Instr":
        return Instr(InstrKind.SCALAR_OP)

    @staticmethod
    def branch() -> "Instr":
        return Instr(InstrKind.BRANCH)

    @staticmethod
    def load(addr: int, size: int = 8, dependent: bool = False,
             streaming: bool = False) -> "Instr":
        return Instr(InstrKind.LOAD, addr=addr, size=size, dependent=dependent,
                     streaming=streaming)

    @staticmethod
    def store(addr: int, data: bytes) -> "Instr":
        return Instr(InstrKind.STORE, addr=addr, size=len(data), data=data)

    @staticmethod
    def store_copy(addr: int, src_addr: int, size: int) -> "Instr":
        return Instr(InstrKind.STORE, addr=addr, size=size, src_addr=src_addr)

    @staticmethod
    def simd_load(addr: int, size: int = 32) -> "Instr":
        return Instr(InstrKind.SIMD_LOAD, addr=addr, size=size)

    @staticmethod
    def simd_store(addr: int, data: bytes) -> "Instr":
        return Instr(InstrKind.SIMD_STORE, addr=addr, size=len(data), data=data)

    @staticmethod
    def simd_store_copy(addr: int, src_addr: int, size: int = 32) -> "Instr":
        return Instr(InstrKind.SIMD_STORE, addr=addr, size=size, src_addr=src_addr)

    @staticmethod
    def simd_store_op(addr: int, src_addr: int, src2_addr: int, alu: str,
                      size: int = 32) -> "Instr":
        """Store the result of ``alu`` over two previously-loaded values."""
        return Instr(InstrKind.SIMD_STORE, addr=addr, size=size,
                     src_addr=src_addr, src2_addr=src2_addr, alu=alu)

    @staticmethod
    def simd_op() -> "Instr":
        return Instr(InstrKind.SIMD_OP)

    @staticmethod
    def cc_op(cc: CCInstruction) -> "Instr":
        return Instr(InstrKind.CC, cc=cc)

    @staticmethod
    def fence() -> "Instr":
        return Instr(InstrKind.FENCE)


@dataclass
class Program:
    """A named instruction stream."""

    name: str
    instructions: list[Instr] = field(default_factory=list)

    def append(self, instr: Instr) -> None:
        self.instructions.append(instr)

    def extend(self, instrs: list[Instr]) -> None:
        self.instructions.extend(instrs)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def counts(self) -> dict[str, int]:
        """Instruction-mix histogram (used for the paper's instruction-
        reduction claims, e.g. WordCount's 87%)."""
        out: dict[str, int] = {}
        for instr in self.instructions:
            out[instr.kind.value] = out.get(instr.kind.value, 0) + 1
        return out


from .._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "Program", "Instr", "InstrKind",
))
