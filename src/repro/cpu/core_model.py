"""Analytic-event core timing and energy model.

The model captures the terms the paper's evaluation depends on:

* one instruction issued per cycle (a well-fed out-of-order core sustains
  ~1 IPC on these streaming kernels);
* load misses stall for their *non-overlapped* latency: miss latency beyond
  the L1 hit time is divided by a memory-level-parallelism factor (the
  48-entry load queue of Table IV sustains several misses in flight);
* stores retire through the store buffer and do not stall the core (their
  cache/energy traffic still happens for real);
* CC instructions dispatch to the core's CC controller and - per the RMO
  consistency model (Section IV-G) - overlap with subsequent independent
  instructions: the controller is modeled as busy until the operation
  completes, later CC instructions queue behind it, and any remaining
  busy time is exposed at a fence or at the end of the program (which is
  when results are architecturally consumed);
* every instruction charges its class's energy-per-instruction to the
  ``core`` component (Figure 3's instruction-processing energy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache.hierarchy import CacheHierarchy
from ..core.consistency import OpKind, RMOOrderModel
from ..core.controller import CCResult, ComputeCacheController
from ..core.stream import CCOccupancyTimeline
from ..energy.accounting import Component
from ..errors import ReproError
from ..params import MachineConfig
from .program import Instr, InstrKind, Program

MEMORY_LEVEL_PARALLELISM = 4.0
"""Concurrent misses the load queue sustains on streaming kernels."""


@dataclass
class RunResult:
    """Timing/result summary of one program execution."""

    name: str
    cycles: float = 0.0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    simd_ops: int = 0
    scalar_ops: int = 0
    cc_instructions: int = 0
    stall_cycles: float = 0.0
    cc_cycles: float = 0.0
    fences: int = 0
    load_data: list[bytes] = field(default_factory=list)
    cc_results: list[CCResult] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def seconds(self, frequency_ghz: float) -> float:
        return self.cycles / (frequency_ghz * 1e9)


class CoreModel:
    """One processor core bound to the shared hierarchy."""

    def __init__(self, hierarchy: CacheHierarchy, core_id: int,
                 config: MachineConfig | None = None,
                 controller: ComputeCacheController | None = None,
                 mlp: float = MEMORY_LEVEL_PARALLELISM) -> None:
        self.hierarchy = hierarchy
        self.core_id = core_id
        self.config = config or hierarchy.config
        self.controller = controller or ComputeCacheController(
            hierarchy, core_id, self.config
        )
        self.mlp = mlp
        self.order_model = RMOOrderModel()
        self.keep_load_data = False
        self.tracer = hierarchy.tracer

    # -- energy helpers ---------------------------------------------------------

    def _charge_core(self, instr: Instr) -> None:
        core = self.config.core
        if instr.kind is InstrKind.CC:
            epi = core.epi_cc
        elif instr.kind.is_simd:
            epi = core.epi_simd
        else:
            epi = core.epi_scalar
        self.hierarchy.ledger.add(Component.CORE, epi)

    @staticmethod
    def _alu(op: str, a: bytes, b: bytes) -> bytes:
        from ..bitops import bytes_and, bytes_or, bytes_xor

        table = {"and": bytes_and, "or": bytes_or, "xor": bytes_xor}
        try:
            return table[op](a, b)
        except KeyError:
            raise ReproError(f"unknown ALU op {op!r}") from None

    # -- execution -----------------------------------------------------------------

    def run(self, program: Program) -> RunResult:
        """Execute a program; returns cycles/instruction accounting."""
        res = RunResult(name=program.name)
        l1_hit = self.config.l1d.hit_latency
        pending_stall = 0.0
        cc_timeline = CCOccupancyTimeline()
        tracer = self.tracer
        for instr in program:
            res.instructions += 1
            self._charge_core(instr)
            res.cycles += 1  # issue slot
            if tracer is not None:
                # ``core.phase`` spans tile [0, res.cycles]: the profiler
                # asserts they sum to the run's total machine cycles.
                tracer.emit("core.phase", core=self.core_id, phase="issue",
                            cycle=res.cycles - 1.0, span=1.0,
                            outcome=instr.kind.name.lower())

            if instr.kind in (InstrKind.SCALAR_OP, InstrKind.BRANCH, InstrKind.SIMD_OP):
                if instr.kind is InstrKind.SIMD_OP:
                    res.simd_ops += 1
                else:
                    res.scalar_ops += 1
                continue

            if instr.kind in (InstrKind.LOAD, InstrKind.SIMD_LOAD):
                res.loads += 1
                op_id = self.order_model.issue(OpKind.LOAD)
                data, latency = self.hierarchy.read(self.core_id, instr.addr, instr.size)
                self.order_model.complete(op_id)
                if self.keep_load_data:
                    res.load_data.append(data)
                if latency > l1_hit and not instr.streaming:
                    if instr.dependent:
                        # A serial chain: the full latency is exposed now.
                        if tracer is not None:
                            tracer.emit("core.phase", core=self.core_id,
                                        phase="load-stall", cycle=float(res.cycles),
                                        span=float(latency - l1_hit), addr=instr.addr)
                        res.cycles += latency - l1_hit
                        res.stall_cycles += latency - l1_hit
                    else:
                        pending_stall += (latency - l1_hit) / self.mlp
                continue

            if instr.kind in (InstrKind.STORE, InstrKind.SIMD_STORE):
                if instr.data is not None:
                    payload = instr.data
                elif instr.src_addr is not None:
                    # Register contents: the value(s) previously loaded
                    # (peeked coherently, no extra traffic).
                    payload = self.hierarchy.coherent_peek(instr.src_addr, instr.size)
                    if instr.alu is not None and instr.src2_addr is not None:
                        other = self.hierarchy.coherent_peek(instr.src2_addr, instr.size)
                        payload = self._alu(instr.alu, payload, other)
                else:
                    raise ReproError("store instruction without data or source")
                res.stores += 1
                op_id = self.order_model.issue(OpKind.STORE)
                latency = self.hierarchy.write(self.core_id, instr.addr, payload)
                self.order_model.complete(op_id)
                # Stores retire through the store buffer, but write-allocate
                # misses still occupy MSHRs: bulk stores are throughput-bound
                # by the same memory-level parallelism as loads.
                if latency > l1_hit:
                    pending_stall += (latency - l1_hit) / self.mlp
                continue

            if instr.kind is InstrKind.CC:
                if instr.cc is None:
                    raise ReproError("CC instruction without a payload")
                res.cc_instructions += 1
                kind = OpKind.CC_R if instr.cc.opcode.reads_only else OpKind.CC_RW
                op_id = self.order_model.issue(kind)
                cc_res = self.controller.execute(instr.cc)
                self.order_model.complete(op_id)
                res.cc_results.append(cc_res)
                res.cc_cycles += cc_res.cycles
                # RMO overlap: the core keeps issuing; this operation holds
                # the (single) CC controller for its occupancy (decode +
                # command issue + near-place serial time) after any still-
                # running predecessor's occupancy, while its sub-array work
                # completes in the background.
                start = cc_timeline.issue(res.cycles, cc_res.occupancy_cycles,
                                          cc_res.cycles)
                if tracer is not None:
                    opname = instr.cc.opcode.value
                    tracer.emit("cc.timeline", core=self.core_id, phase="occupancy",
                                opcode=opname, cycle=float(start),
                                span=float(max(cc_res.occupancy_cycles, 1.0)))
                    tracer.emit("cc.timeline", core=self.core_id, phase="total",
                                opcode=opname, cycle=float(start),
                                span=float(cc_res.cycles))
                continue

            if instr.kind is InstrKind.FENCE:
                res.fences += 1
                # Fence commit waits for every pending operation,
                # including in-flight CC instructions (Section IV-G).
                self.order_model.drain_for_fence()
                if tracer is not None and pending_stall:
                    tracer.emit("core.phase", core=self.core_id, phase="mlp-stall",
                                cycle=float(res.cycles), span=float(pending_stall))
                res.cycles += pending_stall
                res.stall_cycles += pending_stall
                pending_stall = 0.0
                drain_to = cc_timeline.drain_target
                if drain_to > res.cycles:
                    if tracer is not None:
                        tracer.emit("core.phase", core=self.core_id, phase="cc-drain",
                                    cycle=float(res.cycles),
                                    span=float(drain_to - res.cycles))
                    res.stall_cycles += drain_to - res.cycles
                    res.cycles = drain_to
                continue

            raise ReproError(f"core cannot execute {instr.kind}")

        if tracer is not None and pending_stall:
            tracer.emit("core.phase", core=self.core_id, phase="mlp-stall",
                        cycle=float(res.cycles), span=float(pending_stall))
        res.cycles += pending_stall
        res.stall_cycles += pending_stall
        # Results are consumed at the end of the stream: expose whatever CC
        # latency the core could not hide.
        drain_to = cc_timeline.drain_target
        if drain_to > res.cycles:
            if tracer is not None:
                tracer.emit("core.phase", core=self.core_id, phase="cc-drain",
                            cycle=float(res.cycles),
                            span=float(drain_to - res.cycles))
            res.stall_cycles += drain_to - res.cycles
            res.cycles = drain_to
        return res
