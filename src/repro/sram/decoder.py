"""Row decoders for compute-capable sub-arrays.

A conventional sub-array has one row decoder and can therefore activate a
single word-line per cycle.  Compute Caches add a second decoder so two
word-lines - one per operand - can be activated simultaneously
(Section IV-B: "we add an additional decoder to allow activating two
wordlines, one for each operand").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AddressError


@dataclass
class DualRowDecoder:
    """Two-port row decoder: decodes up to two row addresses per activation.

    Tracks decode counts so area/energy accounting can attribute the second
    decoder's contribution to the 8% sub-array area overhead.
    """

    rows: int
    decode_count: int = field(default=0, init=False)
    dual_decode_count: int = field(default=0, init=False)

    def _check(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise AddressError(f"decoder given row {row} outside 0..{self.rows - 1}")

    def decode(self, row_a: int, row_b: int | None = None) -> tuple[int, ...]:
        """Decode one or two row addresses into a word-line activation set.

        Both decoders selecting the *same* row degenerates to a single
        word-line activation (the word-line is simply driven once) - the
        case a ``cc_cmp(a, a, n)`` or ``cc_and(a, a, c, n)`` produces.
        """
        self._check(row_a)
        if row_b is None:
            self.decode_count += 1
            return (row_a,)
        self._check(row_b)
        if row_b == row_a:
            self.decode_count += 1
            return (row_a,)
        self.decode_count += 1
        self.dual_decode_count += 1
        return (row_a, row_b)
