"""Raw SRAM bit-cell array with multi-row activation physics.

The array stores one bool per bit-cell.  A normal access activates a single
word-line; bit-line computing activates two (or more) word-lines at once.
With the word-line voltage lowered (``wordline_underdrive=True``, the
default, matching Jeloka et al.'s fabricated chip) the cells are biased
against writes and multi-row activation is non-destructive.  With the
underdrive disabled the model injects the classic failure mode - a cell
holding '1' on a discharged bit-line is flipped - which the fault-injection
tests use to demonstrate *why* the circuit needs the lowered voltage.

Two cell types are modeled (the paper's footnote 1): density-optimized
**6T** cells (L2/L3), whose multi-row safety depends on the word-line
underdrive, and **8T** cells with decoupled read ports (an L1 option, after
Wu et al.'s zigzag 8T design), which are read-disturb-resilient by
construction - multi-row activation cannot corrupt them even at full
word-line swing.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

import numpy as np

from ..errors import ActivationLimitError, AddressError, DataCorruptionError


class CellType(enum.Enum):
    """SRAM bit-cell flavour (paper footnote 1)."""

    SIX_T = "6T"
    EIGHT_T = "8T"

    @property
    def read_disturb_immune(self) -> bool:
        """8T cells decouple the read port from the storage node: reads
        (including multi-row compute activations) cannot flip them."""
        return self is CellType.EIGHT_T

    @property
    def relative_area(self) -> float:
        """Approximate cell-area ratio vs 6T (why L2/L3 stay 6T)."""
        return 1.0 if self is CellType.SIX_T else 1.3


class BitCellArray:
    """A ``rows x cols`` grid of SRAM bit-cells.

    Parameters
    ----------
    rows, cols:
        Array dimensions.  A 64-byte cache block occupies one 512-column row
        in the geometries this library builds.
    max_activated:
        Maximum word-lines that may be activated simultaneously without
        raising :class:`ActivationLimitError`.  Jeloka et al. measured no
        corruption up to 64.
    wordline_underdrive:
        When ``True`` (default) multi-row activation is non-destructive.
        When ``False`` the model emulates write-disturb corruption - unless
        the cells are 8T, which are immune regardless.
    cell_type:
        :class:`CellType.SIX_T` (default) or :class:`CellType.EIGHT_T`.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        max_activated: int = 64,
        wordline_underdrive: bool = True,
        cell_type: CellType = CellType.SIX_T,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise AddressError(f"invalid bit-cell array shape {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.max_activated = max_activated
        self.wordline_underdrive = wordline_underdrive
        self.cell_type = cell_type
        self._cells = np.zeros((rows, cols), dtype=bool)

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise AddressError(f"row {row} outside array of {self.rows} rows")

    def write_row(self, row: int, bits: np.ndarray) -> None:
        """Drive the bit-lines and write a full row."""
        self._check_row(row)
        if bits.size != self.cols:
            raise AddressError(f"row write of {bits.size} bits into {self.cols} columns")
        self._cells[row] = bits.astype(bool)

    def read_row(self, row: int) -> np.ndarray:
        """Single word-line activation with differential sensing."""
        self._check_row(row)
        return self._cells[row].copy()

    def activate(self, rows: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
        """Activate one or more word-lines and sense both bit-lines.

        Returns ``(bl, blb)`` where ``bl[i]`` is True iff bit-line *i*
        stayed high (all activated cells in column *i* store '1', i.e. the
        AND of the column) and ``blb[i]`` is True iff bit-line-bar stayed
        high (all activated cells store '0', i.e. the NOR).

        With a single row this degenerates to a normal differential read
        (``bl`` is the data, ``blb`` its complement).
        """
        unique = sorted(set(rows))
        if len(unique) != len(rows):
            raise AddressError(f"duplicate rows in activation set {list(rows)}")
        if not unique:
            raise AddressError("empty activation set")
        if len(unique) > self.max_activated:
            raise ActivationLimitError(
                f"{len(unique)} word-lines activated; circuit tolerates {self.max_activated}"
            )
        for row in unique:
            self._check_row(row)
        stack = self._cells[unique]
        bl = stack.all(axis=0)
        blb = ~stack.any(axis=0)
        if (
            len(unique) > 1
            and not self.wordline_underdrive
            and not self.cell_type.read_disturb_immune
        ):
            self._disturb(unique, bl)
        return bl, blb

    def _disturb(self, rows: Sequence[int], bl: np.ndarray) -> None:
        """Emulate write-disturb during full-swing multi-row activation.

        A cell storing '1' whose bit-line is pulled low by a '0' in another
        activated cell sees a write-'0' condition through its full-strength
        access transistor: the cell flips.  This is the corruption the
        lowered word-line voltage prevents.
        """
        flipped = False
        for row in rows:
            victims = self._cells[row] & ~bl
            if victims.any():
                self._cells[row][victims] = False
                flipped = True
        if flipped:
            raise DataCorruptionError(
                "multi-row activation without word-line underdrive corrupted bit-cells"
            )

    def snapshot(self) -> np.ndarray:
        """Copy of the whole array contents (for tests and scrubbing)."""
        return self._cells.copy()
