"""Sense-amplifier model for compute-capable sub-arrays.

A conventional sub-array senses each column differentially (BL vs BLB).
For bit-line computing the differential amplifier is *re-configured* into
two single-ended amplifiers so BL and BLB can be sensed independently
against a reference voltage (Section IV-B).  The sensed pair yields:

* ``bl``  = AND of the activated rows,
* ``blb`` = NOR of the activated rows,
* ``bl NOR blb`` = XOR of the activated rows (two-row case).

The class also models the copy feedback path: the last sensed value is
latched and can be driven back onto the bit-lines to write another row
without the data ever leaving the sub-array (Figure 4), and the data latch
can be reset to implement in-place zeroing (``cc_buz``).
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import ReproError


class SenseMode(enum.Enum):
    """Operating mode of the column sense amplifiers."""

    DIFFERENTIAL = "differential"
    SINGLE_ENDED = "single-ended"


class SenseAmpColumn:
    """The bank of sense amplifiers and data latches of one sub-array."""

    def __init__(self, cols: int) -> None:
        self.cols = cols
        self.mode = SenseMode.DIFFERENTIAL
        self._latch: np.ndarray | None = None
        self.reconfigurations = 0
        self.sense_count = 0

    def configure(self, mode: SenseMode) -> None:
        """Switch between differential and single-ended sensing."""
        if mode is not self.mode:
            self.reconfigurations += 1
            self.mode = mode

    def sense_differential(self, bl: np.ndarray, blb: np.ndarray) -> np.ndarray:
        """Normal read: resolve each column from the BL/BLB differential."""
        if self.mode is not SenseMode.DIFFERENTIAL:
            raise ReproError("sense amps are configured single-ended; reconfigure first")
        self.sense_count += 1
        self._latch = bl.copy()
        return self._latch.copy()

    def sense_single_ended(
        self, bl: np.ndarray, blb: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compute sensing: observe BL and BLB independently.

        Returns ``(and_bits, nor_bits)`` for the activated rows.  The AND
        result is latched (it is what the copy feedback path would drive).
        """
        if self.mode is not SenseMode.SINGLE_ENDED:
            raise ReproError("sense amps are configured differentially; reconfigure first")
        self.sense_count += 1
        self._latch = bl.copy()
        return bl.copy(), blb.copy()

    def latch_value(self, bits: np.ndarray) -> None:
        """Explicitly load the data latch (used by the copy path)."""
        self._latch = bits.copy()

    def reset_latch(self) -> None:
        """Reset the data latch to all zeros (in-place zeroing, cc_buz)."""
        self._latch = np.zeros(self.cols, dtype=bool)

    def drive_back(self) -> np.ndarray:
        """Feed the latched value back onto the bit-lines for a write.

        Models the coalesced read-write of the in-place copy (Figure 4):
        the value written is exactly the last value sensed or latched.
        """
        if self._latch is None:
            raise ReproError("copy feedback requested with empty data latch")
        return self._latch.copy()
