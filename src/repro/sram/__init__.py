"""Bit-accurate model of compute-capable SRAM sub-arrays (Sections II-B, IV-B).

The sub-array is the physical substrate of Compute Caches: a grid of 6T
bit-cells whose rows are word-lines and whose columns share bit-line pairs.
Activating two word-lines at once and sensing the shared bit-lines computes
AND (bit-line) and NOR (bit-line-bar) of the stored rows; the paper extends
the circuit with XOR (NOR of BL and BLB sense results), in-place copy and
zeroing (feeding the sense amps back onto the bit-lines), word-granular
compare/search (wired-NOR of XOR), and carry-less multiply (AND followed by
an XOR-reduction tree).

Public surface:

* :class:`~repro.sram.bitcell.BitCellArray` - raw storage with multi-row
  activation physics and optional disturb fault-injection.
* :class:`~repro.sram.decoder.DualRowDecoder` - the added second decoder.
* :class:`~repro.sram.sense_amp.SenseAmpColumn` - differential sensing that
  reconfigures into two single-ended amps during compute.
* :class:`~repro.sram.subarray.ComputeSubarray` - the full sub-array with
  read/write/compute entry points and per-operation stats.
* :class:`~repro.sram.timing.SubarrayTiming` - delay/energy multipliers
  (Section VI-C).
"""

from .bitcell import BitCellArray, CellType
from .column_mux import ColumnMuxLayout
from .decoder import DualRowDecoder
from .sense_amp import SenseAmpColumn, SenseMode
from .subarray import ComputeSubarray, SubarrayOp, SubarrayStats
from .timing import SubarrayTiming

__all__ = [
    "BitCellArray",
    "CellType",
    "ColumnMuxLayout",
    "DualRowDecoder",
    "SenseAmpColumn",
    "SenseMode",
    "ComputeSubarray",
    "SubarrayOp",
    "SubarrayStats",
    "SubarrayTiming",
]


from .._compat import deprecate_deep_imports

deprecate_deep_imports(__name__, (
    "BitCellArray", "CellType",
))
