"""Column multiplexing (Section IV-C).

Physical SRAM sub-arrays multiplex several adjacent bit-lines onto one
sense amplifier (keeping peripheral area in check and hardening against
multi-bit particle strikes).  The paper's observation: with column
multiplexing, *adjacent bits of a cache block are interleaved across
different sub-arrays* so that the bits read together are never behind the
same mux - an entire block is still accessed in one cycle, and in-place
computation on all bits of a block remains possible.  The logical block
partition is simply interleaved across the physical sub-arrays.

:class:`ColumnMuxLayout` makes that bit-to-(physical sub-array, column)
mapping explicit and verifiable:

* each physical sub-array serves ``block_bits / mux_degree`` bits of every
  block through its sense amps;
* two bits that share a mux group are always from *different* cache
  blocks' bit positions, never the same block;
* the way-mapping design choice is unaffected because blocks of different
  sets - not ways - are interleaved (the paper's final remark in IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class BitLocation:
    """Physical home of one logical bit of a cache block."""

    physical_subarray: int
    column_group: int
    mux_select: int


class ColumnMuxLayout:
    """Logical-block-bit to physical-column mapping under column muxing.

    Parameters
    ----------
    block_bits:
        Bits per cache block (512 for 64-byte blocks).
    mux_degree:
        Adjacent bit-lines sharing one sense amplifier (2, 4, or 8
        typically).
    """

    def __init__(self, block_bits: int = 512, mux_degree: int = 4) -> None:
        if mux_degree < 1 or mux_degree & (mux_degree - 1):
            raise ConfigError(f"mux degree {mux_degree} must be a power of two")
        if block_bits % mux_degree:
            raise ConfigError("block bits must divide evenly across the mux")
        self.block_bits = block_bits
        self.mux_degree = mux_degree
        self.physical_subarrays = mux_degree
        self.bits_per_physical = block_bits // mux_degree

    def locate_bit(self, bit: int) -> BitLocation:
        """Where logical bit ``bit`` of a block physically lives.

        Adjacent logical bits round-robin across physical sub-arrays, so
        the ``mux_degree`` bits behind any one sense amp belong to
        *different* logical bit positions of the interleaved layout - all
        ``block_bits`` can be sensed in one cycle.
        """
        if not 0 <= bit < self.block_bits:
            raise ConfigError(f"bit {bit} outside block of {self.block_bits} bits")
        return BitLocation(
            physical_subarray=bit % self.mux_degree,
            column_group=bit // self.mux_degree,
            mux_select=0,  # one select suffices: a block never needs two
            # bits from the same mux group
        )

    def bits_sensed_per_cycle(self) -> int:
        """All block bits are available simultaneously: one per sense amp
        across the interleaved physical sub-arrays."""
        return self.physical_subarrays * self.bits_per_physical

    def conflicts_within_block(self) -> int:
        """Mux conflicts when reading one whole block: must be zero for
        single-cycle block access (and hence for in-place compute)."""
        seen: set[tuple[int, int]] = set()
        conflicts = 0
        for bit in range(self.block_bits):
            loc = self.locate_bit(bit)
            key = (loc.physical_subarray, loc.column_group)
            if key in seen:
                conflicts += 1
            seen.add(key)
        return conflicts

    def strike_resilience_distance(self) -> int:
        """Physical distance (in columns) between adjacent logical bits -
        the multi-bit-upset protection column muxing buys."""
        return self.mux_degree
