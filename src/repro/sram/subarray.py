"""The compute-capable SRAM sub-array (Sections II-B and IV-B).

A :class:`ComputeSubarray` composes the raw bit-cell array, the added dual
row decoder, and the reconfigurable sense amplifiers into the unit the CC
controller talks to.  Every row holds one cache block; all rows share
bit-lines, so any two rows of the same sub-array are in the same *block
partition* and can be operated on in place.

Supported in-place operations (all bit-exact):

=============  =====================================================
``read``       conventional differential read of one row
``write``      conventional write of one row
``and``        BL sensing over two activated rows
``nor``        BLB sensing over two activated rows
``or``         complement of ``nor``
``xor``        NOR of BL and BLB sense results
``not``        complement read driven to a destination row
``copy``       sense a row, feed the latch back onto the bit-lines
``buz``        reset the data latch, write zeros
``cmp``        per-word wired-NOR of the XOR result -> equality mask
``search``     ``cmp`` against a key previously written to a row
``clmul``      AND of two rows, XOR-reduction tree per lane
``add``        bit-serial element-wise addition (Neural Cache tier)
``mul``        bit-serial element-wise multiplication
``reduce``     bit-serial element-sum into a 64-bit accumulator
=============  =====================================================

Execution backends
------------------

Each sub-array runs one of two functional backends, selected at
construction (machine-wide via ``MachineConfig.backend``):

* ``"bitexact"`` - the circuit model above: bytes expand to per-bit bool
  arrays, word-lines activate, sense amps resolve rails.  Required for
  circuit-level experiments (disturb injection, sense/decoder counters);
  automatically forced when ``wordline_underdrive=False`` because the
  write-disturb physics only exists in the bit-level model.
* ``"packed"`` - vectorized numpy kernels over packed ``uint8`` rows
  (:mod:`repro.kernels`); no bit unpacking anywhere.  Proven bit-exact
  against the circuit model by the differential-equivalence harness.

Both backends drive the same :class:`SubarrayStats` and Table-V/VI-C
energy/delay accounting, so results, statistics, and energy totals are
backend-invariant.  Circuit diagnostics (sense-amp reconfiguration and
decoder counts) are only meaningful under ``bitexact``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bitops import bits_to_bytes, bytes_to_bits, word_equality_mask, xor_reduce_lanes
from ..errors import AddressError, ConfigError, ISAError
from ..kernels import (
    PackedCellArray,
    arith_rows,
    clmul_mask,
    equality_mask,
    logical_rows,
    pack_flags,
    reduce_rows,
)
from .bitcell import BitCellArray
from .decoder import DualRowDecoder
from .sense_amp import SenseAmpColumn, SenseMode
from .timing import SubarrayTiming, arith_steps

BACKEND_BITEXACT = "bitexact"
BACKEND_PACKED = "packed"
BACKENDS = (BACKEND_BITEXACT, BACKEND_PACKED)


class SubarrayOp:
    """String constants naming sub-array operations."""

    READ = "read"
    WRITE = "write"
    AND = "and"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    NOT = "not"
    COPY = "copy"
    BUZ = "buz"
    CMP = "cmp"
    SEARCH = "search"
    CLMUL = "clmul"
    ADD = "add"
    MUL = "mul"
    REDUCE = "reduce"

    LOGICAL = frozenset({AND, OR, NOR, XOR})
    ARITH = frozenset({ADD, MUL, REDUCE})
    ALL = frozenset(
        {READ, WRITE, AND, OR, NOR, XOR, NOT, COPY, BUZ, CMP, SEARCH, CLMUL,
         ADD, MUL, REDUCE}
    )


@dataclass
class SubarrayStats:
    """Cycle and energy accounting for one sub-array."""

    reads: int = 0
    writes: int = 0
    compute_ops: dict[str, int] = field(default_factory=dict)
    energy_pj: float = 0.0
    busy_cycles: float = 0.0

    def record(self, op: str, energy: float, delay: float) -> None:
        if op == SubarrayOp.READ:
            self.reads += 1
        elif op == SubarrayOp.WRITE:
            self.writes += 1
        else:
            self.compute_ops[op] = self.compute_ops.get(op, 0) + 1
        self.energy_pj += energy
        self.busy_cycles += delay

    @property
    def total_compute_ops(self) -> int:
        return sum(self.compute_ops.values())


class ComputeSubarray:
    """One sub-array: ``rows`` cache blocks sharing ``cols`` bit-lines."""

    def __init__(
        self,
        rows: int,
        cols: int,
        timing: SubarrayTiming | None = None,
        max_activated: int = 64,
        wordline_underdrive: bool = True,
        backend: str = BACKEND_BITEXACT,
    ) -> None:
        if cols % 8:
            raise AddressError(f"sub-array width {cols} is not a whole number of bytes")
        if backend not in BACKENDS:
            raise ConfigError(
                f"unknown sub-array backend {backend!r}; expected one of {BACKENDS}"
            )
        if backend == BACKEND_PACKED and not wordline_underdrive:
            # Write-disturb physics only exists in the bit-level circuit
            # model; a full-swing experiment silently falls back to it.
            backend = BACKEND_BITEXACT
        self.rows = rows
        self.cols = cols
        self.backend = backend
        if backend == BACKEND_PACKED:
            self.cells: PackedCellArray | BitCellArray = PackedCellArray(rows, cols)
        else:
            self.cells = BitCellArray(
                rows, cols, max_activated=max_activated,
                wordline_underdrive=wordline_underdrive,
            )
        self.decoder = DualRowDecoder(rows)
        self.sense = SenseAmpColumn(cols)
        self.timing = timing or SubarrayTiming()
        self.stats = SubarrayStats()

    @property
    def is_packed(self) -> bool:
        return self.backend == BACKEND_PACKED

    # -- conventional access ------------------------------------------------

    def read_block(self, row: int) -> bytes:
        """Conventional differential read of one row (one cache block)."""
        if self.is_packed:
            data = self.cells.read_row_bytes(row)
            self._account(SubarrayOp.READ)
            return data
        wl = self.decoder.decode(row)
        self.sense.configure(SenseMode.DIFFERENTIAL)
        bl, blb = self.cells.activate(wl)
        bits = self.sense.sense_differential(bl, blb)
        self._account(SubarrayOp.READ)
        return bits_to_bytes(bits)

    def write_block(self, row: int, data: bytes) -> None:
        """Conventional write of one row."""
        if len(data) * 8 != self.cols:
            raise AddressError(
                f"block of {len(data)} bytes does not fill a {self.cols}-bit row"
            )
        if self.is_packed:
            self.cells.write_row_bytes(row, data)
            self._account(SubarrayOp.WRITE)
            return
        bits = bytes_to_bits(data)
        self.decoder.decode(row)
        self.cells.write_row(row, bits)
        self._account(SubarrayOp.WRITE)

    # -- in-place compute ---------------------------------------------------

    def _compute_sense(self, row_a: int, row_b: int) -> tuple[np.ndarray, np.ndarray]:
        """Dual activation with single-ended sensing; returns (AND, NOR)."""
        wl = self.decoder.decode(row_a, row_b)
        self.sense.configure(SenseMode.SINGLE_ENDED)
        bl, blb = self.cells.activate(wl)
        return self.sense.sense_single_ended(bl, blb)

    def _packed_rows(self, *rows: int) -> list[np.ndarray]:
        for row in rows:
            self.cells._check_row(row)
        return [self.cells.row(row) for row in rows]

    def op_and(self, row_a: int, row_b: int, dest: int | None = None) -> bytes:
        """In-place AND of two rows; optionally written back to ``dest``."""
        if self.is_packed:
            a, b = self._packed_rows(row_a, row_b)
            self._account(SubarrayOp.AND)
            return self._finish_packed(a & b, dest)
        and_bits, _ = self._compute_sense(row_a, row_b)
        self._account(SubarrayOp.AND)
        return self._finish(and_bits, dest)

    def op_nor(self, row_a: int, row_b: int, dest: int | None = None) -> bytes:
        """In-place NOR of two rows (sensed on bit-line-bar)."""
        if self.is_packed:
            a, b = self._packed_rows(row_a, row_b)
            self._account(SubarrayOp.NOR)
            return self._finish_packed(~(a | b), dest)
        _, nor_bits = self._compute_sense(row_a, row_b)
        self._account(SubarrayOp.NOR)
        return self._finish(nor_bits, dest)

    def op_or(self, row_a: int, row_b: int, dest: int | None = None) -> bytes:
        """In-place OR: complement of the NOR sense result."""
        if self.is_packed:
            a, b = self._packed_rows(row_a, row_b)
            self._account(SubarrayOp.OR)
            return self._finish_packed(a | b, dest)
        _, nor_bits = self._compute_sense(row_a, row_b)
        self._account(SubarrayOp.OR)
        return self._finish(~nor_bits, dest)

    def op_xor(self, row_a: int, row_b: int, dest: int | None = None) -> bytes:
        """In-place XOR: NOR of the BL (AND) and BLB (NOR) sense results."""
        if self.is_packed:
            a, b = self._packed_rows(row_a, row_b)
            self._account(SubarrayOp.XOR)
            return self._finish_packed(a ^ b, dest)
        and_bits, nor_bits = self._compute_sense(row_a, row_b)
        xor_bits = ~(and_bits | nor_bits)
        self._account(SubarrayOp.XOR)
        return self._finish(xor_bits, dest)

    def op_not(self, row: int, dest: int | None = None) -> bytes:
        """Complement of one row, via BLB sensing of a single activation."""
        if self.is_packed:
            (a,) = self._packed_rows(row)
            self._account(SubarrayOp.NOT)
            return self._finish_packed(~a, dest)
        wl = self.decoder.decode(row)
        self.sense.configure(SenseMode.SINGLE_ENDED)
        bl, blb = self.cells.activate(wl)
        _, not_bits = self.sense.sense_single_ended(bl, blb)
        self._account(SubarrayOp.NOT)
        return self._finish(not_bits, dest)

    def op_copy(self, src: int, dest: int) -> bytes:
        """In-place copy via the sense-amp feedback path (Figure 4).

        The source row is sensed, the latched value is driven back onto the
        bit-lines, and the destination word-line is write-enabled.  The data
        never leaves the sub-array.
        """
        if self.is_packed:
            (a,) = self._packed_rows(src)
            self._account(SubarrayOp.COPY)
            return self._finish_packed(a.copy(), dest)
        wl = self.decoder.decode(src)
        self.sense.configure(SenseMode.DIFFERENTIAL)
        bl, blb = self.cells.activate(wl)
        self.sense.sense_differential(bl, blb)
        bits = self.sense.drive_back()
        self.cells.write_row(dest, bits)
        self._account(SubarrayOp.COPY)
        return bits_to_bytes(bits)

    def op_buz(self, dest: int) -> None:
        """In-place zeroing: reset the data latch, then write (cc_buz)."""
        if self.is_packed:
            self.cells._check_row(dest)
            self.cells.row(dest)[:] = 0
            self._account(SubarrayOp.BUZ)
            return
        self.sense.reset_latch()
        bits = self.sense.drive_back()
        self.decoder.decode(dest)
        self.cells.write_row(dest, bits)
        self._account(SubarrayOp.BUZ)

    def op_cmp(self, row_a: int, row_b: int, word_bits: int = 64) -> int:
        """Word-granular equality of two rows.

        The per-bit XOR results are combined per word with a wired-NOR;
        returns a mask with bit *i* set iff word *i* of the two rows match.
        """
        if self.is_packed:
            a, b = self._packed_rows(row_a, row_b)
            self._account(SubarrayOp.CMP)
            return int(equality_mask(a, b, word_bits // 8)[0])
        and_bits, nor_bits = self._compute_sense(row_a, row_b)
        xor_bits = ~(and_bits | nor_bits)
        self._account(SubarrayOp.CMP)
        return word_equality_mask(xor_bits, word_bits)

    def op_search(self, data_row: int, key_row: int, key_bytes: int = 64) -> int:
        """Compare a data row against a replicated key row (cc_search).

        The key occupies ``key_bytes`` (the paper fixes 64); equality is
        reported at key granularity: bit *i* of the result is set iff the
        *i*-th key-sized chunk of the data row equals the key.
        """
        if self.is_packed:
            a, b = self._packed_rows(data_row, key_row)
            self._account(SubarrayOp.SEARCH)
            return int(equality_mask(a, b, key_bytes)[0])
        and_bits, nor_bits = self._compute_sense(data_row, key_row)
        xor_bits = ~(and_bits | nor_bits)
        self._account(SubarrayOp.SEARCH)
        return word_equality_mask(xor_bits, key_bytes * 8)

    # -- bit-serial arithmetic (Neural Cache tier) ----------------------------

    def _check_elem_width(self, elem_bits: int) -> None:
        if elem_bits not in (8, 16, 32):
            raise ISAError(f"arithmetic element width must be 8/16/32, got {elem_bits}")
        if self.cols % elem_bits:
            raise ISAError(
                f"{self.cols}-bit row is not divisible into {elem_bits}-bit elements"
            )

    def _row_bit_planes(self, row: int, elem_bits: int) -> np.ndarray:
        """Row contents as ``(n_elems, elem_bits)`` bit planes, LSB first.

        This is the transposed (bit-serial) view the Neural Cache circuits
        operate on: column *k* is bit-plane *k* of every element.  Elements
        are little-endian within the row (element 0 lowest-addressed).
        """
        raw = np.frombuffer(bits_to_bytes(self.cells.read_row(row)), dtype=np.uint8)
        return (
            np.unpackbits(raw, bitorder="little").astype(bool).reshape(-1, elem_bits)
        )

    @staticmethod
    def _planes_to_bits(planes: np.ndarray) -> np.ndarray:
        """Bit planes back to the row's MSB-first bit layout."""
        raw = np.packbits(planes.astype(np.uint8).ravel(), bitorder="little")
        return np.unpackbits(raw).astype(bool)

    @staticmethod
    def _serial_add_planes(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """The bit-serial full-adder loop: one pass per bit plane.

        Each step computes sum and carry planes exactly as the bit-line
        logic does (``s = a ^ b ^ c``, ``c' = ab + c(a ^ b)``); the final
        carry is dropped (wraparound modulo ``2^w``).
        """
        out = np.zeros_like(a)
        carry = np.zeros(a.shape[0], dtype=bool)
        for k in range(a.shape[1]):
            ak, bk = a[:, k], b[:, k]
            axb = ak ^ bk
            out[:, k] = axb ^ carry
            carry = (ak & bk) | (carry & axb)
        return out

    @classmethod
    def _serial_mul_planes(cls, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Bit-serial shift-and-add multiplication over bit planes.

        Partial product *k* is ``a`` shifted up *k* planes, predicated on
        bit plane *k* of ``b``, accumulated with the full-adder loop; all
        shifts and sums truncate at ``w`` planes (modulo ``2^w``).
        """
        acc = np.zeros_like(a)
        w = a.shape[1]
        for k in range(w):
            pp = np.zeros_like(a)
            pp[:, k:] = a[:, : w - k]
            pp &= b[:, k][:, None]
            acc = cls._serial_add_planes(acc, pp)
        return acc

    def op_add(self, row_a: int, row_b: int, dest: int | None = None,
               elem_bits: int = 8) -> bytes:
        """Element-wise bit-serial addition of two rows (cc_add)."""
        self._check_elem_width(elem_bits)
        steps = arith_steps(SubarrayOp.ADD, elem_bits)
        if self.is_packed:
            a, b = self._packed_rows(row_a, row_b)
            self._account(SubarrayOp.ADD, steps=steps)
            return self._finish_packed(arith_rows("add", a, b, elem_bits)[0], dest)
        a = self._row_bit_planes(row_a, elem_bits)
        b = self._row_bit_planes(row_b, elem_bits)
        out = self._serial_add_planes(a, b)
        self._account(SubarrayOp.ADD, steps=steps)
        return self._finish(self._planes_to_bits(out), dest)

    def op_mul(self, row_a: int, row_b: int, dest: int | None = None,
               elem_bits: int = 8) -> bytes:
        """Element-wise bit-serial multiplication of two rows (cc_mul)."""
        self._check_elem_width(elem_bits)
        steps = arith_steps(SubarrayOp.MUL, elem_bits)
        if self.is_packed:
            a, b = self._packed_rows(row_a, row_b)
            self._account(SubarrayOp.MUL, steps=steps)
            return self._finish_packed(arith_rows("mul", a, b, elem_bits)[0], dest)
        a = self._row_bit_planes(row_a, elem_bits)
        b = self._row_bit_planes(row_b, elem_bits)
        out = self._serial_mul_planes(a, b)
        self._account(SubarrayOp.MUL, steps=steps)
        return self._finish(self._planes_to_bits(out), dest)

    def op_reduce(self, row: int, elem_bits: int = 8) -> int:
        """Sum the row's elements modulo ``2^64`` (cc_reduce).

        Bit-exact reference: accumulate per bit plane
        (``sum_i e_i = sum_k 2^k * popcount(plane k)``), which is exactly
        what the log-depth reduction tree computes.
        """
        self._check_elem_width(elem_bits)
        n_elems = self.cols // elem_bits
        steps = arith_steps(SubarrayOp.REDUCE, elem_bits, n_elems)
        if self.is_packed:
            (a,) = self._packed_rows(row)
            self._account(SubarrayOp.REDUCE, steps=steps)
            return int(reduce_rows(a, elem_bits)[0])
        planes = self._row_bit_planes(row, elem_bits)
        total = 0
        for k in range(elem_bits):
            total += int(planes[:, k].sum()) << k
        self._account(SubarrayOp.REDUCE, steps=steps)
        return total & 0xFFFFFFFFFFFFFFFF

    def op_clmul(self, row_a: int, row_b: int, lane_bits: int) -> bytes:
        """Carry-less multiply: AND of two rows + XOR-reduction per lane.

        Each ``lane_bits``-wide lane reduces to a single parity bit
        (Table II: ``c_i = XOR_j (a[j] & b[j])``); the result is returned
        as packed bytes, one bit per lane, zero-padded to a whole byte.
        """
        if lane_bits not in (64, 128, 256):
            raise ISAError(f"cc_clmul lane width must be 64/128/256, got {lane_bits}")
        n_lanes = self.cols // lane_bits
        if self.is_packed:
            a, b = self._packed_rows(row_a, row_b)
            self._account(SubarrayOp.CLMUL)
            mask = int(clmul_mask(a, b, lane_bits)[0])
            return mask.to_bytes((n_lanes + 7) // 8, "little")
        and_bits, _ = self._compute_sense(row_a, row_b)
        lanes = xor_reduce_lanes(and_bits, lane_bits)
        self._account(SubarrayOp.CLMUL)
        mask = int(pack_flags(lanes)[0])
        return mask.to_bytes((lanes.size + 7) // 8, "little")

    # -- batched compute (one kernel call across many rows) ------------------

    def op_batch(
        self,
        op: str,
        rows_a: list[int],
        rows_b: list[int] | None = None,
        rows_dest: list[int] | None = None,
        word_bits: int = 64,
        key_bytes: int = 64,
        lane_bits: int | None = None,
        elem_bits: int | None = None,
    ) -> list:
        """Issue one operation over many row tuples of this sub-array.

        Under the packed backend the whole batch is one vectorized kernel
        call (gather packed rows, compute, scatter); under the bit-exact
        backend it degenerates to the per-row circuit operations.  Either
        way the per-operation accounting (:class:`SubarrayStats`, Table-V
        energy) is identical to issuing the rows one at a time, so timing
        and energy are batch- and backend-invariant.

        Returns a list with one entry per row tuple: result ``bytes`` for
        data-producing ops, ``int`` masks for ``cmp``/``search``, packed
        ``bytes`` for ``clmul``, ``int`` partial sums for ``reduce``, and
        ``None`` for ``buz``.
        """
        if not rows_a:
            return []
        if not self.is_packed:
            return [
                self._one_op(op, i, rows_a, rows_b, rows_dest,
                             word_bits, key_bytes, lane_bits, elem_bits)
                for i in range(len(rows_a))
            ]
        for row in rows_a:
            self.cells._check_row(row)
        for row in rows_b or ():
            self.cells._check_row(row)
        for row in rows_dest or ():
            self.cells._check_row(row)

        a = self.cells.read_rows(rows_a)
        b = self.cells.read_rows(rows_b) if rows_b is not None else None

        if op in (SubarrayOp.AND, SubarrayOp.OR, SubarrayOp.NOR, SubarrayOp.XOR,
                  SubarrayOp.NOT, SubarrayOp.COPY, SubarrayOp.BUZ):
            out = logical_rows(op, a, b)
            if rows_dest is not None:
                self.cells.write_rows(rows_dest, out)
            for _ in rows_a:
                self._account(op)
            if op == SubarrayOp.BUZ:
                return [None] * len(rows_a)
            return [row.tobytes() for row in out]
        if op == SubarrayOp.CMP:
            masks = equality_mask(a, b, word_bits // 8)
            for _ in rows_a:
                self._account(op)
            return [int(m) for m in masks]
        if op == SubarrayOp.SEARCH:
            masks = equality_mask(a, b, key_bytes)
            for _ in rows_a:
                self._account(op)
            return [int(m) for m in masks]
        if op == SubarrayOp.CLMUL:
            if lane_bits not in (64, 128, 256):
                raise ISAError(f"cc_clmul lane width must be 64/128/256, got {lane_bits}")
            masks = clmul_mask(a, b, lane_bits)
            nbytes = (self.cols // lane_bits + 7) // 8
            for _ in rows_a:
                self._account(op)
            return [int(m).to_bytes(nbytes, "little") for m in masks]
        if op in (SubarrayOp.ADD, SubarrayOp.MUL):
            if elem_bits is None:
                raise ISAError(f"batched {op} needs an element width")
            self._check_elem_width(elem_bits)
            out = arith_rows(op, a, b, elem_bits)
            if rows_dest is not None:
                self.cells.write_rows(rows_dest, out)
            steps = arith_steps(op, elem_bits)
            for _ in rows_a:
                self._account(op, steps=steps)
            return [row.tobytes() for row in out]
        if op == SubarrayOp.REDUCE:
            if elem_bits is None:
                raise ISAError("batched reduce needs an element width")
            self._check_elem_width(elem_bits)
            sums = reduce_rows(a, elem_bits)
            steps = arith_steps(op, elem_bits, self.cols // elem_bits)
            for _ in rows_a:
                self._account(op, steps=steps)
            return [int(s) for s in sums]
        raise ISAError(f"unknown batched sub-array operation {op!r}")

    def _one_op(self, op: str, i: int, rows_a, rows_b, rows_dest,
                word_bits: int, key_bytes: int, lane_bits: int | None,
                elem_bits: int | None = None):
        """One batch element via the per-row entry points (circuit path)."""
        a = rows_a[i]
        b = rows_b[i] if rows_b is not None else None
        dest = rows_dest[i] if rows_dest is not None else None
        if op in (SubarrayOp.AND, SubarrayOp.OR, SubarrayOp.NOR, SubarrayOp.XOR):
            method = {SubarrayOp.AND: self.op_and, SubarrayOp.OR: self.op_or,
                      SubarrayOp.NOR: self.op_nor, SubarrayOp.XOR: self.op_xor}[op]
            return method(a, b, dest=dest)
        if op == SubarrayOp.NOT:
            return self.op_not(a, dest=dest)
        if op == SubarrayOp.COPY:
            return self.op_copy(a, dest)
        if op == SubarrayOp.BUZ:
            return self.op_buz(dest if dest is not None else a)
        if op == SubarrayOp.CMP:
            return self.op_cmp(a, b, word_bits)
        if op == SubarrayOp.SEARCH:
            return self.op_search(a, b, key_bytes)
        if op == SubarrayOp.CLMUL:
            return self.op_clmul(a, b, lane_bits)
        if op == SubarrayOp.ADD:
            return self.op_add(a, b, dest=dest, elem_bits=elem_bits or 8)
        if op == SubarrayOp.MUL:
            return self.op_mul(a, b, dest=dest, elem_bits=elem_bits or 8)
        if op == SubarrayOp.REDUCE:
            return self.op_reduce(a, elem_bits=elem_bits or 8)
        raise ISAError(f"unknown batched sub-array operation {op!r}")

    # -- helpers ------------------------------------------------------------

    def _finish(self, bits: np.ndarray, dest: int | None) -> bytes:
        """Optionally write a compute result back to a destination row."""
        if dest is not None:
            self.sense.latch_value(bits)
            self.cells.write_row(dest, self.sense.drive_back())
        return bits_to_bytes(bits)

    def _finish_packed(self, packed: np.ndarray, dest: int | None) -> bytes:
        """Packed-backend twin of :meth:`_finish`."""
        if dest is not None:
            self.cells._check_row(dest)
            self.cells.data[dest] = packed
        return packed.tobytes()

    def _account(self, op: str, steps: int = 1) -> None:
        """Record one operation; ``steps`` scales the per-step cost of the
        bit-serial arithmetic ops (1 for every single-step operation)."""
        self.stats.record(
            op, steps * self.timing.op_energy(op), steps * self.timing.op_delay(op)
        )
