"""The compute-capable SRAM sub-array (Sections II-B and IV-B).

A :class:`ComputeSubarray` composes the raw bit-cell array, the added dual
row decoder, and the reconfigurable sense amplifiers into the unit the CC
controller talks to.  Every row holds one cache block; all rows share
bit-lines, so any two rows of the same sub-array are in the same *block
partition* and can be operated on in place.

Supported in-place operations (all bit-exact):

=============  =====================================================
``read``       conventional differential read of one row
``write``      conventional write of one row
``and``        BL sensing over two activated rows
``nor``        BLB sensing over two activated rows
``or``         complement of ``nor``
``xor``        NOR of BL and BLB sense results
``not``        complement read driven to a destination row
``copy``       sense a row, feed the latch back onto the bit-lines
``buz``        reset the data latch, write zeros
``cmp``        per-word wired-NOR of the XOR result -> equality mask
``search``     ``cmp`` against a key previously written to a row
``clmul``      AND of two rows, XOR-reduction tree per lane
=============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bitops import bits_to_bytes, bytes_to_bits, word_equality_mask, xor_reduce_lanes
from ..errors import AddressError, ISAError
from .bitcell import BitCellArray
from .decoder import DualRowDecoder
from .sense_amp import SenseAmpColumn, SenseMode
from .timing import SubarrayTiming


class SubarrayOp:
    """String constants naming sub-array operations."""

    READ = "read"
    WRITE = "write"
    AND = "and"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    NOT = "not"
    COPY = "copy"
    BUZ = "buz"
    CMP = "cmp"
    SEARCH = "search"
    CLMUL = "clmul"

    LOGICAL = frozenset({AND, OR, NOR, XOR})
    ALL = frozenset(
        {READ, WRITE, AND, OR, NOR, XOR, NOT, COPY, BUZ, CMP, SEARCH, CLMUL}
    )


@dataclass
class SubarrayStats:
    """Cycle and energy accounting for one sub-array."""

    reads: int = 0
    writes: int = 0
    compute_ops: dict[str, int] = field(default_factory=dict)
    energy_pj: float = 0.0
    busy_cycles: float = 0.0

    def record(self, op: str, energy: float, delay: float) -> None:
        if op == SubarrayOp.READ:
            self.reads += 1
        elif op == SubarrayOp.WRITE:
            self.writes += 1
        else:
            self.compute_ops[op] = self.compute_ops.get(op, 0) + 1
        self.energy_pj += energy
        self.busy_cycles += delay

    @property
    def total_compute_ops(self) -> int:
        return sum(self.compute_ops.values())


class ComputeSubarray:
    """One sub-array: ``rows`` cache blocks sharing ``cols`` bit-lines."""

    def __init__(
        self,
        rows: int,
        cols: int,
        timing: SubarrayTiming | None = None,
        max_activated: int = 64,
        wordline_underdrive: bool = True,
    ) -> None:
        if cols % 8:
            raise AddressError(f"sub-array width {cols} is not a whole number of bytes")
        self.rows = rows
        self.cols = cols
        self.cells = BitCellArray(
            rows, cols, max_activated=max_activated, wordline_underdrive=wordline_underdrive
        )
        self.decoder = DualRowDecoder(rows)
        self.sense = SenseAmpColumn(cols)
        self.timing = timing or SubarrayTiming()
        self.stats = SubarrayStats()

    # -- conventional access ------------------------------------------------

    def read_block(self, row: int) -> bytes:
        """Conventional differential read of one row (one cache block)."""
        wl = self.decoder.decode(row)
        self.sense.configure(SenseMode.DIFFERENTIAL)
        bl, blb = self.cells.activate(wl)
        bits = self.sense.sense_differential(bl, blb)
        self._account(SubarrayOp.READ)
        return bits_to_bytes(bits)

    def write_block(self, row: int, data: bytes) -> None:
        """Conventional write of one row."""
        bits = bytes_to_bits(data)
        if bits.size != self.cols:
            raise AddressError(
                f"block of {len(data)} bytes does not fill a {self.cols}-bit row"
            )
        self.decoder.decode(row)
        self.cells.write_row(row, bits)
        self._account(SubarrayOp.WRITE)

    # -- in-place compute ---------------------------------------------------

    def _compute_sense(self, row_a: int, row_b: int) -> tuple[np.ndarray, np.ndarray]:
        """Dual activation with single-ended sensing; returns (AND, NOR)."""
        wl = self.decoder.decode(row_a, row_b)
        self.sense.configure(SenseMode.SINGLE_ENDED)
        bl, blb = self.cells.activate(wl)
        return self.sense.sense_single_ended(bl, blb)

    def op_and(self, row_a: int, row_b: int, dest: int | None = None) -> bytes:
        """In-place AND of two rows; optionally written back to ``dest``."""
        and_bits, _ = self._compute_sense(row_a, row_b)
        self._account(SubarrayOp.AND)
        return self._finish(and_bits, dest)

    def op_nor(self, row_a: int, row_b: int, dest: int | None = None) -> bytes:
        """In-place NOR of two rows (sensed on bit-line-bar)."""
        _, nor_bits = self._compute_sense(row_a, row_b)
        self._account(SubarrayOp.NOR)
        return self._finish(nor_bits, dest)

    def op_or(self, row_a: int, row_b: int, dest: int | None = None) -> bytes:
        """In-place OR: complement of the NOR sense result."""
        _, nor_bits = self._compute_sense(row_a, row_b)
        self._account(SubarrayOp.OR)
        return self._finish(~nor_bits, dest)

    def op_xor(self, row_a: int, row_b: int, dest: int | None = None) -> bytes:
        """In-place XOR: NOR of the BL (AND) and BLB (NOR) sense results."""
        and_bits, nor_bits = self._compute_sense(row_a, row_b)
        xor_bits = ~(and_bits | nor_bits)
        self._account(SubarrayOp.XOR)
        return self._finish(xor_bits, dest)

    def op_not(self, row: int, dest: int | None = None) -> bytes:
        """Complement of one row, via BLB sensing of a single activation."""
        wl = self.decoder.decode(row)
        self.sense.configure(SenseMode.SINGLE_ENDED)
        bl, blb = self.cells.activate(wl)
        _, not_bits = self.sense.sense_single_ended(bl, blb)
        self._account(SubarrayOp.NOT)
        return self._finish(not_bits, dest)

    def op_copy(self, src: int, dest: int) -> bytes:
        """In-place copy via the sense-amp feedback path (Figure 4).

        The source row is sensed, the latched value is driven back onto the
        bit-lines, and the destination word-line is write-enabled.  The data
        never leaves the sub-array.
        """
        wl = self.decoder.decode(src)
        self.sense.configure(SenseMode.DIFFERENTIAL)
        bl, blb = self.cells.activate(wl)
        self.sense.sense_differential(bl, blb)
        bits = self.sense.drive_back()
        self.cells.write_row(dest, bits)
        self._account(SubarrayOp.COPY)
        return bits_to_bytes(bits)

    def op_buz(self, dest: int) -> None:
        """In-place zeroing: reset the data latch, then write (cc_buz)."""
        self.sense.reset_latch()
        bits = self.sense.drive_back()
        self.decoder.decode(dest)
        self.cells.write_row(dest, bits)
        self._account(SubarrayOp.BUZ)

    def op_cmp(self, row_a: int, row_b: int, word_bits: int = 64) -> int:
        """Word-granular equality of two rows.

        The per-bit XOR results are combined per word with a wired-NOR;
        returns a mask with bit *i* set iff word *i* of the two rows match.
        """
        and_bits, nor_bits = self._compute_sense(row_a, row_b)
        xor_bits = ~(and_bits | nor_bits)
        self._account(SubarrayOp.CMP)
        return word_equality_mask(xor_bits, word_bits)

    def op_search(self, data_row: int, key_row: int, key_bytes: int = 64) -> int:
        """Compare a data row against a replicated key row (cc_search).

        The key occupies ``key_bytes`` (the paper fixes 64); equality is
        reported at key granularity: bit *i* of the result is set iff the
        *i*-th key-sized chunk of the data row equals the key.
        """
        and_bits, nor_bits = self._compute_sense(data_row, key_row)
        xor_bits = ~(and_bits | nor_bits)
        self._account(SubarrayOp.SEARCH)
        return word_equality_mask(xor_bits, key_bytes * 8)

    def op_clmul(self, row_a: int, row_b: int, lane_bits: int) -> bytes:
        """Carry-less multiply: AND of two rows + XOR-reduction per lane.

        Each ``lane_bits``-wide lane reduces to a single parity bit
        (Table II: ``c_i = XOR_j (a[j] & b[j])``); the result is returned
        as packed bytes, one bit per lane, zero-padded to a whole byte.
        """
        if lane_bits not in (64, 128, 256):
            raise ISAError(f"cc_clmul lane width must be 64/128/256, got {lane_bits}")
        and_bits, _ = self._compute_sense(row_a, row_b)
        lanes = xor_reduce_lanes(and_bits, lane_bits)
        self._account(SubarrayOp.CLMUL)
        mask = 0
        for i, bit in enumerate(lanes):
            if bit:
                mask |= 1 << i
        return mask.to_bytes((lanes.size + 7) // 8, "little")

    # -- helpers ------------------------------------------------------------

    def _finish(self, bits: np.ndarray, dest: int | None) -> bytes:
        """Optionally write a compute result back to a destination row."""
        if dest is not None:
            self.sense.latch_value(bits)
            self.cells.write_row(dest, self.sense.drive_back())
        return bits_to_bytes(bits)

    def _account(self, op: str) -> None:
        self.stats.record(op, self.timing.op_energy(op), self.timing.op_delay(op))
