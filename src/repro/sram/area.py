"""Sub-array area model: where the paper's 8% overhead comes from.

Section VI-C: "The area overhead is 8% for a sub-array of size 512 x 512."
The compute extensions add, per sub-array:

* a **second row decoder** (dual word-line activation) - roughly the same
  area as the baseline decoder;
* **sense-amplifier reconfiguration** (two single-ended amps obtained from
  each differential amp) - extra switches/reference per column;
* the **XOR-reduction tree** for clmul - one XOR gate per column, halving
  per level, plus lane-select muxes;
* **copy/zero control** (latch reset, write-back enables) - small.

The model expresses each structure in bit-cell-equivalent units (a common
way to head-count SRAM periphery) so the overhead can be recomputed for
any geometry; the default 512x512 instance reproduces ~8%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError

CELL_UNITS = 1.0
"""Area of one 6T bit-cell, the unit everything else is measured in."""

DECODER_UNITS_PER_ROW = 24.0
"""Row-decoder area per word-line: predecode, final NAND stage, and the
word-line driver sized to swing a 512-cell row - a strip a few dozen
cell-widths deep in real macros."""

SENSE_AMP_UNITS_PER_COLUMN = 40.0
"""Differential sense amp + write driver + precharge + column select per
column: SRAM periphery strips are tens of cell-heights tall."""

SINGLE_ENDED_EXTRA_PER_COLUMN = 12.0
"""Reconfiguration switches + reference generation for single-ended
compute sensing (the second rail's comparator path)."""

XOR_GATE_UNITS = 8.0
"""One XOR gate (plus its share of lane-select muxing) in the tree."""

COPY_CONTROL_UNITS_PER_COLUMN = 3.0
"""Latch-reset and write-back-enable logic per column (Figure 4)."""


@dataclass(frozen=True)
class SubarrayArea:
    """Area breakdown of one sub-array, in bit-cell units."""

    rows: int
    cols: int
    cells: float
    base_decoder: float
    sense_amps: float
    second_decoder: float
    single_ended_extra: float
    reduction_tree: float
    copy_control: float

    @property
    def baseline(self) -> float:
        """Conventional sub-array: cells + one decoder + differential amps."""
        return self.cells + self.base_decoder + self.sense_amps

    @property
    def compute_additions(self) -> float:
        return (self.second_decoder + self.single_ended_extra
                + self.reduction_tree + self.copy_control)

    @property
    def overhead_fraction(self) -> float:
        """The paper's headline: ~0.08 for a 512 x 512 sub-array."""
        return self.compute_additions / self.baseline

    def breakdown(self) -> dict[str, float]:
        return {
            "cells": self.cells,
            "base decoder": self.base_decoder,
            "sense amps": self.sense_amps,
            "second decoder": self.second_decoder,
            "single-ended extra": self.single_ended_extra,
            "xor-reduction tree": self.reduction_tree,
            "copy control": self.copy_control,
        }


def subarray_area(rows: int = 512, cols: int = 512) -> SubarrayArea:
    """Compute the area breakdown for a rows x cols sub-array."""
    if rows < 2 or cols < 2:
        raise ConfigError(f"degenerate sub-array {rows}x{cols}")
    tree_gates = cols - 1  # a full binary XOR-reduction tree over the columns
    return SubarrayArea(
        rows=rows,
        cols=cols,
        cells=rows * cols * CELL_UNITS,
        base_decoder=rows * DECODER_UNITS_PER_ROW,
        sense_amps=cols * SENSE_AMP_UNITS_PER_COLUMN,
        second_decoder=rows * DECODER_UNITS_PER_ROW,
        single_ended_extra=cols * SINGLE_ENDED_EXTRA_PER_COLUMN,
        reduction_tree=tree_gates * XOR_GATE_UNITS,
        copy_control=cols * COPY_CONTROL_UNITS_PER_COLUMN,
    )


def cache_area_overhead(rows: int, cols: int, num_subarrays: int) -> float:
    """Whole-cache compute overhead (the controller additions are noise
    next to the per-sub-array periphery, so this equals the sub-array
    fraction)."""
    one = subarray_area(rows, cols)
    return (one.compute_additions * num_subarrays) / (one.baseline * num_subarrays)


def tree_depth(cols: int, lane_bits: int) -> int:
    """Logic depth of the XOR-reduction tree for one clmul lane."""
    if lane_bits < 1:
        raise ConfigError("lane width must be positive")
    return max(1, math.ceil(math.log2(lane_bits)))
