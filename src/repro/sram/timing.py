"""Delay and energy annotations for compute sub-arrays (Section VI-C).

The paper's SPICE results on a 28 nm process give, relative to a single
sub-array access:

* delay: ``and``/``or``/``xor`` in-place operations take 3x a normal
  access; all other CC operations take 2x;
* energy: ``cmp``/``search``/``clmul`` cost 1.5x, ``copy``/``buz``/``not``
  cost 2x, and the remaining (``and``/``or``/``xor``) cost 2.5x a baseline
  sub-array access;
* area: +8% for a 512x512 sub-array (second decoder, single-ended sense
  reconfiguration, XOR-reduction tree).

These multipliers convert a level's baseline sub-array access delay/energy
into per-CC-operation numbers.  Absolute per-block energies (Table V) live
in :mod:`repro.energy.tables`; this module carries the relative circuit
model so alternative cache geometries can be annotated consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ISAError

DELAY_MULTIPLIER = {
    "and": 3.0,
    "or": 3.0,
    "nor": 3.0,
    "xor": 3.0,
    "not": 2.0,
    "copy": 2.0,
    "buz": 2.0,
    "cmp": 2.0,
    "search": 2.0,
    "clmul": 2.0,
    "read": 1.0,
    "write": 1.0,
}

ENERGY_MULTIPLIER = {
    "cmp": 1.5,
    "search": 1.5,
    "clmul": 1.5,
    "copy": 2.0,
    "buz": 2.0,
    "not": 2.0,
    "and": 2.5,
    "or": 2.5,
    "nor": 2.5,
    "xor": 2.5,
    "read": 1.0,
    "write": 1.0,
}

AREA_OVERHEAD = 0.08
"""Fractional sub-array area added by the compute extensions."""


@dataclass(frozen=True)
class SubarrayTiming:
    """Per-sub-array delay/energy model.

    Parameters
    ----------
    access_delay_cycles:
        Delay of one conventional sub-array access, in core cycles.
    access_energy_pj:
        Energy of one conventional sub-array access (data array only,
        excluding H-tree transfer), in pJ.
    """

    access_delay_cycles: float = 4.0
    access_energy_pj: float = 100.0

    def op_delay(self, op: str) -> float:
        """Delay of a CC operation in core cycles."""
        try:
            return self.access_delay_cycles * DELAY_MULTIPLIER[op]
        except KeyError:
            raise ISAError(f"unknown sub-array operation {op!r}") from None

    def op_energy(self, op: str) -> float:
        """Energy of a CC operation in pJ (sub-array only)."""
        try:
            return self.access_energy_pj * ENERGY_MULTIPLIER[op]
        except KeyError:
            raise ISAError(f"unknown sub-array operation {op!r}") from None
