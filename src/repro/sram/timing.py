"""Delay and energy annotations for compute sub-arrays (Section VI-C).

The paper's SPICE results on a 28 nm process give, relative to a single
sub-array access:

* delay: ``and``/``or``/``xor`` in-place operations take 3x a normal
  access; all other CC operations take 2x;
* energy: ``cmp``/``search``/``clmul`` cost 1.5x, ``copy``/``buz``/``not``
  cost 2x, and the remaining (``and``/``or``/``xor``) cost 2.5x a baseline
  sub-array access;
* area: +8% for a 512x512 sub-array (second decoder, single-ended sense
  reconfiguration, XOR-reduction tree).

These multipliers convert a level's baseline sub-array access delay/energy
into per-CC-operation numbers.  Absolute per-block energies (Table V) live
in :mod:`repro.energy.tables`; this module carries the relative circuit
model so alternative cache geometries can be annotated consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ISAError

DELAY_MULTIPLIER = {
    "and": 3.0,
    "or": 3.0,
    "nor": 3.0,
    "xor": 3.0,
    "not": 2.0,
    "copy": 2.0,
    "buz": 2.0,
    "cmp": 2.0,
    "search": 2.0,
    "clmul": 2.0,
    "read": 1.0,
    "write": 1.0,
    # Bit-serial arithmetic (Neural Cache): the multipliers are *per step*
    # (one bit-plane operation = a dual-row activation plus a write-back,
    # the same circuit class as the logical ops); the per-op cost is the
    # multiplier scaled by arith_steps().
    "add": 3.0,
    "mul": 3.0,
    "reduce": 3.0,
}

ENERGY_MULTIPLIER = {
    "cmp": 1.5,
    "search": 1.5,
    "clmul": 1.5,
    "copy": 2.0,
    "buz": 2.0,
    "not": 2.0,
    "and": 2.5,
    "or": 2.5,
    "nor": 2.5,
    "xor": 2.5,
    "read": 1.0,
    "write": 1.0,
    # Per bit-serial step (see DELAY_MULTIPLIER).
    "add": 2.5,
    "mul": 2.5,
    "reduce": 2.5,
}

ARITH_OPS = frozenset({"add", "mul", "reduce"})
"""Sub-array operations whose cost scales with bit-serial step count."""


def arith_steps(op: str, elem_bits: int, n_elems: int | None = None) -> int:
    """Bit-serial step count of one arithmetic block operation.

    Follows the Neural Cache circuit model (arXiv 1805.03718, Section 4)
    over transposed ``elem_bits``-wide operands:

    * ``add``    — one full-adder pass per bit plane plus carry
      initialization: ``w + 1`` steps;
    * ``mul``    — shift-and-add over ``w`` predicated partial products:
      ``w^2 + 5w - 2`` steps;
    * ``reduce`` — a log-depth adder tree over ``n_elems`` elements whose
      operand width grows one bit per tree level:
      ``sum over levels L of (w + L + 1)`` steps.

    ``n_elems`` is required for ``reduce`` (elements per block row).
    """
    w = elem_bits
    if op == "add":
        return w + 1
    if op == "mul":
        return w * w + 5 * w - 2
    if op == "reduce":
        if not n_elems or n_elems < 1:
            raise ISAError("reduce step count needs the element count")
        levels = max(1, (n_elems - 1).bit_length())
        return sum(w + lvl + 1 for lvl in range(1, levels + 1))
    raise ISAError(f"unknown arithmetic sub-array operation {op!r}")

AREA_OVERHEAD = 0.08
"""Fractional sub-array area added by the compute extensions."""


@dataclass(frozen=True)
class SubarrayTiming:
    """Per-sub-array delay/energy model.

    Parameters
    ----------
    access_delay_cycles:
        Delay of one conventional sub-array access, in core cycles.
    access_energy_pj:
        Energy of one conventional sub-array access (data array only,
        excluding H-tree transfer), in pJ.
    """

    access_delay_cycles: float = 4.0
    access_energy_pj: float = 100.0

    def op_delay(self, op: str) -> float:
        """Delay of a CC operation in core cycles."""
        try:
            return self.access_delay_cycles * DELAY_MULTIPLIER[op]
        except KeyError:
            raise ISAError(f"unknown sub-array operation {op!r}") from None

    def op_energy(self, op: str) -> float:
        """Energy of a CC operation in pJ (sub-array only)."""
        try:
            return self.access_energy_pj * ENERGY_MULTIPLIER[op]
        except KeyError:
            raise ISAError(f"unknown sub-array operation {op!r}") from None
