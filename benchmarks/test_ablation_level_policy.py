"""Ablation: compute-level selection policy (Section IV-E).

The controller computes at the highest level holding all operands.  This
bench compares that policy against an always-L3 policy for L1-resident
operands: computing where the data already lives saves the writebacks,
invalidations, and higher per-block L3 operation energies.
"""

from repro import ComputeCacheMachine, cc_ops
from repro.params import sandybridge_8core


def _run(policy_level):
    m = ComputeCacheMachine(sandybridge_8core())
    size = 2048
    a, b, c = m.arena.alloc_colocated(size, 3)
    m.load(a, b"\x55" * size)
    m.load(b, b"\x0f" * size)
    for addr in (a, b, c):
        m.touch_range(addr, size, for_write=(addr == c))
    snap = m.snapshot_energy()
    res = m.cc(cc_ops.cc_and(a, b, c, size), force_level=policy_level)
    return res, m.energy_since(snap)


def test_highest_level_policy_beats_always_l3(benchmark):
    def measure():
        res_l1, energy_l1 = _run(None and "L1" or "L1")
        res_l3, energy_l3 = _run("L3")
        return res_l1, energy_l1, res_l3, energy_l3

    res_l1, energy_l1, res_l3, energy_l3 = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert res_l1.level == "L1"
    assert res_l3.level == "L3"
    # Computing where the data lives is cheaper on both axes.
    assert energy_l1.total() < energy_l3.total()
    assert res_l1.fetch_cycles <= res_l3.fetch_cycles
    benchmark.extra_info["l1_nj"] = round(energy_l1.total() / 1000, 1)
    benchmark.extra_info["l3_nj"] = round(energy_l3.total() / 1000, 1)


def test_default_policy_matches_residency(benchmark):
    """The default (no force_level) selects L1 for L1-resident operands
    and L3 for uncached ones."""

    def measure():
        m = ComputeCacheMachine(sandybridge_8core())
        a, b, c = m.arena.alloc_colocated(512, 3)
        m.load(a, bytes(512))
        m.load(b, bytes(512))
        cold = m.cc(cc_ops.cc_and(a, b, c, 512))
        for addr in (a, b, c):
            m.touch_range(addr, 512, for_write=True)
        warm = m.cc(cc_ops.cc_and(a, b, c, 512))
        return cold.level, warm.level

    cold_level, warm_level = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert cold_level == "L3"
    assert warm_level == "L1"
