"""Figure 3 (top): dynamic-energy proportions for a bulk compare.

Shape: a scalar core burns ~3/4 of its energy on instruction processing;
SIMD reduces the instruction share but not data movement; a Compute Cache
reduces both, with the (small) remaining energy dominated by the in-place
operations themselves.
"""

from repro.bench.microbench import figure3_energy_proportions
from repro.bench.report import render_table


def test_figure3(benchmark):
    result = benchmark.pedantic(figure3_energy_proportions, rounds=1, iterations=1)
    rows = [
        {"config": cfg, **{k: v for k, v in d.items()}} for cfg, d in result.items()
    ]
    print("\n" + render_table(rows, "Figure 3: bulk-compare energy proportions"))

    # Scalar: ~three quarters instruction processing (paper: "nearly three
    # quarters ... in the core").
    assert result["scalar"]["core_fraction"] > 0.65
    # SIMD cuts the core share but data movement remains.
    assert result["base32"]["core_fraction"] < result["scalar"]["core_fraction"]
    assert result["base32"]["total_nj"] < result["scalar"]["total_nj"]
    # CC: instruction processing all but vanishes and total collapses.
    assert result["cc"]["core_fraction"] < 0.2
    assert result["cc"]["total_nj"] < result["base32"]["total_nj"] / 5
    benchmark.extra_info["proportions"] = {
        cfg: {k: round(v, 3) for k, v in d.items()} for cfg, d in result.items()
    }
