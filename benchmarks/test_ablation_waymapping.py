"""Ablation: way-mapping vs parallel tag-data access (Section IV-C).

The paper's design maps all ways of a set into one block partition, which
forgoes the L1 parallel tag-data read optimization.  The trade-off it
cites: parallel tag-data costs 4.7x higher read energy per L1 access for a
~2.5% performance gain - a worthwhile sacrifice given L1 Compute Cache
benefits.  This bench reproduces both sides of that trade.
"""

from repro.bench.microbench import run_kernel
from repro.energy.tables import read_energy
from repro.params import sandybridge_8core


def parallel_tag_data_read_energy(ways: int = 8) -> float:
    """Parallel tag-data access reads all ways' data with the tag match:
    energy approaches ways x the data-array portion plus one H-tree
    transfer - 4-5x a serial-access read for an 8-way L1."""
    serial = read_energy("L1-D")
    from repro.energy.tables import CACHE_ACCESS_ENERGY_PJ, CACHE_IC_ENERGY_PJ

    return ways * CACHE_ACCESS_ENERGY_PJ["L1-D"] + CACHE_IC_ENERGY_PJ["L1-D"] + (
        serial - CACHE_ACCESS_ENERGY_PJ["L1-D"] - CACHE_IC_ENERGY_PJ["L1-D"]
    )


def test_parallel_tag_data_energy_penalty(benchmark):
    penalty = benchmark.pedantic(
        lambda: parallel_tag_data_read_energy() / read_energy("L1-D"),
        rounds=1, iterations=1,
    )
    # Paper: "4.7x higher energy per access for L1".
    assert 3.0 < penalty < 6.0
    benchmark.extra_info["energy_penalty"] = round(penalty, 2)


def test_waymapping_gain_dwarfs_foregone_optimization(benchmark):
    """The L1 Compute Cache saves far more than the ~2.5% performance the
    parallel tag-data optimization would have bought."""

    def measure():
        base = run_kernel("logical", "base32", level="L1")
        cc = run_kernel("logical", "cc", level="L1")
        return base.dynamic.total() / cc.dynamic.total()

    saving = benchmark.pedantic(measure, rounds=1, iterations=1)
    foregone_speedup = 1.025  # the paper's 2.5% for SPLASH-2
    assert saving > 5.0  # L1 CC saves >5x dynamic energy
    assert saving > foregone_speedup * 4
    benchmark.extra_info["l1_cc_energy_gain"] = round(saving, 2)


def test_way_choice_never_breaks_locality(benchmark):
    """Because ways map into the set's partition, locality cannot depend on
    which way replacement picked - exercised by filling a set across many
    ways and computing in place each time."""
    from repro import ComputeCacheMachine, cc_ops

    def run():
        m = ComputeCacheMachine(sandybridge_8core())
        size = 1024
        inplace = 0
        for trial in range(6):
            a, b, c = m.arena.alloc_colocated(size, 3)
            m.load(a, bytes([trial]) * size)
            m.load(b, bytes([trial + 1]) * size)
            res = m.cc(cc_ops.cc_and(a, b, c, size))
            inplace += res.inplace_ops
            assert res.nearplace_ops == 0
        return inplace

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 6 * 16
