"""Ablation: ECC strategies for in-place logical operations (Section IV-I).

Compares the XOR-readout check (extra transfers to the ECC logic unit on
*every* logical operation) against idle-cycle scrubbing (amortized over the
soft-error rate of 0.7-7 errors/year).  The paper prefers scrubbing; this
bench quantifies why.
"""

import numpy as np

from repro.bitops import bytes_xor
from repro.core.ecc import CacheScrubber, EccCodec, EccPolicy
from repro.energy.tables import read_energy, write_energy

OPS_PER_SECOND = 1e6  # a modest CC workload
SOFT_ERRORS_PER_YEAR = 7  # the paper's upper bound
SECONDS_PER_YEAR = 3600 * 24 * 365


def xor_check_energy_per_op() -> float:
    """The XOR scheme reads the xor result out to the ECC unit and writes
    the result's ECC back: ~1 extra read + 1 extra write per logical op."""
    return read_energy("L3-slice") + write_energy("L3-slice")


def scrub_energy_per_op(scrub_interval_s: float = 60.0,
                        blocks_scrubbed: int = 32768) -> float:
    """Scrubbing reads every protected block once per interval; amortized
    per CC operation it is orders of magnitude cheaper."""
    scrub_energy = blocks_scrubbed * read_energy("L3-slice")
    ops_per_interval = OPS_PER_SECOND * scrub_interval_s
    return scrub_energy / ops_per_interval


def test_scrubbing_beats_xor_check(benchmark):
    def measure():
        return xor_check_energy_per_op(), scrub_energy_per_op()

    xor_cost, scrub_cost = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert scrub_cost < xor_cost / 100
    benchmark.extra_info["xor_pj_per_op"] = round(xor_cost, 1)
    benchmark.extra_info["scrub_pj_per_op"] = round(scrub_cost, 3)


def test_both_schemes_catch_injected_errors(benchmark):
    """Functional ablation: each scheme must detect a single-bit flip in a
    logical operand; scrubbing must also *correct* it."""
    rng = np.random.default_rng(99)

    def run():
        codec = EccCodec(EccPolicy.XOR_CHECK)
        detections = 0
        for _ in range(20):
            a = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
            b = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
            ea, eb = codec.encode_block(a), codec.encode_block(b)
            struck = bytearray(a)
            struck[rng.integers(0, 64)] ^= 1 << rng.integers(0, 8)
            struck = bytes(struck)
            if struck == a:
                continue
            try:
                codec.xor_check(bytes_xor(struck, b), ea, eb)
            except Exception:
                detections += 1
        scrubber = CacheScrubber(EccCodec(EccPolicy.SCRUB))
        corrected = 0
        for addr in range(0, 20 * 64, 64):
            data = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
            scrubber.protect(addr, data)
            struck = bytearray(data)
            struck[3] ^= 0x10
            fixed = scrubber.scrub({addr: bytes(struck)})
            if fixed[addr] == data:
                corrected += 1
        return detections, corrected

    detections, corrected = benchmark.pedantic(run, rounds=1, iterations=1)
    assert detections == 20
    assert corrected == 20


def test_soft_error_rate_makes_scrubbing_sufficient(benchmark):
    """At 0.7-7 errors/year, the expected errors between minute-granularity
    scrubs is vanishingly small - the paper's argument for scrubbing."""
    expected_errors_per_scrub = benchmark.pedantic(
        lambda: SOFT_ERRORS_PER_YEAR * (60.0 / SECONDS_PER_YEAR),
        rounds=1, iterations=1,
    )
    assert expected_errors_per_scrub < 1e-4
