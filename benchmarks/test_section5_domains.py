"""Section V's additional application domains, quantified.

The paper's Section V argues Compute Caches accelerate OS bulk copying
(fork/IPC/filesystem, "more than 50% of OS time"), bulk zeroing, and
CAM-style network processing.  The evaluation section does not include
these; this bench measures them with the same machinery as Figures 7-11.
"""

from repro import ComputeCacheMachine
from repro.apps import os_copy, packet_filter
from repro.bench.report import render_table
from repro.params import sandybridge_8core


def test_os_copy_services(benchmark):
    workload = os_copy.make_syscall_trace(seed=71, n_events=20)

    def run():
        base = os_copy.run_os_copy(workload, "base32",
                                   ComputeCacheMachine(sandybridge_8core()))
        cc = os_copy.run_os_copy(workload, "cc",
                                 ComputeCacheMachine(sandybridge_8core()))
        return base, cc

    base, cc = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"engine": r.variant, "cycles": r.cycles,
         "instructions": r.instructions, "dynamic nJ": r.energy_nj}
        for r in (base, cc)
    ]
    print("\n" + render_table(
        rows, f"OS copy services ({workload.total_bytes // 1024} KB syscall trace)"
    ))
    speedup = base.cycles / cc.cycles
    assert speedup > 3.0  # kernel copies are cc_copy's best case
    assert cc.energy_nj < base.energy_nj / 2
    benchmark.extra_info["speedup"] = round(speedup, 1)


def test_copy_bandwidth(benchmark):
    def run():
        return {
            "base32": os_copy.copy_bandwidth("base32"),
            "cc": os_copy.copy_bandwidth("cc"),
        }

    bw = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"engine": k, "bytes/cycle": v} for k, v in bw.items()]
    print("\n" + render_table(rows, "Sustained 64 KB copy bandwidth"))
    assert bw["cc"] > 4 * bw["base32"]
    benchmark.extra_info["bandwidth_ratio"] = round(bw["cc"] / bw["base32"], 1)


def test_packet_classification(benchmark):
    workload = packet_filter.make_workload(seed=72, n_packets=512, n_rules=4)

    def run():
        base = packet_filter.run_packet_filter(
            workload, "baseline", ComputeCacheMachine(sandybridge_8core()))
        cc = packet_filter.run_packet_filter(
            workload, "cc", ComputeCacheMachine(sandybridge_8core()))
        return base, cc

    base, cc = benchmark.pedantic(run, rounds=1, iterations=1)
    assert base.output == cc.output  # identical verdicts
    rows = [
        {"engine": r.variant, "cycles": r.cycles,
         "instructions": r.instructions,
         "cycles/packet": r.cycles / len(workload.headers)}
        for r in (base, cc)
    ]
    print("\n" + render_table(rows, "Packet classification (512 packets, 4 rules)"))
    assert cc.cycles < base.cycles
    assert cc.instructions < base.instructions / 4
    benchmark.extra_info["speedup"] = round(base.cycles / cc.cycles, 2)
