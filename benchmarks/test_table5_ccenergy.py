"""Table V: per-block energy of CC operations + Section VI-C delay model.

Shape: every in-place CC operation costs less than the read(s)+write a
baseline would need for the same effect, at every cache level; and the
relative delay/energy multipliers follow Section VI-C (logic 3x delay,
cmp/search/clmul 1.5x energy, copy/buz/not 2x, logic 2.5x).
"""

from repro.bench.microbench import table5_rows
from repro.bench.report import render_table
from repro.sram.timing import DELAY_MULTIPLIER, ENERGY_MULTIPLIER, SubarrayTiming


def test_table5(benchmark):
    rows = benchmark.pedantic(table5_rows, rounds=1, iterations=1)
    print("\n" + render_table(rows, "Table V: cache energy (pJ) per 64-byte block"))

    by_cache = {r["cache"]: r for r in rows}
    l3 = by_cache["L3-slice"]
    assert (l3["write"], l3["read"]) == (2852.0, 2452.0)
    assert (l3["cmp"], l3["copy"], l3["search"]) == (840.0, 1340.0, 3692.0)
    l1 = by_cache["L1-D"]
    assert (l1["write"], l1["read"], l1["logic"]) == (375.0, 295.0, 387.0)

    for row in rows:
        # An in-place compare is cheaper than even one conventional read.
        assert row["cmp"] < row["read"]
        # Copy beats the read+write it replaces.
        assert row["copy"] < row["read"] + row["write"]
        # Logic ops beat the two reads + one write they replace.
        assert row["logic"] < 2 * row["read"] + row["write"]
        # Search = compare + one key-replication write (amortizable).
        assert row["search"] == row["cmp"] + row["write"]
    benchmark.extra_info["rows"] = rows


def test_section6c_delay_energy_multipliers(benchmark):
    def check():
        t = SubarrayTiming(access_delay_cycles=1.0, access_energy_pj=1.0)
        return {
            "delay": {op: t.op_delay(op) for op in DELAY_MULTIPLIER},
            "energy": {op: t.op_energy(op) for op in ENERGY_MULTIPLIER},
        }

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    # "A and/or/xor 64-byte in-place operation is 3x longer ... rest 2x."
    for op in ("and", "or", "xor"):
        assert result["delay"][op] == 3.0
    for op in ("copy", "buz", "cmp", "search", "clmul", "not"):
        assert result["delay"][op] == 2.0
    # "cmp/search/clmul are 1.5x, copy/buz/not are 2x, the rest 2.5x."
    for op in ("cmp", "search", "clmul"):
        assert result["energy"][op] == 1.5
    for op in ("copy", "buz", "not"):
        assert result["energy"][op] == 2.0
    for op in ("and", "or", "xor"):
        assert result["energy"][op] == 2.5
