"""Shared fixtures for the table/figure regeneration benchmarks.

Heavy simulations run once per session (module-scoped fixtures) and are
shared by the tests that assert different aspects of the same exhibit.
Every benchmark prints the regenerated rows - run with ``-s`` to see the
paper-shaped tables.
"""

from __future__ import annotations

import pytest


def one_shot(benchmark, fn, *args, **kwargs):
    """Run an expensive simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def figure7_results():
    from repro.bench import microbench

    return microbench.figure7()


@pytest.fixture(scope="session")
def figure9_results():
    from repro.bench import appbench

    return {
        "wordcount": appbench.bench_wordcount(n_words=6000, vocab_size=8000),
        "stringmatch": appbench.bench_stringmatch(n_words=2048),
        "bmm": appbench.bench_bmm(n=256),
        "db-bitmap": appbench.bench_bitmap(n_rows=1 << 16, n_queries=6),
    }


@pytest.fixture(scope="session")
def qdnn_comparison():
    from repro.bench import appbench

    return appbench.bench_qdnn()


@pytest.fixture(scope="session")
def checkpoint_comparisons():
    from repro.bench.checkpointbench import BENCHMARKS, run_benchmark

    return {name: run_benchmark(name, intervals=2) for name in BENCHMARKS}
