"""Table III: cache geometry and the operand-locality constraint.

Shape: L1-D/L2/L3 need 8/10/12 matching low address bits, all within the
12 bits a 4 KB page fixes - so page-aligned operands always satisfy
operand locality, the paper's central software contract.
"""

from repro.bench.microbench import table3_rows
from repro.bench.report import render_table
from repro.cache.locality import partitions_match
from repro.params import PAGE_SIZE, sandybridge_8core


def test_table3(benchmark):
    rows = benchmark.pedantic(table3_rows, rounds=1, iterations=1)
    print("\n" + render_table(rows, "Table III: geometry and operand locality"))

    expected = {
        "L1-D": (2, 2, 8),
        "L2": (8, 2, 10),
        "L3-slice": (16, 4, 12),
    }
    for row in rows:
        banks, bps, bits = expected[row["cache"]]
        assert row["banks"] == banks
        assert row["BP"] == bps
        assert row["min address bits match"] == bits
        assert row["block size"] == 64
    benchmark.extra_info["rows"] = rows


def test_page_alignment_implies_locality_everywhere(benchmark):
    """End-to-end check of the constraint on live geometry decoding."""

    def check():
        cfg = sandybridge_8core()
        hits = 0
        for level in (cfg.l1d, cfg.l2, cfg.l3_slice):
            for offset in range(0, PAGE_SIZE, 64):
                a = 17 * PAGE_SIZE + offset
                b = 523 * PAGE_SIZE + offset
                assert partitions_match(a, b, level)
                hits += 1
        return hits

    assert benchmark.pedantic(check, rounds=1, iterations=1) == 3 * 64
