"""Multi-core scaling of Compute Cache work (beyond the paper's figures).

The paper's machine has 8 cores but its evaluation is single-threaded; this
bench maps the obvious question: data-parallel CC work sharded across
cores, contending only for the shared ring/L3. Each core ORs its own pair
of bins into its own result (the DB-BitMap inner loop), so speedup should
be near-linear; a serial run of the same total work is the baseline.
"""

import numpy as np

from repro import ComputeCacheMachine, cc_ops
from repro.bench.report import render_table
from repro.cpu.multicore import MulticoreRunner
from repro.cpu.program import Instr, Program
from repro.params import sandybridge_8core

SHARD_BYTES = 4096
SHARDS_PER_CORE = 4


def _build(machine, cores):
    rng = np.random.default_rng(7)
    programs = {}
    checks = []
    for core in range(cores):
        prog = Program(f"shard-{core}")
        for _ in range(SHARDS_PER_CORE):
            a, b, c = machine.arena.alloc_colocated(SHARD_BYTES, 3)
            da = rng.integers(0, 256, SHARD_BYTES, dtype=np.uint8).tobytes()
            db = rng.integers(0, 256, SHARD_BYTES, dtype=np.uint8).tobytes()
            machine.load(a, da)
            machine.load(b, db)
            prog.append(Instr.cc_op(cc_ops.cc_or(a, b, c, SHARD_BYTES)))
            expected = (np.frombuffer(da, np.uint8) | np.frombuffer(db, np.uint8)).tobytes()
            checks.append((c, expected))
        programs[core] = prog
    return programs, checks


def _run_with_cores(cores: int) -> float:
    machine = ComputeCacheMachine(sandybridge_8core())
    programs, checks = _build(machine, cores)
    result = MulticoreRunner(machine, chunk=2).run(programs)
    for c, expected in checks:
        assert machine.peek(c, SHARD_BYTES) == expected
    return result.makespan


def test_multicore_cc_scaling(benchmark):
    def sweep():
        serial_machine = ComputeCacheMachine(sandybridge_8core())
        programs, checks = _build(serial_machine, 4)
        serial = 0.0
        for core, prog in programs.items():
            serial += serial_machine.run(prog, core=0).cycles
        for c, expected in checks:
            assert serial_machine.peek(c, SHARD_BYTES) == expected
        return {
            "serial_1core": serial,
            "parallel_2core": _run_with_cores(2) * 2,  # same total work
            "parallel_4core": _run_with_cores(4),
        }

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [{"configuration": k, "cycles (4-core workload)": v}
            for k, v in result.items()]
    print("\n" + render_table(rows, "Multi-core CC scaling (16 x 4 KB ORs)"))
    # Four cores beat one on the same total work.
    speedup = result["serial_1core"] / result["parallel_4core"]
    assert speedup > 2.0
    benchmark.extra_info["speedup_4core"] = round(speedup, 2)
