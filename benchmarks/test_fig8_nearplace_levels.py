"""Figure 8 (a): in-place vs near-place; (b): savings by compute level.

Paper shape:

* (a) in-place beats near-place on total energy (3.6x avg) and throughput
  (16x avg) for 4 KB operands - near-place serializes through the single
  per-controller logic unit and pays H-tree transfers;
* near-place still beats the Base_32 baseline (it avoids moving data into
  higher levels and the core);
* (b) absolute dynamic-energy savings grow toward lower cache levels
  (bigger sub-arrays, bigger H-trees), while computing in L1/L2 still
  saves significantly vs their own baselines.
"""

from repro.bench.microbench import (
    KERNELS,
    figure8a_inplace_vs_nearplace,
    figure8b_levels,
    run_kernel,
)


def test_figure8a_inplace_beats_nearplace(benchmark):
    results = benchmark.pedantic(figure8a_inplace_vs_nearplace, rounds=1, iterations=1)
    energy_ratios, speed_ratios = [], []
    for kernel in KERNELS:
        ip = results[kernel]["inplace"]
        near = results[kernel]["nearplace"]
        energy_ratios.append(near.total_energy_nj / ip.total_energy_nj)
        speed_ratios.append(near.steady_cycles / ip.steady_cycles)
        assert near.total_energy_nj > ip.total_energy_nj
        assert near.steady_cycles > ip.steady_cycles
    # Paper: 3.6x total energy, 16x throughput on average.
    assert sum(energy_ratios) / len(energy_ratios) > 2.5
    assert sum(speed_ratios) / len(speed_ratios) > 8.0
    benchmark.extra_info["energy_ratios"] = [round(r, 2) for r in energy_ratios]
    benchmark.extra_info["speed_ratios"] = [round(r, 2) for r in speed_ratios]


def test_nearplace_still_beats_baseline(benchmark):
    """Near-place retains the avoid-the-upper-levels benefit (IV-J)."""
    base = benchmark.pedantic(run_kernel, args=("logical", "base32"), rounds=1, iterations=1)
    near = run_kernel("logical", "cc_near")
    assert near.dynamic.total() < base.dynamic.total()


def test_figure8b_levels(benchmark):
    results = benchmark.pedantic(figure8b_levels, rounds=1, iterations=1)
    for kernel in KERNELS:
        by_level = results[kernel]
        # Every level shows positive savings vs its own Base_32.
        for level in ("L1", "L2", "L3"):
            assert by_level[level]["total_savings_pj"] > 0
        # Absolute savings are largest when operands sit in L3 (paper:
        # "the absolute savings are higher when operands are in
        # lower-level caches").
        assert (
            by_level["L3"]["total_savings_pj"]
            > by_level["L2"]["total_savings_pj"]
            > 0
        )
        assert (
            by_level["L3"]["total_savings_pj"] > by_level["L1"]["total_savings_pj"]
        )
        # L1-resident CC saves a very large fraction (paper: 95%).
        assert by_level["L1"]["savings_fraction"] > 0.85
    benchmark.extra_info["fractions"] = {
        k: {lvl: round(results[k][lvl]["savings_fraction"], 3)
            for lvl in ("L1", "L2", "L3")}
        for k in KERNELS
    }
