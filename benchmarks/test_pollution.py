"""Cache-pollution co-run: the paper's 'CC relegates work to the cache'
claim (Section VI-E), measured.

"CC successfully relegates checkpointing to cache, avoids data pollution of
higher level caches and relieves the processor of any checkpointing
overhead."  Experiment: core 0 owns a hot working set that fits L1; a bulk
copy job then runs on the same core, either through the core (Base_32
loads/stores allocate every copied block into L1/L2, evicting the working
set) or as one cc_copy at L3 (private caches untouched).  We measure the
victim working set's re-access time and its surviving L1 residency.
"""

import numpy as np

from repro import ComputeCacheMachine, cc_ops
from repro.bench.report import render_table
from repro.cpu.program import Instr, Program
from repro.cpu.simd import simd_copy
from repro.params import sandybridge_8core

HOT_BYTES = 16 * 1024   # half of L1
COPY_BYTES = 16 * 1024  # enough to trash L1 if it flows through the core


def _setup():
    m = ComputeCacheMachine(sandybridge_8core())
    rng = np.random.default_rng(55)
    hot = m.arena.alloc_page_aligned(HOT_BYTES)
    m.load(hot, rng.integers(0, 256, HOT_BYTES, dtype=np.uint8).tobytes())
    src, dst = m.arena.alloc_colocated(COPY_BYTES, 2)
    m.load(src, rng.integers(0, 256, COPY_BYTES, dtype=np.uint8).tobytes())
    m.touch_range(hot, HOT_BYTES)  # working set hot in L1
    return m, hot, src, dst


def _touch_program(hot: int) -> Program:
    prog = Program("rescan")
    for off in range(0, HOT_BYTES, 64):
        prog.append(Instr.load(hot + off, 8))
    return prog


def _l1_residency(m, hot: int) -> float:
    resident = sum(
        1 for off in range(0, HOT_BYTES, 64)
        if m.hierarchy.l1[0].contains(hot + off)
    )
    return resident / (HOT_BYTES // 64)


def measure(engine: str) -> dict[str, float]:
    m, hot, src, dst = _setup()
    if engine == "base32":
        for off in range(0, COPY_BYTES, 4096):
            m.run(simd_copy(src + off, dst + off, 4096))
    else:
        for off in range(0, COPY_BYTES, 4096):
            m.cc(cc_ops.cc_copy(src + off, dst + off, 4096))
    assert m.peek(dst, COPY_BYTES) == m.peek(src, COPY_BYTES)
    residency = _l1_residency(m, hot)
    rescan = m.run(_touch_program(hot))
    return {
        "engine": engine,
        "hot-set L1 residency after copy": residency,
        "hot-set rescan cycles": rescan.cycles,
    }


def test_cc_copy_does_not_pollute_private_caches(benchmark):
    def run():
        return [measure("base32"), measure("cc")]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + render_table(
        rows, "Pollution co-run: 16 KB hot set vs 16 KB copy job"
    ))
    base, cc = rows
    # The core-mediated copy evicts most of the hot set; cc_copy leaves it.
    assert cc["hot-set L1 residency after copy"] > 0.9
    assert base["hot-set L1 residency after copy"] < 0.5
    # ...and the victim pays for it on its next scan.
    assert base["hot-set rescan cycles"] > 1.5 * cc["hot-set rescan cycles"]
    benchmark.extra_info["residency"] = {
        r["engine"]: round(r["hot-set L1 residency after copy"], 3) for r in rows
    }
