"""Figure 9 (a): application total-energy savings; (b): speedups.

Paper: WordCount 2.0x, StringMatch 1.5x, BMM 3.2x, DB-BitMap 1.6x speedup;
average total-energy savings 2.7x; instruction reductions 87/32/98/43 %.

Shape asserted here: every application speeds up and its outputs are
bit-exact against the baseline; BMM gains the most (its 98% instruction
reduction); instruction reductions are substantial for all four; the mean
total-energy ratio is well above 1.  WordCount's margins are the thinnest
(its per-word key replication cannot amortize), mirroring its position in
the paper relative to BMM.
"""

from repro.bench.report import render_figure9


def test_figure9_speedups(benchmark, figure9_results):
    comp = figure9_results
    print("\n" + render_figure9(comp))

    def speedups():
        return {app: c.speedup for app, c in comp.items()}

    result = benchmark.pedantic(speedups, rounds=1, iterations=1)
    for app, speed in result.items():
        assert speed > 1.0, f"{app} did not speed up: {speed:.2f}x"
    # BMM gains the most (paper: 3.2x, the top bar of Figure 9(b)).
    assert result["bmm"] == max(result.values())
    assert result["bmm"] > 2.5
    benchmark.extra_info["speedups"] = {a: round(s, 2) for a, s in result.items()}


def test_figure9_outputs_exact(benchmark, figure9_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for app, comp in figure9_results.items():
        assert comp.outputs_match, f"{app}: CC output diverged from baseline"


def test_figure9_instruction_reductions(benchmark, figure9_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Paper: 87% (WordCount), 32% (StringMatch), 98% (BMM), 43% (bitmap)."""
    red = {a: c.instruction_reduction for a, c in figure9_results.items()}
    assert red["bmm"] > 0.95
    assert red["wordcount"] > 0.6
    assert red["stringmatch"] > 0.25
    assert red["db-bitmap"] > 0.35
    assert red["bmm"] == max(red.values())


def test_figure9_total_energy(benchmark, figure9_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Paper: average total-energy savings 2.7x across the applications."""
    ratios = {a: c.total_energy_ratio for a, c in figure9_results.items()}
    mean = sum(ratios.values()) / len(ratios)
    assert mean > 1.5
    assert ratios["bmm"] > 2.0
    # No application pays more than a small penalty in the worst case.
    assert min(ratios.values()) > 0.8
