"""Figure 7 (a, b, c): 4 KB micro-benchmarks, Base_32 vs CC_L3.

Paper shape to reproduce:

* (a) CC_L3 beats Base_32 on throughput for every kernel (paper mean 54x;
  our conservative pipeline model lands lower but well above an order of
  magnitude on the strongest kernels - see EXPERIMENTS.md);
* (b) dynamic-energy savings per kernel near 90/89/71/92 %, with *search*
  the weakest (key-replication writes);
* (c) total energy (static + dynamic) collapses because runtime shrinks;
* baseline search is the fastest baseline kernel (one miss for the key).
"""

import pytest

from repro.bench.microbench import KERNELS, figure7_summary
from repro.bench.report import render_figure7


def test_figure7_throughput(benchmark, figure7_results):
    summary = benchmark.pedantic(
        figure7_summary, args=(figure7_results,), rounds=1, iterations=1
    )
    print("\n" + render_figure7(figure7_results))
    # Every kernel gains; the mean gain is an order of magnitude or more.
    assert summary["min_throughput_gain"] > 5.0
    assert summary["mean_throughput_gain"] > 10.0
    benchmark.extra_info["summary"] = {k: round(v, 2) for k, v in summary.items()}


def test_figure7_dynamic_energy(benchmark, figure7_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    savings = {}
    for kernel in KERNELS:
        base = figure7_results[kernel]["base32"].dynamic.total()
        cc = figure7_results[kernel]["cc"].dynamic.total()
        savings[kernel] = 1 - cc / base
    # Paper: 90% copy, 89% compare, 71% search, 92% logical.
    assert savings["copy"] > 0.80
    assert savings["compare"] > 0.80
    assert savings["logical"] > 0.80
    assert savings["search"] > 0.50
    # Search saves the least: key replication writes (Section VI-D).
    assert savings["search"] == min(savings.values())


def test_figure7_total_energy(benchmark, figure7_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Paper: 91% total-energy saving (~11x) averaged over the kernels."""
    ratios = [
        figure7_results[k]["base32"].total_energy_nj
        / figure7_results[k]["cc"].total_energy_nj
        for k in KERNELS
    ]
    assert min(ratios) > 3.0
    assert sum(ratios) / len(ratios) > 6.0


def test_figure7_component_elimination(benchmark, figure7_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """CC eliminates the NoC component entirely and nearly all H-tree."""
    for kernel in KERNELS:
        base = figure7_results[kernel]["base32"].dynamic
        cc = figure7_results[kernel]["cc"].dynamic
        assert cc.noc() < base.noc() / 10 + 1.0
        assert cc.cache_ic() < base.cache_ic()
        assert cc.core() < base.core() / 10


def test_figure7_baseline_search_fastest(benchmark, figure7_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Paper: 'for baseline, search achieves highest throughput' (one miss
    for the key, then only data misses)."""
    base_cycles = {k: figure7_results[k]["base32"].cycles for k in KERNELS}
    assert base_cycles["search"] == min(base_cycles.values())


def test_copy_decomposition_parallelism_and_latency(benchmark, figure7_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Section VI-D decomposes copy's gain into data parallelism (paper
    32x) and latency reduction (1.55x); both factors must exceed 1."""
    cc = figure7_results["copy"]["cc"]
    base = figure7_results["copy"]["base32"]
    # Parallelism: blocks processed concurrently vs serial baseline chunks.
    parallelism = base.cycles / cc.cycles
    latency_factor = cc.cycles / cc.steady_cycles
    assert parallelism > 8.0
    assert latency_factor >= 1.0
    assert parallelism * latency_factor == pytest.approx(
        base.cycles / cc.steady_cycles
    )
