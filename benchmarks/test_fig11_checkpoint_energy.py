"""Figure 11: total energy with and without checkpointing.

Paper shape: checkpointing adds visible energy over ``no_chkpt`` for the
scalar and SIMD engines; the CC engine's bar is nearly indistinguishable
from not checkpointing at all.
"""

from repro.bench.report import render_figure11


def _energies(checkpoint_comparisons):
    return {
        name: {
            "no_chkpt": comp.total_energy_nj("none"),
            "base": comp.total_energy_nj("base"),
            "base32": comp.total_energy_nj("base32"),
            "cc": comp.total_energy_nj("cc"),
        }
        for name, comp in checkpoint_comparisons.items()
    }


def test_figure11(benchmark, checkpoint_comparisons):
    energies = benchmark.pedantic(
        _energies, args=(checkpoint_comparisons,), rounds=1, iterations=1
    )
    print("\n" + render_figure11(energies))

    for name, e in energies.items():
        # Checkpointing always costs something.
        assert e["base"] > e["no_chkpt"], name
        assert e["base32"] > e["no_chkpt"], name
        assert e["cc"] > e["no_chkpt"], name
        # Engine ordering matches Figure 11: Base > Base_32 > CC.
        assert e["base"] > e["base32"] > e["cc"], name
        # The CC bar sits close to no_chkpt (paper: nearly free).
        cc_premium = (e["cc"] - e["no_chkpt"]) / e["no_chkpt"]
        base_premium = (e["base"] - e["no_chkpt"]) / e["no_chkpt"]
        assert cc_premium < 0.25, (name, cc_premium)
        assert cc_premium < base_premium / 2.5, name
    benchmark.extra_info["energies"] = {
        b: {k: round(v, 1) for k, v in e.items()} for b, e in energies.items()
    }
