"""Design-space sweeps around the paper's 4 KB / Table IV operating point."""

from repro.bench.report import render_table
from repro.bench.sweeps import (
    noc_distance_sweep,
    operand_size_sweep,
    partition_parallelism_sweep,
    wordline_activation_sweep,
)


def test_operand_size_sweep(benchmark):
    rows = benchmark.pedantic(operand_size_sweep, rounds=1, iterations=1)
    print("\n" + render_table(rows, "Sweep: CC gain vs operand size (logical)"))
    by_size = {r["size"]: r for r in rows}
    # The advantage grows with operand size (more block-level parallelism
    # per instruction, amortized overheads).
    assert by_size[4096]["throughput_gain"] > by_size[256]["throughput_gain"]
    assert by_size[16384]["dynamic_saving"] >= by_size[64]["dynamic_saving"]
    # Even a single block already saves dynamic energy.
    assert by_size[64]["dynamic_saving"] > 0.3
    benchmark.extra_info["gains"] = {
        r["size"]: round(r["throughput_gain"], 1) for r in rows
    }


def test_partition_parallelism_sweep(benchmark):
    rows = benchmark.pedantic(partition_parallelism_sweep, rounds=1, iterations=1)
    print("\n" + render_table(rows, "Sweep: in-place makespan vs partitions"))
    # More partitions -> shorter compute makespan (more concurrency).
    makespans = [r["cc_compute_cycles"] for r in rows]
    assert makespans == sorted(makespans, reverse=True)
    assert rows[-1]["partitions"] > rows[0]["partitions"]


def test_wordline_activation_sweep(benchmark):
    rows = benchmark.pedantic(wordline_activation_sweep, rounds=1, iterations=1)
    print("\n" + render_table(rows, "Sweep: multi-row activation correctness"))
    for row in rows[:-1]:
        assert row["algebra_exact"] is True
    # The 65th simultaneous word-line is rejected (circuit limit).
    assert rows[-1]["rejected"] is True


def test_noc_distance_sweep(benchmark):
    rows = benchmark.pedantic(noc_distance_sweep, rounds=1, iterations=1)
    print("\n" + render_table(rows, "Sweep: ring cost vs hop distance"))
    energies = [r["block_energy_pj"] for r in rows]
    latencies = [r["block_latency_cycles"] for r in rows]
    assert energies == sorted(energies)
    assert latencies == sorted(latencies)
    assert energies[0] == 0.0  # same-stop transfer: the cost CC avoids
