"""Area-overhead reproduction: the paper's 8% claim (Section VI-C).

"The area overhead is 8% for a sub-array of size 512 x 512" - reproduced
from a bit-cell-equivalent head-count of the added structures (second
decoder, single-ended sensing, XOR-reduction tree, copy control).
"""

from repro.bench.report import render_table
from repro.sram.area import cache_area_overhead, subarray_area, tree_depth


def test_512x512_overhead_is_8_percent(benchmark):
    area = benchmark.pedantic(subarray_area, args=(512, 512),
                              rounds=1, iterations=1)
    rows = [{"structure": k, "bit-cell units": v}
            for k, v in area.breakdown().items()]
    print("\n" + render_table(rows, "512x512 compute sub-array area"))
    print(f"compute overhead: {area.overhead_fraction:.1%} (paper: 8%)")
    assert 0.06 < area.overhead_fraction < 0.10


def test_overhead_grows_for_smaller_subarrays(benchmark):
    """The optimal L2 sub-array (128x512, footnote 2) pays relatively more
    periphery - why density-critical caches want large sub-arrays."""

    def sweep():
        return {rows: subarray_area(rows, 512).overhead_fraction
                for rows in (512, 256, 128)}

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert result[128] > result[256] > result[512]


def test_whole_cache_overhead_matches_config(benchmark):
    """The machine's configured 8% area overhead is consistent with the
    structural model for the L3's 512x512 sub-arrays."""
    from repro.params import sandybridge_8core

    overhead = benchmark.pedantic(cache_area_overhead, args=(512, 512, 64),
                                  rounds=1, iterations=1)
    cfg = sandybridge_8core()
    assert abs(overhead - cfg.cc.area_overhead_fraction) < 0.02


def test_reduction_tree_depth(benchmark):
    """clmul's XOR tree is log-depth: 6/7/8 XOR levels for 64/128/256-bit
    lanes - why the operation fits in the 2x access-delay budget."""
    depths = benchmark.pedantic(
        lambda: {lane: tree_depth(512, lane) for lane in (64, 128, 256)},
        rounds=1, iterations=1,
    )
    assert depths == {64: 6, 128: 7, 256: 8}
