"""Bulk zeroing (Section V's memory-safety primitive) - beyond the paper's
figures, quantifying the cc_buz claim on an allocation trace."""

from repro.apps.zeroing import make_allocation_trace, page_zero_cost, run_zeroing
from repro.bench.report import render_table


def test_zeroing_allocation_trace(benchmark):
    workload = make_allocation_trace(seed=41, n_regions=24, max_blocks=64)

    def run():
        return {v: run_zeroing(workload, v) for v in ("base", "base32", "cc")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "engine": v,
            "cycles": r.cycles,
            "instructions": r.instructions,
            "dynamic nJ": r.energy_nj,
        }
        for v, r in results.items()
    ]
    print("\n" + render_table(rows, "Bulk zeroing: "
                              f"{workload.total_bytes // 1024} KB trace"))
    base, base32, cc = results["base"], results["base32"], results["cc"]
    assert base.cycles > base32.cycles > cc.cycles
    assert cc.instructions < base32.instructions / 20
    assert cc.energy_nj < base32.energy_nj / 2
    benchmark.extra_info["speedup_vs_base32"] = round(base32.cycles / cc.cycles, 1)


def test_page_zero_cost(benchmark):
    """Zeroing one fresh 4 KB page (the fork/mmap fast path)."""

    def run():
        return {v: page_zero_cost(v) for v in ("base", "base32", "cc")}

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"engine": v, "cycles": c, "nJ": e} for v, (c, e) in costs.items()
    ]
    print("\n" + render_table(rows, "Zeroing one 4 KB page"))
    assert costs["cc"][0] < costs["base32"][0] < costs["base"][0]
    assert costs["cc"][1] < costs["base32"][1]
