"""Timing-model cross-validation: analytic controller formula vs a
discrete-event simulation of the command bus + sub-array occupancy."""

from repro.bench.crossval import round_robin_partitions, validate_schedule
from repro.bench.report import render_table


def test_analytic_vs_event_sim(benchmark):
    def sweep():
        rows = []
        for n_ops, n_parts, label in (
            (64, 64, "4 KB @ L3 (64 partitions)"),
            (128, 64, "8 KB @ L3"),
            (256, 64, "16 KB @ L3 (ISA max)"),
            (64, 4, "4 KB @ L1 (4 partitions)"),
            (64, 16, "4 KB @ L2-ish (16 partitions)"),
        ):
            parts = round_robin_partitions(n_ops, n_parts)
            result = validate_schedule(parts, op_latency=14)
            rows.append({
                "schedule": label,
                "event-sim cycles": result["event_makespan"],
                "analytic cycles": result["analytic_makespan"],
                "gap": result["gap"],
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + render_table(rows, "CC timing: event simulation vs closed form"))
    for row in rows:
        # Sound (never undershoots) and tight where partitions are plentiful.
        assert row["gap"] >= 0
        if "64 partitions" in str(row["schedule"]):
            assert row["gap"] <= 15
    benchmark.extra_info["gaps"] = {r["schedule"]: r["gap"] for r in rows}
