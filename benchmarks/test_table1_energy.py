"""Table I: cache energy per read access - H-tree vs data array.

Shape: the in-cache interconnect dominates read energy, growing from ~60%
at L1 to ~80% at the L3 slice; this is the energy only *in-place* (not
near-place) computation eliminates.
"""

from repro.bench.microbench import table1_rows
from repro.bench.report import render_table


def test_table1(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    print("\n" + render_table(rows, "Table I: cache energy per read access"))

    by_cache = {r["cache"]: r for r in rows}
    assert by_cache["L1-D"]["cache-ic (h-tree) pJ"] == 179.0
    assert by_cache["L2"]["cache-ic (h-tree) pJ"] == 675.0
    assert by_cache["L3-slice"]["cache-ic (h-tree) pJ"] == 1985.0
    assert by_cache["L3-slice"]["cache-access pJ"] == 467.0
    # The paper's claim: H-tree is ~80% of a 2 MB slice read.
    assert by_cache["L3-slice"]["h-tree fraction"] > 0.78
    assert by_cache["L1-D"]["h-tree fraction"] > 0.55
    # The fraction grows monotonically down the hierarchy.
    assert (
        by_cache["L1-D"]["h-tree fraction"]
        < by_cache["L2"]["h-tree fraction"]
        <= by_cache["L3-slice"]["h-tree fraction"] + 0.05
    )
    benchmark.extra_info["rows"] = rows
