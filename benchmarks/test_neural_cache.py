"""Neural Cache extension: quantized-DNN inference on the arithmetic tier.

Neural Cache (arXiv 1805.03718) reports latency-led wins for DNN layers
executed bit-serially inside cache sub-arrays, driven by massive
instruction reduction and amortized transpose costs, with exact
quantized outputs.

Shape asserted here: the CC variant beats the scalar loop nest on
latency at the full 32x32 benchmark plane; the instruction reduction is
near-total (tap-parallel convolution replaces the per-pixel loop nest);
the logits are bit-exact; and the energy premium of honest bit-serial
multiply accounting stays bounded (the win is latency-led, as the paper
reports for compute-bound layers).
"""

def test_qdnn_speedup_and_exact_outputs(benchmark, qdnn_comparison):
    comp = qdnn_comparison

    def headline():
        return comp.speedup

    speedup = benchmark.pedantic(headline, rounds=1, iterations=1)
    print(
        f"\nqdnn: speedup {comp.speedup:.2f}x  "
        f"instructions {comp.baseline.instructions} -> {comp.cc.instructions}  "
        f"energy ratio {comp.total_energy_ratio:.2f}x  "
        f"outputs match {comp.outputs_match}"
    )
    assert speedup > 1.5, f"qdnn did not speed up: {speedup:.2f}x"
    assert comp.outputs_match, "CC logits diverged from the numpy reference"
    benchmark.extra_info["speedup"] = round(speedup, 2)


def test_qdnn_instruction_reduction(benchmark, qdnn_comparison):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    red = qdnn_comparison.instruction_reduction
    assert red > 0.95, f"instruction reduction {red:.1%} below the paper's shape"


def test_qdnn_energy_bounded(benchmark, qdnn_comparison):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Bit-serial multiply is charged honestly (W^2+5W-2 steps per block
    # op), so unlike the logical-op kernels the win here is latency-led;
    # the model must not hide that cost, but the premium stays bounded.
    ratio = qdnn_comparison.total_energy_ratio
    assert ratio > 0.5, f"CC energy premium exceeds 2x: ratio {ratio:.2f}"
