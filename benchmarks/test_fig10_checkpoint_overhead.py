"""Figure 10: checkpointing performance overhead, 6 SPLASH-2 profiles.

Paper shape: without SIMD the overhead reaches ~68% (radix is the worst
case); Base_32 averages ~30%; Compute Caches collapse it to ~6% because
page copies are page-aligned (perfect operand locality), run in L3, and
never pollute L1/L2.
"""

from repro.bench.checkpointbench import ENGINES, summarize_overheads
from repro.bench.report import render_figure10


def _overheads(checkpoint_comparisons):
    return {
        name: {engine: comp.overhead(engine) for engine in ENGINES}
        for name, comp in checkpoint_comparisons.items()
    }


def test_figure10(benchmark, checkpoint_comparisons):
    overheads = benchmark.pedantic(
        _overheads, args=(checkpoint_comparisons,), rounds=1, iterations=1
    )
    print("\n" + render_figure10(overheads))
    summary = summarize_overheads(overheads)

    for name, per_engine in overheads.items():
        # Ordering per benchmark: Base > Base_32 > CC > 0.
        assert per_engine["base"] > per_engine["base32"] > per_engine["cc"] > 0, name
    # radix (bulk permutation) is the worst case, as in the paper.
    assert max(overheads, key=lambda b: overheads[b]["base"]) == "radix"
    # Scalar checkpointing can cost tens of percent (paper: up to 68%).
    assert summary["max_base"] > 0.30
    # CC relegates checkpointing to the cache: a few percent (paper: ~6%).
    assert summary["avg_cc"] < 0.10
    assert summary["max_cc"] < 0.15
    # SIMD helps but by far less than CC.
    assert summary["avg_base32"] > 2 * summary["avg_cc"]
    benchmark.extra_info["summary"] = {k: round(v, 4) for k, v in summary.items()}


def test_checkpoint_copies_bit_exact(benchmark, checkpoint_comparisons):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Every engine copied every dirty page exactly (asserted inside the
    run); the page counts must also agree across engines."""
    for name, comp in checkpoint_comparisons.items():
        pages = {e: comp.runs[e].pages_copied for e in ENGINES}
        assert len(set(pages.values())) == 1, (name, pages)


def test_cc_checkpoint_perfect_locality(benchmark, checkpoint_comparisons):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Page-aligned page copies always satisfy operand locality: zero
    near-place or RISC fallbacks across all benchmarks."""
    for comp in checkpoint_comparisons.values():
        run = comp.runs["cc"]
        assert run.copy_instructions > 0
