"""Ablation: search key-replication amortization (Section VI-D).

"Writes incurred due to key replication limit efficacy of search ... As
data size to be searched increases, key replication overheads will get
amortized."  This bench sweeps the searched-data size and shows the
energy-per-byte of CC search falling toward the pure-compare floor, and
the key table eliminating redundant replications within an instruction.
"""

from repro import ComputeCacheMachine, cc_ops
from repro.params import sandybridge_8core


def search_energy_per_byte(size: int) -> tuple[float, int]:
    m = ComputeCacheMachine(sandybridge_8core())
    data, key = m.arena.alloc_colocated(max(size, 4096), 2)
    m.load(data, b"\xAB" * size)
    m.load(key, b"\xCD" * 64)
    m.warm_l3(data, size)
    m.warm_l3(key, 64)
    snap = m.snapshot_energy()
    m.cc(cc_ops.cc_search(data, key, size))
    return (
        m.energy_since(snap).total() / size,
        m.controllers[0].stats.key_replications,
    )


def test_key_replication_amortizes_with_size(benchmark):
    def sweep():
        return {size: search_energy_per_byte(size) for size in (512, 1024, 2048, 4096)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    per_byte = {size: e for size, (e, _) in results.items()}
    # Larger searches cost less energy per byte (amortized key writes).
    assert per_byte[4096] < per_byte[512]
    assert per_byte[4096] < per_byte[1024]
    benchmark.extra_info["pj_per_byte"] = {s: round(e, 2) for s, e in per_byte.items()}


def test_key_table_caps_replications(benchmark):
    """Replications never exceed the number of distinct partitions the
    data occupies (64 for an L3 slice), regardless of data size."""

    def run():
        _, replications = search_energy_per_byte(4096)
        return replications

    replications = benchmark.pedantic(run, rounds=1, iterations=1)
    cfg = sandybridge_8core().l3_slice
    assert replications <= cfg.num_partitions
    assert replications == 4096 // 64  # one partition per block here


def test_repeated_search_same_instruction_free(benchmark):
    """Within one instruction the key table prevents re-replication; a
    second instruction (new key) must re-replicate - the paper's per-
    instruction tracking granularity."""

    def run():
        m = ComputeCacheMachine(sandybridge_8core())
        data, key = m.arena.alloc_colocated(4096, 2)
        m.load(data, b"\x11" * 4096)
        m.load(key, b"\x22" * 64)
        m.cc(cc_ops.cc_search(data, key, 4096))
        first = m.controllers[0].stats.key_replications
        m.cc(cc_ops.cc_search(data, key, 4096))
        second = m.controllers[0].stats.key_replications - first
        avoided = m.controllers[0].key_table.replications_avoided
        return first, second, avoided

    first, second, avoided = benchmark.pedantic(run, rounds=1, iterations=1)
    assert first == second  # a new instruction re-replicates
    assert avoided == 0
