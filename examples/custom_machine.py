#!/usr/bin/env python3
"""Building custom machines: geometry what-ifs and config round-trips.

Shows how to (1) define a non-default cache geometry, (2) see how the
operand-locality constraint and compute parallelism change with it,
(3) persist the configuration for reproducible experiments.

Run:  python examples/custom_machine.py
"""

import numpy as np

from repro.api import (
    CacheLevelConfig,
    ComputeCacheMachine,
    MachineConfig,
    RingConfig,
    cc_ops,
    config_from_json,
    config_to_json,
    sandybridge_8core,
)


def build_big_llc() -> MachineConfig:
    """A 4 MB slice with 32 banks: twice the partitions, wider parallelism,
    and a 13-bit locality constraint (needs 8 KB-aligned co-operands!)."""
    base = sandybridge_8core()
    return MachineConfig(
        cores=base.cores,
        l1d=base.l1d, l1i=base.l1i, l2=base.l2,
        l3_slice=CacheLevelConfig(
            name="L3-slice", size=4 * 1024 * 1024, ways=16,
            banks=32, bps_per_bank=4, hit_latency=13,
        ),
        l3_slices=8,
        ring=RingConfig(stops=8),
        memory_size=base.memory_size,
    )


def main() -> None:
    default = sandybridge_8core()
    big = build_big_llc()

    print("=== Geometry comparison ===")
    for name, cfg in (("Table IV", default), ("big-LLC what-if", big)):
        l3 = cfg.l3_slice
        print(f"{name:16s}: {l3.size // (1 << 20)} MB slice, "
              f"{l3.banks} banks x {l3.bps_per_bank} BP = "
              f"{l3.num_partitions} partitions, "
              f"min locality bits = {l3.min_locality_bits}")
    print("\nNote the portability rule (Section IV-C): a binary compiled "
          "for 12-bit alignment\nwould need recompilation for the 13-bit "
          "what-if machine.\n")

    print("=== Same 4 KB kernel on both machines ===")
    rng = np.random.default_rng(6)
    for name, cfg in (("Table IV", default), ("big-LLC what-if", big)):
        m = ComputeCacheMachine(cfg)
        align = 1 << cfg.l3_slice.min_locality_bits
        a = m.arena.alloc(4096, align=align)
        b = m.arena.alloc(4096, align=align)
        c = m.arena.alloc(4096, align=align)
        m.load(a, rng.integers(0, 256, 4096, dtype=np.uint8).tobytes())
        m.load(b, rng.integers(0, 256, 4096, dtype=np.uint8).tobytes())
        m.warm_l3(a, 4096)
        m.warm_l3(b, 4096)
        m.warm_l3(c, 4096)
        res = m.cc(cc_ops.cc_and(a, b, c, 4096))
        print(f"{name:16s}: {res.inplace_ops} in-place ops, "
              f"compute makespan {res.compute_cycles:.0f} cycles "
              f"(in-place: {res.used_inplace})")

    print("\n=== Config round trip ===")
    doc = config_to_json(big)
    rebuilt = config_from_json(doc)
    print(f"serialized {len(doc)} bytes of JSON; "
          f"round-trip equal: {rebuilt == big}")


if __name__ == "__main__":
    main()
