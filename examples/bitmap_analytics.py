#!/usr/bin/env python3
"""Bitmap-index query processing on a Compute Cache (DB-BitMap).

Builds a FastBit-style equality-encoded bitmap index over a synthetic
dataset (the paper used the STAR physics experiment's), then runs the same
range/join query mix through the Base_32 SIMD baseline and the cc_or/cc_and
Compute Cache path, verifying both against a numpy reference and comparing
cost.

Run:  python examples/bitmap_analytics.py
"""

import numpy as np

from repro.api import bitmap_db, fresh_machine


def main() -> None:
    print("Building synthetic dataset: 65,536 rows, two attributes "
          "(cardinalities 16 and 8)...")
    dataset = bitmap_db.make_dataset(seed=7, n_rows=1 << 16,
                                     cardinalities=(16, 8))
    queries = bitmap_db.make_query_mix(dataset, seed=8, n_queries=6)
    print(f"Index: {sum(dataset.cardinalities)} bins x "
          f"{dataset.bitmap_bytes // 1024} KB each\n")

    for q in queries:
        kind = "range" if q.and_attr is None else "range+join"
        print(f"  query: attr{q.attr} bins {q.bins[0]}..{q.bins[-1]} ({kind})")

    print("\nRunning Base_32 (32-byte SIMD OR/AND loops)...")
    base = bitmap_db.run_bitmap_queries(dataset, queries, "baseline",
                                        fresh_machine())
    print("Running Compute Cache (cc_or / cc_and on 2 KB chunks)...")
    cc = bitmap_db.run_bitmap_queries(dataset, queries, "cc", fresh_machine())

    refs = [bitmap_db.reference_query(dataset, q).tobytes() for q in queries]
    assert base.output == refs, "baseline diverged from numpy reference!"
    assert cc.output == refs, "CC diverged from numpy reference!"
    print("Both variants match the numpy reference bit-for-bit.\n")

    rows_hit = [
        int(np.unpackbits(np.frombuffer(r, dtype=np.uint8)).sum()) for r in refs
    ]
    print(f"Qualifying rows per query: {rows_hit}\n")

    print(f"{'':14s}{'cycles':>14s}{'instructions':>14s}{'dynamic nJ':>12s}")
    print(f"{'Base_32':14s}{base.cycles:>14,.0f}{base.instructions:>14,}"
          f"{base.energy_nj:>12,.1f}")
    print(f"{'Compute Cache':14s}{cc.cycles:>14,.0f}{cc.instructions:>14,}"
          f"{cc.energy_nj:>12,.1f}")
    print(f"\nSpeedup: {base.cycles / cc.cycles:.2f}x   "
          f"(paper reports 1.6x for DB-BitMap)")
    print(f"Instruction reduction: "
          f"{1 - cc.instructions / base.instructions:.0%}   (paper: 43%)")
    print(f"Dynamic-energy ratio: {base.energy_nj / cc.energy_nj:.2f}x")


if __name__ == "__main__":
    main()
