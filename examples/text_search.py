#!/usr/bin/env python3
"""Text processing on a Compute Cache: WordCount and StringMatch.

WordCount turns its sorted-dictionary binary search into an alphabet-
indexed CAM probed with ``cc_search``; StringMatch batches encrypted words
in L1 and searches each encrypted key against the whole batch with one
instruction.  Both variants run for real and are verified against plain
Python references.

Run:  python examples/text_search.py
"""

from repro.api import fresh_machine, stringmatch, textgen, wordcount


def demo_wordcount() -> None:
    print("=== WordCount ===")
    corpus = textgen.zipf_corpus(seed=5, n_words=3000, vocab_size=2500)
    reference = textgen.reference_wordcount(corpus)
    print(f"corpus: {len(corpus.words)} words, "
          f"{len(corpus.unique_words())} distinct, Zipf-distributed")

    cfg = wordcount.WordCountConfig(n_bins=676, bin_capacity=16,
                                    dict_capacity=4096)
    base = wordcount.run_wordcount(corpus, "baseline", fresh_machine(), cfg)
    cc = wordcount.run_wordcount(corpus, "cc", fresh_machine(), cfg)
    assert base.output == reference and cc.output == reference

    top = sorted(reference.items(), key=lambda kv: -kv[1])[:5]
    print("top words:", ", ".join(f"{w}({n})" for w, n in top))
    print(f"baseline: {base.cycles:>12,.0f} cycles  "
          f"{base.instructions:>9,} instructions "
          f"({base.stats['probes']:,} binary-search probes)")
    print(f"CC      : {cc.cycles:>12,.0f} cycles  "
          f"{cc.instructions:>9,} instructions "
          f"({cc.stats['searches']:,} cc_search ops)")
    print(f"instruction reduction: "
          f"{1 - cc.instructions / base.instructions:.0%} (paper: 87%)\n")


def demo_stringmatch() -> None:
    print("=== StringMatch ===")
    workload = stringmatch.make_workload(seed=6, n_words=1024, n_keys=4,
                                         vocab_size=400)
    reference = stringmatch.reference_matches(workload)
    print(f"scanning {len(workload.corpus.words)} words for "
          f"{len(workload.keys)} encrypted keys: {', '.join(workload.keys)}")

    base = stringmatch.run_stringmatch(workload, "baseline", fresh_machine())
    cc = stringmatch.run_stringmatch(workload, "cc", fresh_machine())
    assert sorted(base.output) == reference
    assert sorted(cc.output) == reference

    print(f"matches found: {len(reference)} (identical in both variants)")
    print(f"baseline: {base.cycles:>12,.0f} cycles  "
          f"{base.instructions:>9,} instructions")
    print(f"CC      : {cc.cycles:>12,.0f} cycles  "
          f"{cc.instructions:>9,} instructions")
    print(f"speedup: {base.cycles / cc.cycles:.2f}x (paper: 1.5x)")


if __name__ == "__main__":
    demo_wordcount()
    demo_stringmatch()
