#!/usr/bin/env python3
"""Quickstart: compute in the cache, not in the core.

Builds the paper's 8-core SandyBridge-class machine, allocates co-located
(operand-locality-satisfying) buffers, and runs every Compute Cache
instruction once - verifying each result against plain Python and printing
where the operation ran and what it cost.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ComputeCacheMachine, cc_ops


def main() -> None:
    machine = ComputeCacheMachine()
    size = 4096  # one page per operand

    # Co-located buffers share a page offset, so every pair of
    # corresponding cache blocks shares bit-lines at L1, L2, and L3:
    # in-place computation is possible by construction (Section IV-C).
    a, b, c = machine.arena.alloc_colocated(size, 3)
    rng = np.random.default_rng(1)
    data_a = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
    data_b = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
    machine.load(a, data_a)
    machine.load(b, data_b)

    na = np.frombuffer(data_a, dtype=np.uint8)
    nb = np.frombuffer(data_b, dtype=np.uint8)

    print("=== Compute Cache ISA walkthrough (Table II) ===\n")

    def show(name, res, ok):
        mode = "in-place" if res.used_inplace else "near-place"
        print(f"{name:12s} level={res.level}  {mode:10s} "
              f"{res.inplace_ops + res.nearplace_ops:3d} block ops  "
              f"{res.cycles:7.0f} cycles  correct={ok}")

    res = machine.cc(cc_ops.cc_and(a, b, c, size))
    show("cc_and", res, machine.peek(c, size) == (na & nb).tobytes())

    res = machine.cc(cc_ops.cc_or(a, b, c, size))
    show("cc_or", res, machine.peek(c, size) == (na | nb).tobytes())

    res = machine.cc(cc_ops.cc_xor(a, b, c, size))
    show("cc_xor", res, machine.peek(c, size) == (na ^ nb).tobytes())

    res = machine.cc(cc_ops.cc_not(a, c, size))
    show("cc_not", res,
         machine.peek(c, size) == (~na).astype(np.uint8).tobytes())

    res = machine.cc(cc_ops.cc_copy(a, c, size))
    show("cc_copy", res, machine.peek(c, size) == data_a)

    res = machine.cc(cc_ops.cc_buz(c, size))
    show("cc_buz", res, machine.peek(c, size) == bytes(size))

    # cc_cmp: word-granular equality, result in a 64-bit register.
    res = machine.cc(cc_ops.cc_cmp(a, b, 512))
    expect = sum(
        1 << i
        for i in range(64)
        if data_a[i * 8 : (i + 1) * 8] == data_b[i * 8 : (i + 1) * 8]
    )
    show("cc_cmp", res, res.result == expect)

    # cc_search: find a 64-byte key inside a buffer; one bit per block.
    key = machine.arena.alloc_page_aligned(64)
    machine.load(key, data_a[128:192])  # block 2 of a
    res = machine.cc(cc_ops.cc_search(a, key, size))
    show("cc_search", res, res.result & (1 << 2))
    print(f"{'':12s} search key found in blocks: "
          f"{[i for i in range(64) if res.result >> i & 1]}")

    # cc_clmul: carry-less multiply - per-lane parity of AND.
    d = machine.arena.alloc_page_aligned(512)
    res = machine.cc(cc_ops.cc_clmul(a, b, d, 512, lane_bits=64))
    lane0 = bin(int.from_bytes(data_a[:8], "little")
                & int.from_bytes(data_b[:8], "little")).count("1") & 1
    show("cc_clmul", res, (res.result_bytes[0] & 1) == lane0)

    print("\n=== Energy ledger (dynamic, by component) ===")
    for component, pj in sorted(machine.ledger.breakdown().items()):
        print(f"  {component:14s} {pj / 1000:10.1f} nJ")

    print("\nNote: no 'noc' and almost no 'core' energy - the data never"
          "\nleft the L3 sub-arrays it was sitting in.")


if __name__ == "__main__":
    main()
