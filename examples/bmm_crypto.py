#!/usr/bin/env python3
"""Bit-matrix multiplication over GF(2) with broadcast cc_clmul.

BMM underlies error-correcting codes, cryptography, bioinformatics and the
FFT; Cray machines had a dedicated BMM instruction and x86 provides CLMUL.
The Compute Cache computes one full output row per instruction: B-transpose
lives packed in L1 sub-arrays, the A-row is broadcast through the key-table
datapath, and every sub-array's XOR-reduction tree emits inner-product bits.

The demo multiplies random matrices, verifies against numpy, and shows a
small GF(2) application: syndrome computation for a Hamming-code parity
check matrix.

Run:  python examples/bmm_crypto.py
"""

import numpy as np

from repro.api import bmm, fresh_machine


def demo_multiply(n: int = 128) -> None:
    print(f"=== {n}x{n} GF(2) matrix multiply ===")
    workload = bmm.make_matrices(seed=3, n=n)
    reference = bmm.reference_bmm(workload)

    base = bmm.run_bmm(workload, "baseline", fresh_machine())
    cc = bmm.run_bmm(workload, "cc", fresh_machine())
    assert np.array_equal(base.output, reference)
    assert np.array_equal(cc.output, reference)
    print("both variants match numpy's GF(2) product")

    print(f"baseline: {base.cycles:>12,.0f} cycles  "
          f"{base.instructions:>10,} instructions")
    print(f"CC      : {cc.cycles:>12,.0f} cycles  "
          f"{cc.instructions:>10,} instructions "
          f"({cc.stats['cc_instructions']} cc_clmul, one per output row)")
    print(f"speedup: {base.cycles / cc.cycles:.2f}x (paper: 3.2x)")
    print(f"instruction reduction: "
          f"{1 - cc.instructions / base.instructions:.1%} (paper: 98%)\n")


def demo_parity_check() -> None:
    """GF(2) syndrome: H (64x64, a toy parity structure) times codewords."""
    print("=== GF(2) syndrome computation (parity-check style) ===")
    n = 64
    rng = np.random.default_rng(11)
    h = (rng.integers(0, 2, size=(n, n), dtype=np.uint8))
    codewords = rng.integers(0, 2, size=(n, n), dtype=np.uint8)
    workload = bmm.BMMWorkload(n=n, a=h, b=codewords)
    cc = bmm.run_bmm(workload, "cc", fresh_machine())
    expected = bmm.reference_bmm(workload)
    assert np.array_equal(cc.output, expected)
    nonzero = int(cc.output.any(axis=0).sum())
    print(f"syndromes computed for {n} codeword columns; "
          f"{nonzero} columns flag a parity violation")
    print("(computed entirely by in-cache AND + XOR-reduction trees)")


if __name__ == "__main__":
    demo_multiply()
    demo_parity_check()
