#!/usr/bin/env python3
"""Copy-on-write checkpointing with cc_copy (Figures 10 and 11).

An OS checkpoints application memory every 100k instructions: the first
store to a page in an interval copies it to a shadow region.  Page-to-page
copies are page-aligned, so operand locality is *perfect* and the whole
4 KB copy is one ``cc_copy`` instruction executing entirely inside the L3
sub-arrays - no L1/L2 pollution, no core involvement.

Run:  python examples/checkpoint_demo.py
"""

from repro.api import PROFILES, SplashProfile, run_checkpoint


def main() -> None:
    print("Copy-on-write checkpointing, 100k-instruction intervals")
    print(f"{'benchmark':<11}{'pages/int':>10}{'Base':>9}{'Base_32':>9}"
          f"{'CC_L3':>9}")
    print("-" * 48)

    profiles = [
        SplashProfile(p.name, p.dirty_pages_per_interval, p.cpi,
                      p.store_fraction, intervals=1)
        for p in (PROFILES["fmm"], PROFILES["raytrace"], PROFILES["radix"])
    ]
    for prof in profiles:
        overheads = {}
        for engine in ("base", "base32", "cc"):
            run = run_checkpoint(prof, engine)
            overheads[engine] = run.overhead
        print(f"{prof.name:<11}{prof.dirty_pages_per_interval:>10}"
              f"{overheads['base']:>8.1%}{overheads['base32']:>8.1%}"
              f"{overheads['cc']:>8.1%}")

    print("\nWhy CC_L3 wins:")
    print(" * one cc_copy instruction replaces ~512 scalar / 128 SIMD"
          " load-store pairs;")
    print(" * the copy happens block-parallel inside L3 sub-arrays;")
    print(" * the destination page is fully overwritten, so its fetch is"
          " skipped;")
    print(" * L1/L2 stay clean for the application's own working set.")
    print("\n(Figure 10 of the paper: Base up to 68%, Base_32 ~30% average,"
          "\n CC ~6% - see benchmarks/test_fig10_checkpoint_overhead.py.)")


if __name__ == "__main__":
    main()
