#!/usr/bin/env python3
"""The software toolchain: CC assembly, traces, and the vector compiler.

Three layers a real Compute Cache deployment would ship:

1. an **assembler** for the Table II ISA (`repro.asm`);
2. a **trace frontend** mixing core events and CC assembly (`repro.trace`);
3. a **vector compiler** that plans operand-locality-satisfying layouts and
   tiles operations to ISA/page limits (`repro.compiler`) - the toolchain
   extension Section IV-C anticipates.

Run:  python examples/trace_and_compiler.py
"""

import numpy as np

from repro.api import (
    ComputeCacheMachine,
    Opcode,
    VectorCompiler,
    compile_and_run,
    format_instruction,
    parse,
    run_trace,
)


def demo_assembler() -> None:
    print("=== Assembler round trip ===")
    for line in (
        "cc_and 0x1000, 0x2000, 0x3000, 4096",
        "cc_search 0x0, 0x8fc0, 4096",
        "cc_clmul256.bcast 0x0, 0x4000, 0x8000, 8192",
    ):
        instr = parse(line)
        print(f"  {line:45s} -> {instr.opcode.value:10s} "
              f"{instr.num_blocks} block ops -> {format_instruction(instr)}")
    print()


def demo_trace() -> None:
    print("=== Trace replay ===")
    trace = """
    # stage two 4 KB operands, then OR them in-cache and read a word back
    init 0x0,    repeat:0xf0*4096
    init 0x1000, repeat:0x0f*4096
    cc_or 0x0, 0x1000, 0x2000, 4096
    load 0x2000, 8
    fence
    """
    machine = ComputeCacheMachine()
    result = run_trace(trace, machine)
    print(f"  {result.instructions} instructions "
          f"({result.cc_instructions} CC), {result.cycles:,.0f} cycles, "
          f"{result.dynamic_nj:,.1f} nJ")
    print(f"  result word: {machine.peek(0x2000, 8).hex()} (expected ff*8)")
    print()


def demo_compiler() -> None:
    print("=== Vector compiler ===")
    machine = ComputeCacheMachine()
    rng = np.random.default_rng(9)
    da = rng.integers(0, 256, 8192, dtype=np.uint8).tobytes()
    db = rng.integers(0, 256, 8192, dtype=np.uint8).tobytes()
    plan = compile_and_run(machine, Opcode.XOR, {"a": da, "b": db})
    print(f"  placed {len(plan.arrays)} arrays co-located "
          f"(locality satisfied: {plan.locality_satisfied})")
    print(f"  emitted {plan.tile_count} page-legal cc_xor tiles:")
    for line in plan.listing().splitlines()[:4]:
        print(f"    {line}")
    out = machine.peek(plan.arrays["dest"].addr, 8192)
    expected = (np.frombuffer(da, np.uint8) ^ np.frombuffer(db, np.uint8)).tobytes()
    print(f"  result exact: {out == expected}")

    print("\n  ...and the diagnosis a bad layout would get:")
    compiler = VectorCompiler(machine.config)
    from repro.api import ArrayRef

    bad = compiler.compile_elementwise(
        Opcode.AND,
        ArrayRef("x", 0x0, 128), ArrayRef("y", 0x4040, 128),
        ArrayRef("z", 0x8000, 128),
    )
    for diag in bad.diagnostics[:2]:
        print(f"    {diag}")


if __name__ == "__main__":
    demo_assembler()
    demo_trace()
    demo_compiler()
