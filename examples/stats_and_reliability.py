#!/usr/bin/env python3
"""Profiling and reliability: machine statistics, ECC scrubbing, and the
write-disturb fault the circuit design prevents.

Run:  python examples/stats_and_reliability.py
"""

import numpy as np

from repro.api import (
    BitCellArray,
    CellType,
    ComputeCacheMachine,
    DataCorruptionError,
    ScrubService,
    cc_ops,
    collect_stats,
    format_stats,
)


def demo_stats() -> None:
    print("=== Machine-wide statistics after a mixed workload ===")
    m = ComputeCacheMachine()
    rng = np.random.default_rng(2)
    a, b, c = m.arena.alloc_colocated(4096, 3)
    m.load(a, rng.integers(0, 256, 4096, dtype=np.uint8).tobytes())
    m.load(b, rng.integers(0, 256, 4096, dtype=np.uint8).tobytes())
    m.cc(cc_ops.cc_and(a, b, c, 4096))
    m.cc(cc_ops.cc_cmp(a, c, 512))
    key = m.arena.alloc_page_aligned(64)
    m.load(key, m.peek(a, 64))
    m.cc(cc_ops.cc_search(a, key, 4096))
    for off in range(0, 4096, 64):
        m.read(c + off, 8)
    print(format_stats(collect_stats(m)))
    print()


def demo_scrubbing() -> None:
    print("=== ECC scrubbing repairs a particle strike ===")
    m = ComputeCacheMachine()
    addr = m.arena.alloc_page_aligned(4096)
    rng = np.random.default_rng(3)
    m.load(addr, rng.integers(0, 256, 4096, dtype=np.uint8).tobytes())
    m.warm_l3(addr, 4096)
    level = m.hierarchy.l3[m.hierarchy.home_slice(addr, 0)]
    service = ScrubService(level)
    protected = service.protect_resident()
    print(f"protected {protected} resident blocks with SECDED Hamming(72,64)")

    victim_bit = int(rng.integers(0, 4096 * 8))
    service.inject_strike(addr + (victim_bit // 8 // 64) * 64,
                          bit=victim_bit % (64 * 8))
    print(f"injected a particle strike at bit {victim_bit}")
    report = service.scrub_pass()
    print(f"scrub pass: {report.blocks_checked} blocks checked, "
          f"{report.corrections} corrected at "
          f"{[hex(a) for a in report.corrected_addrs]}")
    print()


def demo_write_disturb() -> None:
    print("=== Why the word-line voltage is lowered (Section II-B) ===")
    patterns = ("1100", "1010")

    def fill(arr):
        for i, p in enumerate(patterns):
            arr.write_row(i, np.array([ch == "1" for ch in p], dtype=bool))

    safe = BitCellArray(4, 4, wordline_underdrive=True)
    fill(safe)
    bl, _ = safe.activate([0, 1])
    print(f"underdriven 6T : AND sensed = "
          f"{''.join('1' if x else '0' for x in bl)}, rows intact")

    unsafe = BitCellArray(4, 4, wordline_underdrive=False)
    fill(unsafe)
    try:
        unsafe.activate([0, 1])
    except DataCorruptionError as exc:
        row0 = "".join("1" if x else "0" for x in unsafe.read_row(0))
        print(f"full-swing 6T  : CORRUPTED ({exc.__class__.__name__}); "
              f"row 0 now {row0} (was {patterns[0]})")

    eight_t = BitCellArray(4, 4, wordline_underdrive=False,
                           cell_type=CellType.EIGHT_T)
    fill(eight_t)
    bl, _ = eight_t.activate([0, 1])
    print(f"full-swing 8T  : AND sensed = "
          f"{''.join('1' if x else '0' for x in bl)}, immune by design")


if __name__ == "__main__":
    demo_stats()
    demo_scrubbing()
    demo_write_disturb()
