"""DB-BitMap and BMM application tests."""

import numpy as np
import pytest

from repro import ComputeCacheMachine
from repro.apps import bitmap_db, bmm
from repro.params import small_test_machine


class TestBitmapDataset:
    def test_bins_partition_rows(self):
        ds = bitmap_db.make_dataset(7, n_rows=4096, cardinalities=(8,))
        total = np.zeros(ds.bitmap_bytes, dtype=np.uint8)
        for b in range(8):
            total |= ds.bitmaps[0][b]
        assert (total == 0xFF).all()  # every row in exactly one bin
        stacked = sum(np.unpackbits(ds.bitmaps[0][b]).astype(int) for b in range(8))
        assert set(stacked.tolist()) == {1}

    def test_bins_match_values(self):
        ds = bitmap_db.make_dataset(7, n_rows=4096, cardinalities=(4,))
        bits = np.unpackbits(ds.bitmaps[0][2])
        assert np.array_equal(bits == 1, ds.values[0] == 2)

    def test_row_count_validation(self):
        with pytest.raises(ValueError):
            bitmap_db.make_dataset(1, n_rows=100)


class TestBitmapQueries:
    @pytest.fixture(scope="class")
    def setup(self):
        ds = bitmap_db.make_dataset(9, n_rows=1 << 14, cardinalities=(8, 4))
        queries = bitmap_db.make_query_mix(ds, 10, n_queries=5)
        refs = [bitmap_db.reference_query(ds, q).tobytes() for q in queries]
        return ds, queries, refs

    @pytest.fixture(scope="class")
    def results(self, setup):
        ds, queries, _ = setup
        base = bitmap_db.run_bitmap_queries(
            ds, queries, "baseline", ComputeCacheMachine(small_test_machine()))
        cc = bitmap_db.run_bitmap_queries(
            ds, queries, "cc", ComputeCacheMachine(small_test_machine()))
        return base, cc

    def test_query_mix_includes_conjunction(self, setup):
        _, queries, _ = setup
        assert any(q.and_attr is not None for q in queries)

    def test_baseline_results_exact(self, setup, results):
        assert results[0].output == setup[2]

    def test_cc_results_exact(self, setup, results):
        assert results[1].output == setup[2]

    def test_cc_faster_and_fewer_instructions(self, results):
        base, cc = results
        assert cc.instructions < base.instructions
        assert cc.cycles < base.cycles

    def test_cc_saves_dynamic_energy(self, results):
        base, cc = results
        assert cc.energy.total() < base.energy.total()

    def test_unknown_variant_rejected(self, setup):
        ds, queries, _ = setup
        with pytest.raises(ValueError):
            bitmap_db.run_bitmap_queries(ds, queries, "quantum")


class TestBMM:
    @pytest.fixture(scope="class")
    def workload(self):
        return bmm.make_matrices(seed=13, n=64)

    @pytest.fixture(scope="class")
    def results(self, workload):
        base = bmm.run_bmm(workload, "baseline",
                           ComputeCacheMachine(small_test_machine()))
        cc = bmm.run_bmm(workload, "cc", ComputeCacheMachine(small_test_machine()))
        return base, cc

    def test_reference_is_gf2(self, workload):
        ref = bmm.reference_bmm(workload)
        assert set(np.unique(ref)) <= {0, 1}

    def test_baseline_matches_reference(self, workload, results):
        assert np.array_equal(results[0].output, bmm.reference_bmm(workload))

    def test_cc_matches_reference(self, workload, results):
        assert np.array_equal(results[1].output, bmm.reference_bmm(workload))

    def test_massive_instruction_reduction(self, results):
        """The paper reports 98% fewer instructions for BMM."""
        base, cc = results
        assert cc.instructions < base.instructions * 0.05

    def test_cc_speedup(self, results):
        """Paper: 3.2x; shape check: clearly faster."""
        base, cc = results
        assert base.cycles / cc.cycles > 2.0

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            bmm.make_matrices(1, n=100)
        with pytest.raises(ValueError):
            bmm.make_matrices(1, n=512)

    def test_identity_matrix(self):
        n = 64
        eye = np.eye(n, dtype=np.uint8)
        rng = np.random.default_rng(4)
        a = rng.integers(0, 2, size=(n, n), dtype=np.uint8)
        wl = bmm.BMMWorkload(n=n, a=a, b=eye)
        cc = bmm.run_bmm(wl, "cc", ComputeCacheMachine(small_test_machine()))
        assert np.array_equal(cc.output, a)
