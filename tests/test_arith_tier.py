"""Bit-serial arithmetic tier: transpose accounting and the QDNN app.

The transpose-unit regressions pin the Neural Cache amortization story:
layout conversion is charged exactly once per layout change — repeated
arithmetic over converted operands is free, and only a conventional write
(which reverts blocks to row-major) makes the next arithmetic use pay
again.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ComputeCacheMachine, cc_ops
from repro.apps import qdnn
from repro.core.transpose import TRANSPOSE_MLP, TransposeUnit
from repro.params import BLOCK_SIZE, small_test_machine


def payload(seed: int, n: int) -> bytes:
    return np.random.default_rng(seed).integers(
        0, 256, n, dtype=np.uint8).tobytes()


class TestTransposeUnit:
    def test_convert_charges_once(self):
        t = TransposeUnit(transpose_latency=8)
        blocks, cycles = t.convert([(0, 4 * BLOCK_SIZE)])
        assert (blocks, cycles) == (4, 8.0)
        assert t.convert([(0, 4 * BLOCK_SIZE)]) == (0, 0.0)
        assert t.blocks_converted == 4
        assert t.conversion_cycles == 8.0

    def test_makespan_waves(self):
        t = TransposeUnit(transpose_latency=8)
        n = 2 * TRANSPOSE_MLP + 1  # 3 waves
        _, cycles = t.convert([(0, n * BLOCK_SIZE)])
        assert cycles == 24.0

    def test_invalidate_recharges(self):
        t = TransposeUnit()
        t.convert([(0, 2 * BLOCK_SIZE)])
        t.invalidate(BLOCK_SIZE)  # one block reverts to row-major
        assert t.convert([(0, 2 * BLOCK_SIZE)]) == (1, 8.0)

    def test_mark_bit_serial_is_free(self):
        t = TransposeUnit()
        t.mark_bit_serial(0, 2 * BLOCK_SIZE)
        assert t.convert([(0, 2 * BLOCK_SIZE)]) == (0, 0.0)
        assert t.blocks_converted == 0


class TestTransposeAccounting:
    """Machine-level: conversion cycles/energy charged once per layout
    change, re-charged only after a conventional write."""

    def setup_method(self):
        self.m = ComputeCacheMachine(small_test_machine())
        self.size = 4 * BLOCK_SIZE
        self.a, self.b, self.c = self.m.arena.alloc_colocated(self.size, 3)
        self.m.load(self.a, payload(1, self.size))
        self.m.load(self.b, payload(2, self.size))

    def stats(self):
        s = self.m.controllers[0].stats
        return s.transpose_blocks, s.transpose_cycles

    def test_charged_once_then_free(self):
        first = self.m.cc(cc_ops.cc_add(self.a, self.b, self.c, self.size,
                                        elem_bits=16))
        assert self.stats() == (8, 8.0)  # 4 blocks x 2 sources, one wave
        again = self.m.cc(cc_ops.cc_add(self.a, self.b, self.c, self.size,
                                        elem_bits=16))
        assert self.stats() == (8, 8.0)  # nothing new charged
        # Net of operand-fetch warming, the only timing difference is the
        # one-off conversion makespan.
        assert ((first.cycles - first.fetch_cycles)
                - (again.cycles - again.fetch_cycles)) == 8.0

    def test_dest_joins_bit_serial_set_free(self):
        self.m.cc(cc_ops.cc_mul(self.a, self.b, self.c, self.size,
                                elem_bits=8))
        blocks_before, _ = self.stats()
        # c was produced bit-serial: using it as a source charges nothing.
        self.m.cc(cc_ops.cc_add(self.a, self.c, self.c, self.size,
                                elem_bits=8))
        assert self.stats()[0] == blocks_before

    def test_conventional_write_recharges(self):
        self.m.cc(cc_ops.cc_add(self.a, self.b, self.c, self.size,
                                elem_bits=16))
        self.m.write(self.a, bytes(BLOCK_SIZE))  # reverts one block
        self.m.cc(cc_ops.cc_add(self.a, self.b, self.c, self.size,
                                elem_bits=16))
        assert self.stats() == (9, 16.0)  # exactly one extra block + wave

    def test_nonarith_cc_dest_recharges(self):
        self.m.cc(cc_ops.cc_reduce(self.a, self.size, elem_bits=32))
        assert self.stats() == (4, 8.0)
        self.m.cc(cc_ops.cc_copy(self.b, self.a, BLOCK_SIZE))
        self.m.cc(cc_ops.cc_reduce(self.a, self.size, elem_bits=32))
        assert self.stats() == (5, 16.0)

    def test_transpose_energy_hits_ledger(self):
        before = self.m.ledger.copy()
        self.m.cc(cc_ops.cc_add(self.a, self.b, self.c, self.size,
                                elem_bits=8))
        first = self.m.energy_since(before).total_nj()
        before = self.m.ledger.copy()
        self.m.cc(cc_ops.cc_add(self.a, self.b, self.c, self.size,
                                elem_bits=8))
        second = self.m.energy_since(before).total_nj()
        assert first > second > 0


class TestQDNNApp:
    def test_outputs_match_reference_and_each_other(self):
        w = qdnn.make_network(7, h=10, w=10, n_out=3)
        ref = qdnn.reference_qdnn(w)
        base = qdnn.run_qdnn(w, "baseline")
        cc = qdnn.run_qdnn(w, "cc")
        assert np.array_equal(base.output, ref["logits"])
        assert np.array_equal(cc.output, ref["logits"])
        assert cc.instructions < base.instructions
        assert cc.stats["transpose_blocks"] > 0

    def test_unknown_variant_rejected(self):
        w = qdnn.make_network(7, h=8, w=8, n_out=2)
        with pytest.raises(ValueError):
            qdnn.run_qdnn(w, "gpu")

    def test_tiny_plane_rejected(self):
        with pytest.raises(ValueError):
            qdnn.make_network(7, h=2, w=2)

    def test_bench_qdnn_comparison(self):
        from repro.bench.appbench import bench_qdnn

        comp = bench_qdnn(h=12, w=12, n_out=3)
        assert comp.outputs_match
        assert comp.speedup > 1
        assert comp.instruction_reduction > 0.9
        assert comp.baseline_total_nj > 0 and comp.cc_total_nj > 0

    def test_qdnn_point_is_plain_data(self):
        import json

        from repro.bench.points import app_point

        doc = app_point("qdnn", scale=0.5)
        json.dumps(doc)  # JSON-serializable, like every point result
        assert doc["app"] == "qdnn"
        assert doc["outputs_match"] is True
        assert doc["speedup"] > 1
