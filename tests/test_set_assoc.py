"""Tag array tests: LRU, pinning, victim selection."""

import pytest

from repro.cache.block import MESIState
from repro.cache.set_assoc import SetAssociativeArray
from repro.errors import PinnedLineError
from repro.params import CacheLevelConfig


@pytest.fixture
def tags():
    cfg = CacheLevelConfig(name="T", size=4 * 1024, ways=4, banks=2,
                           bps_per_bank=2, hit_latency=1)
    return SetAssociativeArray(cfg)


class TestLookupInstall:
    def test_miss_then_hit(self, tags):
        assert tags.lookup(0, 0x10) is None
        tags.install(0, 0, 0x10, MESIState.EXCLUSIVE)
        assert tags.lookup(0, 0x10) == 0
        assert tags.stats.hits == 1
        assert tags.stats.misses == 1

    def test_probe_uncounted(self, tags):
        tags.install(0, 0, 0x10, MESIState.SHARED)
        tags.probe(0, 0x10)
        assert tags.stats.lookups == 0

    def test_install_evicts_stats(self, tags):
        for i in range(5):
            way = tags.victim_way(0)
            tags.install(0, way, i, MESIState.EXCLUSIVE)
        assert tags.stats.evictions == 1


class TestLRU:
    def test_invalid_way_preferred(self, tags):
        tags.install(0, 0, 1, MESIState.SHARED)
        assert tags.victim_way(0) == 1  # first invalid way

    def test_lru_order(self, tags):
        for way, tag in enumerate([10, 11, 12, 13]):
            tags.install(0, way, tag, MESIState.SHARED)
        tags.touch(0, 0)  # way 0 becomes MRU; way 1 is now LRU
        assert tags.victim_way(0) == 1

    def test_touch_changes_victim(self, tags):
        for way, tag in enumerate([10, 11, 12, 13]):
            tags.install(0, way, tag, MESIState.SHARED)
        tags.touch(0, 1)
        tags.touch(0, 0)
        assert tags.victim_way(0) == 2


class TestPinning:
    def test_pinned_way_not_victim(self, tags):
        for way, tag in enumerate([10, 11, 12, 13]):
            tags.install(0, way, tag, MESIState.SHARED)
        tags.pin(0, 0, owner=7)  # way 0 is LRU but pinned
        assert tags.victim_way(0) == 1
        assert tags.stats.pinned_evictions_avoided >= 1

    def test_all_pinned_raises(self, tags):
        for way, tag in enumerate([10, 11, 12, 13]):
            tags.install(0, way, tag, MESIState.SHARED)
            tags.pin(0, way, owner=1)
        with pytest.raises(PinnedLineError):
            tags.victim_way(0)

    def test_pin_promotes_to_mru(self, tags):
        for way, tag in enumerate([10, 11, 12, 13]):
            tags.install(0, way, tag, MESIState.SHARED)
        tags.pin(0, 0, owner=1)
        tags.unpin(0, 0)
        assert tags.victim_way(0) == 1  # way 0 was MRU-promoted by the pin

    def test_double_pin_same_owner_ok(self, tags):
        tags.install(0, 0, 10, MESIState.SHARED)
        tags.pin(0, 0, owner=1)
        tags.pin(0, 0, owner=1)

    def test_double_pin_other_owner_rejected(self, tags):
        tags.install(0, 0, 10, MESIState.SHARED)
        tags.pin(0, 0, owner=1)
        with pytest.raises(PinnedLineError):
            tags.pin(0, 0, owner=2)

    def test_install_clears_pin(self, tags):
        tags.install(0, 0, 10, MESIState.SHARED)
        tags.pin(0, 0, owner=1)
        tags.install(0, 0, 11, MESIState.EXCLUSIVE)
        assert not tags.entry(0, 0).pinned

    def test_pinned_ways_listing(self, tags):
        tags.install(0, 0, 10, MESIState.SHARED)
        tags.install(0, 1, 11, MESIState.SHARED)
        tags.pin(0, 1, owner=3)
        assert tags.pinned_ways(0) == [1]


class TestIteration:
    def test_valid_entries(self, tags):
        tags.install(0, 0, 10, MESIState.SHARED)
        tags.install(3, 2, 11, MESIState.MODIFIED)
        entries = list(tags.valid_entries())
        assert len(entries) == 2
        assert {(s, w) for s, w, _ in entries} == {(0, 0), (3, 2)}
