"""CC ISA tests (Table II rules, Section IV-A limits)."""

import pytest

from repro.core.isa import (
    CCInstruction,
    Opcode,
    cc_and,
    cc_buz,
    cc_clmul,
    cc_cmp,
    cc_copy,
    cc_not,
    cc_or,
    cc_search,
    cc_xor,
)
from repro.errors import ISAError
from repro.params import PAGE_SIZE


class TestValidation:
    def test_happy_paths(self):
        cc_copy(0x1000, 0x2000, 4096)
        cc_buz(0x1000, 4096)
        cc_cmp(0x1000, 0x2000, 512)
        cc_search(0x1000, 0x2000, 512)
        cc_and(0x1000, 0x2000, 0x3000, 128)
        cc_or(0x1000, 0x2000, 0x3000, 128)
        cc_xor(0x1000, 0x2000, 0x3000, 128)
        cc_not(0x1000, 0x2000, 128)
        cc_clmul(0x1000, 0x2000, 0x3000, 256, lane_bits=128)

    def test_size_limits(self):
        cc_copy(0, 0x10000, 16 * 1024)  # max allowed
        with pytest.raises(ISAError):
            cc_copy(0, 0x10000, 32 * 1024)

    def test_cmp_search_result_register_limits(self):
        """The 64-bit result register caps cmp at 64 words (512 B) and
        search at 64 keys (4 KB)."""
        cc_cmp(0, 0x10000, 512)
        with pytest.raises(ISAError):
            cc_cmp(0, 0x10000, 576)
        cc_search(0, 0x10000, 4096)
        with pytest.raises(ISAError):
            cc_search(0, 0x10000, 4096 + 64)

    def test_block_multiple_required(self):
        with pytest.raises(ISAError):
            cc_copy(0, 0x1000, 100)

    def test_block_alignment_required(self):
        with pytest.raises(ISAError):
            cc_copy(0x10, 0x1000, 64)

    def test_zero_and_negative_size(self):
        with pytest.raises(ISAError):
            cc_buz(0, 0)
        with pytest.raises(ISAError):
            cc_buz(0, -64)

    def test_clmul_lane_widths(self):
        for lanes in (64, 128, 256):
            cc_clmul(0, 0x1000, 0x2000, 64, lane_bits=lanes)
        with pytest.raises(ISAError):
            cc_clmul(0, 0x1000, 0x2000, 64, lane_bits=32)

    def test_lane_bits_only_for_clmul(self):
        with pytest.raises(ISAError):
            CCInstruction(Opcode.AND, src1=0, src2=64, dest=128, size=64, lane_bits=64)

    def test_operand_count_enforced(self):
        with pytest.raises(ISAError):
            CCInstruction(Opcode.AND, src1=0, size=64)  # missing src2+dest
        with pytest.raises(ISAError):
            CCInstruction(Opcode.BUZ, src1=0, src2=64, size=64)  # extra operand


class TestClassification:
    def test_cc_r_vs_cc_rw(self):
        """CMP and SEARCH only read; the rest behave like stores (IV-H)."""
        assert Opcode.CMP.reads_only and Opcode.SEARCH.reads_only
        for op in (Opcode.COPY, Opcode.BUZ, Opcode.AND, Opcode.OR,
                   Opcode.XOR, Opcode.NOT, Opcode.CLMUL):
            assert op.is_rw

    def test_subarray_op_mapping(self):
        assert Opcode.COPY.subarray_op == "copy"
        assert Opcode.CLMUL.subarray_op == "clmul"


class TestPageSpanning:
    def test_within_page(self):
        instr = cc_copy(0x1000, 0x3000, 4096)
        assert not instr.spans_page_boundary()

    def test_crossing_page(self):
        instr = cc_copy(0x1800, 0x3800, 4096)
        assert instr.spans_page_boundary()

    def test_search_key_never_spans(self):
        key = 5 * PAGE_SIZE + PAGE_SIZE - 64  # last block of a page
        instr = cc_search(0x1000, key, 512)
        assert not instr.spans_page_boundary()

    def test_split_at(self):
        instr = cc_and(0x1000, 0x3000, 0x5000, 256)
        head, tail = instr.split_at(128)
        assert head.size == tail.size == 128
        assert tail.src1 == 0x1080 and tail.src2 == 0x3080 and tail.dest == 0x5080

    def test_split_preserves_search_key(self):
        instr = cc_search(0x1000, 0x9000, 512)
        head, tail = instr.split_at(256)
        assert head.src2 == tail.src2 == 0x9000

    def test_bad_split_offsets(self):
        instr = cc_copy(0x1000, 0x3000, 256)
        for bad in (0, 256, 100):
            with pytest.raises(ISAError):
                instr.split_at(bad)


class TestStructure:
    def test_operands_roles(self):
        instr = cc_xor(0x1000, 0x2000, 0x3000, 64)
        assert instr.operands() == {"src1": 0x1000, "src2": 0x2000, "dest": 0x3000}
        assert instr.source_addresses() == [0x1000, 0x2000]

    def test_num_blocks(self):
        assert cc_copy(0, 0x1000, 4096).num_blocks == 64
