"""Additional SRAM-layer behaviors: op sequences, stats, key-row
independence, and cross-width property checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sram import ComputeSubarray, SubarrayTiming
from repro.sram.subarray import SubarrayOp


class TestOperationSequences:
    def test_compute_then_read_then_compute(self, make_bytes):
        """Interleaving conventional and compute accesses never corrupts:
        sense-amp mode switches are tracked and reversible."""
        sub = ComputeSubarray(rows=8, cols=512)
        a, b = make_bytes(64), make_bytes(64)
        sub.write_block(0, a)
        sub.write_block(1, b)
        for _ in range(3):
            sub.op_and(0, 1, dest=2)
            assert sub.read_block(0) == a            # differential read
            sub.op_xor(0, 1, dest=3)
            assert sub.read_block(1) == b
        na, nb = np.frombuffer(a, np.uint8), np.frombuffer(b, np.uint8)
        assert sub.read_block(2) == (na & nb).tobytes()
        assert sub.read_block(3) == (na ^ nb).tobytes()
        assert sub.sense.reconfigurations >= 6  # mode flips happened

    def test_chained_copies_propagate(self, make_bytes):
        sub = ComputeSubarray(rows=8, cols=512)
        data = make_bytes(64)
        sub.write_block(0, data)
        for row in range(1, 8):
            sub.op_copy(row - 1, row)
        assert sub.read_block(7) == data

    def test_copy_overwrite_then_compare(self, make_bytes):
        sub = ComputeSubarray(rows=4, cols=512)
        a, b = make_bytes(64), make_bytes(64)
        sub.write_block(0, a)
        sub.write_block(1, b)
        assert sub.op_cmp(0, 1) != 0xFF or a == b
        sub.op_copy(0, 1)
        assert sub.op_cmp(0, 1) == 0xFF

    def test_buz_then_or_is_copy(self, make_bytes):
        """x | 0 == x: zeroing then OR-ing reproduces the other operand."""
        sub = ComputeSubarray(rows=4, cols=512)
        data = make_bytes(64)
        sub.write_block(0, data)
        sub.write_block(1, make_bytes(64))
        sub.op_buz(1)
        assert sub.op_or(0, 1) == data


class TestStatsAccounting:
    def test_busy_cycles_accumulate_by_multiplier(self):
        timing = SubarrayTiming(access_delay_cycles=2.0)
        sub = ComputeSubarray(rows=4, cols=512, timing=timing)
        sub.write_block(0, bytes(64))   # 2.0
        sub.write_block(1, bytes(64))   # 2.0
        sub.op_and(0, 1)                # 6.0 (3x)
        sub.op_copy(0, 2)               # 4.0 (2x)
        assert sub.stats.busy_cycles == pytest.approx(14.0)

    def test_compute_op_histogram(self, make_bytes):
        sub = ComputeSubarray(rows=4, cols=512)
        sub.write_block(0, make_bytes(64))
        sub.write_block(1, make_bytes(64))
        sub.op_and(0, 1)
        sub.op_and(0, 1)
        sub.op_cmp(0, 1)
        assert sub.stats.compute_ops == {"and": 2, "cmp": 1}
        assert sub.stats.total_compute_ops == 3

    def test_decoder_counts(self, make_bytes):
        sub = ComputeSubarray(rows=4, cols=512)
        sub.write_block(0, make_bytes(64))
        sub.write_block(1, make_bytes(64))
        before = sub.decoder.dual_decode_count
        sub.op_xor(0, 1)
        assert sub.decoder.dual_decode_count == before + 1


class TestKeyRowIndependence:
    def test_key_row_does_not_alias_data(self, make_bytes):
        """A geometry-level guarantee: writing the key row never perturbs
        data rows, and vice versa."""
        from repro.cache.geometry import CacheGeometry
        from repro.params import small_test_machine

        geo = CacheGeometry(small_test_machine().l1d)
        data = make_bytes(64)
        key = make_bytes(64)
        geo.write_data(0x0, 0, data)
        partition = geo.partition_of(0x0)
        geo.write_key(partition, key)
        assert geo.read_data(0x0, 0) == data
        geo.write_data(0x0, 0, make_bytes(64))
        assert geo.subarrays[partition].read_block(geo.key_row) == key


class TestCrossWidthProperties:
    @given(st.sampled_from([64, 128, 256, 512]),
           st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_ops_at_any_column_width(self, cols, seed):
        """The circuit algebra is width-independent."""
        rng = np.random.default_rng(seed)
        sub = ComputeSubarray(rows=4, cols=cols)
        a = rng.integers(0, 256, cols // 8, dtype=np.uint8).tobytes()
        b = rng.integers(0, 256, cols // 8, dtype=np.uint8).tobytes()
        sub.write_block(0, a)
        sub.write_block(1, b)
        na, nb = np.frombuffer(a, np.uint8), np.frombuffer(b, np.uint8)
        assert sub.op_and(0, 1) == (na & nb).tobytes()
        assert sub.op_or(0, 1) == (na | nb).tobytes()
        assert sub.op_not(0) == (~na).astype(np.uint8).tobytes()

    @given(st.integers(2, 64))
    @settings(max_examples=15, deadline=None)
    def test_op_names_cover_all_handlers(self, rows):
        sub = ComputeSubarray(rows=rows, cols=512)
        for op in SubarrayOp.ALL:
            assert op in SubarrayOp.ALL  # enumeration is self-consistent
        assert SubarrayOp.LOGICAL <= SubarrayOp.ALL
